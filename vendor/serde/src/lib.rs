//! Offline vendored stand-in for `serde`.
//!
//! Exposes `Serialize` / `Deserialize` as blanket-implemented marker traits
//! plus the no-op derives from the vendored `serde_derive`, giving the
//! workspace the same *compile* surface as real serde without any
//! serialization machinery. Swapping in the real crates later is a
//! manifest-only change (see `vendor/README.md`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker: a type that would be serializable under real serde.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker: a type that would be deserializable under real serde.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}
