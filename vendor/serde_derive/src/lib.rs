//! Offline vendored stand-in for `serde_derive`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so they
//! serialize once the real `serde` is available; offline, these derives
//! expand to nothing and the trait impls come from the blanket impls in the
//! vendored `serde` stub. No code in the workspace calls serialization at
//! runtime (CSV/table output is hand-rolled), so the no-op expansion is
//! sufficient for an identical compile surface.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
