//! Offline vendored stand-in for `serde_derive`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so they
//! serialize once the real `serde` is available; offline, these derives
//! expand to nothing and the trait impls come from the blanket impls in the
//! vendored `serde` stub. No code in the workspace calls serialization at
//! runtime (CSV/table output is hand-rolled), so the no-op expansion is
//! sufficient for an identical compile surface.

use proc_macro::TokenStream;

// `attributes(serde)` registers the `#[serde(...)]` helper attribute just
// like the real derive does, so field annotations such as
// `#[serde(default)]` compile (inert here, honoured once the real serde is
// swapped in).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
