//! Offline vendored stand-in for the `log` facade.
//!
//! Implements the subset the workspace uses: the five level macros, the
//! [`Log`] trait, [`set_logger`] / [`set_max_level`], and the
//! [`Record`] / [`Metadata`] types consumed by `vcoord_netsim::simlog`.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Logging verbosity levels, most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Level {
    Error = 1,
    Warn,
    Info,
    Debug,
    Trace,
}

/// A level filter: `Off` or a maximum enabled [`Level`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum LevelFilter {
    Off = 0,
    Error,
    Warn,
    Info,
    Debug,
    Trace,
}

impl PartialEq<LevelFilter> for Level {
    fn eq(&self, other: &LevelFilter) -> bool {
        *self as usize == *other as usize
    }
}

impl PartialOrd<LevelFilter> for Level {
    fn partial_cmp(&self, other: &LevelFilter) -> Option<std::cmp::Ordering> {
        (*self as usize).partial_cmp(&(*other as usize))
    }
}

impl PartialEq<Level> for LevelFilter {
    fn eq(&self, other: &Level) -> bool {
        *self as usize == *other as usize
    }
}

impl PartialOrd<Level> for LevelFilter {
    fn partial_cmp(&self, other: &Level) -> Option<std::cmp::Ordering> {
        (*self as usize).partial_cmp(&(*other as usize))
    }
}

/// Metadata about a log record: its level and target module.
#[derive(Clone, Debug)]
pub struct Metadata<'a> {
    level: Level,
    target: &'a str,
}

impl<'a> Metadata<'a> {
    pub fn level(&self) -> Level {
        self.level
    }
    pub fn target(&self) -> &'a str {
        self.target
    }
}

/// One log record.
#[derive(Clone, Debug)]
pub struct Record<'a> {
    metadata: Metadata<'a>,
    args: fmt::Arguments<'a>,
}

impl<'a> Record<'a> {
    pub fn metadata(&self) -> &Metadata<'a> {
        &self.metadata
    }
    pub fn level(&self) -> Level {
        self.metadata.level
    }
    pub fn target(&self) -> &'a str {
        self.metadata.target
    }
    pub fn args(&self) -> fmt::Arguments<'a> {
        self.args
    }
}

/// A log sink.
pub trait Log: Sync + Send {
    fn enabled(&self, metadata: &Metadata) -> bool;
    fn log(&self, record: &Record);
    fn flush(&self);
}

/// Error returned when a logger is already installed.
#[derive(Debug)]
pub struct SetLoggerError(());

impl fmt::Display for SetLoggerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a logger is already installed")
    }
}

impl std::error::Error for SetLoggerError {}

static LOGGER: OnceLock<&'static dyn Log> = OnceLock::new();
static MAX_LEVEL: AtomicUsize = AtomicUsize::new(0); // Off

/// Install the global logger. Fails if one is already set.
pub fn set_logger(logger: &'static dyn Log) -> Result<(), SetLoggerError> {
    LOGGER.set(logger).map_err(|_| SetLoggerError(()))
}

/// Set the global maximum level; records above it are skipped cheaply.
pub fn set_max_level(filter: LevelFilter) {
    MAX_LEVEL.store(filter as usize, Ordering::Relaxed);
}

/// The current global maximum level.
pub fn max_level() -> LevelFilter {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => LevelFilter::Error,
        2 => LevelFilter::Warn,
        3 => LevelFilter::Info,
        4 => LevelFilter::Debug,
        5 => LevelFilter::Trace,
        _ => LevelFilter::Off,
    }
}

/// Macro plumbing for [`log_enabled!`] — not public API.
#[doc(hidden)]
pub fn __enabled(level: Level, target: &str) -> bool {
    level <= max_level()
        && LOGGER
            .get()
            .is_some_and(|logger| logger.enabled(&Metadata { level, target }))
}

/// Macro plumbing — not public API.
#[doc(hidden)]
pub fn __log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if let Some(logger) = LOGGER.get() {
        let record = Record {
            metadata: Metadata { level, target },
            args,
        };
        if logger.enabled(&record.metadata) {
            logger.log(&record);
        }
    }
}

#[macro_export]
macro_rules! log {
    (target: $target:expr, $lvl:expr, $($arg:tt)+) => {{
        let lvl = $lvl;
        if lvl <= $crate::max_level() {
            $crate::__log(lvl, $target, format_args!($($arg)+));
        }
    }};
    ($lvl:expr, $($arg:tt)+) => {
        $crate::log!(target: module_path!(), $lvl, $($arg)+)
    };
}

/// Would a record at this level (and optional target) actually be logged?
/// Mirrors upstream `log_enabled!`: checks the global max level, then asks
/// the installed logger's own filter.
#[macro_export]
macro_rules! log_enabled {
    (target: $target:expr, $lvl:expr) => {
        $crate::__enabled($lvl, $target)
    };
    ($lvl:expr) => {
        $crate::log_enabled!(target: module_path!(), $lvl)
    };
}

macro_rules! make_level_macro {
    ($d:tt, $name:ident, $lvl:ident) => {
        #[macro_export]
        macro_rules! $name {
                            (target: $d target:expr, $d($d arg:tt)+) => {
                                $crate::log!(target: $d target, $crate::Level::$lvl, $d($d arg)+)
                            };
                            ($d($d arg:tt)+) => {
                                $crate::log!($crate::Level::$lvl, $d($d arg)+)
                            };
                        }
    };
}

make_level_macro!($, error, Error);
make_level_macro!($, warn, Warn);
make_level_macro!($, info, Info);
make_level_macro!($, debug, Debug);
make_level_macro!($, trace, Trace);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_vs_filter_ordering() {
        assert!(Level::Error <= LevelFilter::Warn);
        assert!(Level::Trace > LevelFilter::Debug);
        assert!(Level::Error > LevelFilter::Off);
    }

    #[test]
    fn macros_compile_and_run_without_logger() {
        set_max_level(LevelFilter::Trace);
        trace!("trace {}", 1);
        debug!("debug");
        info!(target: "custom", "info {}", "x");
        warn!("warn");
        error!("error");
        set_max_level(LevelFilter::Off);
    }
}
