//! Offline vendored stand-in for `rand_core`.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of the `rand` family (see
//! `vendor/README.md`). This crate provides the two core traits; the
//! generators live in `rand` / `rand_chacha`.
//!
//! Determinism contract: everything here is pure integer arithmetic with no
//! platform-dependent behaviour, so streams replay byte-identically across
//! platforms — the property `vcoord_netsim::SeedStream` documents.

/// A source of uniformly random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// splitmix64 — the same seed-expansion function real `rand_core` uses for
/// `seed_from_u64`, so small integer seeds decorrelate well.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Counter(0);
        let r = &mut c;
        fn take<R: RngCore>(mut r: R) -> u64 {
            r.next_u64()
        }
        assert_eq!(take(&mut *r), 1);
        assert_eq!(r.next_u64(), 2);
    }

    #[test]
    fn splitmix_differs_per_step() {
        let mut s = 0u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
    }
}
