//! Offline vendored stand-in for `rand_chacha`.
//!
//! Implements the genuine ChaCha stream cipher (Bernstein 2008) with 12
//! rounds, keyed by a 32-byte seed with a zero nonce, exactly as a CSPRNG.
//! Output word order follows the keystream block layout, so streams are
//! stable across platforms and compiler versions — the property
//! `vcoord_netsim::SeedStream` relies on. The exact values differ from the
//! upstream `rand_chacha` crate (which interleaves blocks differently), but
//! the workspace pins its own regression values, not upstream's.

use rand_core::{RngCore, SeedableRng};

const ROUNDS: usize = 12;

/// A deterministic ChaCha12 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    /// ChaCha state: 4 constant words, 8 key words, counter (2 words), nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for ((out, &w), &init) in self.block.iter_mut().zip(&working).zip(&self.state) {
            *out = w.wrapping_add(init);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // counter + nonce start at zero
        ChaCha12Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chacha20_rfc7539_keystream_structure() {
        // Not the RFC vector (that is 20 rounds / specific nonce); check the
        // block advances and words are not constant instead.
        let mut r = ChaCha12Rng::from_seed([7u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second, "counter must advance between blocks");
        let distinct: std::collections::HashSet<u32> = first.iter().copied().collect();
        assert!(distinct.len() > 8, "keystream words should look random");
    }

    #[test]
    fn clone_replays_from_position() {
        let mut a = ChaCha12Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        let mut b = ChaCha12Rng::seed_from_u64(9);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1);
    }
}
