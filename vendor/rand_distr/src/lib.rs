//! Offline vendored stand-in for `rand_distr`.
//!
//! Provides the two distributions the `vcoord` workspace samples —
//! [`Normal`] and [`LogNormal`] — via the Box–Muller transform (exact, not
//! the upstream ziggurat, so values differ from upstream but the
//! distributions are the same).

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Error returned for invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormalError {
    /// Standard deviation or shape was negative or non-finite.
    BadVariance,
    /// Mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "variance is negative or non-finite"),
            NormalError::MeanTooSmall => write!(f, "mean is non-finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// One standard-normal variate by Box–Muller (cosine branch).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    use rand::Rng;
    // u1 ∈ (0, 1] so ln(u1) is finite; u2 ∈ [0, 1).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// `mu`/`sigma` are the mean and standard deviation of the *logarithm*.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, NormalError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_median() {
        // Median of LogNormal(mu, sigma) is exp(mu).
        let d = LogNormal::new(3.0_f64.ln(), 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 3.0).abs() < 0.1, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }
}
