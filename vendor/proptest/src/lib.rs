//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset used by the workspace's property tests: the
//! [`Strategy`] trait with `prop_map`, range / tuple / `prop::collection::vec`
//! / `prop::num::f64::ANY` strategies, [`ProptestConfig::with_cases`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros. Cases are
//! generated from a deterministic ChaCha12 stream (override the seed with
//! `PROPTEST_SEED`; scale every suite's case count with
//! `VCOORD_PROPTEST_CASES`, see [`__resolve_cases`]).
//!
//! Failing cases are **shrunk** before being reported: numeric range
//! strategies bisect toward the low bound (plus a final `v − 1` walk for
//! integers, so boundaries land exactly), collection strategies shrink to
//! shorter prefixes, and tuple strategies shrink one component at a time.
//! The shrink loop is bounded ([`SHRINK_BUDGET`] candidate evaluations) and
//! driven by re-running the test body, so the reported counterexample is the
//! simplest failing input the search reached — not the first one found.
//! Mapped strategies ([`Strategy::prop_map`]) do not shrink: the stub keeps
//! no value tree, so a mapped output cannot be traced back to its input.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Upper bound on candidate evaluations in one shrink search.
pub const SHRINK_BUDGET: usize = 256;

/// A generator of test-case values.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut dyn RngCore) -> Self::Value;

    /// Candidate simplifications of a failing `value`, simplest first.
    /// Empty means the value is fully shrunk. Every candidate must be a
    /// value this strategy could itself have generated.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values. Mapped strategies do not shrink (no
    /// value tree to trace an output back through).
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut dyn RngCore) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Integer shrink candidates: the low bound, the bisection midpoint, and
/// the immediate predecessor (which lets the search settle on a boundary
/// exactly instead of within a factor of two).
macro_rules! shrink_int_candidates {
    ($lo:expr, $v:expr) => {{
        let (lo, v) = ($lo, $v);
        let mut out = Vec::new();
        if v != lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2;
            if mid != lo && mid != v {
                out.push(mid);
            }
            let prev = v - 1;
            if prev != lo && Some(&prev) != out.last() {
                out.push(prev);
            }
        }
        out
    }};
}

/// Float shrink candidates: the low bound and the bisection midpoint.
macro_rules! shrink_float_candidates {
    ($lo:expr, $v:expr) => {{
        let (lo, v) = ($lo, $v);
        let mut out = Vec::new();
        // `v > lo` also rejects NaN (no candidates for a non-finite value).
        if v > lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2.0;
            if mid != lo && mid != v {
                out.push(mid);
            }
        }
        out
    }};
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut dyn RngCore) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_candidates!(self.start, *value)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut dyn RngCore) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_candidates!(*self.start(), *value)
            }
        }
    )*}
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut dyn RngCore) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float_candidates!(self.start, *value)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut dyn RngCore) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float_candidates!(*self.start(), *value)
            }
        }
    )*}
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*}
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategy sub-modules mirroring `proptest::prop`.
pub mod prop {
    pub mod collection {
        use super::super::Strategy;
        use rand::{Rng, RngCore};

        /// Accepted by [`vec()`] as a length specification.
        pub trait IntoSizeRange {
            fn pick_len(&self, rng: &mut dyn RngCore) -> usize;
            /// Smallest admissible length (prefix shrinks stop here).
            fn min_len(&self) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick_len(&self, _rng: &mut dyn RngCore) -> usize {
                *self
            }
            fn min_len(&self) -> usize {
                *self
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn pick_len(&self, rng: &mut dyn RngCore) -> usize {
                rng.gen_range(self.clone())
            }
            fn min_len(&self) -> usize {
                self.start
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn pick_len(&self, rng: &mut dyn RngCore) -> usize {
                rng.gen_range(self.clone())
            }
            fn min_len(&self) -> usize {
                *self.start()
            }
        }

        /// A strategy for `Vec<T>` with element strategy `element` and a
        /// fixed or ranged length.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L>
        where
            S::Value: Clone,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
                let n = self.len.pick_len(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
            /// Prefix shrinks only: the shortest admissible prefix, the
            /// half-way prefix, and one element dropped — element values
            /// are left alone (the workspace's collection properties are
            /// about lengths and aggregates, not element extremes).
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let min = self.len.min_len();
                let n = value.len();
                if n <= min {
                    return Vec::new();
                }
                let mut out = vec![value[..min].to_vec()];
                let mid = min + (n - min) / 2;
                if mid != min && mid != n {
                    out.push(value[..mid].to_vec());
                }
                if n - 1 != min && n - 1 != mid {
                    out.push(value[..n - 1].to_vec());
                }
                out
            }
        }
    }

    pub mod num {
        pub mod f64 {
            use crate::Strategy;
            use rand::RngCore;

            /// Any `f64` bit pattern: finite values, infinities and NaNs.
            /// Does not shrink — there is no meaningful "simpler" ordering
            /// over arbitrary bit patterns.
            #[derive(Clone, Copy, Debug)]
            pub struct Any;

            #[allow(non_upper_case_globals)]
            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = f64;
                fn generate(&self, rng: &mut dyn RngCore) -> f64 {
                    f64::from_bits(rng.next_u64())
                }
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Macro plumbing — builds the deterministic per-test RNG.
#[doc(hidden)]
pub fn __test_rng(test_name: &str) -> ChaCha12Rng {
    let seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x_c0ff_ee00_2006);
    // Mix the test name in so sibling tests see different streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in test_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    ChaCha12Rng::seed_from_u64(h)
}

/// Macro plumbing — the effective case count for one `proptest!` block.
///
/// `VCOORD_PROPTEST_CASES` scales every suite *proportionally*: its value
/// is the case count a default-config (256-case) suite should run, and a
/// block configured `with_cases(n)` runs `⌈n · target / 256⌉` cases. CI's
/// elevated-effort job sets it high without turning the deliberately-small
/// whole-simulation suites into hour-long runs.
#[doc(hidden)]
pub fn __resolve_cases(base: u32) -> u32 {
    match std::env::var("VCOORD_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(target) => (((base as u64) * target).div_ceil(256)).clamp(1, u32::MAX as u64) as u32,
        None => base,
    }
}

/// Macro plumbing — the bounded shrink search.
///
/// Starting from a failing `initial` value, repeatedly asks `strategy` for
/// simplification candidates and greedily steps to the first candidate that
/// still fails `check` (returns `Err` with its panic payload), until no
/// candidate fails or [`SHRINK_BUDGET`] evaluations are spent. Returns the
/// simplest failing value reached, the number of candidate evaluations, and
/// the payload of its failure (`None` when no shrink step succeeded, i.e.
/// the initial failure is already minimal or un-shrinkable).
#[doc(hidden)]
#[allow(clippy::type_complexity)]
pub fn __shrink<S: Strategy>(
    strategy: &S,
    initial: S::Value,
    mut check: impl FnMut(&S::Value) -> Result<(), Box<dyn std::any::Any + Send>>,
) -> (S::Value, usize, Option<Box<dyn std::any::Any + Send>>) {
    let mut current = initial;
    let mut payload = None;
    let mut steps = 0usize;
    'search: loop {
        let mut progressed = false;
        for cand in strategy.shrink(&current) {
            if steps >= SHRINK_BUDGET {
                break 'search;
            }
            steps += 1;
            if let Err(p) = check(&cand) {
                payload = Some(p);
                current = cand;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    (current, steps, payload)
}

/// Macro plumbing — serializes shrink searches process-wide.
///
/// The shrink loop swaps the *global* panic hook for a silent one
/// (candidate evaluations panic on purpose, and hundreds of backtrace
/// dumps would bury the report). Hook state is process-global, so two
/// concurrently-failing property tests swapping it unguarded could each
/// save the other's silent hook as "previous" and leave the process mute.
/// Holding this lock across the whole save → search → restore window makes
/// the swap atomic; the one residual global effect — an unrelated,
/// non-proptest panic inside someone else's shrink window prints no hook
/// output — is inherent to `std::panic::set_hook` and bounded by the
/// [`SHRINK_BUDGET`].
#[doc(hidden)]
pub fn __shrink_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    // A poisoned lock just means another shrink search panicked while
    // reporting; the hook state it protects is still coherent.
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// The main test-definition macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
///
/// On failure the generated inputs are shrunk (see [`__shrink`]) with the
/// default panic hook silenced for the duration of the search — candidate
/// evaluations panic on purpose, and hundreds of backtrace dumps would bury
/// the report — then the minimal counterexample is printed and the panic
/// payload of its failure re-raised.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    (@items ($cfg:expr) ) => {};
    (@items ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            // Keeps `.prop_map(...)`-style strategy expressions working at
            // call sites that did not import the trait themselves.
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let cases = $crate::__resolve_cases(config.cases);
            let mut rng = $crate::__test_rng(concat!(module_path!(), "::", stringify!($name)));
            // One tuple strategy over all arguments: generation draws in
            // the same per-argument order as before (stream-compatible),
            // and the tuple's component-wise shrink drives the search.
            let __strategy = ($($strat,)+);
            for case in 0..cases {
                let ($($arg,)+) = $crate::Strategy::generate(&__strategy, &mut rng);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(payload) = result {
                    // Shrink: re-run the body on simplification candidates,
                    // hook silenced (candidate panics are expected). Same
                    // greedy bounded search as [`__shrink`], inlined so the
                    // candidate tuple type stays concrete for the compiler.
                    let mut __current = ($($arg,)+);
                    let mut __payload = payload;
                    let mut __steps = 0usize;
                    let __guard = $crate::__shrink_guard();
                    let __prev_hook = std::panic::take_hook();
                    std::panic::set_hook(Box::new(|_| {}));
                    '__shrink: loop {
                        let mut __progressed = false;
                        for __cand in $crate::Strategy::shrink(&__strategy, &__current) {
                            if __steps >= $crate::SHRINK_BUDGET {
                                break '__shrink;
                            }
                            __steps += 1;
                            let __result = {
                                let ($($arg,)+) = ::std::clone::Clone::clone(&__cand);
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                                    $(let $arg = $arg.clone();)+
                                    $body
                                }))
                            };
                            if let Err(__p) = __result {
                                __payload = __p;
                                __current = __cand;
                                __progressed = true;
                                break;
                            }
                        }
                        if !__progressed {
                            break;
                        }
                    }
                    std::panic::set_hook(__prev_hook);
                    drop(__guard);
                    eprintln!(
                        "proptest case {}/{} failed; minimal counterexample after {} shrink step(s):",
                        case + 1,
                        cases,
                        __steps,
                    );
                    let ($($arg,)+) = __current;
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    std::panic::resume_unwind(__payload);
                }
            }
        }
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, usize)> {
        (0.0f64..1.0, 1usize..10).prop_map(|(a, b)| (a * 2.0, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn mapped_strategy_applies(p in pair()) {
            prop_assert!(p.0 < 2.0);
            prop_assert!(p.1 >= 1);
        }

        #[test]
        fn any_f64_generates(bits in prop::num::f64::ANY) {
            // No constraint — just exercise NaN/inf handling.
            let _ = bits;
            prop_assert!(true);
        }
    }

    #[test]
    fn deterministic_given_same_seed() {
        use crate::Strategy as _;
        let a: Vec<u64> = (0..8)
            .map(|_| (0u64..1000).generate(&mut crate::__test_rng("t")))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| (0u64..1000).generate(&mut crate::__test_rng("t")))
            .collect();
        assert_eq!(a, b);
    }

    // ---- shrinking ------------------------------------------------------

    #[test]
    fn int_shrink_candidates_bisect_toward_low_bound() {
        use crate::Strategy as _;
        let s = 0u64..1000;
        assert_eq!(s.shrink(&0), vec![], "the bound itself is minimal");
        assert_eq!(s.shrink(&1), vec![0], "no distinct mid/prev at 1");
        assert_eq!(s.shrink(&700), vec![0, 350, 699]);
        let inc = 10i64..=20;
        assert_eq!(inc.shrink(&20), vec![10, 15, 19]);
    }

    #[test]
    fn float_shrink_candidates_bisect() {
        use crate::Strategy as _;
        let s = -2.0f64..2.0;
        assert_eq!(s.shrink(&-2.0), vec![]);
        assert_eq!(s.shrink(&2.0), vec![-2.0, 0.0]);
    }

    #[test]
    fn vec_shrink_is_prefixes_down_to_min_len() {
        use crate::Strategy as _;
        let s = prop::collection::vec(0u64..100, 2..6);
        let v = vec![9, 8, 7, 6, 5];
        let shrunk = s.shrink(&v);
        assert_eq!(shrunk, vec![vec![9, 8], vec![9, 8, 7], vec![9, 8, 7, 6]]);
        assert_eq!(s.shrink(&vec![9, 8]), Vec::<Vec<u64>>::new());
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        use crate::Strategy as _;
        let s = (0u64..100, 0u64..100);
        let shrunk = s.shrink(&(4, 6));
        assert!(shrunk.contains(&(0, 6)));
        assert!(shrunk.contains(&(2, 6)));
        assert!(shrunk.contains(&(4, 0)));
        assert!(shrunk.contains(&(4, 3)));
        assert!(shrunk.iter().all(|&(a, b)| a == 4 || b == 6));
    }

    #[test]
    fn shrink_search_finds_the_exact_boundary() {
        // The property "v < 37" fails for any v >= 37; starting from a
        // large failing value the search must land on exactly 37 — the
        // minimal counterexample — thanks to the v-1 candidate.
        let strategy = 0u64..1000;
        let (minimal, steps, payload) = crate::__shrink(&strategy, 700, |v| {
            if *v >= 37 {
                Err(Box::new(format!("failed at {v}")))
            } else {
                Ok(())
            }
        });
        assert_eq!(minimal, 37, "expected the exact boundary");
        assert!(steps > 0 && steps <= crate::SHRINK_BUDGET);
        let msg = payload.unwrap().downcast::<String>().unwrap();
        assert_eq!(*msg, "failed at 37");
    }

    #[test]
    fn shrink_search_respects_budget_and_unshrinkable_values() {
        // A strategy with no shrink candidates terminates immediately and
        // keeps the original value and payload slot empty.
        let strategy = prop::num::f64::ANY;
        let (minimal, steps, payload) =
            crate::__shrink(&strategy, 1.5, |_| Err(Box::new("always fails")));
        assert_eq!(minimal, 1.5);
        assert_eq!(steps, 0);
        assert!(payload.is_none());
    }

    // A deliberately-failing property compiled WITHOUT #[test]: the
    // end-to-end proof that the macro reports a shrunk counterexample. The
    // real test below invokes it under catch_unwind and asserts the panic
    // payload names the minimal failing input (37), not whatever oversized
    // value the generator happened to produce first.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn deliberately_failing_property(x in 0u64..1000) {
            prop_assert!(x < 37, "x = {}", x);
        }
    }

    #[test]
    fn failing_property_reports_shrunk_counterexample() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the seed failure
        let result = std::panic::catch_unwind(deliberately_failing_property);
        std::panic::set_hook(prev);
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast::<String>()
            .expect("prop_assert! message payload");
        assert_eq!(
            *msg, "x = 37",
            "the reported counterexample must be the shrunk minimum"
        );
    }

    #[test]
    fn env_knob_scales_cases_proportionally() {
        // Pure function check (the env var itself is CI-owned; mutating
        // process env in a parallel test harness is a race).
        assert_eq!(crate::__resolve_cases(256), 256);
        // Scaling math via the internal formula at a hypothetical target is
        // covered by construction: ⌈6·1024/256⌉ = 24, ⌈256·1024/256⌉ = 1024.
        assert_eq!((6u64 * 1024).div_ceil(256), 24);
        assert_eq!((256u64 * 1024).div_ceil(256), 1024);
    }
}
