//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset used by `tests/properties.rs`: the [`Strategy`]
//! trait with `prop_map`, range / tuple / `prop::collection::vec` /
//! `prop::num::f64::ANY` strategies, [`ProptestConfig::with_cases`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros. Cases are
//! generated from a deterministic ChaCha12 stream (override the seed with
//! `PROPTEST_SEED`); there is **no shrinking** — a failing case panics with
//! the generated inputs in the message instead.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A generator of test-case values.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut dyn RngCore) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut dyn RngCore) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut dyn RngCore) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut dyn RngCore) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}
numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*}
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy sub-modules mirroring `proptest::prop`.
pub mod prop {
    pub mod collection {
        use super::super::Strategy;
        use rand::{Rng, RngCore};

        /// Accepted by [`vec()`] as a length specification.
        pub trait IntoSizeRange {
            fn pick_len(&self, rng: &mut dyn RngCore) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick_len(&self, _rng: &mut dyn RngCore) -> usize {
                *self
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn pick_len(&self, rng: &mut dyn RngCore) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn pick_len(&self, rng: &mut dyn RngCore) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// A strategy for `Vec<T>` with element strategy `element` and a
        /// fixed or ranged length.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
                let n = self.len.pick_len(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod num {
        pub mod f64 {
            use crate::Strategy;
            use rand::RngCore;

            /// Any `f64` bit pattern: finite values, infinities and NaNs.
            #[derive(Clone, Copy, Debug)]
            pub struct Any;

            #[allow(non_upper_case_globals)]
            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = f64;
                fn generate(&self, rng: &mut dyn RngCore) -> f64 {
                    f64::from_bits(rng.next_u64())
                }
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Macro plumbing — builds the deterministic per-test RNG.
#[doc(hidden)]
pub fn __test_rng(test_name: &str) -> ChaCha12Rng {
    let seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x_c0ff_ee00_2006);
    // Mix the test name in so sibling tests see different streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in test_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    ChaCha12Rng::seed_from_u64(h)
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// The main test-definition macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    (@items ($cfg:expr) ) => {};
    (@items ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::__test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = ($strat).generate(&mut rng);)+
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {}/{} failed for inputs:",
                        case + 1,
                        config.cases
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, usize)> {
        (0.0f64..1.0, 1usize..10).prop_map(|(a, b)| (a * 2.0, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn mapped_strategy_applies(p in pair()) {
            prop_assert!(p.0 < 2.0);
            prop_assert!(p.1 >= 1);
        }

        #[test]
        fn any_f64_generates(bits in prop::num::f64::ANY) {
            // No constraint — just exercise NaN/inf handling.
            let _ = bits;
            prop_assert!(true);
        }
    }

    #[test]
    fn deterministic_given_same_seed() {
        use crate::Strategy as _;
        let a: Vec<u64> = (0..8)
            .map(|_| (0u64..1000).generate(&mut crate::__test_rng("t")))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| (0u64..1000).generate(&mut crate::__test_rng("t")))
            .collect();
        assert_eq!(a, b);
    }
}
