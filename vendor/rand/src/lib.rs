//! Offline vendored stand-in for `rand` 0.8.
//!
//! API-compatible subset of the `rand` crate covering exactly what the
//! `vcoord` workspace uses: the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`, `sample_iter`), [`SeedableRng`], uniform range sampling over
//! integer and float ranges, [`seq::SliceRandom`] (`shuffle` / `choose`),
//! [`distributions::Standard`], and [`rngs::StdRng`].
//!
//! Like upstream, `StdRng` is ChaCha12 under the hood and is *not* promised
//! stable across versions; reproducible streams must use
//! `rand_chacha::ChaCha12Rng` (which `vcoord_netsim::SeedStream` does).

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions {
    use crate::RngCore;

    /// A sampling distribution over values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over all values of the type
    /// (floats: uniform in `[0, 1)`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*}
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits → uniform in [0, 1), the standard conversion.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Iterator returned by [`crate::Rng::sample_iter`].
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _phantom: core::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }

    /// Uniform sampling from a range expression, as accepted by
    /// [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    // Multiply-shift (Lemire) keeps bias at ~span/2^64.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start.wrapping_add(hi as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    lo.wrapping_add(v as $t)
                }
            }
        )*}
    }
    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit: $t = Standard.sample(rng);
                    self.start + (self.end - self.start) * unit
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let unit: $t = Standard.sample(rng);
                    lo + (hi - lo) * unit
                }
            }
        )*}
    }
    range_float!(f32, f64);
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        let unit: f64 = self.gen();
        unit < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// An endless iterator of samples, consuming the RNG.
    fn sample_iter<T, D: distributions::Distribution<T>>(
        self,
        distr: D,
    ) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter {
            distr,
            rng: self,
            _phantom: core::marker::PhantomData,
        }
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::Rng;

    /// Slice shuffling and random element choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high-to-low, matching upstream's element order
            // guarantees (every permutation equiprobable).
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let idx = rng.gen_range(0..self.len());
                Some(&mut self[idx])
            }
        }
    }
}

pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// The default general-purpose RNG: ChaCha12, like upstream `rand` 0.8.
    #[derive(Clone, Debug)]
    pub struct StdRng(rand_chacha::ChaCha12Rng);

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(rand_chacha::ChaCha12Rng::from_seed(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25f64..1.5);
            assert!((0.25..1.5).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_domain_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 gave {hits}/100000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([42u8].choose(&mut rng).is_some());
    }

    #[test]
    fn standard_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((0.49..0.51).contains(&mean), "uniform mean {mean} not ~0.5");
    }

    #[test]
    fn sample_iter_replays() {
        let a: Vec<u32> = StdRng::seed_from_u64(7)
            .sample_iter(crate::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = StdRng::seed_from_u64(7)
            .sample_iter(crate::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }
}
