//! Offline vendored stand-in for `criterion`.
//!
//! Compile-compatible with the subset of the Criterion 0.5 API used by the
//! workspace benches (`bench_function`, `benchmark_group`, `iter`,
//! `iter_batched`, the group/config builders, and the two macros). Instead of
//! Criterion's statistical machinery it runs a short calibrated loop and
//! prints mean, median, trimmed mean, p95, min, and max wall-clock time per
//! iteration (everything but the mean comes from per-batch timings) —
//! enough to compare hot paths while offline. The raw mean is kept for
//! continuity but is the *least* robust column: a single slow batch (page
//! fault, scheduler preemption) drags it while leaving the median and
//! trimmed mean untouched, so paired kernels can show inverted means with
//! agreeing medians. Compare `trimmed_mean_s` (20 % symmetric trim) or
//! `median_s`/`p95_s` instead (see vendor/README.md).
//! When the `VCOORD_BENCH_JSON` environment variable
//! is set to a non-empty value, each benchmark additionally emits one JSON
//! line (`{"benchmark": ..., "mean_s": ...}`) on stdout so external
//! harnesses (CI jobs, ad-hoc scripts) can scrape `cargo bench` output
//! into perf baselines without parsing the human-readable table. Swapping
//! in real Criterion later is a manifest-only change (see
//! `vendor/README.md`).

use std::time::{Duration, Instant};

/// Environment variable enabling one machine-readable JSON line per
/// benchmark on stdout.
pub const JSON_ENV: &str = "VCOORD_BENCH_JSON";

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stub runs one routine call
/// per setup call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    pub sample_size: usize,
    pub measurement_time: Duration,
    pub warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Real Criterion parses CLI flags here; the stub accepts and ignores
    /// them (`cargo bench` passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), self.measurement_time, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.measurement_time, f);
        self
    }

    pub fn finish(self) {}
}

/// One measurement: total work plus the per-iteration seconds observed in
/// each timed batch (the sample set behind median/min/max).
struct Report {
    total_iters: u64,
    total_time: Duration,
    batch_samples: Vec<f64>,
}

/// Passed to each benchmark closure; drives the timed loop.
pub struct Bencher {
    budget: Duration,
    report: Option<Report>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: double the batch until it costs ≥ ~1/8 of the budget.
        let mut batch: u64 = 1;
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        let mut batch_samples = Vec::new();
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total_iters += batch;
            total_time += elapsed;
            batch_samples.push(elapsed.as_secs_f64() / batch as f64);
            if total_time >= self.budget || total_iters >= 1 << 24 {
                break;
            }
            if elapsed < self.budget / 8 {
                batch = batch.saturating_mul(2);
            }
        }
        self.report = Some(Report {
            total_iters,
            total_time,
            batch_samples,
        });
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        let mut batch_samples = Vec::new();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            total_time += elapsed;
            total_iters += 1;
            batch_samples.push(elapsed.as_secs_f64());
            if total_time >= self.budget || total_iters >= 1 << 16 {
                break;
            }
        }
        self.report = Some(Report {
            total_iters,
            total_time,
            batch_samples,
        });
    }
}

/// Symmetrically trimmed mean of an ascending-sorted sample set: drop 10 %
/// of samples at each end (20 % total) and average the middle. With fewer
/// than 10 samples nothing can be trimmed and this is the plain mean.
pub fn trimmed_mean(sorted: &[f64]) -> f64 {
    let cut = sorted.len() / 10;
    let kept = &sorted[cut..sorted.len() - cut];
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// The `q`-quantile (nearest-rank) of an ascending-sorted sample set.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, budget: Duration, mut f: F) {
    let mut b = Bencher {
        budget,
        report: None,
    };
    f(&mut b);
    match b.report {
        Some(r) if r.total_iters > 0 && !r.batch_samples.is_empty() => {
            let mean = r.total_time.as_secs_f64() / r.total_iters as f64;
            let mut sorted = r.batch_samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            let median = sorted[sorted.len() / 2];
            let trimmed = trimmed_mean(&sorted);
            let p95 = quantile(&sorted, 0.95);
            let min = sorted[0];
            let max = sorted[sorted.len() - 1];
            println!(
                "{id:<48} {:>10} iters   mean {mean:>10.3e}  median {median:>10.3e}  trimmed {trimmed:>10.3e}  p95 {p95:>10.3e}  min {min:>10.3e}  max {max:>10.3e}  s/iter",
                r.total_iters
            );
            if std::env::var(JSON_ENV).is_ok_and(|v| !v.is_empty()) {
                println!(
                    "{{\"benchmark\":\"{}\",\"mean_s\":{mean:e},\"median_s\":{median:e},\"trimmed_mean_s\":{trimmed:e},\"p95_s\":{p95:e},\"min_s\":{min:e},\"max_s\":{max:e},\"iters\":{}}}",
                    id.replace('\\', "\\\\").replace('"', "\\\""),
                    r.total_iters
                );
            }
        }
        _ => println!("{id:<48} (no measurement)"),
    }
}

/// Define a group function that runs each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function(format!("{}", 2), |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }

    criterion_group!(plain, target);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5)).warm_up_time(Duration::from_millis(1));
        targets = target
    }

    #[test]
    fn groups_run() {
        plain();
        configured();
    }

    #[test]
    fn reports_carry_batch_samples() {
        let mut b = Bencher {
            budget: Duration::from_millis(2),
            report: None,
        };
        b.iter(|| 21 * 2);
        let r = b.report.expect("iter sets a report");
        assert!(r.total_iters > 0);
        assert!(!r.batch_samples.is_empty());
        // Per-batch per-iteration samples are non-negative and finite.
        assert!(r.batch_samples.iter().all(|s| s.is_finite() && *s >= 0.0));

        let mut b2 = Bencher {
            budget: Duration::from_millis(2),
            report: None,
        };
        b2.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        let r2 = b2.report.expect("iter_batched sets a report");
        assert_eq!(r2.total_iters as usize, r2.batch_samples.len());
    }

    #[test]
    fn trimmed_mean_discards_outlier_tails() {
        // One wild outlier per tail: the raw mean moves, the trimmed mean
        // stays at the bulk's value — the exact mean-inversion hazard the
        // robust columns exist for.
        let sorted = [0.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 1000.0];
        assert_eq!(trimmed_mean(&sorted), 5.0);
        let raw = sorted.iter().sum::<f64>() / sorted.len() as f64;
        assert!(raw > 100.0);
        // Fewer than 10 samples: nothing trimmed, plain mean.
        assert_eq!(trimmed_mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(quantile(&sorted, 0.0), 1.0);
        assert_eq!(quantile(&sorted, 1.0), 10.0);
        assert_eq!(quantile(&sorted, 0.95), 10.0);
        assert_eq!(quantile(&sorted, 0.5), 6.0);
    }
}
