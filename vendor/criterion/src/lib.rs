//! Offline vendored stand-in for `criterion`.
//!
//! Compile-compatible with the subset of the Criterion 0.5 API used by the
//! workspace benches (`bench_function`, `benchmark_group`, `iter`,
//! `iter_batched`, the group/config builders, and the two macros). Instead of
//! Criterion's statistical machinery it runs a short calibrated loop and
//! prints mean wall-clock time per iteration — enough to compare hot paths
//! order-of-magnitude while offline. Swapping in real Criterion later is a
//! manifest-only change (see `vendor/README.md`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stub runs one routine call
/// per setup call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    pub sample_size: usize,
    pub measurement_time: Duration,
    pub warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Real Criterion parses CLI flags here; the stub accepts and ignores
    /// them (`cargo bench` passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), self.measurement_time, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.measurement_time, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed loop.
pub struct Bencher {
    budget: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: double the batch until it costs ≥ ~1/8 of the budget.
        let mut batch: u64 = 1;
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total_iters += batch;
            total_time += elapsed;
            if total_time >= self.budget || total_iters >= 1 << 24 {
                break;
            }
            if elapsed < self.budget / 8 {
                batch = batch.saturating_mul(2);
            }
        }
        self.report = Some((total_iters, total_time));
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_time += start.elapsed();
            total_iters += 1;
            if total_time >= self.budget || total_iters >= 1 << 16 {
                break;
            }
        }
        self.report = Some((total_iters, total_time));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, budget: Duration, mut f: F) {
    let mut b = Bencher {
        budget,
        report: None,
    };
    f(&mut b);
    match b.report {
        Some((iters, time)) if iters > 0 => {
            let per = time.as_secs_f64() / iters as f64;
            println!("{id:<48} {:>12} iters   {per:>12.3e} s/iter", iters);
        }
        _ => println!("{id:<48} (no measurement)"),
    }
}

/// Define a group function that runs each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function(format!("{}", 2), |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }

    criterion_group!(plain, target);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5)).warm_up_time(Duration::from_millis(1));
        targets = target
    }

    #[test]
    fn groups_run() {
        plain();
        configured();
    }
}
