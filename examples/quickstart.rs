//! Quickstart: build a Vivaldi coordinate system on a synthetic Internet
//! topology, let it converge, and use the coordinates to predict latencies.
//!
//! ```text
//! cargo run --release --example quickstart [-- --nodes N --seed S]
//! ```

use vcoord::prelude::*;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    vcoord::netsim::simlog::init();
    let nodes: usize = arg("--nodes", 200);
    let seed: u64 = arg("--seed", 2006);

    // 1. A King-like latency substrate (see DESIGN.md for the synthesis
    //    model; use `vcoord::topo::king::load_file` for the real data set).
    let seeds = SeedStream::new(seed);
    let matrix =
        KingLike::new(KingLikeConfig::with_nodes(nodes)).generate(&mut seeds.rng("topology"));
    let stats = TopoStats::analyze(&matrix, 20_000, &mut seeds.rng("stats"));
    println!("topology: {stats}");

    // 2. A Vivaldi system with the paper's parameters (2-D, Cc = 0.25,
    //    64 springs of which 32 near).
    let mut sim = VivaldiSim::new(matrix, VivaldiConfig::default(), &seeds);

    // 3. Converge: watch the average relative error settle.
    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    println!("\n tick   avg relative error");
    for _ in 0..10 {
        sim.run_ticks(30);
        let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        println!("{:5}   {:.4}", sim.now_ticks(), err);
    }

    // 4. Predict a few latencies from coordinates alone.
    println!("\npair        actual     predicted   rel.err");
    let mut rng = seeds.rng("pairs");
    for _ in 0..8 {
        let i = rand::Rng::gen_range(&mut rng, 0..nodes);
        let mut j = rand::Rng::gen_range(&mut rng, 0..nodes);
        while j == i {
            j = rand::Rng::gen_range(&mut rng, 0..nodes);
        }
        let actual = sim.matrix().rtt(i, j);
        let predicted = sim.space().distance(&sim.coords()[i], &sim.coords()[j]);
        println!(
            "{i:4}-{j:<4}  {actual:7.1} ms  {predicted:7.1} ms   {:.3}",
            relative_error(actual, predicted)
        );
    }
    println!(
        "\nWith coordinates, any of the {} × {} distances can be predicted",
        nodes, nodes
    );
    println!("without further probing — which is exactly why attacking the");
    println!("coordinate system (see the other examples) is so damaging.");
}
