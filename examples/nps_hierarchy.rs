//! Build the NPS hierarchy (landmarks, reference layers, membership
//! server), converge it, then attack it with the security mechanism on or
//! off.
//!
//! ```text
//! cargo run --release --example nps_hierarchy -- \
//!     [--layers 3] [--nodes 300] [--seed 2006] \
//!     [--attack none|disorder|antidetect|sophisticated|collusion] \
//!     [--malicious 0.2] [--security on|off]
//! ```

use vcoord::knowledge::Knowledge;

use vcoord::prelude::*;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    vcoord::netsim::simlog::init();
    let layers: usize = arg("--layers", 3);
    let nodes: usize = arg("--nodes", 300);
    let seed: u64 = arg("--seed", 2006);
    let attack: String = arg("--attack", "disorder".to_string());
    let fraction: f64 = arg("--malicious", 0.2);
    let security: String = arg("--security", "on".to_string());

    let seeds = SeedStream::new(seed);
    let matrix =
        KingLike::new(KingLikeConfig::with_nodes(nodes)).generate(&mut seeds.rng("topology"));
    let mut config = NpsConfig::with_layers(layers);
    config.security = security == "on";

    let mut sim = NpsSim::new(matrix, config, &seeds);
    println!(
        "hierarchy ({} nodes, {} layers, security {security}):",
        nodes, layers
    );
    for l in 0..layers {
        let count = sim.layers_of().iter().filter(|&&x| x as usize == l).count();
        let role = match l {
            0 => "permanent landmarks",
            x if x == layers - 1 => "ordinary nodes",
            _ => "reference points (20%)",
        };
        println!("  layer {l}: {count:4} nodes — {role}");
    }

    // Converge.
    sim.run_rounds(25);
    let plan = EvalPlan::new(&sim.eval_nodes(), &mut seeds.rng("plan"));
    let clean = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
    println!(
        "\nconverged after {} rounds: avg relative error {clean:.3}",
        sim.now_rounds()
    );
    for l in 1..layers as u8 {
        let nodes_l = sim.eval_nodes_in_layer(l);
        let plan_l = EvalPlan::new(&nodes_l, &mut seeds.rng("plan-layer"));
        let err = plan_l.avg_error(sim.coords(), sim.space(), sim.matrix());
        println!("  layer {l}: {err:.3}");
    }

    if attack == "none" {
        return;
    }

    // Attack.
    let attackers = sim.pick_attackers(fraction);
    let adversary: Box<dyn AttackStrategy> = match attack.as_str() {
        "disorder" => Box::new(NpsSimpleDisorder::default()),
        "antidetect" => Box::new(NpsAntiDetection::naive(Knowledge::half())),
        "sophisticated" => Box::new(NpsAntiDetection::sophisticated(Knowledge::half())),
        "collusion" => Box::new(NpsCollusionIsolation::new(0.2)),
        other => {
            eprintln!("unknown attack {other:?}");
            std::process::exit(2);
        }
    };
    println!(
        "\ninjecting {} {attack} attackers ({}%)...",
        attackers.len(),
        (fraction * 100.0) as u32
    );
    let ledger_before = sim.ledger();
    sim.inject_adversary(&attackers, adversary);

    let plan = EvalPlan::new(&sim.eval_nodes(), &mut seeds.rng("plan-post"));
    println!("\nround   avg err   ratio");
    for _ in 0..8 {
        sim.run_rounds(5);
        let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        println!("{:5}  {err:8.3}  {:6.2}×", sim.now_rounds(), err / clean);
    }

    let ledger = sim.ledger();
    let caught = ledger.filtered_malicious - ledger_before.filtered_malicious;
    let blamed = ledger.filtered_honest - ledger_before.filtered_honest;
    let threshold = sim.threshold_ledger().total();
    println!(
        "\nsecurity filter: {caught} malicious + {blamed} honest references eliminated \
         ({} threshold bans)",
        threshold
    );
    if caught + blamed > 0 {
        println!(
            "true-positive share: {:.0}% (figures 20/22 of the paper)",
            100.0 * caught as f64 / (caught + blamed) as f64
        );
    }
}
