//! Inject any of the paper's Vivaldi attacks into a converged system and
//! watch the accuracy degrade, with smoltcp-style benign fault injection
//! available on the same probes.
//!
//! ```text
//! cargo run --release --example vivaldi_attack_demo -- \
//!     [--attack disorder|repulsion|collusion|lure|combined] \
//!     [--malicious 0.3] [--nodes 300] [--seed 2006] \
//!     [--loss 0.0] [--jitter 0.0]
//! ```

use vcoord::prelude::*;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    values
        .iter()
        .map(|v| BARS[((v / max) * 7.0).round().clamp(0.0, 7.0) as usize])
        .collect()
}

fn main() {
    vcoord::netsim::simlog::init();
    let attack: String = arg("--attack", "disorder".to_string());
    let fraction: f64 = arg("--malicious", 0.3);
    let nodes: usize = arg("--nodes", 300);
    let seed: u64 = arg("--seed", 2006);
    let loss: f64 = arg("--loss", 0.0);
    let jitter: f64 = arg("--jitter", 0.0);

    let seeds = SeedStream::new(seed);
    let matrix =
        KingLike::new(KingLikeConfig::with_nodes(nodes)).generate(&mut seeds.rng("topology"));
    let config = VivaldiConfig {
        link: LinkModel {
            loss,
            jitter_ms: jitter,
        },
        ..VivaldiConfig::default()
    };
    let mut sim = VivaldiSim::new(matrix, config, &seeds);

    // Clean convergence.
    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    let mut series = Vec::new();
    for _ in 0..15 {
        sim.run_ticks(20);
        series.push(plan.avg_error(sim.coords(), sim.space(), sim.matrix()));
    }
    let clean = *series.last().expect("non-empty");
    println!(
        "converged: avg relative error {clean:.3} after {} ticks",
        sim.now_ticks()
    );

    // Injection.
    let attackers = sim.pick_attackers(fraction);
    let adversary: Box<dyn AttackStrategy> = match attack.as_str() {
        "disorder" => Box::new(VivaldiDisorder::default()),
        "repulsion" => Box::new(VivaldiRepulsion::default()),
        "collusion" => Box::new(VivaldiCollusionRepel::new(10_000.0)),
        "lure" => Box::new(VivaldiCollusionLure::new(10_000.0)),
        "combined" => Box::new(VivaldiCombined::new()),
        other => {
            eprintln!("unknown attack {other:?} (disorder|repulsion|collusion|lure|combined)");
            std::process::exit(2);
        }
    };
    println!(
        "injecting {} {attack} attackers ({}% of {} nodes) at tick {}...\n",
        attackers.len(),
        (fraction * 100.0) as u32,
        nodes,
        sim.now_ticks()
    );
    sim.inject_adversary(&attackers, adversary);

    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan2"));
    let mut attacked = Vec::new();
    println!(" tick   avg err   ratio");
    for _ in 0..15 {
        sim.run_ticks(20);
        let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        attacked.push(err);
        println!("{:5}  {err:8.2}  {:7.1}×", sim.now_ticks(), err / clean);
    }

    println!("\nclean    {}", sparkline(&series));
    println!("attacked {}", sparkline(&attacked));
    let c = sim.counters();
    println!(
        "\nprobes={} lies={} lost={} (loss={loss}, jitter={jitter}ms)",
        c.probes_sent, c.lies_served, c.probes_lost
    );
}
