//! Inspect the latency substrate: synthesize the King-equivalent topology
//! (or load the real King matrix) and print its distributional fingerprint,
//! the statistics the substitution in DESIGN.md is calibrated against.
//!
//! ```text
//! cargo run --release --example topology_explorer -- \
//!     [--nodes 1740] [--seed 2006] [--king path/to/king.matrix] \
//!     [--unit us|ms] [--subset N]
//! ```

use vcoord::prelude::*;
use vcoord::topo::king::{load_file, RttUnit};

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn histogram(matrix: &RttMatrix, buckets: usize, width: usize) {
    let mut vals: Vec<f64> = matrix.pairs().map(|(_, _, v)| v).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let max = *vals.last().expect("non-empty");
    let mut counts = vec![0usize; buckets];
    for v in &vals {
        let b = ((v / max) * (buckets as f64 - 1.0)) as usize;
        counts[b] += 1;
    }
    let peak = *counts.iter().max().expect("non-empty") as f64;
    println!("\nRTT distribution ({} pairs):", vals.len());
    for (b, &c) in counts.iter().enumerate() {
        let lo = max * b as f64 / buckets as f64;
        let hi = max * (b + 1) as f64 / buckets as f64;
        let bar = "#".repeat(((c as f64 / peak) * width as f64).round() as usize);
        println!("{lo:7.0}-{hi:<7.0} ms |{bar}");
    }
}

fn main() {
    vcoord::netsim::simlog::init();
    let nodes: usize = arg("--nodes", 1740);
    let seed: u64 = arg("--seed", 2006);
    let king_path: String = arg("--king", String::new());
    let unit: String = arg("--unit", "us".to_string());
    let subset: usize = arg("--subset", 0);

    let seeds = SeedStream::new(seed);
    let mut matrix = if king_path.is_empty() {
        println!("synthesizing King-equivalent topology ({nodes} nodes, seed {seed})...");
        KingLike::new(KingLikeConfig::with_nodes(nodes)).generate(&mut seeds.rng("topology"))
    } else {
        let unit = if unit == "ms" {
            RttUnit::Millis
        } else {
            RttUnit::Micros
        };
        println!("loading {king_path} ({unit:?})...");
        match load_file(&king_path, unit) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("failed to load: {e}");
                std::process::exit(1);
            }
        }
    };

    if subset > 0 {
        matrix = matrix.random_subset(subset, &mut seeds.rng("subset"));
        println!("restricted to a random subset of {} nodes", matrix.len());
    }

    matrix.validate().expect("valid matrix");
    let stats = TopoStats::analyze(&matrix, 100_000, &mut seeds.rng("stats"));
    println!("\n{stats}");
    println!(
        "\ncalibration targets (King, per DESIGN.md): median ≈ 98 ms, heavy right tail,\n\
         a few percent triangle-inequality violations, near pairs under 50 ms present."
    );
    histogram(&matrix, 16, 48);
}
