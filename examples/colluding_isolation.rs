//! The overlay use-case behind the isolation attack: a victim using
//! coordinates for *closest-node selection* (the paper's motivating
//! application) gets steered to an attacker replica after a colluding
//! isolation attack on Vivaldi.
//!
//! ```text
//! cargo run --release --example colluding_isolation -- \
//!     [--strategy repel|lure] [--malicious 0.3] [--nodes 300] [--seed 2006]
//! ```

use vcoord::prelude::*;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The node the victim would pick as "closest" from coordinates, and the
/// true RTT cost of that pick versus the optimum.
fn closest_by_coords(sim: &VivaldiSim, victim: usize) -> (usize, f64, usize, f64) {
    let n = sim.matrix().len();
    let mut best_pred = (usize::MAX, f64::INFINITY);
    let mut best_true = (usize::MAX, f64::INFINITY);
    for j in 0..n {
        if j == victim {
            continue;
        }
        let pred = sim
            .space()
            .distance(&sim.coords()[victim], &sim.coords()[j]);
        let actual = sim.matrix().rtt(victim, j);
        if pred < best_pred.1 {
            best_pred = (j, pred);
        }
        if actual < best_true.1 {
            best_true = (j, actual);
        }
    }
    (
        best_pred.0,
        sim.matrix().rtt(victim, best_pred.0),
        best_true.0,
        best_true.1,
    )
}

fn main() {
    vcoord::netsim::simlog::init();
    let strategy: String = arg("--strategy", "repel".to_string());
    let fraction: f64 = arg("--malicious", 0.3);
    let nodes: usize = arg("--nodes", 300);
    let seed: u64 = arg("--seed", 2006);

    let seeds = SeedStream::new(seed);
    let matrix =
        KingLike::new(KingLikeConfig::with_nodes(nodes)).generate(&mut seeds.rng("topology"));
    let mut sim = VivaldiSim::new(matrix, VivaldiConfig::default(), &seeds);
    sim.run_ticks(250);

    // Pick the victim and measure its clean closest-node choice.
    let attackers = sim.pick_attackers(fraction);
    let victim = (0..nodes)
        .find(|v| !attackers.contains(v))
        .expect("an honest node exists");
    let (pick, pick_rtt, optimal, optimal_rtt) = closest_by_coords(&sim, victim);
    println!("victim node {victim} before the attack:");
    println!(
        "  coordinate-selected neighbour: {pick} ({pick_rtt:.1} ms; true optimum {optimal} at {optimal_rtt:.1} ms)"
    );

    let adversary: Box<dyn AttackStrategy> = match strategy.as_str() {
        "repel" => Box::new(VivaldiCollusionRepel::against(victim, 10_000.0)),
        "lure" => Box::new(VivaldiCollusionLure::against(victim, 10_000.0)),
        other => {
            eprintln!("unknown strategy {other:?} (repel|lure)");
            std::process::exit(2);
        }
    };
    println!(
        "\n{} colluding attackers ({}%) target node {victim} (strategy: {strategy})...",
        attackers.len(),
        (fraction * 100.0) as u32
    );
    sim.inject_adversary(&attackers, adversary);

    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    let victim_idx = plan
        .nodes()
        .iter()
        .position(|&n| n == victim)
        .expect("victim is honest");
    println!("\n tick   victim err   system err");
    for _ in 0..10 {
        sim.run_ticks(30);
        let errs = plan.per_node_errors(sim.coords(), sim.space(), sim.matrix());
        let avg = errs.iter().sum::<f64>() / errs.len() as f64;
        println!(
            "{:5}   {:10.2}   {avg:10.2}",
            sim.now_ticks(),
            errs[victim_idx]
        );
    }

    let (pick, pick_rtt, optimal, optimal_rtt) = closest_by_coords(&sim, victim);
    let malicious_pick = sim.malicious()[pick];
    println!("\nvictim node {victim} after the attack:");
    println!(
        "  coordinate-selected neighbour: {pick} ({pick_rtt:.1} ms{}; true optimum {optimal} at {optimal_rtt:.1} ms)",
        if malicious_pick { ", MALICIOUS" } else { "" }
    );
    println!(
        "  selection penalty: {:.1}× the optimal RTT",
        pick_rtt / optimal_rtt
    );
    if malicious_pick {
        println!("  => the victim now routes through an accomplice (man-in-the-middle position).");
    }
}
