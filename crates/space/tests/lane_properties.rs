//! Property tests pinning the batched SoA distance kernel to its scalar
//! reference: for every dimension, pair count, and slice alignment the
//! dispatched kernel ([`dist_batch`]) must match [`dist_batch_scalar`] and
//! the per-pair [`vector::dist`] oracle bit for bit. This is what licenses
//! routing the figure pipeline's distance reductions through the SIMD path
//! while keeping the golden CSVs byte-identical.
//!
//! [`dist_batch`]: vcoord_space::dist_batch
//! [`dist_batch_scalar`]: vcoord_space::dist_batch_scalar
//! [`vector::dist`]: vcoord_space::vector::dist

use proptest::prelude::*;
use vcoord_space::{dist_batch, dist_batch_scalar, vector};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random shapes and values, including the empty batch, odd remainders
    /// (the SSE2 path handles pairs two at a time with a scalar tail), and
    /// non-finite inputs.
    #[test]
    fn batch_kernel_is_bitwise_equal_to_scalar_and_oracle(
        dim in 1usize..12,
        pairs in 0usize..33,
        fill in prop::collection::vec(-1.0e4f64..1.0e4, 12 * 33 + 12),
        scale in 0.001f64..1000.0,
    ) {
        let a: Vec<f64> = fill[..dim].iter().map(|v| v * scale).collect();
        let rows: Vec<f64> = fill[dim..dim + dim * pairs]
            .iter()
            .map(|v| v * scale)
            .collect();
        let mut out = vec![0.0; pairs];
        let mut out_scalar = vec![0.0; pairs];
        dist_batch(&a, &rows, &mut out);
        dist_batch_scalar(&a, &rows, &mut out_scalar);
        for p in 0..pairs {
            let oracle = vector::dist(&a, &rows[p * dim..(p + 1) * dim]);
            prop_assert_eq!(
                out[p].to_bits(),
                oracle.to_bits(),
                "dispatched kernel diverges at pair {} (dim {})",
                p,
                dim
            );
            prop_assert_eq!(
                out_scalar[p].to_bits(),
                oracle.to_bits(),
                "scalar kernel diverges at pair {} (dim {})",
                p,
                dim
            );
        }
    }

    /// Every alignment: run the kernel on sub-slices starting at each
    /// possible pair offset of one backing allocation, so the output
    /// pointer handed to the unaligned SIMD store cycles through both
    /// 16-byte phases and every remainder length 0..=pairs is exercised.
    #[test]
    fn batch_kernel_is_alignment_invariant(
        dim in 1usize..9,
        pairs in 1usize..17,
        fill in prop::collection::vec(-500.0f64..500.0, 9 * 17 + 9),
    ) {
        let a: Vec<f64> = fill[..dim].to_vec();
        let rows: Vec<f64> = fill[dim..dim + dim * pairs].to_vec();
        let mut whole = vec![0.0; pairs];
        dist_batch(&a, &rows, &mut whole);
        for off in 0..pairs {
            // The same backing buffer, entered at pair `off`: different
            // output alignment, different remainder parity.
            let mut out = vec![0.0; pairs];
            dist_batch(&a, &rows[off * dim..], &mut out[off..]);
            for p in off..pairs {
                prop_assert_eq!(
                    out[p].to_bits(),
                    whole[p].to_bits(),
                    "offset {} diverges at pair {}",
                    off,
                    p
                );
            }
        }
    }
}
