//! Property tests pinning the allocation-free Simplex kernel to the
//! retained oracle: on random quadratics and Rosenbrock starts the two must
//! agree on the returned point (bit for bit), objective value, iteration
//! count, convergence flag, and evaluation count — the guarantee behind the
//! byte-identical figure CSVs — and pinning the warm-start resume seam:
//! a cold-only policy is bitwise-inert, and a warm policy converges to a
//! point within bounded distance of the cold oracle's optimum.

use proptest::prelude::*;
use vcoord_space::simplex::oracle::simplex_downhill_reference;
use vcoord_space::{
    simplex_downhill_resume, simplex_downhill_scratch, ResumePolicy, SimplexOptions, SimplexResult,
    SimplexScratch, SimplexSeed,
};

/// Full bit-level comparison of two runs (panics on divergence, which the
/// vendored proptest stub reports with the generated inputs).
fn assert_identical(new: &SimplexResult, old: &SimplexResult) {
    prop_assert_eq!(new.iterations, old.iterations, "iteration count diverges");
    prop_assert_eq!(new.converged, old.converged, "convergence flag diverges");
    prop_assert_eq!(new.evals, old.evals, "evaluation count diverges");
    prop_assert_eq!(
        new.value.to_bits(),
        old.value.to_bits(),
        "value diverges: {} vs {}",
        new.value,
        old.value
    );
    let new_bits: Vec<u64> = new.point.iter().map(|v| v.to_bits()).collect();
    let old_bits: Vec<u64> = old.point.iter().map(|v| v.to_bits()).collect();
    prop_assert_eq!(new_bits, old_bits, "point diverges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Axis-weighted quadratics of random dimension, center, and start —
    /// the family NPS positioning objectives live in near convergence.
    #[test]
    fn kernel_matches_oracle_on_random_quadratics(
        dim in 1usize..6,
        center in prop::collection::vec(-80.0f64..80.0, 6),
        weights in prop::collection::vec(0.1f64..10.0, 6),
        start in prop::collection::vec(-100.0f64..100.0, 6),
        initial_step in 1.0f64..60.0,
        max_iterations in 20usize..500,
    ) {
        let f = |x: &[f64]| -> f64 {
            x.iter()
                .zip(&center)
                .zip(&weights)
                .map(|((xi, c), w)| w * (xi - c) * (xi - c))
                .sum()
        };
        let opts = SimplexOptions {
            initial_step,
            max_iterations,
            ..SimplexOptions::default()
        };
        let x0 = &start[..dim];
        // Reuse one scratch across two runs: results must not depend on
        // scratch history.
        let mut scratch = SimplexScratch::new();
        let first = simplex_downhill_scratch(f, x0, &opts, &mut scratch);
        let second = simplex_downhill_scratch(f, x0, &opts, &mut scratch);
        let oracle = simplex_downhill_reference(f, x0, &opts);
        assert_identical(&first, &oracle);
        assert_identical(&second, &oracle);
    }

    /// The banana valley exercises long zig-zag trajectories with frequent
    /// contractions and occasional shrinks — the moves where incremental
    /// order maintenance could drift from a full re-sort if it were wrong.
    #[test]
    fn kernel_matches_oracle_on_rosenbrock_starts(
        x0 in -2.0f64..2.0,
        y0 in -1.0f64..3.0,
        initial_step in 0.05f64..2.0,
        max_iterations in 100usize..3000,
    ) {
        let f = |x: &[f64]| -> f64 {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
        };
        let opts = SimplexOptions {
            initial_step,
            max_iterations,
            ..SimplexOptions::default()
        };
        let mut scratch = SimplexScratch::new();
        let new = simplex_downhill_scratch(f, &[x0, y0], &opts, &mut scratch);
        let oracle = simplex_downhill_reference(f, &[x0, y0], &opts);
        assert_identical(&new, &oracle);
    }

    /// Strict mode: a cold-only resume policy makes the resume entry point
    /// bitwise-inert across a whole multi-round sequence — every round of
    /// `simplex_downhill_resume` matches the plain scratch kernel and the
    /// oracle exactly, seed state notwithstanding.
    #[test]
    fn cold_only_resume_is_bitwise_inert_across_rounds(
        dim in 1usize..6,
        center in prop::collection::vec(-80.0f64..80.0, 6),
        drift in prop::collection::vec(-2.0f64..2.0, 6),
        start in prop::collection::vec(-100.0f64..100.0, 6),
        initial_step in 1.0f64..60.0,
        max_iterations in 20usize..400,
    ) {
        let rounds = 1 + max_iterations % 5;
        let opts = SimplexOptions {
            initial_step,
            max_iterations,
            ..SimplexOptions::default()
        };
        let policy = ResumePolicy::always_cold();
        let mut seed = SimplexSeed::new();
        let mut resume_scratch = SimplexScratch::new();
        let mut plain_scratch = SimplexScratch::new();
        let mut x0 = start[..dim].to_vec();
        for round in 0..rounds {
            let c: Vec<f64> = center[..dim]
                .iter()
                .zip(&drift[..dim])
                .map(|(c, d)| c + d * round as f64)
                .collect();
            let f = |x: &[f64]| -> f64 {
                x.iter().zip(&c).map(|(xi, ci)| (xi - ci) * (xi - ci)).sum()
            };
            let resumed = simplex_downhill_resume(
                &f, &x0, &opts, &policy, &mut seed, &mut resume_scratch,
            );
            let plain = simplex_downhill_scratch(&f, &x0, &opts, &mut plain_scratch);
            let oracle = simplex_downhill_reference(f, &x0, &opts);
            assert_identical(&resumed, &plain);
            assert_identical(&resumed, &oracle);
            prop_assert_eq!(seed.warm_streak(), 0, "cold-only policy must never go warm");
            x0 = resumed.point;
        }
    }

    /// Fast mode: warm resumes on a drifting convex objective converge to a
    /// point within bounded distance of the cold oracle's optimum (both
    /// land on the same quadratic bowl; the warm path just pays fewer
    /// evaluations to get there).
    #[test]
    fn warm_resume_converges_within_bounded_distance_of_oracle(
        dim in 1usize..6,
        center in prop::collection::vec(-80.0f64..80.0, 6),
        drift in prop::collection::vec(-0.5f64..0.5, 6),
        start in prop::collection::vec(-100.0f64..100.0, 6),
        seed_salt in 0u64..1000,
    ) {
        // Generous budget: the bound is about where the minimizer lands,
        // not about truncation artifacts.
        let opts = SimplexOptions {
            initial_step: 20.0,
            tolerance: 1e-9,
            max_iterations: 2000,
            ..SimplexOptions::default()
        };
        let policy = ResumePolicy::default_warm();
        let mut seed = SimplexSeed::new();
        let mut scratch = SimplexScratch::new();
        let mut x0 = start[..dim].to_vec();
        let mut warm_evals_total = 0usize;
        let mut cold_evals_total = 0usize;
        let rounds = 4 + (seed_salt % 3) as usize;
        for round in 0..rounds {
            let c: Vec<f64> = center[..dim]
                .iter()
                .zip(&drift[..dim])
                .map(|(c, d)| c + d * round as f64)
                .collect();
            let f = |x: &[f64]| -> f64 {
                x.iter().zip(&c).map(|(xi, ci)| (xi - ci) * (xi - ci)).sum()
            };
            let warm = simplex_downhill_resume(&f, &x0, &opts, &policy, &mut seed, &mut scratch);
            let oracle = simplex_downhill_reference(f, &x0, &opts);
            warm_evals_total += warm.evals;
            cold_evals_total += oracle.evals;
            let gap: f64 = warm
                .point
                .iter()
                .zip(&oracle.point)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            prop_assert!(
                gap < 0.1,
                "round {round}: warm point strayed {gap} from the oracle optimum"
            );
            prop_assert!(
                warm.value <= oracle.value + 1e-3,
                "round {round}: warm value {} vs oracle {}",
                warm.value,
                oracle.value
            );
            x0 = warm.point;
        }
        // Not the headline 2× (that needs NPS-shaped round-to-round
        // locality; see the sim test and bench fixture). Adversarial
        // drift/dimension draws can even make a resumed sequence slightly
        // dearer than cold — the tiny re-inflated simplex must re-expand
        // to chase a far-moved optimum — so only a modest overhead ceiling
        // is a true invariant here.
        prop_assert!(
            warm_evals_total <= cold_evals_total + cold_evals_total / 4,
            "warm total {warm_evals_total} vs cold total {cold_evals_total}"
        );
    }
}
