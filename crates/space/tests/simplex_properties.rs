//! Property tests pinning the allocation-free Simplex kernel to the
//! retained oracle: on random quadratics and Rosenbrock starts the two must
//! agree on the returned point (bit for bit), objective value, iteration
//! count, and convergence flag — the guarantee behind the byte-identical
//! figure CSVs.

use proptest::prelude::*;
use vcoord_space::simplex::oracle::simplex_downhill_reference;
use vcoord_space::{simplex_downhill_scratch, SimplexOptions, SimplexResult, SimplexScratch};

/// Full bit-level comparison of two runs (panics on divergence, which the
/// vendored proptest stub reports with the generated inputs).
fn assert_identical(new: &SimplexResult, old: &SimplexResult) {
    prop_assert_eq!(new.iterations, old.iterations, "iteration count diverges");
    prop_assert_eq!(new.converged, old.converged, "convergence flag diverges");
    prop_assert_eq!(
        new.value.to_bits(),
        old.value.to_bits(),
        "value diverges: {} vs {}",
        new.value,
        old.value
    );
    let new_bits: Vec<u64> = new.point.iter().map(|v| v.to_bits()).collect();
    let old_bits: Vec<u64> = old.point.iter().map(|v| v.to_bits()).collect();
    prop_assert_eq!(new_bits, old_bits, "point diverges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Axis-weighted quadratics of random dimension, center, and start —
    /// the family NPS positioning objectives live in near convergence.
    #[test]
    fn kernel_matches_oracle_on_random_quadratics(
        dim in 1usize..6,
        center in prop::collection::vec(-80.0f64..80.0, 6),
        weights in prop::collection::vec(0.1f64..10.0, 6),
        start in prop::collection::vec(-100.0f64..100.0, 6),
        initial_step in 1.0f64..60.0,
        max_iterations in 20usize..500,
    ) {
        let f = |x: &[f64]| -> f64 {
            x.iter()
                .zip(&center)
                .zip(&weights)
                .map(|((xi, c), w)| w * (xi - c) * (xi - c))
                .sum()
        };
        let opts = SimplexOptions {
            initial_step,
            max_iterations,
            ..SimplexOptions::default()
        };
        let x0 = &start[..dim];
        // Reuse one scratch across two runs: results must not depend on
        // scratch history.
        let mut scratch = SimplexScratch::new();
        let first = simplex_downhill_scratch(f, x0, &opts, &mut scratch);
        let second = simplex_downhill_scratch(f, x0, &opts, &mut scratch);
        let oracle = simplex_downhill_reference(f, x0, &opts);
        assert_identical(&first, &oracle);
        assert_identical(&second, &oracle);
    }

    /// The banana valley exercises long zig-zag trajectories with frequent
    /// contractions and occasional shrinks — the moves where incremental
    /// order maintenance could drift from a full re-sort if it were wrong.
    #[test]
    fn kernel_matches_oracle_on_rosenbrock_starts(
        x0 in -2.0f64..2.0,
        y0 in -1.0f64..3.0,
        initial_step in 0.05f64..2.0,
        max_iterations in 100usize..3000,
    ) {
        let f = |x: &[f64]| -> f64 {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
        };
        let opts = SimplexOptions {
            initial_step,
            max_iterations,
            ..SimplexOptions::default()
        };
        let mut scratch = SimplexScratch::new();
        let new = simplex_downhill_scratch(f, &[x0, y0], &opts, &mut scratch);
        let oracle = simplex_downhill_reference(f, &[x0, y0], &opts);
        assert_identical(&new, &oracle);
    }
}
