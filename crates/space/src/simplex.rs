//! Nelder–Mead *Simplex Downhill* minimizer.
//!
//! GNP and NPS both position nodes by minimizing a latency-fit objective with
//! the Simplex Downhill method (Nelder & Mead, 1965). This is a faithful,
//! dependency-free implementation with the standard reflection / expansion /
//! contraction / shrink moves and deterministic behaviour (no internal
//! randomness; ties broken by index).

/// Tuning knobs for [`simplex_downhill`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SimplexOptions {
    /// Reflection coefficient (α > 0). Standard: 1.0.
    pub alpha: f64,
    /// Expansion coefficient (γ > 1). Standard: 2.0.
    pub gamma: f64,
    /// Contraction coefficient (0 < ρ ≤ 0.5). Standard: 0.5.
    pub rho: f64,
    /// Shrink coefficient (0 < σ < 1). Standard: 0.5.
    pub sigma: f64,
    /// Initial step added to each axis to build the starting simplex.
    pub initial_step: f64,
    /// Stop when the best–worst objective spread falls below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            initial_step: 50.0,
            tolerance: 1e-8,
            max_iterations: 400,
        }
    }
}

/// Outcome of a [`simplex_downhill`] run.
#[derive(Debug, Clone)]
pub struct SimplexResult {
    /// Minimizing point found.
    pub point: Vec<f64>,
    /// Objective value at [`SimplexResult::point`].
    pub value: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance criterion (rather than the iteration cap) ended
    /// the search.
    pub converged: bool,
}

/// Minimize `f` starting from `x0` using the Simplex Downhill method.
///
/// ```
/// use vcoord_space::{simplex_downhill, SimplexOptions};
///
/// let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
/// let r = simplex_downhill(f, &[0.0, 0.0], &SimplexOptions::default());
/// assert!((r.point[0] - 3.0).abs() < 0.01);
/// assert!((r.point[1] + 1.0).abs() < 0.01);
/// ```
///
/// Returns the best vertex found. `f` must be finite at `x0`; non-finite
/// objective values elsewhere are treated as `+∞` so the simplex retreats
/// from them, which keeps adversarially-poisoned NPS objectives from
/// propagating NaNs into coordinates.
///
/// # Panics
/// Panics if `x0` is empty.
pub fn simplex_downhill<F>(f: F, x0: &[f64], opts: &SimplexOptions) -> SimplexResult
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!x0.is_empty(), "cannot optimize a zero-dimensional point");
    let n = x0.len();
    let eval = |x: &[f64]| -> f64 {
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    // Initial simplex: x0 plus one vertex per axis.
    let mut verts: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    verts.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += if v[i].abs() > 1.0 {
            opts.initial_step.copysign(v[i])
        } else {
            opts.initial_step
        };
        verts.push(v);
    }
    let mut vals: Vec<f64> = verts.iter().map(|v| eval(v)).collect();

    let mut iterations = 0;
    let mut converged = false;
    while iterations < opts.max_iterations {
        iterations += 1;

        // Order vertices: best first. Stable sort keeps determinism on ties.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| {
            vals[a]
                .partial_cmp(&vals[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        if (vals[worst] - vals[best]).abs() < opts.tolerance {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for &i in order.iter().take(n) {
            for (c, x) in centroid.iter_mut().zip(&verts[i]) {
                *c += x;
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }

        let lerp = |from: &[f64], to: &[f64], t: f64| -> Vec<f64> {
            from.iter().zip(to).map(|(a, b)| a + t * (b - a)).collect()
        };

        // Reflection.
        let reflected = lerp(&centroid, &verts[worst], -opts.alpha);
        let fr = eval(&reflected);
        if fr < vals[best] {
            // Expansion.
            let expanded = lerp(&centroid, &verts[worst], -opts.gamma);
            let fe = eval(&expanded);
            if fe < fr {
                verts[worst] = expanded;
                vals[worst] = fe;
            } else {
                verts[worst] = reflected;
                vals[worst] = fr;
            }
            continue;
        }
        if fr < vals[second_worst] {
            verts[worst] = reflected;
            vals[worst] = fr;
            continue;
        }

        // Contraction (outside if the reflection improved on the worst,
        // inside otherwise).
        let contracted = if fr < vals[worst] {
            lerp(&centroid, &reflected, opts.rho)
        } else {
            lerp(&centroid, &verts[worst], opts.rho)
        };
        let fc = eval(&contracted);
        if fc < vals[worst].min(fr) {
            verts[worst] = contracted;
            vals[worst] = fc;
            continue;
        }

        // Shrink toward the best vertex.
        let best_v = verts[best].clone();
        for &i in order.iter().skip(1) {
            verts[i] = lerp(&best_v, &verts[i], opts.sigma);
            vals[i] = eval(&verts[i]);
        }
    }

    let (bi, bv) = vals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("simplex has at least one vertex");
    SimplexResult {
        point: verts[bi].clone(),
        value: *bv,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_sphere_function() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let r = simplex_downhill(f, &[10.0, -7.0, 3.0], &SimplexOptions::default());
        assert!(r.value < 1e-6, "value={}", r.value);
        assert!(r.point.iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn minimizes_shifted_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 5.0).powi(2) + 2.0;
        let r = simplex_downhill(f, &[0.0, 0.0], &SimplexOptions::default());
        assert!((r.value - 2.0).abs() < 1e-5);
        assert!((r.point[0] - 3.0).abs() < 1e-2);
        assert!((r.point[1] + 5.0).abs() < 1e-2);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let opts = SimplexOptions {
            max_iterations: 5000,
            initial_step: 0.5,
            ..Default::default()
        };
        let r = simplex_downhill(f, &[-1.2, 1.0], &opts);
        assert!(r.value < 1e-4, "value={}", r.value);
    }

    #[test]
    fn survives_nan_objective_regions() {
        // NaN away from origin: solver must treat it as +inf and not panic.
        let f = |x: &[f64]| {
            let s: f64 = x.iter().map(|v| v * v).sum();
            if x[0] > 5.0 {
                f64::NAN
            } else {
                s
            }
        };
        let r = simplex_downhill(f, &[4.0, 0.0], &SimplexOptions::default());
        assert!(r.value.is_finite());
        assert!(r.value < 1e-4);
    }

    #[test]
    fn respects_iteration_cap() {
        let f = |x: &[f64]| x[0].sin() * x[1].cos() + x[0] * x[0] * 1e-4;
        let opts = SimplexOptions {
            max_iterations: 3,
            ..Default::default()
        };
        let r = simplex_downhill(f, &[1.0, 1.0], &opts);
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn one_dimensional_works() {
        let f = |x: &[f64]| (x[0] - 42.0).powi(2);
        let r = simplex_downhill(f, &[0.0], &SimplexOptions::default());
        assert!((r.point[0] - 42.0).abs() < 1e-3);
    }

    #[test]
    fn deterministic_across_runs() {
        let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2) * 3.0;
        let a = simplex_downhill(f, &[9.0, -9.0], &SimplexOptions::default());
        let b = simplex_downhill(f, &[9.0, -9.0], &SimplexOptions::default());
        assert_eq!(a.point, b.point);
        assert_eq!(a.iterations, b.iterations);
    }
}
