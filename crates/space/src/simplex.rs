//! Nelder–Mead *Simplex Downhill* minimizer.
//!
//! GNP and NPS both position nodes by minimizing a latency-fit objective with
//! the Simplex Downhill method (Nelder & Mead, 1965). This is a faithful,
//! dependency-free implementation with the standard reflection / expansion /
//! contraction / shrink moves and deterministic behaviour (no internal
//! randomness; ties broken by index).
//!
//! Two entry points share one kernel: [`simplex_downhill`] allocates its own
//! working state per call, while [`simplex_downhill_scratch`] reuses a
//! caller-held [`SimplexScratch`] so the hot NPS repositioning path runs
//! **allocation-free** (the only allocation left is the returned best point).
//! The kernel replaces the original full index sort per iteration with an
//! incrementally maintained order array — a single ordered reinsertion on
//! the common reflect/expand/contract moves — while performing *bit-identical*
//! floating-point operations in the identical order, so optimization
//! trajectories match the retained [`oracle`] exactly (property-tested in
//! this module and relied on by the figure-CSV golden tests).
//!
//! A third entry point, [`simplex_downhill_resume`], supports *warm starts*:
//! a caller-held [`SimplexSeed`] carries the converged simplex from one run
//! to the next, and a [`ResumePolicy`] controls how the seed is re-inflated
//! (damped restart) and how often a full cold restart is forced. With
//! [`ResumePolicy::always_cold`] the resume path executes exactly the same
//! floating-point program as [`simplex_downhill_scratch`] — the strict mode
//! that keeps figure CSVs byte-identical — while warm policies trade that
//! pin for far fewer objective evaluations per run. Every entry point counts
//! objective evaluations in [`SimplexResult::evals`] so the saving is
//! measurable.

/// Tuning knobs for [`simplex_downhill`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SimplexOptions {
    /// Reflection coefficient (α > 0). Standard: 1.0.
    pub alpha: f64,
    /// Expansion coefficient (γ > 1). Standard: 2.0.
    pub gamma: f64,
    /// Contraction coefficient (0 < ρ ≤ 0.5). Standard: 0.5.
    pub rho: f64,
    /// Shrink coefficient (0 < σ < 1). Standard: 0.5.
    pub sigma: f64,
    /// Initial step added to each axis to build the starting simplex.
    pub initial_step: f64,
    /// Stop when the best–worst objective spread falls below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            initial_step: 50.0,
            tolerance: 1e-8,
            max_iterations: 400,
        }
    }
}

/// Outcome of a [`simplex_downhill`] run.
#[derive(Debug, Clone)]
pub struct SimplexResult {
    /// Minimizing point found.
    pub point: Vec<f64>,
    /// Objective value at [`SimplexResult::point`].
    pub value: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance criterion (rather than the iteration cap) ended
    /// the search.
    pub converged: bool,
    /// Objective evaluations performed, counting the `n + 1` initial-vertex
    /// evaluations as well as every trial and shrink evaluation.
    pub evals: usize,
}

/// Restart policy for [`simplex_downhill_resume`].
///
/// `damping` and `min_extent` control how a carried [`SimplexSeed`] is
/// re-inflated before the descent: the seed simplex (usually collapsed to
/// tolerance scale by the previous run) is scaled about its best vertex so
/// its largest per-axis extent is at least
/// `max(damping * initial_step, min_extent)`. `cold_every` forces a full
/// cold restart every so many consecutive warm starts so drift cannot
/// accumulate unboundedly.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResumePolicy {
    /// Fraction of [`SimplexOptions::initial_step`] used as the warm-start
    /// simplex extent.
    pub damping: f64,
    /// Absolute floor on the warm-start simplex extent.
    pub min_extent: f64,
    /// Force a cold restart after this many consecutive warm starts.
    /// `1` means every start is cold (strict mode); `0` disables forced
    /// cold restarts entirely.
    pub cold_every: u32,
}

impl ResumePolicy {
    /// Strict mode: every start is a cold restart. With this policy
    /// [`simplex_downhill_resume`] is bitwise-identical to
    /// [`simplex_downhill_scratch`].
    pub fn always_cold() -> ResumePolicy {
        ResumePolicy {
            damping: 0.0,
            min_extent: 0.0,
            cold_every: 1,
        }
    }

    /// Default warm-start policy: re-inflate to 0.2% of the cold initial
    /// step (floored at `1e-3`), with a forced cold restart every 64 runs.
    ///
    /// The tight extent is deliberate: a resumed run only pays for descent
    /// when the objective actually moved since the last round, which is
    /// what makes warm starts collapse the per-round evaluation count.
    pub fn default_warm() -> ResumePolicy {
        ResumePolicy {
            damping: 0.002,
            min_extent: 1e-3,
            cold_every: 64,
        }
    }

    /// Whether this policy never warm-starts (strict mode).
    pub fn is_cold_only(&self) -> bool {
        self.cold_every == 1
    }
}

/// Carried simplex state for [`simplex_downhill_resume`].
///
/// Stores the final simplex of the previous run (best vertex first) plus the
/// number of consecutive warm starts taken from it. An empty seed — or one
/// whose dimension does not match the new problem — always produces a cold
/// start.
#[derive(Debug, Clone, Default)]
pub struct SimplexSeed {
    /// Previous run's final vertices, best first; empty means "no seed".
    verts: Vec<Vec<f64>>,
    /// Consecutive warm starts taken from this seed lineage.
    streak: u32,
}

impl SimplexSeed {
    /// A fresh, empty seed (first use is always a cold start).
    pub fn new() -> SimplexSeed {
        SimplexSeed::default()
    }

    /// Dimension of the stored simplex, or `None` when empty.
    pub fn dim(&self) -> Option<usize> {
        self.verts.first().map(Vec::len)
    }

    /// Consecutive warm starts taken from this seed lineage.
    pub fn warm_streak(&self) -> u32 {
        self.streak
    }

    /// Drop the stored simplex; the next resume is a cold start.
    pub fn clear(&mut self) {
        self.verts.clear();
        self.streak = 0;
    }

    /// Capture the final simplex of a finished descent, best vertex first.
    fn store(&mut self, scratch: &SimplexScratch, was_warm: bool) {
        self.verts.resize_with(scratch.verts.len(), Vec::new);
        for (slot, &idx) in self.verts.iter_mut().zip(&scratch.order) {
            slot.clear();
            slot.extend_from_slice(&scratch.verts[idx]);
        }
        self.streak = if was_warm {
            self.streak.saturating_add(1)
        } else {
            0
        };
    }
}

/// Reusable working state for [`simplex_downhill_scratch`].
///
/// Holds the simplex vertices and objective values, the incrementally
/// maintained vertex order, the centroid, and the trial-point buffers. A
/// scratch grows to fit the largest dimension it has seen and never shrinks,
/// so a long-lived scratch (e.g. one per [`NpsSim`] world) makes every
/// positioning after the first allocation-free.
///
/// [`NpsSim`]: https://docs.rs/vcoord-nps
#[derive(Debug, Clone, Default)]
pub struct SimplexScratch {
    /// `n + 1` simplex vertices of dimension `n`.
    verts: Vec<Vec<f64>>,
    /// Objective value per vertex, parallel to `verts`.
    vals: Vec<f64>,
    /// Vertex indices sorted ascending by `(value, index)` — exactly the
    /// stable-sort-by-value order of the reference implementation.
    order: Vec<usize>,
    /// Centroid of all vertices but the worst.
    centroid: Vec<f64>,
    /// Copy of the best vertex, pinned during a shrink.
    best: Vec<f64>,
    /// Reflection/contraction trial point.
    trial: Vec<f64>,
    /// Expansion trial point.
    trial2: Vec<f64>,
}

impl SimplexScratch {
    /// A new, empty scratch. Buffers are sized lazily on first use.
    pub fn new() -> SimplexScratch {
        SimplexScratch::default()
    }

    /// Size every buffer for an `n`-dimensional problem, retaining capacity.
    fn reset(&mut self, n: usize) {
        self.verts.resize_with(n + 1, Vec::new);
        for v in &mut self.verts {
            v.clear();
            v.resize(n, 0.0);
        }
        self.vals.clear();
        self.vals.resize(n + 1, 0.0);
        self.order.clear();
        self.centroid.clear();
        self.centroid.resize(n, 0.0);
        self.best.clear();
        self.best.resize(n, 0.0);
        self.trial.clear();
        self.trial.resize(n, 0.0);
        self.trial2.clear();
        self.trial2.resize(n, 0.0);
    }
}

/// Compare two vertices by `(value, index)` — the total order equivalent to
/// the reference implementation's *stable* sort by value over an
/// index-ascending array.
#[inline]
fn before(vals: &[f64], a: usize, b: usize) -> bool {
    match vals[a].partial_cmp(&vals[b]) {
        Some(std::cmp::Ordering::Less) => true,
        Some(std::cmp::Ordering::Greater) => false,
        _ => a < b,
    }
}

/// In-place lerp: `out[j] = from[j] + t * (to[j] - from[j])`.
#[inline]
fn lerp_into(out: &mut [f64], from: &[f64], to: &[f64], t: f64) {
    for ((o, a), b) in out.iter_mut().zip(from).zip(to) {
        *o = a + t * (b - a);
    }
}

/// Minimize `f` starting from `x0` using the Simplex Downhill method.
///
/// ```
/// use vcoord_space::{simplex_downhill, SimplexOptions};
///
/// let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
/// let r = simplex_downhill(f, &[0.0, 0.0], &SimplexOptions::default());
/// assert!((r.point[0] - 3.0).abs() < 0.01);
/// assert!((r.point[1] + 1.0).abs() < 0.01);
/// ```
///
/// Returns the best vertex found. `f` must be finite at `x0`; non-finite
/// objective values elsewhere are treated as `+∞` so the simplex retreats
/// from them, which keeps adversarially-poisoned NPS objectives from
/// propagating NaNs into coordinates.
///
/// This is the convenience wrapper that allocates a fresh [`SimplexScratch`]
/// per call; hot paths should hold a scratch and call
/// [`simplex_downhill_scratch`].
///
/// # Panics
/// Panics if `x0` is empty.
pub fn simplex_downhill<F>(f: F, x0: &[f64], opts: &SimplexOptions) -> SimplexResult
where
    F: FnMut(&[f64]) -> f64,
{
    let mut scratch = SimplexScratch::new();
    simplex_downhill_scratch(f, x0, opts, &mut scratch)
}

/// [`simplex_downhill`] reusing caller-held buffers: the allocation-free
/// kernel (only the returned point is allocated).
///
/// The objective is `FnMut` so callers can thread their own evaluation
/// scratch (e.g. a reusable coordinate) through it without interior
/// mutability.
///
/// # Panics
/// Panics if `x0` is empty.
pub fn simplex_downhill_scratch<F>(
    mut f: F,
    x0: &[f64],
    opts: &SimplexOptions,
    scratch: &mut SimplexScratch,
) -> SimplexResult
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(!x0.is_empty(), "cannot optimize a zero-dimensional point");
    let n = x0.len();
    scratch.reset(n);
    let mut evals = 0usize;
    let mut eval = |x: &[f64]| -> f64 {
        evals += 1;
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };
    init_cold(&mut scratch.verts, x0, opts);
    let (iterations, converged) = descend(&mut eval, opts, scratch, n);
    vcoord_obs::counter_add(vcoord_obs::metric_id!("simplex.evals"), evals as u64);
    finish(scratch, iterations, converged, evals)
}

/// Minimize `f`, warm-starting from `seed` when `policy` allows it.
///
/// On a cold start (empty or dimension-mismatched seed, strict policy, or a
/// forced restart per [`ResumePolicy::cold_every`]) this executes exactly
/// the floating-point program of [`simplex_downhill_scratch`] — bitwise
/// identical results. On a warm start the previous run's simplex is
/// re-inflated about its best vertex (see [`ResumePolicy`]) and the descent
/// begins there, typically converging in far fewer objective evaluations.
/// Either way the finished simplex is stored back into `seed` for the next
/// call.
///
/// # Panics
/// Panics if `x0` is empty.
pub fn simplex_downhill_resume<F>(
    mut f: F,
    x0: &[f64],
    opts: &SimplexOptions,
    policy: &ResumePolicy,
    seed: &mut SimplexSeed,
    scratch: &mut SimplexScratch,
) -> SimplexResult
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(!x0.is_empty(), "cannot optimize a zero-dimensional point");
    let n = x0.len();
    let warm = !policy.is_cold_only()
        && seed.verts.len() == n + 1
        && seed.verts.iter().all(|v| v.len() == n)
        && (policy.cold_every == 0 || seed.streak + 1 < policy.cold_every);
    scratch.reset(n);
    let mut evals = 0usize;
    let mut eval = |x: &[f64]| -> f64 {
        evals += 1;
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };
    if warm {
        init_warm(&mut scratch.verts, seed, opts, policy);
    } else {
        init_cold(&mut scratch.verts, x0, opts);
    }
    let (iterations, converged) = descend(&mut eval, opts, scratch, n);
    seed.store(scratch, warm);
    if vcoord_obs::enabled() {
        let which = if warm {
            vcoord_obs::metric_id!("simplex.warm_start")
        } else {
            vcoord_obs::metric_id!("simplex.cold_restart")
        };
        vcoord_obs::counter_add(which, 1);
        vcoord_obs::counter_add(vcoord_obs::metric_id!("simplex.evals"), evals as u64);
    }
    finish(scratch, iterations, converged, evals)
}

/// Initial simplex for a cold start: `x0` plus one vertex per axis.
#[inline]
fn init_cold(verts: &mut [Vec<f64>], x0: &[f64], opts: &SimplexOptions) {
    for (k, v) in verts.iter_mut().enumerate() {
        v.copy_from_slice(x0);
        if k > 0 {
            let i = k - 1;
            v[i] += if v[i].abs() > 1.0 {
                opts.initial_step.copysign(v[i])
            } else {
                opts.initial_step
            };
        }
    }
}

/// Initial simplex for a warm start: the seed simplex re-inflated about its
/// best vertex so its largest per-axis extent is at least
/// `max(damping * initial_step, min_extent)`. A fully degenerate seed
/// (zero extent) falls back to a cold-style axis simplex of that extent
/// around the previous best point.
fn init_warm(
    verts: &mut [Vec<f64>],
    seed: &SimplexSeed,
    opts: &SimplexOptions,
    policy: &ResumePolicy,
) {
    let center = &seed.verts[0];
    let mut max_ext = 0.0f64;
    for v in &seed.verts[1..] {
        for (x, c) in v.iter().zip(center) {
            max_ext = max_ext.max((x - c).abs());
        }
    }
    let target = (policy.damping * opts.initial_step).max(policy.min_extent);
    if max_ext > 0.0 && max_ext.is_finite() {
        let scale = if max_ext < target {
            target / max_ext
        } else {
            1.0
        };
        for (v, s) in verts.iter_mut().zip(&seed.verts) {
            for ((x, sx), c) in v.iter_mut().zip(s).zip(center) {
                *x = c + scale * (sx - c);
            }
        }
    } else {
        for (k, v) in verts.iter_mut().enumerate() {
            v.copy_from_slice(center);
            if k > 0 {
                let i = k - 1;
                v[i] += if v[i].abs() > 1.0 {
                    target.copysign(v[i])
                } else {
                    target
                };
            }
        }
    }
}

/// Best vertex and result assembly shared by every entry point.
fn finish(
    scratch: &SimplexScratch,
    iterations: usize,
    converged: bool,
    evals: usize,
) -> SimplexResult {
    let (bi, bv) = scratch
        .vals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("simplex has at least one vertex");
    SimplexResult {
        point: scratch.verts[bi].clone(),
        value: *bv,
        iterations,
        converged,
        evals,
    }
}

/// The shared descent loop: evaluate the already-initialized vertices,
/// establish the `(value, index)` order, and run the standard reflect /
/// expand / contract / shrink moves until tolerance or the iteration cap.
///
/// Extracted verbatim from the PR 3 kernel so cold starts through any entry
/// point perform bit-identical floating-point operations in the identical
/// order.
fn descend<E>(
    eval: &mut E,
    opts: &SimplexOptions,
    scratch: &mut SimplexScratch,
    n: usize,
) -> (usize, bool)
where
    E: FnMut(&[f64]) -> f64,
{
    let SimplexScratch {
        verts,
        vals,
        order,
        centroid,
        best: best_buf,
        trial,
        trial2,
    } = scratch;
    for (val, v) in vals.iter_mut().zip(verts.iter()) {
        *val = eval(v);
    }

    // Establish the (value, index) order once; reflect/expand/contract
    // moves below maintain it with a single ordered reinsertion, and only
    // the rare shrink move pays for a full re-sort.
    order.extend(0..=n);
    order.sort_unstable_by(|&a, &b| {
        if before(vals, a, b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });

    // Replace the worst vertex (at `order[n]`) with `src`/`value` and slot
    // it back into the maintained order.
    let reinsert =
        |verts: &mut [Vec<f64>], vals: &mut [f64], order: &mut [usize], src: &[f64], value: f64| {
            let worst = order[n];
            verts[worst].copy_from_slice(src);
            vals[worst] = value;
            let pos = order[..n].partition_point(|&o| before(vals, o, worst));
            order[pos..=n].rotate_right(1);
        };

    let mut iterations = 0;
    let mut converged = false;
    while iterations < opts.max_iterations {
        iterations += 1;

        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        if (vals[worst] - vals[best]).abs() < opts.tolerance {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex, accumulated in order so the
        // floating-point sum matches the reference bit for bit.
        centroid.fill(0.0);
        for &i in order.iter().take(n) {
            for (c, x) in centroid.iter_mut().zip(&verts[i]) {
                *c += x;
            }
        }
        for c in centroid.iter_mut() {
            *c /= n as f64;
        }

        // Reflection.
        lerp_into(trial, centroid, &verts[worst], -opts.alpha);
        let fr = eval(trial);
        if fr < vals[best] {
            // Expansion.
            lerp_into(trial2, centroid, &verts[worst], -opts.gamma);
            let fe = eval(trial2);
            if fe < fr {
                reinsert(verts, vals, order, trial2, fe);
            } else {
                reinsert(verts, vals, order, trial, fr);
            }
            continue;
        }
        if fr < vals[second_worst] {
            reinsert(verts, vals, order, trial, fr);
            continue;
        }

        // Contraction (outside if the reflection improved on the worst,
        // inside otherwise).
        if fr < vals[worst] {
            lerp_into(trial2, centroid, trial, opts.rho);
        } else {
            lerp_into(trial2, centroid, &verts[worst], opts.rho);
        }
        let fc = eval(trial2);
        if fc < vals[worst].min(fr) {
            reinsert(verts, vals, order, trial2, fc);
            continue;
        }

        // Shrink toward the best vertex; every value changes, so re-sort.
        best_buf.copy_from_slice(&verts[best]);
        for i in 0..=n {
            if i == best {
                continue;
            }
            let v = &mut verts[i];
            for (x, b) in v.iter_mut().zip(best_buf.iter()) {
                *x = b + opts.sigma * (*x - b);
            }
            vals[i] = eval(v);
        }
        order.sort_unstable_by(|&a, &b| {
            if before(vals, a, b) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
    }

    (iterations, converged)
}

/// The original allocating implementation, retained verbatim as the
/// correctness and performance oracle for the allocation-free kernel.
///
/// Property tests prove [`simplex_downhill`] reproduces this function's
/// trajectories bit for bit; the `kernels` bench measures the speedup
/// against it. Not intended for production use.
pub mod oracle {
    use super::{SimplexOptions, SimplexResult};

    /// Reference Nelder–Mead implementation (full sort + fresh allocations
    /// every iteration). See the module docs.
    ///
    /// # Panics
    /// Panics if `x0` is empty.
    pub fn simplex_downhill_reference<F>(f: F, x0: &[f64], opts: &SimplexOptions) -> SimplexResult
    where
        F: Fn(&[f64]) -> f64,
    {
        assert!(!x0.is_empty(), "cannot optimize a zero-dimensional point");
        let n = x0.len();
        let evals = std::cell::Cell::new(0usize);
        let eval = |x: &[f64]| -> f64 {
            evals.set(evals.get() + 1);
            let v = f(x);
            if v.is_finite() {
                v
            } else {
                f64::INFINITY
            }
        };

        // Initial simplex: x0 plus one vertex per axis.
        let mut verts: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        verts.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += if v[i].abs() > 1.0 {
                opts.initial_step.copysign(v[i])
            } else {
                opts.initial_step
            };
            verts.push(v);
        }
        let mut vals: Vec<f64> = verts.iter().map(|v| eval(v)).collect();

        let mut iterations = 0;
        let mut converged = false;
        while iterations < opts.max_iterations {
            iterations += 1;

            // Order vertices: best first. Stable sort keeps determinism on
            // ties.
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&a, &b| {
                vals[a]
                    .partial_cmp(&vals[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let best = order[0];
            let worst = order[n];
            let second_worst = order[n - 1];

            if (vals[worst] - vals[best]).abs() < opts.tolerance {
                converged = true;
                break;
            }

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for &i in order.iter().take(n) {
                for (c, x) in centroid.iter_mut().zip(&verts[i]) {
                    *c += x;
                }
            }
            for c in &mut centroid {
                *c /= n as f64;
            }

            let lerp = |from: &[f64], to: &[f64], t: f64| -> Vec<f64> {
                from.iter().zip(to).map(|(a, b)| a + t * (b - a)).collect()
            };

            // Reflection.
            let reflected = lerp(&centroid, &verts[worst], -opts.alpha);
            let fr = eval(&reflected);
            if fr < vals[best] {
                // Expansion.
                let expanded = lerp(&centroid, &verts[worst], -opts.gamma);
                let fe = eval(&expanded);
                if fe < fr {
                    verts[worst] = expanded;
                    vals[worst] = fe;
                } else {
                    verts[worst] = reflected;
                    vals[worst] = fr;
                }
                continue;
            }
            if fr < vals[second_worst] {
                verts[worst] = reflected;
                vals[worst] = fr;
                continue;
            }

            // Contraction (outside if the reflection improved on the worst,
            // inside otherwise).
            let contracted = if fr < vals[worst] {
                lerp(&centroid, &reflected, opts.rho)
            } else {
                lerp(&centroid, &verts[worst], opts.rho)
            };
            let fc = eval(&contracted);
            if fc < vals[worst].min(fr) {
                verts[worst] = contracted;
                vals[worst] = fc;
                continue;
            }

            // Shrink toward the best vertex.
            let best_v = verts[best].clone();
            for &i in order.iter().skip(1) {
                verts[i] = lerp(&best_v, &verts[i], opts.sigma);
                vals[i] = eval(&verts[i]);
            }
        }

        let (bi, bv) = vals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("simplex has at least one vertex");
        SimplexResult {
            point: verts[bi].clone(),
            value: *bv,
            iterations,
            converged,
            evals: evals.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_sphere_function() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let r = simplex_downhill(f, &[10.0, -7.0, 3.0], &SimplexOptions::default());
        assert!(r.value < 1e-6, "value={}", r.value);
        assert!(r.point.iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn minimizes_shifted_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 5.0).powi(2) + 2.0;
        let r = simplex_downhill(f, &[0.0, 0.0], &SimplexOptions::default());
        assert!((r.value - 2.0).abs() < 1e-5);
        assert!((r.point[0] - 3.0).abs() < 1e-2);
        assert!((r.point[1] + 5.0).abs() < 1e-2);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let opts = SimplexOptions {
            max_iterations: 5000,
            initial_step: 0.5,
            ..Default::default()
        };
        let r = simplex_downhill(f, &[-1.2, 1.0], &opts);
        assert!(r.value < 1e-4, "value={}", r.value);
    }

    #[test]
    fn survives_nan_objective_regions() {
        // NaN away from origin: solver must treat it as +inf and not panic.
        let f = |x: &[f64]| {
            let s: f64 = x.iter().map(|v| v * v).sum();
            if x[0] > 5.0 {
                f64::NAN
            } else {
                s
            }
        };
        let r = simplex_downhill(f, &[4.0, 0.0], &SimplexOptions::default());
        assert!(r.value.is_finite());
        assert!(r.value < 1e-4);
    }

    #[test]
    fn respects_iteration_cap() {
        let f = |x: &[f64]| x[0].sin() * x[1].cos() + x[0] * x[0] * 1e-4;
        let opts = SimplexOptions {
            max_iterations: 3,
            ..Default::default()
        };
        let r = simplex_downhill(f, &[1.0, 1.0], &opts);
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn one_dimensional_works() {
        let f = |x: &[f64]| (x[0] - 42.0).powi(2);
        let r = simplex_downhill(f, &[0.0], &SimplexOptions::default());
        assert!((r.point[0] - 42.0).abs() < 1e-3);
    }

    #[test]
    fn deterministic_across_runs() {
        let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2) * 3.0;
        let a = simplex_downhill(f, &[9.0, -9.0], &SimplexOptions::default());
        let b = simplex_downhill(f, &[9.0, -9.0], &SimplexOptions::default());
        assert_eq!(a.point, b.point);
        assert_eq!(a.iterations, b.iterations);
    }

    /// Bit-level equality against the oracle: point, value, iteration count
    /// and convergence flag must all match exactly.
    fn assert_bit_identical<F: Fn(&[f64]) -> f64>(f: F, x0: &[f64], opts: &SimplexOptions) {
        let new = simplex_downhill(&f, x0, opts);
        let old = oracle::simplex_downhill_reference(&f, x0, opts);
        assert_eq!(new.iterations, old.iterations, "iterations diverge");
        assert_eq!(new.converged, old.converged, "convergence flag diverges");
        assert_eq!(new.evals, old.evals, "evaluation count diverges");
        assert_eq!(
            new.value.to_bits(),
            old.value.to_bits(),
            "value diverges: {} vs {}",
            new.value,
            old.value
        );
        let new_bits: Vec<u64> = new.point.iter().map(|v| v.to_bits()).collect();
        let old_bits: Vec<u64> = old.point.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            new_bits, old_bits,
            "point diverges: {:?} vs {:?}",
            new.point, old.point
        );
    }

    #[test]
    fn kernel_matches_oracle_on_standard_objectives() {
        let opts = SimplexOptions::default();
        assert_bit_identical(
            |x| x.iter().map(|v| v * v).sum::<f64>(),
            &[10.0, -7.0, 3.0],
            &opts,
        );
        assert_bit_identical(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 5.0).powi(2) + 2.0,
            &[0.0, 0.0],
            &opts,
        );
        let rosen = SimplexOptions {
            max_iterations: 5000,
            initial_step: 0.5,
            ..Default::default()
        };
        assert_bit_identical(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            &rosen,
        );
    }

    #[test]
    fn kernel_matches_oracle_with_nan_regions_and_caps() {
        let f = |x: &[f64]| {
            let s: f64 = x.iter().map(|v| v * v).sum();
            if x[0] > 5.0 {
                f64::NAN
            } else {
                s
            }
        };
        assert_bit_identical(f, &[4.0, 0.0], &SimplexOptions::default());
        let capped = SimplexOptions {
            max_iterations: 3,
            ..Default::default()
        };
        assert_bit_identical(
            |x: &[f64]| x[0].sin() * x[1].cos() + x[0] * x[0] * 1e-4,
            &[1.0, 1.0],
            &capped,
        );
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        // A scratch reused across problems of different dimensions must
        // reproduce fresh-scratch results exactly.
        let mut scratch = SimplexScratch::new();
        let opts = SimplexOptions::default();
        let f3 = |x: &[f64]| x.iter().map(|v| (v - 2.0) * (v - 2.0)).sum::<f64>();
        let f1 = |x: &[f64]| (x[0] - 42.0).powi(2);
        for _ in 0..3 {
            let a = simplex_downhill_scratch(f3, &[9.0, -9.0, 0.5], &opts, &mut scratch);
            let b = simplex_downhill(f3, &[9.0, -9.0, 0.5], &opts);
            assert_eq!(a.point, b.point);
            assert_eq!(a.iterations, b.iterations);
            let a1 = simplex_downhill_scratch(f1, &[0.0], &opts, &mut scratch);
            let b1 = simplex_downhill(f1, &[0.0], &opts);
            assert_eq!(a1.point, b1.point);
        }
    }

    #[test]
    fn evals_counts_every_objective_call() {
        let calls = std::cell::Cell::new(0usize);
        let f = |x: &[f64]| {
            calls.set(calls.get() + 1);
            (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2)
        };
        let r = simplex_downhill(f, &[0.0, 0.0], &SimplexOptions::default());
        assert_eq!(r.evals, calls.get());
        assert!(r.evals >= 3, "at least the initial vertices are evaluated");
    }

    #[test]
    fn resume_cold_policy_is_bit_identical_to_scratch() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + 2.5 * (x[1] + 5.0).powi(2);
        let opts = SimplexOptions::default();
        let mut scratch = SimplexScratch::new();
        let mut seed = SimplexSeed::new();
        let policy = ResumePolicy::always_cold();
        for _ in 0..3 {
            let via_resume =
                simplex_downhill_resume(f, &[9.0, -9.0], &opts, &policy, &mut seed, &mut scratch);
            let direct = simplex_downhill_scratch(f, &[9.0, -9.0], &opts, &mut scratch);
            assert_eq!(via_resume.iterations, direct.iterations);
            assert_eq!(via_resume.converged, direct.converged);
            assert_eq!(via_resume.evals, direct.evals);
            assert_eq!(via_resume.value.to_bits(), direct.value.to_bits());
            let a: Vec<u64> = via_resume.point.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = direct.point.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
            assert_eq!(seed.warm_streak(), 0, "strict mode never warm-starts");
        }
    }

    #[test]
    fn warm_resume_converges_with_fewer_evals() {
        // Steady-state NPS shape: the optimum drifts slightly each round.
        let opts = SimplexOptions {
            initial_step: 20.0,
            tolerance: 1e-7,
            max_iterations: 150,
            ..Default::default()
        };
        let policy = ResumePolicy::default_warm();
        let mut scratch = SimplexScratch::new();
        let mut seed = SimplexSeed::new();
        let mut cold_evals = 0usize;
        let mut warm_evals = 0usize;
        let mut start = [40.0, -25.0, 10.0];
        for round in 0..12 {
            let c = 0.05 * round as f64;
            let f = |x: &[f64]| {
                (x[0] - 30.0 - c).powi(2) + 2.0 * (x[1] + 12.0).powi(2) + (x[2] - c).powi(2)
            };
            let warm = simplex_downhill_resume(f, &start, &opts, &policy, &mut seed, &mut scratch);
            let cold = simplex_downhill_scratch(f, &start, &opts, &mut scratch);
            if round > 0 {
                warm_evals += warm.evals;
                cold_evals += cold.evals;
                // Warm result must still be a good minimizer of the same
                // objective (bounded divergence from the cold answer).
                assert!(warm.value <= cold.value + 1e-3, "warm value drifted");
            }
            start = [warm.point[0], warm.point[1], warm.point[2]];
        }
        assert!(seed.warm_streak() > 0, "warm starts actually happened");
        assert!(
            warm_evals * 2 <= cold_evals,
            "expected >=2x fewer evals warm ({warm_evals}) vs cold ({cold_evals})"
        );
    }

    #[test]
    fn forced_cold_restart_resets_streak() {
        let f = |x: &[f64]| (x[0] - 1.0).powi(2);
        let opts = SimplexOptions::default();
        let policy = ResumePolicy {
            cold_every: 3,
            ..ResumePolicy::default_warm()
        };
        let mut scratch = SimplexScratch::new();
        let mut seed = SimplexSeed::new();
        let mut streaks = Vec::new();
        for _ in 0..7 {
            simplex_downhill_resume(f, &[5.0], &opts, &policy, &mut seed, &mut scratch);
            streaks.push(seed.warm_streak());
        }
        // Cold (0), warm (1), warm (2), forced cold (0), warm (1), ...
        assert_eq!(streaks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn degenerate_seed_falls_back_to_axis_simplex() {
        // A seed collapsed to a single point must still start a valid
        // descent (axis fallback) rather than a zero-volume simplex.
        let f = |x: &[f64]| (x[0] - 4.0).powi(2) + (x[1] - 4.0).powi(2);
        let opts = SimplexOptions::default();
        let policy = ResumePolicy::default_warm();
        let mut scratch = SimplexScratch::new();
        let mut seed = SimplexSeed::new();
        // Converge hard so the stored simplex is extremely tight, then keep
        // resuming: every run must keep finding the optimum.
        for _ in 0..5 {
            let r =
                simplex_downhill_resume(f, &[0.0, 0.0], &opts, &policy, &mut seed, &mut scratch);
            assert!(r.value < 1e-4, "value={}", r.value);
        }
    }

    #[test]
    fn seed_dim_mismatch_forces_cold_start() {
        let opts = SimplexOptions::default();
        let policy = ResumePolicy::default_warm();
        let mut scratch = SimplexScratch::new();
        let mut seed = SimplexSeed::new();
        let f2 = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2);
        simplex_downhill_resume(f2, &[0.0, 0.0], &opts, &policy, &mut seed, &mut scratch);
        assert_eq!(seed.dim(), Some(2));
        let f3 = |x: &[f64]| x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum::<f64>();
        let via_resume = simplex_downhill_resume(
            f3,
            &[0.0, 0.0, 0.0],
            &opts,
            &policy,
            &mut seed,
            &mut scratch,
        );
        let direct = simplex_downhill_scratch(f3, &[0.0, 0.0, 0.0], &opts, &mut scratch);
        assert_eq!(via_resume.evals, direct.evals, "mismatch must cold-start");
        assert_eq!(via_resume.value.to_bits(), direct.value.to_bits());
        assert_eq!(seed.dim(), Some(3));
    }
}
