//! Coordinates and displacements with Vivaldi height-model semantics.

use crate::vector;
use serde::{Deserialize, Serialize};

/// A position in an embedding space.
///
/// `vec` is the Euclidean part; `height` is the height-model component. In a
/// pure Euclidean space `height` is zero and ignored. In the height model
/// (Euclidean space augmented with a height vector, [Dabek et al. 2004]) the
/// Euclidean part models a node's position in the high-speed core and the
/// height models its access-link latency; heights are always non-negative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    /// Euclidean components, in the same unit as RTTs (milliseconds).
    pub vec: Vec<f64>,
    /// Height component (milliseconds); `0.0` in pure Euclidean spaces.
    pub height: f64,
}

impl Coord {
    /// The origin of a `dim`-dimensional space with zero height.
    pub fn origin(dim: usize) -> Self {
        Coord {
            vec: vec![0.0; dim],
            height: 0.0,
        }
    }

    /// Build a coordinate from Euclidean components only.
    pub fn from_vec(vec: Vec<f64>) -> Self {
        Coord { vec, height: 0.0 }
    }

    /// Euclidean dimension (not counting the height component).
    #[inline]
    pub fn dim(&self) -> usize {
        self.vec.len()
    }

    /// `true` if every component (and the height) is finite.
    pub fn is_finite(&self) -> bool {
        self.height.is_finite() && self.vec.iter().all(|x| x.is_finite())
    }

    /// Magnitude of this coordinate seen as a displacement from the origin:
    /// `‖vec‖ + height`.
    pub fn magnitude(&self) -> f64 {
        vector::norm(&self.vec) + self.height
    }

    /// Height-model difference `self − other`.
    ///
    /// Heights *add* under subtraction: the path between two nodes descends
    /// one access link, crosses the core, and climbs the other access link.
    pub fn sub(&self, other: &Coord) -> Displacement {
        Displacement {
            vec: vector::sub(&self.vec, &other.vec),
            height: self.height + other.height,
        }
    }

    /// Move this coordinate by `disp * s`, clamping the height at zero.
    pub fn add_scaled(&mut self, disp: &Displacement, s: f64) {
        vector::add_scaled(&mut self.vec, &disp.vec, s);
        self.height += disp.height * s;
        if self.height < 0.0 {
            self.height = 0.0;
        }
    }

    /// Replace non-finite components with zeros.
    ///
    /// Defensive repair used by protocol code after arithmetic on possibly
    /// adversarial inputs; logged by callers as an exceptional event.
    pub fn sanitize(&mut self) {
        for x in &mut self.vec {
            if !x.is_finite() {
                *x = 0.0;
            }
        }
        if !self.height.is_finite() || self.height < 0.0 {
            self.height = 0.0;
        }
    }
}

/// The difference between two coordinates (`a − b`).
///
/// In the height model the height of a displacement is `a.height + b.height`
/// and the norm is `‖a.vec − b.vec‖ + height`; scaling a displacement scales
/// both parts, so applying a unit displacement moves a node through both the
/// core and its access link, exactly as in the Vivaldi paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Displacement {
    /// Euclidean part of the displacement.
    pub vec: Vec<f64>,
    /// Height part (non-negative for differences of valid coordinates).
    pub height: f64,
}

impl Displacement {
    /// Height-model norm: `‖vec‖ + height`.
    pub fn norm(&self) -> f64 {
        vector::norm(&self.vec) + self.height
    }

    /// Scale both parts in place.
    pub fn scale(&mut self, s: f64) {
        vector::scale(&mut self.vec, s);
        self.height *= s;
    }

    /// Normalize to unit (height-model) norm.
    ///
    /// Returns `None` when the displacement is (numerically) zero; callers
    /// should substitute a random direction, as Vivaldi prescribes for
    /// coincident nodes.
    pub fn unit(mut self) -> Option<Displacement> {
        let n = self.norm();
        if n <= f64::EPSILON {
            return None;
        }
        self.scale(1.0 / n);
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_all_zero() {
        let c = Coord::origin(3);
        assert_eq!(c.vec, vec![0.0; 3]);
        assert_eq!(c.height, 0.0);
        assert_eq!(c.dim(), 3);
    }

    #[test]
    fn heights_add_under_subtraction() {
        let a = Coord {
            vec: vec![1.0, 0.0],
            height: 10.0,
        };
        let b = Coord {
            vec: vec![0.0, 0.0],
            height: 5.0,
        };
        let d = a.sub(&b);
        assert_eq!(d.height, 15.0);
        assert_eq!(d.norm(), 1.0 + 15.0);
    }

    #[test]
    fn unit_displacement_has_norm_one() {
        let d = Displacement {
            vec: vec![3.0, 4.0],
            height: 5.0,
        };
        let u = d.unit().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_displacement_has_no_unit() {
        let d = Displacement {
            vec: vec![0.0, 0.0],
            height: 0.0,
        };
        assert!(d.unit().is_none());
    }

    #[test]
    fn add_scaled_clamps_height() {
        let mut c = Coord {
            vec: vec![0.0],
            height: 1.0,
        };
        let d = Displacement {
            vec: vec![1.0],
            height: 4.0,
        };
        c.add_scaled(&d, -1.0);
        assert_eq!(c.height, 0.0, "height must clamp at zero");
        assert_eq!(c.vec, vec![-1.0]);
    }

    #[test]
    fn sanitize_repairs_nan() {
        let mut c = Coord {
            vec: vec![f64::NAN, 1.0],
            height: f64::INFINITY,
        };
        assert!(!c.is_finite());
        c.sanitize();
        assert!(c.is_finite());
        assert_eq!(c.vec[1], 1.0);
    }
}
