//! Plain `f64` vector helpers used throughout the workspace.
//!
//! These operate on slices so callers can keep their own storage; all
//! functions are free of allocation except where documented.

/// Euclidean (L2) norm of `v`.
#[inline]
pub fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Euclidean distance between `a` and `b`.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Component-wise `a - b`, written into a fresh `Vec`.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Component-wise `a + b`, written into a fresh `Vec`.
#[inline]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// In-place `a += s * b`.
#[inline]
pub fn add_scaled(a: &mut [f64], b: &[f64], s: f64) {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += s * y;
    }
}

/// Scale `v` in place by `s`.
#[inline]
pub fn scale(v: &mut [f64], s: f64) {
    for x in v {
        *x *= s;
    }
}

/// Dot product of `a` and `b`.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Arithmetic mean of the rows in `rows` (each of dimension `dim`).
///
/// Returns the origin when `rows` is empty.
pub fn centroid(rows: &[&[f64]], dim: usize) -> Vec<f64> {
    let mut c = vec![0.0; dim];
    if rows.is_empty() {
        return c;
    }
    for row in rows {
        for (ci, xi) in c.iter_mut().zip(*row) {
            *ci += xi;
        }
    }
    let inv = 1.0 / rows.len() as f64;
    scale(&mut c, inv);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_axis_vectors() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(norm(&[-2.0]), 2.0);
    }

    #[test]
    fn dist_is_symmetric_here() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(dist(&a, &b), 5.0);
        assert_eq!(dist(&b, &a), 5.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.25, 8.0, -1.5];
        let s = sub(&a, &b);
        let back = add(&s, &b);
        for (x, y) in back.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn add_scaled_matches_manual() {
        let mut a = vec![1.0, 1.0];
        add_scaled(&mut a, &[2.0, -4.0], 0.5);
        assert_eq!(a, vec![2.0, -1.0]);
    }

    #[test]
    fn centroid_of_square() {
        let rows: Vec<&[f64]> = vec![&[0.0, 0.0], &[2.0, 0.0], &[2.0, 2.0], &[0.0, 2.0]];
        assert_eq!(centroid(&rows, 2), vec![1.0, 1.0]);
    }

    #[test]
    fn centroid_empty_is_origin() {
        let rows: Vec<&[f64]> = vec![];
        assert_eq!(centroid(&rows, 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }
}
