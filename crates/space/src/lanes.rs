//! Batched SoA Euclidean distance kernels.
//!
//! [`dist_batch`] computes the distance from one point `a` to many points
//! stored as contiguous dimension-strided rows (`rows[p*dim..(p+1)*dim]` is
//! point `p`), writing one distance per entry of `out`. It is the multi-pair
//! lane variant behind [`Space::distance_flat_batch`] and is required to be
//! **bit-identical** to calling [`crate::vector::dist`] once per pair:
//!
//! * the scalar path ([`dist_batch_scalar`]) performs, for each pair, the
//!   exact per-dimension sequence `acc += (a[i] - b[i])²` followed by one
//!   `sqrt` — the same operations in the same order as `vector::dist`, and
//!   written so LLVM can auto-vectorize *across pairs* without reassociating
//!   any per-pair sum;
//! * the explicit SIMD path (SSE2, gated on
//!   `#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]`) packs
//!   two *pairs* per 128-bit register — vertical vectorization — so each
//!   lane still executes the scalar program's adds, multiplies, and square
//!   root in the identical order. IEEE-754 add/sub/mul/sqrt are correctly
//!   rounded per lane, so results match the scalar path bit for bit
//!   (property-tested in `tests/lane_properties.rs` across alignments and
//!   remainder lengths).
//!
//! Horizontal vectorization (summing one pair's dimensions in SIMD lanes)
//! would reassociate the per-pair sum and break bit-identity; it is
//! deliberately not used.
//!
//! [`Space::distance_flat_batch`]: crate::Space::distance_flat_batch

/// Scalar reference kernel: `out[p] = ||a - rows[p]||₂`.
///
/// # Panics
/// Panics if `rows.len() != a.len() * out.len()` (debug and release).
pub fn dist_batch_scalar(a: &[f64], rows: &[f64], out: &mut [f64]) {
    let dim = a.len();
    assert_eq!(rows.len(), dim * out.len(), "rows/out shape mismatch");
    for (p, o) in out.iter_mut().enumerate() {
        let row = &rows[p * dim..(p + 1) * dim];
        let mut acc = 0.0f64;
        for (x, y) in a.iter().zip(row) {
            let d = x - y;
            acc += d * d;
        }
        *o = acc.sqrt();
    }
}

/// SSE2 kernel: two pairs per 128-bit lane pair, scalar tail for the odd
/// remainder. Bit-identical to [`dist_batch_scalar`] (see module docs).
#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
fn dist_batch_sse2(a: &[f64], rows: &[f64], out: &mut [f64]) {
    use core::arch::x86_64::{
        _mm_add_pd, _mm_mul_pd, _mm_set1_pd, _mm_set_pd, _mm_setzero_pd, _mm_sqrt_pd,
        _mm_storeu_pd, _mm_sub_pd,
    };
    let dim = a.len();
    let pairs = out.len();
    assert_eq!(rows.len(), dim * pairs, "rows/out shape mismatch");
    let mut p = 0;
    // SAFETY: SSE2 is statically enabled by the cfg gate on this function,
    // and every index below is in bounds: `p + 1 < pairs` inside the loop,
    // so `r1 + i < pairs * dim == rows.len()` and the 2-wide store at
    // `out[p]` fits.
    unsafe {
        while p + 2 <= pairs {
            let r0 = p * dim;
            let r1 = r0 + dim;
            let mut acc = _mm_setzero_pd();
            for i in 0..dim {
                let av = _mm_set1_pd(*a.get_unchecked(i));
                let bv = _mm_set_pd(*rows.get_unchecked(r1 + i), *rows.get_unchecked(r0 + i));
                let d = _mm_sub_pd(av, bv);
                acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
            }
            _mm_storeu_pd(out.as_mut_ptr().add(p), _mm_sqrt_pd(acc));
            p += 2;
        }
    }
    if p < pairs {
        dist_batch_scalar(a, &rows[p * dim..], &mut out[p..]);
    }
}

/// Batched Euclidean distance: `out[p] = ||a - rows[p]||₂` for every `p`.
///
/// Dispatches to the explicit SIMD kernel when the target supports it and
/// to [`dist_batch_scalar`] otherwise; both produce bit-identical results.
///
/// # Panics
/// Panics if `rows.len() != a.len() * out.len()`.
#[inline]
pub fn dist_batch(a: &[f64], rows: &[f64], out: &mut [f64]) {
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    {
        dist_batch_sse2(a, rows, out)
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
    {
        dist_batch_scalar(a, rows, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    fn pseudo(seed: &mut u64) -> f64 {
        // xorshift64*, mapped to [-100, 100): deterministic and dependency-free.
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        let m = seed.wrapping_mul(0x2545F4914F6CDD1D);
        (m >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
    }

    #[test]
    fn batch_matches_per_pair_dist_bitwise() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        for dim in 1..=9 {
            for pairs in 0..=7 {
                let a: Vec<f64> = (0..dim).map(|_| pseudo(&mut seed)).collect();
                let rows: Vec<f64> = (0..dim * pairs).map(|_| pseudo(&mut seed)).collect();
                let mut out = vec![0.0; pairs];
                dist_batch(&a, &rows, &mut out);
                let mut out_scalar = vec![0.0; pairs];
                dist_batch_scalar(&a, &rows, &mut out_scalar);
                for p in 0..pairs {
                    let want = vector::dist(&a, &rows[p * dim..(p + 1) * dim]);
                    assert_eq!(out[p].to_bits(), want.to_bits(), "dim={dim} p={p}");
                    assert_eq!(out_scalar[p].to_bits(), want.to_bits());
                }
            }
        }
    }

    #[test]
    fn zero_pairs_is_a_no_op() {
        let mut out: Vec<f64> = vec![];
        dist_batch(&[1.0, 2.0], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let mut out = vec![0.0; 2];
        dist_batch(&[1.0, 2.0], &[1.0, 2.0, 3.0], &mut out);
    }
}
