//! # vcoord-space
//!
//! Coordinate-space algebra for Internet coordinate systems.
//!
//! This crate provides the geometric substrate shared by the Vivaldi and NPS
//! implementations in the `vcoord` workspace:
//!
//! * [`Coord`] — a position in an embedding space: a runtime-dimension
//!   Euclidean vector optionally augmented with a *height* component
//!   (Vivaldi's height model, where the height models the access-link latency
//!   between a node and the high-speed core).
//! * [`Displacement`] — the difference between two coordinates, carrying the
//!   height-model semantics (heights *add* under subtraction).
//! * [`Space`] — the space a simulation embeds into (`Euclidean(d)`,
//!   `EuclideanHeight(d)`, or `Spherical`), with distance, direction and
//!   random-point primitives.
//! * [`simplex`] — a Nelder–Mead Simplex Downhill minimizer, the optimization
//!   engine used by GNP/NPS to embed nodes from latency measurements.
//!
//! Design notes (see `DESIGN.md` at the workspace root): dimensions are
//! runtime values rather than const generics — the workspace follows the
//! smoltcp guideline of preferring simplicity and robustness over
//! compile-time cleverness, and the evaluation sweeps dimension as an
//! experiment parameter anyway.

pub mod coord;
pub mod lanes;
pub mod simplex;
pub mod space;
pub mod vector;

pub use coord::{Coord, Displacement};
pub use lanes::{dist_batch, dist_batch_scalar};
pub use simplex::{
    simplex_downhill, simplex_downhill_resume, simplex_downhill_scratch, ResumePolicy,
    SimplexOptions, SimplexResult, SimplexScratch, SimplexSeed,
};
pub use space::Space;
