//! Embedding spaces: Euclidean, Euclidean + height, and spherical.

use crate::coord::{Coord, Displacement};
use crate::vector;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The geometric space a coordinate system embeds into.
///
/// ```
/// use vcoord_space::{Coord, Space};
///
/// let space = Space::EuclideanHeight(2);
/// let a = Coord { vec: vec![3.0, 4.0], height: 10.0 };
/// let b = Coord { vec: vec![0.0, 0.0], height: 5.0 };
/// // Height-model distance: core distance plus both access links.
/// assert_eq!(space.distance(&a, &b), 5.0 + 10.0 + 5.0);
/// ```
///
/// The CoNEXT'06 study sweeps this as an experiment parameter: Vivaldi runs
/// in 2/3/5-D Euclidean spaces and the 2-D + height model; NPS runs in 8-D by
/// default and the dimensionality sweep uses 2–12-D. The spherical variant is
/// provided for completeness (Vivaldi's paper evaluates it; none of the
/// attack figures use it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Space {
    /// `d`-dimensional Euclidean space.
    Euclidean(usize),
    /// `d`-dimensional Euclidean space augmented with a height vector.
    EuclideanHeight(usize),
    /// Surface of a sphere of the given radius (milliseconds); coordinates
    /// store `[latitude, longitude]` in radians.
    Spherical {
        /// Sphere radius, in the RTT unit (milliseconds).
        radius: f64,
    },
}

impl Space {
    /// Euclidean dimension of points in this space (2 for spherical).
    pub fn dim(&self) -> usize {
        match self {
            Space::Euclidean(d) | Space::EuclideanHeight(d) => *d,
            Space::Spherical { .. } => 2,
        }
    }

    /// Whether coordinates carry a meaningful height component.
    pub fn has_height(&self) -> bool {
        matches!(self, Space::EuclideanHeight(_))
    }

    /// The origin of this space.
    pub fn origin(&self) -> Coord {
        Coord::origin(self.dim())
    }

    /// Predicted distance between two coordinates.
    pub fn distance(&self, a: &Coord, b: &Coord) -> f64 {
        match self {
            Space::Euclidean(_) => vector::dist(&a.vec, &b.vec),
            Space::EuclideanHeight(_) => vector::dist(&a.vec, &b.vec) + a.height + b.height,
            Space::Spherical { radius } => {
                let (la, lo) = (a.vec[0], a.vec[1]);
                let (lb, lob) = (b.vec[0], b.vec[1]);
                // Haversine central angle; numerically stable for small angles.
                let dlat = lb - la;
                let dlon = lob - lo;
                let h =
                    (dlat / 2.0).sin().powi(2) + la.cos() * lb.cos() * (dlon / 2.0).sin().powi(2);
                2.0 * radius * h.sqrt().min(1.0).asin()
            }
        }
    }

    /// [`Space::distance`] on raw component slices plus heights — the SoA
    /// fast path used by `vcoord-metrics`' coordinate snapshots.
    ///
    /// Performs exactly the same floating-point operations in the same order
    /// as [`Space::distance`], so results are bit-identical; heights are
    /// ignored by the spaces that ignore them there.
    pub fn distance_flat(&self, a: &[f64], a_height: f64, b: &[f64], b_height: f64) -> f64 {
        match self {
            Space::Euclidean(_) => vector::dist(a, b),
            Space::EuclideanHeight(_) => vector::dist(a, b) + a_height + b_height,
            Space::Spherical { radius } => {
                let (la, lo) = (a[0], a[1]);
                let (lb, lob) = (b[0], b[1]);
                let dlat = lb - la;
                let dlon = lob - lo;
                let h =
                    (dlat / 2.0).sin().powi(2) + la.cos() * lb.cos() * (dlon / 2.0).sin().powi(2);
                2.0 * radius * h.sqrt().min(1.0).asin()
            }
        }
    }

    /// Batched [`Space::distance_flat`]: distances from one point to many
    /// points stored as contiguous dimension-strided rows
    /// (`rows[p*dim..(p+1)*dim]` is point `p`, `heights[p]` its height).
    ///
    /// Euclidean spaces route through the SoA lane kernel
    /// ([`crate::lanes::dist_batch`]); the spherical space falls back to a
    /// per-pair loop. Results are bit-identical to calling
    /// [`Space::distance_flat`] once per pair.
    ///
    /// # Panics
    /// Panics if `rows.len() != a.len() * out.len()`, or (for the height
    /// model) if `heights.len() < out.len()`.
    pub fn distance_flat_batch(
        &self,
        a: &[f64],
        a_height: f64,
        rows: &[f64],
        heights: &[f64],
        out: &mut [f64],
    ) {
        match self {
            Space::Euclidean(_) => crate::lanes::dist_batch(a, rows, out),
            Space::EuclideanHeight(_) => {
                assert!(heights.len() >= out.len(), "heights/out shape mismatch");
                crate::lanes::dist_batch(a, rows, out);
                for (o, h) in out.iter_mut().zip(heights) {
                    // Same association as `dist + a.height + b.height`.
                    *o = *o + a_height + h;
                }
            }
            Space::Spherical { .. } => {
                let dim = a.len();
                assert_eq!(rows.len(), dim * out.len(), "rows/out shape mismatch");
                for (p, o) in out.iter_mut().enumerate() {
                    *o = self.distance_flat(a, a_height, &rows[p * dim..(p + 1) * dim], 0.0);
                }
            }
        }
    }

    /// Displacement `a − b` in this space.
    ///
    /// For Euclidean spaces the height part is forced to zero; for the height
    /// model heights add (see [`Coord::sub`]). For the spherical space the
    /// displacement is taken in the local tangent plane at `b`, scaled so its
    /// norm equals the great-circle distance — adequate for the small moves a
    /// relaxation step takes, and documented as an approximation.
    pub fn displacement(&self, a: &Coord, b: &Coord) -> Displacement {
        match self {
            Space::Euclidean(_) => Displacement {
                vec: vector::sub(&a.vec, &b.vec),
                height: 0.0,
            },
            Space::EuclideanHeight(_) => a.sub(b),
            Space::Spherical { radius } => {
                let mut d = Displacement {
                    vec: vec![a.vec[0] - b.vec[0], (a.vec[1] - b.vec[1]) * b.vec[0].cos()],
                    height: 0.0,
                };
                let tangent_norm = d.norm();
                let true_dist = self.distance(a, b);
                if tangent_norm > f64::EPSILON && *radius > 0.0 {
                    d.scale(true_dist / (tangent_norm * radius));
                }
                d
            }
        }
    }

    /// Unit direction of `a − b`, or a random unit direction when the two
    /// coordinates coincide (Vivaldi's rule for nodes at the same position).
    pub fn direction<R: Rng + ?Sized>(&self, a: &Coord, b: &Coord, rng: &mut R) -> Displacement {
        match self.displacement(a, b).unit() {
            Some(u) => u,
            None => self.random_unit(rng),
        }
    }

    /// A random unit displacement, used to separate coincident nodes.
    pub fn random_unit<R: Rng + ?Sized>(&self, rng: &mut R) -> Displacement {
        loop {
            let vec: Vec<f64> = (0..self.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let height = if self.has_height() {
                rng.gen_range(0.0..1.0)
            } else {
                0.0
            };
            let d = Displacement { vec, height };
            if let Some(u) = d.unit() {
                return u;
            }
        }
    }

    /// A random coordinate with every component drawn uniformly from
    /// `[-r, r]` (heights from `[0, r]`).
    ///
    /// With `r = 50 000` this is exactly the paper's *random coordinate
    /// system* worst-case baseline (§5.1).
    pub fn random_coord<R: Rng + ?Sized>(&self, r: f64, rng: &mut R) -> Coord {
        match self {
            Space::Spherical { .. } => {
                let lat = rng.gen_range(-std::f64::consts::FRAC_PI_2..std::f64::consts::FRAC_PI_2);
                let lon = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
                Coord {
                    vec: vec![lat, lon],
                    height: 0.0,
                }
            }
            _ => Coord {
                vec: (0..self.dim()).map(|_| rng.gen_range(-r..r)).collect(),
                height: if self.has_height() {
                    rng.gen_range(0.0..r)
                } else {
                    0.0
                },
            },
        }
    }

    /// Apply one relaxation move: `x += s · d`, respecting the space's
    /// constraints (heights clamped at zero; spherical latitudes clamped to
    /// the poles and longitudes wrapped).
    pub fn apply(&self, x: &mut Coord, d: &Displacement, s: f64) {
        x.add_scaled(d, s);
        if !self.has_height() {
            x.height = 0.0;
        }
        if let Space::Spherical { .. } = self {
            use std::f64::consts::{FRAC_PI_2, PI};
            x.vec[0] = x.vec[0].clamp(-FRAC_PI_2, FRAC_PI_2);
            if x.vec[1] > PI {
                x.vec[1] -= 2.0 * PI;
            } else if x.vec[1] < -PI {
                x.vec[1] += 2.0 * PI;
            }
        }
    }

    /// A short human-readable label used in experiment CSV headers
    /// (e.g. `"2D"`, `"2D+h"`, `"sphere"`).
    pub fn label(&self) -> String {
        match self {
            Space::Euclidean(d) => format!("{d}D"),
            Space::EuclideanHeight(d) => format!("{d}D+h"),
            Space::Spherical { .. } => "sphere".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn euclidean_distance_matches_norm() {
        let s = Space::Euclidean(3);
        let a = Coord::from_vec(vec![1.0, 2.0, 2.0]);
        let b = Coord::origin(3);
        assert_eq!(s.distance(&a, &b), 3.0);
    }

    #[test]
    fn height_model_adds_heights() {
        let s = Space::EuclideanHeight(2);
        let a = Coord {
            vec: vec![3.0, 4.0],
            height: 2.0,
        };
        let b = Coord {
            vec: vec![0.0, 0.0],
            height: 1.0,
        };
        assert_eq!(s.distance(&a, &b), 5.0 + 3.0);
    }

    #[test]
    fn euclidean_ignores_heights_in_distance() {
        let s = Space::Euclidean(2);
        let a = Coord {
            vec: vec![3.0, 4.0],
            height: 99.0,
        };
        let b = Coord::origin(2);
        assert_eq!(s.distance(&a, &b), 5.0);
    }

    #[test]
    fn spherical_antipodal_distance() {
        let s = Space::Spherical { radius: 100.0 };
        let a = Coord::from_vec(vec![0.0, 0.0]);
        let b = Coord::from_vec(vec![0.0, std::f64::consts::PI]);
        let d = s.distance(&a, &b);
        assert!((d - std::f64::consts::PI * 100.0).abs() < 1e-6);
    }

    #[test]
    fn distance_flat_is_bit_identical_to_distance() {
        let mut r = rng();
        for space in [
            Space::Euclidean(3),
            Space::EuclideanHeight(2),
            Space::Spherical { radius: 6371.0 },
        ] {
            for _ in 0..50 {
                let a = space.random_coord(2.0, &mut r);
                let b = space.random_coord(2.0, &mut r);
                let via_coord = space.distance(&a, &b);
                let via_flat = space.distance_flat(&a.vec, a.height, &b.vec, b.height);
                assert_eq!(
                    via_coord.to_bits(),
                    via_flat.to_bits(),
                    "{space:?}: {via_coord} vs {via_flat}"
                );
            }
        }
    }

    #[test]
    fn distance_flat_batch_is_bit_identical_per_pair() {
        let mut r = rng();
        for space in [
            Space::Euclidean(3),
            Space::EuclideanHeight(2),
            Space::Spherical { radius: 6371.0 },
        ] {
            let a = space.random_coord(2.0, &mut r);
            let points: Vec<Coord> = (0..7).map(|_| space.random_coord(2.0, &mut r)).collect();
            let dim = space.dim();
            let mut rows = Vec::with_capacity(dim * points.len());
            let mut heights = Vec::with_capacity(points.len());
            for p in &points {
                rows.extend_from_slice(&p.vec);
                heights.push(p.height);
            }
            let mut out = vec![0.0; points.len()];
            space.distance_flat_batch(&a.vec, a.height, &rows, &heights, &mut out);
            for (p, got) in points.iter().zip(&out) {
                let want = space.distance(&a, p);
                assert_eq!(got.to_bits(), want.to_bits(), "{space:?}");
            }
        }
    }

    #[test]
    fn direction_is_unit_or_random_unit() {
        let s = Space::Euclidean(2);
        let mut r = rng();
        let a = Coord::from_vec(vec![5.0, 0.0]);
        let b = Coord::from_vec(vec![0.0, 0.0]);
        let u = s.direction(&a, &b, &mut r);
        assert!((u.norm() - 1.0).abs() < 1e-12);
        // Coincident points still get a unit direction.
        let u2 = s.direction(&b, &b, &mut r);
        assert!((u2.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_coord_within_bounds() {
        let s = Space::EuclideanHeight(4);
        let mut r = rng();
        for _ in 0..100 {
            let c = s.random_coord(50_000.0, &mut r);
            assert_eq!(c.dim(), 4);
            assert!(c.vec.iter().all(|x| x.abs() <= 50_000.0));
            assert!((0.0..=50_000.0).contains(&c.height));
        }
    }

    #[test]
    fn apply_zeroes_height_in_pure_euclidean() {
        let s = Space::Euclidean(2);
        let mut c = Coord::origin(2);
        let d = Displacement {
            vec: vec![1.0, 0.0],
            height: 3.0,
        };
        s.apply(&mut c, &d, 1.0);
        assert_eq!(c.height, 0.0);
        assert_eq!(c.vec, vec![1.0, 0.0]);
    }

    #[test]
    fn moving_toward_reduces_distance() {
        let s = Space::EuclideanHeight(3);
        let mut r = rng();
        let mut a = Coord {
            vec: vec![10.0, 0.0, 0.0],
            height: 5.0,
        };
        let b = Coord {
            vec: vec![0.0, 0.0, 0.0],
            height: 5.0,
        };
        let before = s.distance(&a, &b);
        let u = s.direction(&a, &b, &mut r);
        s.apply(&mut a, &u, -1.0); // move toward b
        assert!(s.distance(&a, &b) < before);
    }

    #[test]
    fn labels() {
        assert_eq!(Space::Euclidean(5).label(), "5D");
        assert_eq!(Space::EuclideanHeight(2).label(), "2D+h");
        assert_eq!(Space::Spherical { radius: 1.0 }.label(), "sphere");
    }
}
