//! Dense symmetric RTT matrices.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, symmetric matrix of round-trip times in milliseconds.
///
/// ```
/// use vcoord_topo::RttMatrix;
///
/// let mut m = RttMatrix::zeros(3);
/// m.set(0, 1, 42.0);
/// assert_eq!(m.rtt(1, 0), 42.0); // symmetric
/// assert_eq!(m.rtt(2, 2), 0.0);  // zero diagonal
/// assert!(m.validate().is_ok());
/// ```
///
/// The diagonal is always zero. Storage is a full row-major `n × n` buffer —
/// at the paper's scale (1740 nodes ⇒ ~24 MB) this is cheap and keeps the
/// simulator's innermost read (`rtt(i, j)`) a single indexed load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RttMatrix {
    n: usize,
    data: Vec<f64>,
}

impl RttMatrix {
    /// An `n × n` matrix of zeros.
    pub fn zeros(n: usize) -> Self {
        RttMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// RTT between `i` and `j` (zero when `i == j`).
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[inline]
    pub fn rtt(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set the RTT between `i` and `j`, updating both triangles.
    ///
    /// Setting a diagonal entry is a no-op (the diagonal stays zero).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        if i == j {
            return;
        }
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Iterate over the upper triangle as `(i, j, rtt)` with `i < j`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| ((i + 1)..self.n).map(move |j| (i, j, self.rtt(i, j))))
    }

    /// Apply `f` to every off-diagonal entry (both triangles kept in sync).
    pub fn map_in_place<F: FnMut(usize, usize, f64) -> f64>(&mut self, mut f: F) {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let v = f(i, j, self.rtt(i, j));
                self.set(i, j, v);
            }
        }
    }

    /// Restrict the matrix to the given node ids, in the given order.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn subset(&self, ids: &[usize]) -> RttMatrix {
        let mut m = RttMatrix::zeros(ids.len());
        for (a, &i) in ids.iter().enumerate() {
            for (b, &j) in ids.iter().enumerate().skip(a + 1) {
                m.set(a, b, self.rtt(i, j));
            }
        }
        m
    }

    /// Restrict to `k` nodes picked uniformly at random — the paper's method
    /// for deriving smaller groups from the 1740-node set (§5.2).
    ///
    /// When `k >= self.len()` the whole matrix is returned (shuffled order
    /// does not matter for a symmetric matrix, so the identity order is
    /// kept).
    pub fn random_subset<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> RttMatrix {
        if k >= self.n {
            return self.clone();
        }
        let mut ids: Vec<usize> = (0..self.n).collect();
        ids.shuffle(rng);
        ids.truncate(k);
        self.subset(&ids)
    }

    /// The smallest non-zero RTT, or `None` for matrices with < 2 nodes.
    pub fn min_rtt(&self) -> Option<f64> {
        self.pairs()
            .map(|(_, _, v)| v)
            .min_by(|a, b| a.partial_cmp(b).expect("RTTs are finite"))
    }

    /// Check structural invariants: symmetry, zero diagonal, finite and
    /// non-negative entries. Returns a human-readable violation if any.
    pub fn validate(&self) -> Result<(), String> {
        for i in 0..self.n {
            if self.data[i * self.n + i] != 0.0 {
                return Err(format!("diagonal entry ({i},{i}) is non-zero"));
            }
            for j in (i + 1)..self.n {
                let a = self.rtt(i, j);
                let b = self.rtt(j, i);
                if a != b {
                    return Err(format!("asymmetric pair ({i},{j}): {a} vs {b}"));
                }
                if !a.is_finite() || a < 0.0 {
                    return Err(format!("invalid RTT at ({i},{j}): {a}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample() -> RttMatrix {
        let mut m = RttMatrix::zeros(4);
        m.set(0, 1, 10.0);
        m.set(0, 2, 20.0);
        m.set(0, 3, 30.0);
        m.set(1, 2, 12.0);
        m.set(1, 3, 13.0);
        m.set(2, 3, 23.0);
        m
    }

    #[test]
    fn set_updates_both_triangles() {
        let m = sample();
        assert_eq!(m.rtt(1, 0), 10.0);
        assert_eq!(m.rtt(0, 1), 10.0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn diagonal_stays_zero() {
        let mut m = sample();
        m.set(2, 2, 99.0);
        assert_eq!(m.rtt(2, 2), 0.0);
    }

    #[test]
    fn pairs_covers_upper_triangle() {
        let m = sample();
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().all(|&(i, j, _)| i < j));
    }

    #[test]
    fn subset_preserves_rtts() {
        let m = sample();
        let s = m.subset(&[3, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.rtt(0, 1), 13.0);
    }

    #[test]
    fn random_subset_size_and_validity() {
        let m = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = m.random_subset(3, &mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.validate().is_ok());
        // k >= n returns the whole matrix.
        let whole = m.random_subset(10, &mut rng);
        assert_eq!(whole, m);
    }

    #[test]
    fn min_rtt_found() {
        assert_eq!(sample().min_rtt(), Some(10.0));
        assert_eq!(RttMatrix::zeros(1).min_rtt(), None);
    }

    #[test]
    fn validate_catches_nan() {
        let mut m = sample();
        m.set(0, 1, f64::NAN);
        assert!(m.validate().is_err());
    }
}
