//! # vcoord-topo
//!
//! Latency substrate for the `vcoord` workspace.
//!
//! The CoNEXT'06 study drives both coordinate systems with the *King* data
//! set: the measured pairwise RTTs of 1740 Internet DNS servers (Gummadi et
//! al., IMW'02). That matrix is not redistributable here, so this crate
//! provides, per the substitution policy in `DESIGN.md`:
//!
//! * [`RttMatrix`] — a dense, symmetric RTT matrix with sub-sampling support
//!   (the paper derives its group-size sweeps by picking nodes at random).
//! * [`synth`] — a **King-equivalent synthesizer**: a clustered
//!   Euclidean-plus-height embedding with log-normal access links,
//!   multiplicative measurement noise and explicit triangle-inequality
//!   violations, calibrated to the published King statistics.
//! * [`king`] — a loader for the p2psim King matrix formats, so the genuine
//!   data set drops in unchanged if available.
//! * [`stats`] — topology statistics (percentiles, TIV rate) used by tests
//!   and the `topology_explorer` example to validate the substitution.

pub mod king;
pub mod matrix;
pub mod stats;
pub mod synth;

pub use matrix::RttMatrix;
pub use stats::TopoStats;
pub use synth::{KingLike, KingLikeConfig};
