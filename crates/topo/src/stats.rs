//! Topology statistics: distributional summaries and triangle-inequality
//! violation (TIV) rates.

use crate::matrix::RttMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Summary statistics of a latency matrix.
///
/// Used to validate the synthetic King-equivalent topology against the
/// published characteristics of the real data set (see `DESIGN.md`), and
/// printed by the `topology_explorer` example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopoStats {
    /// Node count.
    pub nodes: usize,
    /// Smallest off-diagonal RTT (ms).
    pub min_ms: f64,
    /// Largest RTT (ms).
    pub max_ms: f64,
    /// Mean RTT (ms).
    pub mean_ms: f64,
    /// Median RTT (ms).
    pub median_ms: f64,
    /// 5th percentile (ms).
    pub p05_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// Fraction of sampled triples `(a,b,c)` where the direct path is longer
    /// than a detour: `rtt(a,c) > rtt(a,b) + rtt(b,c)`.
    pub tiv_fraction: f64,
}

impl TopoStats {
    /// Compute statistics over the full pair set and `tiv_samples` random
    /// triples.
    ///
    /// # Panics
    /// Panics if the matrix has fewer than 3 nodes.
    pub fn analyze<R: Rng + ?Sized>(m: &RttMatrix, tiv_samples: usize, rng: &mut R) -> TopoStats {
        assert!(m.len() >= 3, "need at least 3 nodes for TIV analysis");
        let mut vals: Vec<f64> = m.pairs().map(|(_, _, v)| v).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite RTTs"));
        let q = |p: f64| -> f64 {
            let idx = ((vals.len() - 1) as f64 * p).round() as usize;
            vals[idx]
        };
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;

        let mut tivs = 0usize;
        for _ in 0..tiv_samples {
            let a = rng.gen_range(0..m.len());
            let mut b = rng.gen_range(0..m.len());
            while b == a {
                b = rng.gen_range(0..m.len());
            }
            let mut c = rng.gen_range(0..m.len());
            while c == a || c == b {
                c = rng.gen_range(0..m.len());
            }
            if m.rtt(a, c) > m.rtt(a, b) + m.rtt(b, c) {
                tivs += 1;
            }
        }

        TopoStats {
            nodes: m.len(),
            min_ms: vals[0],
            max_ms: *vals.last().expect("non-empty"),
            mean_ms: mean,
            median_ms: q(0.5),
            p05_ms: q(0.05),
            p95_ms: q(0.95),
            tiv_fraction: if tiv_samples == 0 {
                0.0
            } else {
                tivs as f64 / tiv_samples as f64
            },
        }
    }
}

impl std::fmt::Display for TopoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} rtt[min={:.1} p5={:.1} median={:.1} mean={:.1} p95={:.1} max={:.1}]ms tiv={:.1}%",
            self.nodes,
            self.min_ms,
            self.p05_ms,
            self.median_ms,
            self.mean_ms,
            self.p95_ms,
            self.max_ms,
            self.tiv_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn triangle_free() -> RttMatrix {
        // Points on a line: 0 --10-- 1 --10-- 2; d(0,2)=20 (metric, no TIV).
        let mut m = RttMatrix::zeros(3);
        m.set(0, 1, 10.0);
        m.set(1, 2, 10.0);
        m.set(0, 2, 20.0);
        m
    }

    #[test]
    fn basic_stats() {
        let m = triangle_free();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let st = TopoStats::analyze(&m, 100, &mut rng);
        assert_eq!(st.nodes, 3);
        assert_eq!(st.min_ms, 10.0);
        assert_eq!(st.max_ms, 20.0);
        assert!((st.mean_ms - 40.0 / 3.0).abs() < 1e-9);
        assert_eq!(st.tiv_fraction, 0.0);
    }

    #[test]
    fn detects_tivs() {
        let mut m = triangle_free();
        m.set(0, 2, 50.0); // direct path much longer than the detour
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let st = TopoStats::analyze(&m, 600, &mut rng);
        // Of the 6 ordered (a,c) choices with distinct b, the (0,2)/(2,0)
        // pairs violate: expect roughly 1/3.
        assert!(st.tiv_fraction > 0.2 && st.tiv_fraction < 0.5);
    }

    #[test]
    fn display_is_readable() {
        let m = triangle_free();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let st = TopoStats::analyze(&m, 10, &mut rng);
        let s = format!("{st}");
        assert!(s.contains("nodes=3"));
        assert!(s.contains("median"));
    }
}
