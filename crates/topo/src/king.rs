//! Loaders for the real King data set (p2psim distribution formats).
//!
//! Two on-disk formats are supported, auto-detected per line:
//!
//! * **Triple format** — whitespace-separated `i j rtt` records, one pair per
//!   line. Indices may be 0- or 1-based (auto-detected from the minimum seen)
//!   and RTTs may be in microseconds (the p2psim `king.matrix` convention) or
//!   milliseconds — chosen by [`RttUnit`].
//! * **Matrix format** — `n` lines of `n` whitespace-separated RTTs.
//!
//! Lines starting with `#` or `%` are comments. Missing pairs default to the
//! average of present pairs, and a warning is logged at DEBUG level
//! (exceptional event, per the workspace logging policy).

use crate::matrix::RttMatrix;
use std::io::BufRead;
use std::path::Path;

/// Unit of the RTT values in a triple-format file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RttUnit {
    /// Values are microseconds (p2psim `king.matrix` convention).
    Micros,
    /// Values are milliseconds.
    Millis,
}

impl RttUnit {
    fn to_ms(self, v: f64) -> f64 {
        match self {
            RttUnit::Micros => v / 1000.0,
            RttUnit::Millis => v,
        }
    }
}

/// Errors produced by the King loaders.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed; payload is `(line_number, content)`.
    Parse(usize, String),
    /// The file described no usable pairs.
    Empty,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse(n, l) => write!(f, "parse error on line {n}: {l:?}"),
            LoadError::Empty => write!(f, "no usable RTT records in file"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Load a triple-format file (`i j rtt` per line) from a reader.
pub fn load_triples<R: BufRead>(reader: R, unit: RttUnit) -> Result<RttMatrix, LoadError> {
    let mut records: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_id = 0usize;
    let mut min_id = usize::MAX;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<f64> { s.and_then(|x| x.parse::<f64>().ok()) };
        let (i, j, v) = match (
            parse(parts.next()),
            parse(parts.next()),
            parse(parts.next()),
        ) {
            (Some(i), Some(j), Some(v)) if i >= 0.0 && j >= 0.0 && v >= 0.0 => {
                (i as usize, j as usize, v)
            }
            _ => return Err(LoadError::Parse(lineno + 1, t.to_string())),
        };
        max_id = max_id.max(i).max(j);
        min_id = min_id.min(i).min(j);
        records.push((i, j, unit.to_ms(v)));
    }
    if records.is_empty() {
        return Err(LoadError::Empty);
    }
    let base = if min_id >= 1 { 1 } else { 0 }; // 1-based files auto-detected
    let n = max_id - base + 1;
    let mut m = RttMatrix::zeros(n);
    let mut seen = vec![false; n * n];
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, j, v) in records {
        let (i, j) = (i - base, j - base);
        if i == j {
            continue;
        }
        m.set(i, j, v);
        seen[i * n + j] = true;
        seen[j * n + i] = true;
        sum += v;
        count += 1;
    }
    // Fill gaps with the mean; real King files have a few unmeasured pairs.
    let mean = sum / count.max(1) as f64;
    let mut gaps = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if !seen[i * n + j] {
                m.set(i, j, mean);
                gaps += 1;
            }
        }
    }
    if gaps > 0 {
        log::debug!("king loader: filled {gaps} missing pairs with mean {mean:.1} ms");
    }
    Ok(m)
}

/// Load a dense matrix-format file (one row per line) from a reader.
pub fn load_matrix<R: BufRead>(reader: R, unit: RttUnit) -> Result<RttMatrix, LoadError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let row: Result<Vec<f64>, _> = t.split_whitespace().map(|s| s.parse::<f64>()).collect();
        match row {
            Ok(r) => rows.push(r),
            Err(_) => return Err(LoadError::Parse(lineno + 1, t.to_string())),
        }
    }
    let n = rows.len();
    if n < 2 || rows.iter().any(|r| r.len() != n) {
        return Err(LoadError::Empty);
    }
    let mut m = RttMatrix::zeros(n);
    for (i, row) in rows.iter().enumerate() {
        for (j, back_row) in rows.iter().enumerate().skip(i + 1) {
            // Symmetrize by averaging, as p2psim does for King forward/back.
            let v = (row[j] + back_row[i]) / 2.0;
            m.set(i, j, unit.to_ms(v));
        }
    }
    Ok(m)
}

/// Load a King file from disk, auto-detecting triple vs matrix format from
/// the first data line (3 columns ⇒ triples unless the file is 3×3 square).
pub fn load_file<P: AsRef<Path>>(path: P, unit: RttUnit) -> Result<RttMatrix, LoadError> {
    let text = std::fs::read_to_string(path)?;
    let data_lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with('%'))
        .collect();
    if data_lines.is_empty() {
        return Err(LoadError::Empty);
    }
    let cols = data_lines[0].split_whitespace().count();
    let looks_like_matrix = cols == data_lines.len() && cols > 3;
    if cols == 3 && !looks_like_matrix {
        load_triples(std::io::Cursor::new(text), unit)
    } else {
        load_matrix(std::io::Cursor::new(text), unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn loads_zero_based_triples() {
        let data = "# comment\n0 1 10.0\n0 2 20\n1 2 15\n";
        let m = load_triples(Cursor::new(data), RttUnit::Millis).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.rtt(0, 1), 10.0);
        assert_eq!(m.rtt(2, 1), 15.0);
    }

    #[test]
    fn loads_one_based_triples_in_micros() {
        let data = "1 2 10000\n1 3 20000\n2 3 15000\n";
        let m = load_triples(Cursor::new(data), RttUnit::Micros).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.rtt(0, 1), 10.0);
    }

    #[test]
    fn fills_missing_pairs_with_mean() {
        let data = "0 1 10\n0 2 30\n"; // pair (1,2) missing
        let m = load_triples(Cursor::new(data), RttUnit::Millis).unwrap();
        assert_eq!(m.rtt(1, 2), 20.0);
    }

    #[test]
    fn rejects_garbage() {
        let data = "0 1 ten\n";
        assert!(matches!(
            load_triples(Cursor::new(data), RttUnit::Millis),
            Err(LoadError::Parse(1, _))
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            load_triples(Cursor::new("# nothing\n"), RttUnit::Millis),
            Err(LoadError::Empty)
        ));
    }

    #[test]
    fn loads_matrix_format_and_symmetrizes() {
        let data = "0 10 20\n12 0 30\n20 30 0\n";
        let m = load_matrix(Cursor::new(data), RttUnit::Millis).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.rtt(0, 1), 11.0); // (10+12)/2
        assert!(m.validate().is_ok());
    }

    #[test]
    fn rejects_ragged_matrix() {
        let data = "0 10\n10 0 5\n";
        assert!(load_matrix(Cursor::new(data), RttUnit::Millis).is_err());
    }
}
