//! King-dataset-equivalent topology synthesis.
//!
//! The generator follows the structural model behind Vivaldi's height
//! coordinates: a high-speed core in which latency behaves roughly like
//! Euclidean distance, plus per-node access links. Concretely:
//!
//! 1. Place `clusters` cluster centres ("continents") in a `core_dim`-D
//!    Euclidean core, scaled for intercontinental distances of ~60–160 ms.
//! 2. Assign each node to a cluster (skewed weights — the Internet's node
//!    distribution is uneven) and offset it with a Gaussian intra-cluster
//!    spread.
//! 3. Give each node a log-normal access-link *height* (DSL/dial-up tail).
//! 4. `rtt(i,j) = core_dist + h_i + h_j`, perturbed by symmetric log-normal
//!    measurement noise.
//! 5. Rewire a fraction of pairs onto "shortcut" routes (RTT scaled down),
//!    producing persistent triangle-inequality violations — the phenomenon
//!    [Lua et al. IMC'05] and [Zheng et al. PAM'05] document and the paper
//!    leans on when dismissing TIV-based security tests.
//! 6. Rescale so the median RTT matches the published King median.
//!
//! The defaults reproduce the King headline statistics (1740 nodes, median
//! RTT in the low hundreds of ms, a heavy right tail, a few percent TIVs)
//! while remaining imperfectly embeddable — which is what the attack dynamics
//! actually exercise. See `DESIGN.md` § Substitutions.

use crate::matrix::RttMatrix;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};
use serde::{Deserialize, Serialize};

/// Parameters for the King-equivalent generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KingLikeConfig {
    /// Number of nodes (the King data set has 1740).
    pub nodes: usize,
    /// Dimension of the synthetic core space.
    pub core_dim: usize,
    /// Number of clusters ("continents").
    pub clusters: usize,
    /// Std-dev of cluster centres in the core (controls intercontinental
    /// RTTs).
    pub inter_sigma_ms: f64,
    /// Std-dev of node offsets within a cluster.
    pub intra_sigma_ms: f64,
    /// Median of the log-normal access-link height.
    pub height_median_ms: f64,
    /// σ of the underlying normal for the height (tail heaviness).
    pub height_sigma: f64,
    /// σ of the symmetric log-normal measurement noise.
    pub noise_sigma: f64,
    /// Fraction of pairs rewired onto shortcut routes (TIV injection).
    pub shortcut_fraction: f64,
    /// Shortcut scaling range `(lo, hi)` applied multiplicatively.
    pub shortcut_scale: (f64, f64),
    /// Target median RTT after calibration; `None` disables rescaling.
    pub target_median_ms: Option<f64>,
    /// Lower clamp for every RTT.
    pub min_rtt_ms: f64,
}

impl Default for KingLikeConfig {
    fn default() -> Self {
        KingLikeConfig {
            nodes: 1740,
            core_dim: 5,
            clusters: 5,
            inter_sigma_ms: 34.0,
            intra_sigma_ms: 7.5,
            height_median_ms: 6.0,
            height_sigma: 0.8,
            noise_sigma: 0.10,
            shortcut_fraction: 0.04,
            shortcut_scale: (0.45, 0.85),
            target_median_ms: Some(98.0),
            min_rtt_ms: 1.0,
        }
    }
}

impl KingLikeConfig {
    /// Convenience: default parameters at a different node count.
    pub fn with_nodes(nodes: usize) -> Self {
        KingLikeConfig {
            nodes,
            ..Default::default()
        }
    }
}

/// The synthesizer. Stateless apart from its config; all randomness comes
/// from the caller-supplied RNG so topologies are reproducible.
#[derive(Debug, Clone, Default)]
pub struct KingLike {
    /// Generation parameters.
    pub config: KingLikeConfig,
}

impl KingLike {
    /// Create a generator with the given config.
    pub fn new(config: KingLikeConfig) -> Self {
        KingLike { config }
    }

    /// Generate a latency matrix.
    ///
    /// # Panics
    /// Panics if `nodes < 2` or `clusters == 0`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> RttMatrix {
        let c = &self.config;
        assert!(c.nodes >= 2, "need at least two nodes");
        assert!(c.clusters >= 1, "need at least one cluster");

        let centre_dist = Normal::new(0.0, c.inter_sigma_ms).expect("valid sigma");
        let offset_dist = Normal::new(0.0, c.intra_sigma_ms).expect("valid sigma");
        let height_dist =
            LogNormal::new(c.height_median_ms.ln(), c.height_sigma).expect("valid lognormal");
        let noise_dist = Normal::new(0.0, c.noise_sigma).expect("valid sigma");

        // 1. Cluster centres.
        let centres: Vec<Vec<f64>> = (0..c.clusters)
            .map(|_| (0..c.core_dim).map(|_| centre_dist.sample(rng)).collect())
            .collect();

        // 2. Skewed cluster membership: weight ∝ 1/(k+1), normalized.
        let weights: Vec<f64> = (0..c.clusters).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let wsum: f64 = weights.iter().sum();

        let mut positions: Vec<Vec<f64>> = Vec::with_capacity(c.nodes);
        let mut heights: Vec<f64> = Vec::with_capacity(c.nodes);
        for _ in 0..c.nodes {
            let mut pick = rng.gen_range(0.0..wsum);
            let mut cluster = 0;
            for (k, w) in weights.iter().enumerate() {
                if pick < *w {
                    cluster = k;
                    break;
                }
                pick -= w;
            }
            let pos: Vec<f64> = centres[cluster]
                .iter()
                .map(|x| x + offset_dist.sample(rng))
                .collect();
            positions.push(pos);
            // 3. Access heights; 15% of nodes are "well connected" stubs.
            let h = if rng.gen_bool(0.15) {
                rng.gen_range(0.3..1.5)
            } else {
                height_dist.sample(rng)
            };
            heights.push(h.min(400.0));
        }

        // 4. Pairwise RTTs with symmetric noise.
        let mut m = RttMatrix::zeros(c.nodes);
        for i in 0..c.nodes {
            for j in (i + 1)..c.nodes {
                let core: f64 = positions[i]
                    .iter()
                    .zip(&positions[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let base = core + heights[i] + heights[j];
                let noisy = base * noise_dist.sample(rng).exp();
                m.set(i, j, noisy.max(c.min_rtt_ms));
            }
        }

        // 5. Shortcut rewiring → triangle-inequality violations.
        if c.shortcut_fraction > 0.0 {
            let (lo, hi) = c.shortcut_scale;
            m.map_in_place(|_, _, v| {
                if rng.gen_bool(c.shortcut_fraction) {
                    (v * rng.gen_range(lo..hi)).max(c.min_rtt_ms)
                } else {
                    v
                }
            });
        }

        // 6. Median calibration.
        if let Some(target) = c.target_median_ms {
            let mut vals: Vec<f64> = m.pairs().map(|(_, _, v)| v).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = vals[vals.len() / 2];
            if median > 0.0 {
                let s = target / median;
                m.map_in_place(|_, _, v| (v * s).max(c.min_rtt_ms));
            }
        }

        debug_assert!(m.validate().is_ok());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TopoStats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn small() -> RttMatrix {
        let cfg = KingLikeConfig::with_nodes(200);
        KingLike::new(cfg).generate(&mut ChaCha12Rng::seed_from_u64(42))
    }

    #[test]
    fn generates_valid_matrix() {
        let m = small();
        assert_eq!(m.len(), 200);
        assert!(m.validate().is_ok());
        assert!(m.min_rtt().unwrap() >= 1.0);
    }

    #[test]
    fn median_is_calibrated() {
        let m = small();
        let st = TopoStats::analyze(&m, 2000, &mut ChaCha12Rng::seed_from_u64(0));
        assert!(
            (st.median_ms - 98.0).abs() < 8.0,
            "median {} not near target",
            st.median_ms
        );
    }

    #[test]
    fn has_heavy_tail_and_nearby_pairs() {
        let m = small();
        let st = TopoStats::analyze(&m, 2000, &mut ChaCha12Rng::seed_from_u64(0));
        assert!(st.p95_ms > 2.0 * st.median_ms * 0.8, "no right tail");
        // Vivaldi's neighbour rule needs pairs under 50 ms to exist.
        assert!(
            st.p05_ms < 50.0,
            "p5 {} too high for near-neighbour rule",
            st.p05_ms
        );
    }

    #[test]
    fn has_triangle_inequality_violations() {
        let m = small();
        let st = TopoStats::analyze(&m, 20_000, &mut ChaCha12Rng::seed_from_u64(0));
        assert!(
            st.tiv_fraction > 0.01,
            "expected persistent TIVs, got {}",
            st.tiv_fraction
        );
        assert!(st.tiv_fraction < 0.5, "TIV rate implausibly high");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = KingLikeConfig::with_nodes(50);
        let a = KingLike::new(cfg.clone()).generate(&mut ChaCha12Rng::seed_from_u64(9));
        let b = KingLike::new(cfg).generate(&mut ChaCha12Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = KingLikeConfig::with_nodes(50);
        let a = KingLike::new(cfg.clone()).generate(&mut ChaCha12Rng::seed_from_u64(1));
        let b = KingLike::new(cfg).generate(&mut ChaCha12Rng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn no_shortcuts_means_fewer_tivs() {
        let mut cfg = KingLikeConfig::with_nodes(150);
        cfg.shortcut_fraction = 0.0;
        cfg.noise_sigma = 0.0;
        let m = KingLike::new(cfg).generate(&mut ChaCha12Rng::seed_from_u64(3));
        let st = TopoStats::analyze(&m, 20_000, &mut ChaCha12Rng::seed_from_u64(0));
        // A pure height-augmented metric has zero TIVs: d(a,c) ≤ core(a,b) +
        // core(b,c) + h_a + h_c < d(a,b) + d(b,c) always.
        assert!(st.tiv_fraction < 1e-9, "tiv {}", st.tiv_fraction);
    }
}
