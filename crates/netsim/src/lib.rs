//! # vcoord-netsim
//!
//! A deterministic, synchronous discrete-event network simulator — the
//! workspace's stand-in for p2psim (which the paper uses for Vivaldi) and for
//! the authors' bespoke event-driven NPS simulator.
//!
//! Following the workspace guide conformance notes (`DESIGN.md`): the
//! simulation is CPU-bound and deterministic, so the engine is *synchronous*
//! event-driven code — no async runtime — in the spirit of smoltcp's
//! "standalone, event-driven" design. Parallelism (across independent
//! simulation runs) belongs to the caller, not this engine.
//!
//! * [`Engine`] / [`World`] / [`Scheduler`] — the event loop. Protocols
//!   implement [`World`]; the engine owns the clock and the queue and
//!   guarantees deterministic FIFO ordering among same-timestamp events.
//! * [`SeedStream`] — labelled, portable RNG streams derived from one master
//!   seed (ChaCha12; stable across platforms and `rand` upgrades).
//! * [`LinkModel`] — smoltcp-style fault injection (probe loss, jitter) used
//!   by the examples' `--loss`/`--jitter` flags.
//! * [`simlog`] — a minimal `log` backend for binaries (TRACE = normal
//!   events, DEBUG = exceptional events, per the logging policy).

pub mod engine;
pub mod link;
pub mod seed;
pub mod simlog;
pub mod time;

pub use engine::{Engine, Event, NodeId, Scheduler, World};
pub use link::LinkModel;
pub use seed::SeedStream;
pub use time::{Duration, Time, MILLIS, SECS, TICK_MS};
