//! Minimal `log` backend for workspace binaries.
//!
//! The library crates only *emit* through the `log` facade (TRACE for normal
//! events, DEBUG for exceptional events, following the smoltcp convention);
//! this module lets examples and the figure harness print those records
//! without pulling in a logging framework. The level comes from the
//! `VCOORD_LOG` environment variable (`error`..`trace`, default `warn`).

use log::{Level, LevelFilter, Metadata, Record};
use std::sync::Once;

struct SimLogger {
    level: LevelFilter,
}

impl log::Log for SimLogger {
    fn enabled(&self, metadata: &Metadata) -> bool {
        metadata.level() <= self.level
    }

    fn log(&self, record: &Record) {
        if !self.enabled(record.metadata()) {
            return;
        }
        let tag = match record.level() {
            Level::Error => "E",
            Level::Warn => "W",
            Level::Info => "I",
            Level::Debug => "D",
            Level::Trace => "T",
        };
        eprintln!("[{tag} {}] {}", record.target(), record.args());
    }

    fn flush(&self) {}
}

static INIT: Once = Once::new();

/// Install the logger (idempotent). Reads `VCOORD_LOG` for the level.
pub fn init() {
    INIT.call_once(|| {
        let level = match std::env::var("VCOORD_LOG").as_deref() {
            Ok("error") => LevelFilter::Error,
            Ok("warn") => LevelFilter::Warn,
            Ok("info") => LevelFilter::Info,
            Ok("debug") => LevelFilter::Debug,
            Ok("trace") => LevelFilter::Trace,
            Ok("off") => LevelFilter::Off,
            _ => LevelFilter::Warn,
        };
        // Leak one small allocation for the lifetime of the process; this is
        // the standard pattern for installing a global logger.
        let logger: &'static SimLogger = Box::leak(Box::new(SimLogger { level }));
        if log::set_logger(logger).is_ok() {
            log::set_max_level(level);
        }
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn init_is_idempotent() {
        super::init();
        super::init();
        log::debug!("logger smoke test");
    }
}
