//! Minimal `log` backend for workspace binaries.
//!
//! The library crates only *emit* through the `log` facade (TRACE for normal
//! events, DEBUG for exceptional events, following the smoltcp convention);
//! this module lets examples and the figure harness print those records
//! without pulling in a logging framework.
//!
//! Configuration comes from the `VCOORD_LOG` environment variable, an
//! env_logger-style comma-separated spec:
//!
//! ```text
//! VCOORD_LOG=warn                          # one global level (default warn)
//! VCOORD_LOG=warn,vcoord_defense=debug     # per-target override
//! VCOORD_LOG=off,vcoord_nps::sim=trace     # silence all but one module
//! ```
//!
//! Bare entries set the default level (`error`..`trace`, `off`); `target=
//! level` entries override it for any record whose target starts with that
//! module path (longest prefix wins). Unparseable entries are *not*
//! silently dropped: the logger installs with the remaining spec and emits
//! one warning naming each bad entry.
//!
//! Setting `VCOORD_LOG_TS` to anything non-empty prefixes every record
//! with the monotonic elapsed time since logger installation.

use log::{Level, LevelFilter, Metadata, Record};
use std::sync::Once;
use std::time::Instant;

struct SimLogger {
    default: LevelFilter,
    /// `(target-prefix, level)` overrides; longest matching prefix wins.
    targets: Vec<(String, LevelFilter)>,
    timestamps: bool,
    start: Instant,
}

fn parse_level(s: &str) -> Option<LevelFilter> {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" => Some(LevelFilter::Error),
        "warn" => Some(LevelFilter::Warn),
        "info" => Some(LevelFilter::Info),
        "debug" => Some(LevelFilter::Debug),
        "trace" => Some(LevelFilter::Trace),
        "off" => Some(LevelFilter::Off),
        _ => None,
    }
}

/// A parsed `VCOORD_LOG` spec: the default level, per-target overrides,
/// and any entries that failed to parse (reported verbatim).
struct LogSpec {
    default: LevelFilter,
    targets: Vec<(String, LevelFilter)>,
    bad: Vec<String>,
}

fn parse_spec(spec: &str) -> LogSpec {
    let mut out = LogSpec {
        default: LevelFilter::Warn,
        targets: Vec::new(),
        bad: Vec::new(),
    };
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        if let Some((target, level)) = entry.split_once('=') {
            match parse_level(level) {
                Some(l) if !target.trim().is_empty() => {
                    out.targets.push((target.trim().to_string(), l));
                }
                _ => out.bad.push(entry.to_string()),
            }
        } else {
            match parse_level(entry) {
                Some(l) => out.default = l,
                None => out.bad.push(entry.to_string()),
            }
        }
    }
    out
}

/// Does `target` (a module path like `vcoord_defense::engine`) fall under
/// `prefix` (a module path like `vcoord_defense`)?
fn target_matches(target: &str, prefix: &str) -> bool {
    target == prefix || (target.starts_with(prefix) && target[prefix.len()..].starts_with("::"))
}

impl SimLogger {
    /// The level filter in effect for `target`: the longest matching
    /// prefix override, or the default.
    fn effective(&self, target: &str) -> LevelFilter {
        self.targets
            .iter()
            .filter(|(prefix, _)| target_matches(target, prefix))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|&(_, level)| level)
            .unwrap_or(self.default)
    }

    /// The most verbose level any target can reach — what
    /// `log::set_max_level` needs so the facade's early-out stays correct.
    fn max_level(&self) -> LevelFilter {
        self.targets
            .iter()
            .map(|&(_, l)| l)
            .fold(self.default, |a, b| a.max(b))
    }
}

impl log::Log for SimLogger {
    fn enabled(&self, metadata: &Metadata) -> bool {
        metadata.level() <= self.effective(metadata.target())
    }

    fn log(&self, record: &Record) {
        if !self.enabled(record.metadata()) {
            return;
        }
        let tag = match record.level() {
            Level::Error => "E",
            Level::Warn => "W",
            Level::Info => "I",
            Level::Debug => "D",
            Level::Trace => "T",
        };
        if self.timestamps {
            let elapsed = self.start.elapsed().as_secs_f64();
            eprintln!(
                "[{elapsed:10.3}s {tag} {}] {}",
                record.target(),
                record.args()
            );
        } else {
            eprintln!("[{tag} {}] {}", record.target(), record.args());
        }
    }

    fn flush(&self) {}
}

static INIT: Once = Once::new();
static FAULT_DROP_WARNING: Once = Once::new();

/// Emit one chaos fault event at INFO under `target`.
///
/// Fault injections (crashes, restarts, evictions, fail-overs) are rare,
/// operator-relevant events, so they log at INFO rather than the TRACE/
/// DEBUG convention of normal sim records. At the default `VCOORD_LOG`
/// level (warn) they would all be filtered; instead of flooding the log or
/// dropping them silently, the first filtered fault event emits a single
/// process-wide WARN explaining how to surface them, and every subsequent
/// drop is free.
pub fn fault_event(target: &str, args: std::fmt::Arguments<'_>) {
    if log::log_enabled!(target: target, log::Level::Info) {
        log::info!(target: target, "{args}");
    } else if log::max_level() > LevelFilter::Off {
        FAULT_DROP_WARNING.call_once(|| {
            log::warn!(
                "simlog: fault events are below the current log level and are being \
                 dropped; set VCOORD_LOG=info (or {target}=info) to see them \
                 (this warning prints once)"
            );
        });
    }
}

/// Install the logger (idempotent). Reads `VCOORD_LOG` for the level spec
/// and `VCOORD_LOG_TS` for the elapsed-time prefix.
pub fn init() {
    INIT.call_once(|| {
        let spec = parse_spec(std::env::var("VCOORD_LOG").as_deref().unwrap_or(""));
        let timestamps = std::env::var("VCOORD_LOG_TS").is_ok_and(|v| !v.is_empty());
        // Leak one small allocation for the lifetime of the process; this is
        // the standard pattern for installing a global logger.
        let logger: &'static SimLogger = Box::leak(Box::new(SimLogger {
            default: spec.default,
            targets: spec.targets,
            timestamps,
            start: Instant::now(),
        }));
        if log::set_logger(logger).is_ok() {
            log::set_max_level(logger.max_level());
        }
        for bad in &spec.bad {
            log::warn!(
                "simlog: ignoring unparseable VCOORD_LOG entry {bad:?} \
                 (expected a level or target=level; levels are error..trace, off)"
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logger(spec: &str, timestamps: bool) -> SimLogger {
        let parsed = parse_spec(spec);
        SimLogger {
            default: parsed.default,
            targets: parsed.targets,
            timestamps,
            start: Instant::now(),
        }
    }

    #[test]
    fn init_is_idempotent() {
        super::init();
        super::init();
        log::debug!("logger smoke test");
    }

    #[test]
    fn fault_events_warn_once_not_per_entry() {
        super::init();
        for n in 0..8 {
            fault_event("vcoord_chaos", format_args!("crash node={n}"));
        }
        // Either INFO is enabled for the target (events delivered, no
        // warning needed), logging is fully off (nothing to warn through),
        // or the one-shot warning has fired — exactly once, by `Once`.
        assert!(
            log::log_enabled!(target: "vcoord_chaos", log::Level::Info)
                || log::max_level() == LevelFilter::Off
                || FAULT_DROP_WARNING.is_completed()
        );
    }

    #[test]
    fn bare_levels_set_the_default() {
        assert_eq!(parse_spec("debug").default, LevelFilter::Debug);
        assert_eq!(parse_spec("").default, LevelFilter::Warn);
        assert_eq!(parse_spec("off").default, LevelFilter::Off);
        // Last bare entry wins, like env_logger.
        assert_eq!(parse_spec("debug,error").default, LevelFilter::Error);
    }

    #[test]
    fn per_target_overrides_win_by_longest_prefix() {
        let l = logger(
            "warn,vcoord_defense=debug,vcoord_defense::engine=trace",
            false,
        );
        assert_eq!(l.effective("vcoord_nps::sim"), LevelFilter::Warn);
        assert_eq!(l.effective("vcoord_defense"), LevelFilter::Debug);
        assert_eq!(l.effective("vcoord_defense::history"), LevelFilter::Debug);
        assert_eq!(l.effective("vcoord_defense::engine"), LevelFilter::Trace);
        assert_eq!(
            l.effective("vcoord_defense::engine::inner"),
            LevelFilter::Trace
        );
        // Prefix match is per path segment: no false match on a name that
        // merely starts with the same characters.
        assert_eq!(l.effective("vcoord_defensekit"), LevelFilter::Warn);
        assert_eq!(l.max_level(), LevelFilter::Trace);
    }

    #[test]
    fn unparseable_entries_are_collected_not_swallowed() {
        let spec = parse_spec("dbug");
        assert_eq!(spec.default, LevelFilter::Warn);
        assert_eq!(spec.bad, vec!["dbug".to_string()]);
        let spec = parse_spec("warn,vcoord_nps=loud,=debug");
        assert_eq!(spec.default, LevelFilter::Warn);
        assert_eq!(
            spec.bad,
            vec!["vcoord_nps=loud".to_string(), "=debug".to_string()]
        );
        assert!(spec.targets.is_empty());
    }

    #[test]
    fn off_default_with_one_loud_target() {
        let l = logger("off,vcoord_nps::sim=trace", false);
        assert_eq!(l.effective("vcoord_vivaldi::sim"), LevelFilter::Off);
        assert_eq!(l.effective("vcoord_nps::sim"), LevelFilter::Trace);
        assert_eq!(l.max_level(), LevelFilter::Trace);
    }
}
