//! The discrete-event engine: queue, scheduler and event loop.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of a simulated node.
pub type NodeId = usize;

/// An event delivered to a [`World`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event<P> {
    /// A timer registered by the world fired at `node` with an opaque `tag`.
    Timer {
        /// Node the timer belongs to.
        node: NodeId,
        /// Caller-defined discriminator (e.g. "probe round", "reposition").
        tag: u64,
    },
    /// A message sent from `from` arrives at `to`.
    Message {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Protocol-defined payload.
        payload: P,
    },
}

struct Scheduled<P> {
    at: Time,
    seq: u64,
    event: Event<P>,
}

// Order by (at, seq) only — `seq` gives deterministic FIFO among ties.
// BinaryHeap is a max-heap, so comparisons are reversed.
impl<P> Ord for Scheduled<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
impl<P> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for Scheduled<P> {}

/// The scheduling interface handed to [`World`] callbacks.
///
/// Worlds schedule timers and message deliveries at *absolute* or *relative*
/// simulated times; the engine owns the clock. Scheduling in the past is
/// clamped to "now" (and logged at DEBUG as an exceptional event) rather
/// than panicking, so adversarial arithmetic cannot wedge a run.
pub struct Scheduler<P> {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Scheduled<P>>,
}

impl<P> Scheduler<P> {
    fn new() -> Self {
        Scheduler {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// Current simulated time (ms).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn push(&mut self, at: Time, event: Event<P>) {
        let at = if at < self.now {
            log::debug!(
                "event scheduled in the past (at={at}, now={}); clamping",
                self.now
            );
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Fire a timer for `node` at absolute time `at`.
    pub fn timer_at(&mut self, at: Time, node: NodeId, tag: u64) {
        self.push(at, Event::Timer { node, tag });
    }

    /// Fire a timer for `node` after `delay` ms.
    pub fn timer_after(&mut self, delay: Time, node: NodeId, tag: u64) {
        self.timer_at(self.now.saturating_add(delay), node, tag);
    }

    /// Deliver `payload` from `from` to `to` at absolute time `at`.
    pub fn deliver_at(&mut self, at: Time, from: NodeId, to: NodeId, payload: P) {
        self.push(at, Event::Message { from, to, payload });
    }

    /// Deliver `payload` after `delay` ms (the one-way or round-trip latency,
    /// as the protocol chooses to model it).
    pub fn deliver_after(&mut self, delay: Time, from: NodeId, to: NodeId, payload: P) {
        self.deliver_at(self.now.saturating_add(delay), from, to, payload);
    }
}

/// A protocol simulation driven by the engine.
///
/// Implementations hold all protocol state (node tables, coordinates,
/// adversaries) and react to timers and message arrivals, scheduling further
/// events through the [`Scheduler`].
pub trait World {
    /// Message payload type carried between nodes.
    type Payload;

    /// A timer fired.
    fn on_timer(&mut self, sched: &mut Scheduler<Self::Payload>, node: NodeId, tag: u64);

    /// A message arrived.
    fn on_message(
        &mut self,
        sched: &mut Scheduler<Self::Payload>,
        from: NodeId,
        to: NodeId,
        payload: Self::Payload,
    );
}

/// The event loop: a clock plus a deterministic priority queue.
///
/// ```
/// use vcoord_netsim::{Engine, Event, NodeId, Scheduler, World};
///
/// struct PingPong { pings: u32 }
/// impl World for PingPong {
///     type Payload = &'static str;
///     fn on_timer(&mut self, s: &mut Scheduler<&'static str>, node: NodeId, _tag: u64) {
///         s.deliver_after(10, node, 1 - node, "ping");
///     }
///     fn on_message(&mut self, s: &mut Scheduler<&'static str>, from: NodeId, to: NodeId, m: &'static str) {
///         if m == "ping" {
///             self.pings += 1;
///             s.deliver_after(10, to, from, "pong");
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// engine.scheduler().timer_at(0, 0, 0);
/// let mut world = PingPong { pings: 0 };
/// engine.run_until(&mut world, 100);
/// assert_eq!(world.pings, 1);
/// ```
pub struct Engine<P> {
    sched: Scheduler<P>,
}

impl<P> Default for Engine<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> Engine<P> {
    /// A fresh engine with the clock at zero and an empty queue.
    pub fn new() -> Self {
        Engine {
            sched: Scheduler::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Access the scheduler (e.g. to seed initial timers).
    pub fn scheduler(&mut self) -> &mut Scheduler<P> {
        &mut self.sched
    }

    /// Process one event; returns `false` when the queue is empty.
    pub fn step<W: World<Payload = P>>(&mut self, world: &mut W) -> bool {
        let Some(s) = self.sched.queue.pop() else {
            return false;
        };
        debug_assert!(s.at >= self.sched.now, "time went backwards");
        self.sched.now = s.at;
        match s.event {
            Event::Timer { node, tag } => world.on_timer(&mut self.sched, node, tag),
            Event::Message { from, to, payload } => {
                world.on_message(&mut self.sched, from, to, payload)
            }
        }
        true
    }

    /// Run until the clock would pass `t` (events at exactly `t` are
    /// processed). Returns the number of events processed.
    pub fn run_until<W: World<Payload = P>>(&mut self, world: &mut W, t: Time) -> usize {
        let mut processed = 0;
        while let Some(head) = self.sched.queue.peek() {
            if head.at > t {
                break;
            }
            self.step(world);
            processed += 1;
        }
        // Advance the clock to t even if the queue drained early.
        if self.sched.now < t {
            self.sched.now = t;
        }
        processed
    }

    /// Run until the queue is empty. Returns events processed.
    pub fn run_to_completion<W: World<Payload = P>>(&mut self, world: &mut W) -> usize {
        let mut processed = 0;
        while self.step(world) {
            processed += 1;
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Records the order events were seen in.
    struct Recorder {
        log: RefCell<Vec<(Time, String)>>,
    }

    impl World for Recorder {
        type Payload = String;
        fn on_timer(&mut self, s: &mut Scheduler<String>, node: NodeId, tag: u64) {
            self.log
                .borrow_mut()
                .push((s.now(), format!("t{node}:{tag}")));
        }
        fn on_message(&mut self, s: &mut Scheduler<String>, from: NodeId, to: NodeId, p: String) {
            self.log
                .borrow_mut()
                .push((s.now(), format!("m{from}->{to}:{p}")));
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            log: RefCell::new(Vec::new()),
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e: Engine<String> = Engine::new();
        e.scheduler().timer_at(30, 0, 3);
        e.scheduler().timer_at(10, 0, 1);
        e.scheduler().timer_at(20, 0, 2);
        let mut w = recorder();
        e.run_to_completion(&mut w);
        let log = w.log.into_inner();
        assert_eq!(
            log,
            vec![
                (10, "t0:1".into()),
                (20, "t0:2".into()),
                (30, "t0:3".into())
            ]
        );
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut e: Engine<String> = Engine::new();
        for tag in 0..5 {
            e.scheduler().timer_at(7, 0, tag);
        }
        let mut w = recorder();
        e.run_to_completion(&mut w);
        let tags: Vec<String> = w.log.into_inner().into_iter().map(|(_, s)| s).collect();
        assert_eq!(tags, vec!["t0:0", "t0:1", "t0:2", "t0:3", "t0:4"]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut e: Engine<String> = Engine::new();
        e.scheduler().timer_at(10, 0, 0);
        e.scheduler().timer_at(50, 0, 1);
        let mut w = recorder();
        let n = e.run_until(&mut w, 20);
        assert_eq!(n, 1);
        assert_eq!(e.now(), 20);
        assert_eq!(e.scheduler().pending(), 1);
        // Resume picks up the rest.
        e.run_until(&mut w, 100);
        assert_eq!(e.now(), 100);
        assert_eq!(w.log.into_inner().len(), 2);
    }

    #[test]
    fn past_scheduling_is_clamped_to_now() {
        struct PastSched;
        impl World for PastSched {
            type Payload = ();
            fn on_timer(&mut self, s: &mut Scheduler<()>, node: NodeId, tag: u64) {
                if tag == 0 {
                    // Absolute time 5 is in the past once now=10.
                    s.timer_at(5, node, 1);
                }
            }
            fn on_message(&mut self, _: &mut Scheduler<()>, _: NodeId, _: NodeId, _: ()) {}
        }
        let mut e: Engine<()> = Engine::new();
        e.scheduler().timer_at(10, 0, 0);
        let n = e.run_to_completion(&mut PastSched);
        assert_eq!(n, 2, "clamped event still fires");
        assert_eq!(e.now(), 10);
    }

    #[test]
    fn message_roundtrip_latency() {
        struct Echo;
        impl World for Echo {
            type Payload = u32;
            fn on_timer(&mut self, s: &mut Scheduler<u32>, _: NodeId, _: u64) {
                s.deliver_after(25, 0, 1, 99);
            }
            fn on_message(&mut self, s: &mut Scheduler<u32>, from: NodeId, to: NodeId, p: u32) {
                if p == 99 {
                    s.deliver_after(25, to, from, 100);
                } else {
                    assert_eq!(s.now(), 50);
                }
            }
        }
        let mut e: Engine<u32> = Engine::new();
        e.scheduler().timer_at(0, 0, 0);
        assert_eq!(e.run_to_completion(&mut Echo), 3);
        assert_eq!(e.now(), 50);
    }

    #[test]
    fn deterministic_event_counts() {
        // Two identical runs process identical event sequences.
        let run = || {
            let mut e: Engine<String> = Engine::new();
            for i in 0..100u64 {
                e.scheduler().timer_at(i % 17, (i % 5) as NodeId, i);
            }
            let mut w = recorder();
            e.run_to_completion(&mut w);
            w.log.into_inner()
        };
        assert_eq!(run(), run());
    }
}
