//! Link-level fault injection.
//!
//! Mirrors smoltcp's example-level fault injection (`--drop-chance` etc.):
//! every example binary in this workspace exposes `--loss` and `--jitter`
//! flags backed by this model, so the response of the coordinate systems to
//! *benign* adverse network conditions can be demonstrated alongside the
//! malicious attacks.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Probe-level fault model applied on top of the base RTT matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Probability that a probe is lost entirely (no response).
    pub loss: f64,
    /// Half-width of uniform symmetric jitter added to the RTT, in ms.
    pub jitter_ms: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            loss: 0.0,
            jitter_ms: 0.0,
        }
    }
}

impl LinkModel {
    /// The identity model: no loss, no jitter.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// `true` if this model never alters probes.
    pub fn is_ideal(&self) -> bool {
        self.loss <= 0.0 && self.jitter_ms <= 0.0
    }

    /// Apply the model to a probe with base round-trip time `rtt_ms`.
    ///
    /// Returns `None` when the probe is lost, otherwise the perturbed RTT.
    /// Jitter is sampled from the *inclusive* symmetric band
    /// `[-jitter_ms, +jitter_ms]` — a half-open `-j..j` range would bias
    /// the band by excluding `+jitter_ms` while admitting `-jitter_ms`.
    /// The perturbed RTT is floored at **0.1 ms**: a measured round-trip
    /// can be arbitrarily small but never zero or negative, and downstream
    /// consumers (relative error, coordinate updates) divide by it.
    pub fn apply<R: Rng + ?Sized>(&self, rtt_ms: f64, rng: &mut R) -> Option<f64> {
        if self.loss > 0.0 && rng.gen_bool(self.loss.clamp(0.0, 1.0)) {
            return None;
        }
        let jit = if self.jitter_ms > 0.0 {
            rng.gen_range(-self.jitter_ms..=self.jitter_ms)
        } else {
            0.0
        };
        Some((rtt_ms + jit).max(0.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ideal_passes_through() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = LinkModel::ideal();
        assert!(m.is_ideal());
        assert_eq!(m.apply(42.0, &mut rng), Some(42.0));
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = LinkModel {
            loss: 1.0,
            jitter_ms: 0.0,
        };
        for _ in 0..32 {
            assert_eq!(m.apply(42.0, &mut rng), None);
        }
    }

    #[test]
    fn jitter_stays_in_band_and_positive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = LinkModel {
            loss: 0.0,
            jitter_ms: 5.0,
        };
        for _ in 0..500 {
            let v = m.apply(10.0, &mut rng).unwrap();
            assert!((5.0..=15.0).contains(&v), "{v}");
        }
        // Tiny base RTT cannot go non-positive.
        for _ in 0..500 {
            assert!(m.apply(0.2, &mut rng).unwrap() >= 0.1);
        }
    }

    #[test]
    fn partial_loss_rate_is_plausible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = LinkModel {
            loss: 0.25,
            jitter_ms: 0.0,
        };
        let lost = (0..4000)
            .filter(|_| m.apply(10.0, &mut rng).is_none())
            .count();
        let rate = lost as f64 / 4000.0;
        assert!((0.2..0.3).contains(&rate), "rate={rate}");
    }
}
