//! Simulated time.
//!
//! The simulator counts integer **milliseconds** — the natural unit for RTT
//! work (King RTTs range from ~1 ms to a few seconds) — in a `u64`, giving
//! ~585 million simulated years of range; overflow is not a practical
//! concern.

/// A simulated instant, in milliseconds since simulation start.
pub type Time = u64;

/// A simulated span, in milliseconds.
pub type Duration = u64;

/// One millisecond.
pub const MILLIS: Duration = 1;

/// One second.
pub const SECS: Duration = 1_000;

/// One *simulation tick*, the paper's reporting unit for Vivaldi: "1 tick is
/// roughly 17 seconds" (§5.2). Metrics are sampled on tick boundaries.
pub const TICK_MS: Duration = 17 * SECS;

/// Convert a floating-point millisecond value (e.g. an RTT plus adversarial
/// delay) to a simulated duration, rounding to the nearest millisecond and
/// clamping negatives to zero.
#[inline]
pub fn from_ms_f64(ms: f64) -> Duration {
    if ms <= 0.0 || !ms.is_finite() {
        0
    } else {
        ms.round() as Duration
    }
}

/// Convert ticks to milliseconds.
#[inline]
pub fn ticks(n: u64) -> Duration {
    n * TICK_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(from_ms_f64(1.4), 1);
        assert_eq!(from_ms_f64(1.6), 2);
        assert_eq!(from_ms_f64(-3.0), 0);
        assert_eq!(from_ms_f64(f64::NAN), 0);
        assert_eq!(ticks(2), 34_000);
    }
}
