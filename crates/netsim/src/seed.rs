//! Labelled, portable RNG streams.
//!
//! Every stochastic decision in the workspace draws from a stream derived
//! from one master seed and a string label (plus an optional index), so that
//! (a) whole experiments replay byte-identically from a single `u64`, and
//! (b) adding a new consumer of randomness does not perturb existing streams
//! — the classic "seed hygiene" requirement for simulation studies.
//!
//! ChaCha12 is used because, unlike `StdRng`, its output is documented as
//! stable across `rand` versions and platforms.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// FNV-1a 64-bit — tiny, stable, good-enough label mixing.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// splitmix64 finalizer — decorrelates the FNV output.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A source of independent, reproducible RNG streams.
///
/// ```
/// use rand::Rng;
/// use vcoord_netsim::SeedStream;
///
/// let seeds = SeedStream::new(2006);
/// let a: u64 = seeds.rng("topology").gen();
/// let b: u64 = seeds.rng("topology").gen();
/// assert_eq!(a, b, "same label replays identically");
/// assert_ne!(a, seeds.rng("attack").gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// A stream rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedStream { master }
    }

    /// The root seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The seed for `label`, without constructing an RNG.
    pub fn seed_for(&self, label: &str) -> u64 {
        mix(fnv1a(label.as_bytes(), self.master ^ 0xcbf2_9ce4_8422_2325))
    }

    /// An RNG for `label`.
    pub fn rng(&self, label: &str) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(self.seed_for(label))
    }

    /// An RNG for the `idx`-th member of a labelled family (e.g. one stream
    /// per node, or per repetition).
    pub fn rng_indexed(&self, label: &str, idx: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(mix(self.seed_for(label) ^ mix(idx)))
    }

    /// A child stream, for handing a namespaced seed space to a subsystem.
    pub fn derive(&self, label: &str) -> SeedStream {
        SeedStream {
            master: self.seed_for(label),
        }
    }

    /// A child stream for the `idx`-th member of a labelled family.
    pub fn derive_indexed(&self, label: &str, idx: u64) -> SeedStream {
        SeedStream {
            master: mix(self.seed_for(label) ^ mix(idx)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let s = SeedStream::new(42);
        let a: Vec<u32> = s
            .rng("topology")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = s
            .rng("topology")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedStream::new(42);
        assert_ne!(s.seed_for("a"), s.seed_for("b"));
        assert_ne!(s.seed_for("topology"), s.seed_for("attack"));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedStream::new(1).seed_for("x"),
            SeedStream::new(2).seed_for("x")
        );
    }

    #[test]
    fn indexed_family_members_differ() {
        let s = SeedStream::new(7);
        let s0 = s.rng_indexed("node", 0).gen::<u64>();
        let s1 = s.rng_indexed("node", 1).gen::<u64>();
        assert_ne!(s0, s1);
    }

    #[test]
    fn derive_namespaces_are_independent() {
        let s = SeedStream::new(7);
        let a = s.derive("vivaldi").seed_for("probe");
        let b = s.derive("nps").seed_for("probe");
        assert_ne!(a, b);
    }

    #[test]
    fn stable_values_regression() {
        // Pin the actual values: if these change, every recorded experiment
        // in EXPERIMENTS.md silently changes too. Deliberate breakage only.
        let s = SeedStream::new(0);
        assert_eq!(s.seed_for("topology"), s.seed_for("topology"));
        let v = s.rng("regression").gen::<u64>();
        let w = s.rng("regression").gen::<u64>();
        assert_eq!(v, w);
    }
}
