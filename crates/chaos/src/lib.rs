//! Fault injection for the coordinate sims.
//!
//! The paper studies attacks on a pristine network; this crate supplies the
//! *benign* adversity a deployment actually faces — churn, correlated loss
//! bursts, RTT spikes, partitions — so the `chaos-*` figure family can ask
//! whether the defenses still discriminate when the baseline is noisy
//! (does frog-boiling hide inside churn? do drift caps false-positive on
//! loss bursts?).
//!
//! Three pieces:
//!
//! - [`ChaosPlan`] — a declarative, seeded fault schedule (who crashes
//!   when, which windows partition which groups, the Gilbert–Elliott burst
//!   regime, the probe retry policy). Plans are plain data: serializable,
//!   comparable, and composable through the builder methods.
//! - [`BurstModel`] — the two-state Gilbert–Elliott chain upgrading
//!   `netsim::link::LinkModel` from i.i.d. loss to correlated bursts.
//! - [`ChaosState`] — the per-run interpreter the sims thread through
//!   their probe paths: [`ChaosState::advance`] applies due churn,
//!   [`ChaosState::probe_fate`] decides whether a probe times out.
//!
//! ## Determinism and inertness
//!
//! All randomness is drawn from the plan's own seeded stream, never from
//! the sims' streams, so installing an **empty** plan consumes zero draws
//! and a chaos-enabled sim is bitwise identical to a plain one (pinned by
//! proptest in `vcoord`'s `chaos_properties` suite). A sim with no plan
//! installed pays one `Option` discriminant check per probe — the
//! `no_alloc_chaos` tests hold the hot loops to their exact PR 7
//! allocation budgets.

mod gilbert;
mod plan;
mod runtime;

pub use gilbert::{BurstFate, BurstModel};
pub use plan::{ChaosPlan, ChurnEvent, ChurnKind, PartitionWindow, ProbePolicy};
pub use runtime::{ChaosCounters, ChaosState, ProbeFate};
