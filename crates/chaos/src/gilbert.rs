//! Gilbert–Elliott correlated loss.
//!
//! The classic two-state Markov chain: a prober is either in the *good*
//! state (probes pass untouched — any i.i.d. `LinkModel` loss still
//! applies upstream) or the *bad* state (probes are lost with probability
//! [`BurstModel::loss`], and survivors carry an RTT spike). The chain
//! advances one step per probe, so burst lengths are geometric with mean
//! `1 / p_exit` probes — the correlated-loss upgrade over `LinkModel`'s
//! memoryless coin flip.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the two-state Gilbert–Elliott chain. State is kept
/// per-prober (a single `bool`) by [`crate::ChaosState`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstModel {
    /// Per-probe probability of entering a burst (good → bad).
    pub p_enter: f64,
    /// Per-probe probability of leaving a burst (bad → good); the mean
    /// burst length is `1 / p_exit` probes.
    pub p_exit: f64,
    /// Loss probability while inside a burst.
    pub loss: f64,
    /// Additive RTT spike (ms) on probes that survive a burst.
    pub spike_ms: f64,
}

impl BurstModel {
    /// A mild default regime: rare, short bursts that mostly spike RTT.
    pub fn mild() -> Self {
        BurstModel {
            p_enter: 0.02,
            p_exit: 0.25,
            loss: 0.5,
            spike_ms: 40.0,
        }
    }

    /// Advance the chain one step for a prober whose state is `bad`, then
    /// sample this probe's fate from the *new* state.
    pub fn step<R: Rng + ?Sized>(&self, bad: &mut bool, rng: &mut R) -> BurstFate {
        if *bad {
            if rng.gen_bool(self.p_exit.clamp(0.0, 1.0)) {
                *bad = false;
            }
        } else if rng.gen_bool(self.p_enter.clamp(0.0, 1.0)) {
            *bad = true;
        }
        if !*bad {
            return BurstFate::Clean;
        }
        if rng.gen_bool(self.loss.clamp(0.0, 1.0)) {
            BurstFate::Lost
        } else {
            BurstFate::Spiked(self.spike_ms)
        }
    }
}

/// What the burst chain did to one probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BurstFate {
    /// Good state: the probe passes untouched.
    Clean,
    /// Bad state, survived: add the spike to the measured RTT.
    Spiked(f64),
    /// Bad state, lost: the probe times out.
    Lost,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn bursts_are_correlated_not_iid() {
        let m = BurstModel {
            p_enter: 0.05,
            p_exit: 0.2,
            loss: 1.0,
            spike_ms: 0.0,
        };
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut bad = false;
        let fates: Vec<bool> = (0..20_000)
            .map(|_| matches!(m.step(&mut bad, &mut rng), BurstFate::Lost))
            .collect();
        let loss_rate = fates.iter().filter(|&&l| l).count() as f64 / fates.len() as f64;
        // Stationary bad-state occupancy is p_enter / (p_enter + p_exit) = 0.2.
        assert!((0.15..0.25).contains(&loss_rate), "loss_rate={loss_rate}");
        // Conditional loss after a loss must far exceed the marginal rate:
        // that is what "correlated" means.
        let pairs = fates.windows(2).filter(|w| w[0]).count();
        let both = fates.windows(2).filter(|w| w[0] && w[1]).count();
        let cond = both as f64 / pairs as f64;
        assert!(
            cond > 2.0 * loss_rate,
            "cond={cond} marginal={loss_rate}: bursts look i.i.d."
        );
    }

    #[test]
    fn good_state_is_clean_and_spikes_apply() {
        let m = BurstModel {
            p_enter: 1.0,
            p_exit: 0.0,
            loss: 0.0,
            spike_ms: 25.0,
        };
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut bad = false;
        // p_enter = 1 forces the bad state immediately; loss = 0 means
        // every probe survives with the spike.
        for _ in 0..16 {
            assert_eq!(m.step(&mut bad, &mut rng), BurstFate::Spiked(25.0));
        }
        let calm = BurstModel {
            p_enter: 0.0,
            p_exit: 1.0,
            loss: 1.0,
            spike_ms: 0.0,
        };
        let mut bad = true;
        // p_exit = 1 leaves the burst before sampling: first probe is clean.
        assert_eq!(calm.step(&mut bad, &mut rng), BurstFate::Clean);
        assert!(!bad);
    }
}
