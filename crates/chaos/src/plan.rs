//! Declarative fault schedules.
//!
//! A [`ChaosPlan`] is plain data: a sorted churn timeline, partition
//! windows, an optional burst regime, and the probe retry policy. Builders
//! that need randomness (victim selection for [`ChaosPlan::churn_wave`] and
//! [`ChaosPlan::split`]) draw from labelled streams derived from the plan's
//! own seed, so a plan is fully determined by its inputs and never touches
//! the sims' seed streams.
//!
//! All times in a plan are **relative to installation** (the sims install
//! chaos at the attack-injection instant), so the same plan composes with
//! any warmup length.

use crate::gilbert::BurstModel;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use vcoord_netsim::SeedStream;

/// One churn transition for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// The node stops probing and stops answering; peers' probes to it
    /// time out. Its last coordinate stays visible in snapshots (stale).
    Crash,
    /// The node rejoins from scratch: the sims reset its coordinate state
    /// and it resumes probing on its old schedule.
    Restart,
}

/// A scheduled churn transition, `at_ms` relative to plan installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    pub at_ms: u64,
    pub node: usize,
    pub kind: ChurnKind,
}

/// A timed split: nodes inside `group` cannot exchange probes with nodes
/// outside it while `start_ms <= t - install < end_ms`. `group` is kept
/// sorted for binary-search membership tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    pub start_ms: u64,
    pub end_ms: u64,
    pub group: Vec<usize>,
}

impl PartitionWindow {
    /// Are `a` and `b` on opposite sides of this window's split at
    /// relative time `rel_ms`?
    pub fn separates(&self, a: usize, b: usize, rel_ms: u64) -> bool {
        if rel_ms < self.start_ms || rel_ms >= self.end_ms {
            return false;
        }
        self.group.binary_search(&a).is_ok() != self.group.binary_search(&b).is_ok()
    }
}

/// How probers cope with unresponsive peers: bounded retry with
/// exponential backoff, then (for Vivaldi) staleness eviction of the
/// neighbor or (for NPS) fail-over through membership replacement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbePolicy {
    /// Time a prober waits before declaring one probe attempt dead.
    pub timeout_ms: f64,
    /// Retries after the first failed attempt (so `max_retries + 1`
    /// attempts total per probe cycle).
    pub max_retries: u32,
    /// Backoff multiplier: retry `k` fires `timeout_ms * backoff^k` after
    /// its predecessor failed.
    pub backoff: f64,
    /// Consecutive exhausted probe cycles to one peer before it is
    /// evicted / failed over.
    pub evict_after: u32,
}

impl Default for ProbePolicy {
    fn default() -> Self {
        ProbePolicy {
            timeout_ms: 3_000.0,
            max_retries: 2,
            backoff: 2.0,
            evict_after: 2,
        }
    }
}

/// A complete seeded fault schedule. Start from [`ChaosPlan::none`] and
/// chain builders; an untouched plan is *inert* ([`ChaosPlan::is_empty`])
/// and a sim running one is bitwise identical to a sim without chaos.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed for the plan's private randomness (victim picks, burst chain).
    pub seed: u64,
    /// Churn timeline, sorted by `(at_ms, node)`.
    pub churn: Vec<ChurnEvent>,
    /// Partition windows (may overlap).
    pub partitions: Vec<PartitionWindow>,
    /// Gilbert–Elliott burst regime, if any.
    pub bursts: Option<BurstModel>,
    /// Probe timeout/retry/eviction policy.
    pub probe: ProbePolicy,
}

impl ChaosPlan {
    /// The inert plan: no faults, default probe policy, seed 0.
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            churn: Vec::new(),
            partitions: Vec::new(),
            bursts: None,
            probe: ProbePolicy::default(),
        }
    }

    /// An inert plan carrying `seed` for later randomized builders.
    pub fn with_seed(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..Self::none()
        }
    }

    /// No faults scheduled: installing this plan changes nothing.
    pub fn is_empty(&self) -> bool {
        self.churn.is_empty() && self.partitions.is_empty() && self.bursts.is_none()
    }

    /// Crash a uniformly random `fraction` of the `n` nodes at `down_at_ms`
    /// and restart them `up_after_ms` later. Victims are drawn from the
    /// plan seed (label `chaos/churn`), not from any sim stream.
    pub fn churn_wave(
        mut self,
        n: usize,
        fraction: f64,
        down_at_ms: u64,
        up_after_ms: u64,
    ) -> Self {
        let count = ((n as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let mut ids: Vec<usize> = (0..n).collect();
        let mut rng = SeedStream::new(self.seed).rng("chaos/churn");
        ids.shuffle(&mut rng);
        ids.truncate(count);
        for node in ids {
            self.churn.push(ChurnEvent {
                at_ms: down_at_ms,
                node,
                kind: ChurnKind::Crash,
            });
            self.churn.push(ChurnEvent {
                at_ms: down_at_ms + up_after_ms,
                node,
                kind: ChurnKind::Restart,
            });
        }
        self.normalized()
    }

    /// Degree-targeted takedown: crash exactly `targets` (e.g. NPS layer-0
    /// landmarks) at `at_ms`; restart them `up_after_ms` later if given.
    pub fn takedown(mut self, targets: &[usize], at_ms: u64, up_after_ms: Option<u64>) -> Self {
        for &node in targets {
            self.churn.push(ChurnEvent {
                at_ms,
                node,
                kind: ChurnKind::Crash,
            });
            if let Some(up) = up_after_ms {
                self.churn.push(ChurnEvent {
                    at_ms: at_ms + up,
                    node,
                    kind: ChurnKind::Restart,
                });
            }
        }
        self.normalized()
    }

    /// Partition an explicit `group` away from everyone else during
    /// `[start_ms, end_ms)`.
    pub fn partition(mut self, mut group: Vec<usize>, start_ms: u64, end_ms: u64) -> Self {
        group.sort_unstable();
        group.dedup();
        self.partitions.push(PartitionWindow {
            start_ms,
            end_ms,
            group,
        });
        self
    }

    /// Partition a random `fraction` of the `n` nodes (label
    /// `chaos/partition`) away from the rest during `[start_ms, end_ms)`.
    pub fn split(self, n: usize, fraction: f64, start_ms: u64, end_ms: u64) -> Self {
        let count = ((n as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let mut ids: Vec<usize> = (0..n).collect();
        let mut rng = SeedStream::new(self.seed).rng("chaos/partition");
        ids.shuffle(&mut rng);
        ids.truncate(count);
        self.partition(ids, start_ms, end_ms)
    }

    /// Install a Gilbert–Elliott burst regime.
    pub fn bursts(mut self, model: BurstModel) -> Self {
        self.bursts = Some(model);
        self
    }

    /// Replace the probe timeout/retry policy.
    pub fn probe_policy(mut self, policy: ProbePolicy) -> Self {
        self.probe = policy;
        self
    }

    /// A fresh rng on the plan's private stream (used by the runtime for
    /// burst sampling and replacement picks).
    pub(crate) fn runtime_rng(&self) -> rand_chacha::ChaCha12Rng {
        SeedStream::new(self.seed).rng("chaos/runtime")
    }

    fn normalized(mut self) -> Self {
        self.churn
            .sort_by_key(|e| (e.at_ms, e.node, matches!(e.kind, ChurnKind::Restart)));
        self
    }
}

/// Pick a replacement peer for `node` that is none of `node` itself nor in
/// `exclude`; `None` when the pool is exhausted. Used for Vivaldi neighbor
/// replacement after staleness eviction.
pub(crate) fn pick_replacement<R: Rng + ?Sized>(
    n: usize,
    node: usize,
    exclude: &[usize],
    rng: &mut R,
) -> Option<usize> {
    let candidates = n.saturating_sub(1 + exclude.iter().filter(|&&e| e != node).count());
    if candidates == 0 {
        return None;
    }
    // Rejection-sample; the pool is large relative to a neighbor list in
    // every experiment scale, so this terminates fast.
    for _ in 0..8 * n.max(8) {
        let c = rng.gen_range(0..n);
        if c != node && !exclude.contains(&c) {
            return Some(c);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_builders_are_seed_deterministic() {
        assert!(ChaosPlan::none().is_empty());
        let a = ChaosPlan::with_seed(9).churn_wave(50, 0.2, 1000, 5000);
        let b = ChaosPlan::with_seed(9).churn_wave(50, 0.2, 1000, 5000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // 10 victims, crash + restart each.
        assert_eq!(a.churn.len(), 20);
        assert!(a.churn.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let c = ChaosPlan::with_seed(10).churn_wave(50, 0.2, 1000, 5000);
        assert_ne!(a, c, "different seeds must pick different victims");
    }

    #[test]
    fn takedown_hits_exact_targets() {
        let p = ChaosPlan::none().takedown(&[3, 1, 4], 100, None);
        assert_eq!(p.churn.len(), 3);
        assert!(p.churn.iter().all(|e| e.kind == ChurnKind::Crash));
        let mut nodes: Vec<usize> = p.churn.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 3, 4]);
    }

    #[test]
    fn partition_separates_only_across_the_split_inside_the_window() {
        let p = ChaosPlan::none().partition(vec![2, 0], 100, 200);
        let w = &p.partitions[0];
        assert!(w.separates(0, 1, 150));
        assert!(!w.separates(0, 2, 150), "same side never separated");
        assert!(!w.separates(1, 3, 150), "same side never separated");
        assert!(!w.separates(0, 1, 99), "before the window");
        assert!(!w.separates(0, 1, 200), "end is exclusive");
    }

    #[test]
    fn replacement_respects_exclusions() {
        let mut rng = SeedStream::new(3).rng("test");
        for _ in 0..64 {
            let r = pick_replacement(6, 2, &[0, 1, 3], &mut rng).unwrap();
            assert!(r == 4 || r == 5, "r={r}");
        }
        assert_eq!(pick_replacement(3, 0, &[1, 2], &mut rng), None);
    }

    #[test]
    fn composed_plans_stay_sorted_and_comparable() {
        let p = ChaosPlan::with_seed(5)
            .takedown(&[7], 9_000, Some(1_000))
            .churn_wave(20, 0.25, 500, 2_000)
            .split(20, 0.5, 100, 900)
            .bursts(BurstModel::mild());
        assert!(p.churn.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert_eq!(p.clone(), p);
    }
}
