//! The per-run fault interpreter the sims thread through their probe paths.

use crate::gilbert::BurstFate;
use crate::plan::{pick_replacement, ChaosPlan, ChurnKind};
use rand_chacha::ChaCha12Rng;
use vcoord_netsim::simlog;
use vcoord_obs as obs;

/// Running totals of every fault the interpreter injected or absorbed.
/// Mirrored into obs counters (`chaos.*`) when the obs plane is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Churn crashes applied.
    pub crashes: u64,
    /// Churn restarts applied.
    pub restarts: u64,
    /// Probe attempts that timed out (dead peer, partition, or burst loss).
    pub timeouts: u64,
    /// Timeouts attributable to the Gilbert–Elliott bad state.
    pub burst_losses: u64,
    /// Delivered probes that carried a burst RTT spike.
    pub spiked: u64,
    /// Retry attempts scheduled after a timeout.
    pub retries: u64,
    /// Vivaldi neighbors evicted for staleness.
    pub evictions: u64,
    /// NPS references failed over through membership replacement.
    pub failovers: u64,
    /// Readmission leases granted: banned NPS references re-admitted into
    /// the probe rotation — still on the ban ledger, their evidence
    /// quarantined — to relieve reference starvation.
    pub leases: u64,
    /// Leases ended early by a fresh ban on the leased reference.
    pub lease_returns: u64,
}

/// What the fault layer did to one probe attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeFate {
    /// The probe went through; measured RTT in ms (spike included).
    Delivered(f64),
    /// No response within the timeout: dead/partitioned peer or burst loss.
    Timeout,
}

/// A [`ChaosPlan`] bound to a run: tracks which nodes are down, each
/// prober's burst-chain state, and the fault counters. All randomness
/// comes from the plan's private stream, so an empty plan draws nothing
/// and perturbs nothing.
#[derive(Debug, Clone)]
pub struct ChaosState {
    plan: ChaosPlan,
    installed_at: u64,
    next_churn: usize,
    down: Vec<bool>,
    burst_bad: Vec<bool>,
    rng: ChaCha12Rng,
    counters: ChaosCounters,
    restart_buf: Vec<usize>,
}

impl ChaosState {
    /// Bind `plan` to a run of `n` nodes installed at absolute sim time
    /// `installed_at` (all plan times are relative to this instant).
    pub fn new(mut plan: ChaosPlan, n: usize, installed_at: u64) -> Self {
        plan.churn
            .sort_by_key(|e| (e.at_ms, e.node, matches!(e.kind, ChurnKind::Restart)));
        let rng = plan.runtime_rng();
        ChaosState {
            plan,
            installed_at,
            next_churn: 0,
            down: vec![false; n],
            burst_bad: vec![false; n],
            rng,
            counters: ChaosCounters::default(),
            restart_buf: Vec::new(),
        }
    }

    /// The bound plan.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Fault totals so far.
    pub fn counters(&self) -> &ChaosCounters {
        &self.counters
    }

    /// Apply every churn event due by absolute time `now_ms`; returns the
    /// nodes that restarted during this call so the sim can reset their
    /// coordinate state. The returned slice borrows an internal buffer —
    /// no allocation on the (empty-timeline) fast path.
    pub fn advance(&mut self, now_ms: u64) -> &[usize] {
        self.restart_buf.clear();
        while let Some(e) = self.plan.churn.get(self.next_churn) {
            if self.installed_at.saturating_add(e.at_ms) > now_ms {
                break;
            }
            match e.kind {
                ChurnKind::Crash => {
                    if !self.down[e.node] {
                        self.down[e.node] = true;
                        self.counters.crashes += 1;
                        obs::counter_add(obs::metric_id!("chaos.crashes"), 1);
                        obs::event(obs::metric_id!("chaos.crash"), now_ms, e.node as u32, 0.0);
                        simlog::fault_event(
                            "vcoord_chaos",
                            format_args!("crash node={} t={}ms", e.node, now_ms),
                        );
                    }
                }
                ChurnKind::Restart => {
                    if self.down[e.node] {
                        self.down[e.node] = false;
                        self.counters.restarts += 1;
                        self.restart_buf.push(e.node);
                        obs::counter_add(obs::metric_id!("chaos.restarts"), 1);
                        obs::event(obs::metric_id!("chaos.restart"), now_ms, e.node as u32, 0.0);
                        simlog::fault_event(
                            "vcoord_chaos",
                            format_args!("restart node={} t={}ms", e.node, now_ms),
                        );
                    }
                }
            }
            self.next_churn += 1;
        }
        &self.restart_buf
    }

    /// Is `node` currently crashed?
    #[inline]
    pub fn is_down(&self, node: usize) -> bool {
        self.down[node]
    }

    /// Are `a` and `b` separated by an active partition window at absolute
    /// time `now_ms`?
    pub fn partitioned(&self, a: usize, b: usize, now_ms: u64) -> bool {
        if self.plan.partitions.is_empty() {
            return false;
        }
        let rel = now_ms.saturating_sub(self.installed_at);
        self.plan.partitions.iter().any(|w| w.separates(a, b, rel))
    }

    /// Decide the fate of one probe attempt from `observer` to `peer`
    /// whose (link-perturbed) RTT would be `rtt_ms`. Steps `observer`'s
    /// burst chain exactly once per attempt.
    pub fn probe_fate(
        &mut self,
        observer: usize,
        peer: usize,
        now_ms: u64,
        rtt_ms: f64,
    ) -> ProbeFate {
        if self.down[peer] || self.down[observer] || self.partitioned(observer, peer, now_ms) {
            self.counters.timeouts += 1;
            obs::counter_add(obs::metric_id!("chaos.timeouts"), 1);
            return ProbeFate::Timeout;
        }
        let Some(bursts) = self.plan.bursts else {
            return ProbeFate::Delivered(rtt_ms);
        };
        match bursts.step(&mut self.burst_bad[observer], &mut self.rng) {
            BurstFate::Clean => ProbeFate::Delivered(rtt_ms),
            BurstFate::Spiked(ms) => {
                self.counters.spiked += 1;
                obs::counter_add(obs::metric_id!("chaos.spiked"), 1);
                ProbeFate::Delivered(rtt_ms + ms)
            }
            BurstFate::Lost => {
                self.counters.timeouts += 1;
                self.counters.burst_losses += 1;
                obs::counter_add(obs::metric_id!("chaos.timeouts"), 1);
                obs::counter_add(obs::metric_id!("chaos.burst_losses"), 1);
                ProbeFate::Timeout
            }
        }
    }

    /// Delay before retry number `attempt` (1-based) of a probe cycle:
    /// `timeout * backoff^(attempt-1)` — exponential backoff anchored at
    /// the probe timeout.
    pub fn retry_delay_ms(&self, attempt: u32) -> f64 {
        self.plan.probe.timeout_ms
            * self
                .plan
                .probe
                .backoff
                .powi(attempt.saturating_sub(1) as i32)
    }

    /// Retry budget per probe cycle (attempts beyond the first).
    #[inline]
    pub fn max_retries(&self) -> u32 {
        self.plan.probe.max_retries
    }

    /// Exhausted probe cycles tolerated before eviction/fail-over.
    #[inline]
    pub fn evict_after(&self) -> u32 {
        self.plan.probe.evict_after
    }

    /// Record a scheduled retry.
    pub fn note_retry(&mut self) {
        self.counters.retries += 1;
        obs::counter_add(obs::metric_id!("chaos.retries"), 1);
    }

    /// Record a Vivaldi staleness eviction.
    pub fn note_eviction(&mut self, node: usize, peer: usize, now_ms: u64) {
        self.counters.evictions += 1;
        obs::counter_add(obs::metric_id!("chaos.evictions"), 1);
        obs::event(
            obs::metric_id!("chaos.evict"),
            now_ms,
            node as u32,
            peer as f64,
        );
        simlog::fault_event(
            "vcoord_chaos",
            format_args!("evict node={node} dead_neighbor={peer} t={now_ms}ms"),
        );
    }

    /// Record an NPS reference fail-over.
    pub fn note_failover(&mut self, node: usize, dead_ref: usize, now_ms: u64) {
        self.counters.failovers += 1;
        obs::counter_add(obs::metric_id!("chaos.failovers"), 1);
        obs::event(
            obs::metric_id!("chaos.failover"),
            now_ms,
            node as u32,
            dead_ref as f64,
        );
        simlog::fault_event(
            "vcoord_chaos",
            format_args!("failover node={node} dead_ref={dead_ref} t={now_ms}ms"),
        );
    }

    /// Record an NPS readmission lease. Under churn, starvation relief is
    /// a *lease*, not a verdict: when a node's reference set starves below
    /// the positioning constraint (dim+1) the sim re-admits its oldest
    /// banned reference into the probe rotation — but the reference stays
    /// on the ban ledger and its evidence is quarantined (`Lease`
    /// provenance) so the relief channel can never launder a ban away.
    pub fn note_lease(&mut self, node: usize, leased_ref: usize, now_ms: u64) {
        self.counters.leases += 1;
        obs::counter_add(obs::metric_id!("chaos.leases"), 1);
        obs::event(
            obs::metric_id!("chaos.lease"),
            now_ms,
            node as u32,
            leased_ref as f64,
        );
        simlog::fault_event(
            "vcoord_chaos",
            format_args!("lease node={node} banned_ref={leased_ref} t={now_ms}ms"),
        );
    }

    /// Record a lease ending early: the leased reference earned a fresh
    /// ban (relapse) and leaves the probe rotation again.
    pub fn note_lease_return(&mut self, node: usize, leased_ref: usize, now_ms: u64) {
        self.counters.lease_returns += 1;
        obs::counter_add(obs::metric_id!("chaos.lease_returns"), 1);
        obs::event(
            obs::metric_id!("chaos.lease_return"),
            now_ms,
            node as u32,
            leased_ref as f64,
        );
        simlog::fault_event(
            "vcoord_chaos",
            format_args!("lease_return node={node} banned_ref={leased_ref} t={now_ms}ms"),
        );
    }

    /// Pick a replacement peer for `node` avoiding `exclude` (drawn from
    /// the plan's private stream). Used by Vivaldi neighbor replacement so
    /// eviction keeps the spring count.
    pub fn replacement(&mut self, n: usize, node: usize, exclude: &[usize]) -> Option<usize> {
        pick_replacement(n, node, exclude, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gilbert::BurstModel;

    #[test]
    fn churn_timeline_applies_in_order_and_reports_restarts() {
        let plan = ChaosPlan::none().takedown(&[1, 2], 100, Some(400));
        let mut st = ChaosState::new(plan, 4, 1_000);
        assert!(st.advance(1_050).is_empty());
        assert!(!st.is_down(1));
        assert!(st.advance(1_100).is_empty());
        assert!(st.is_down(1) && st.is_down(2) && !st.is_down(0));
        let restarted = st.advance(1_500).to_vec();
        assert_eq!(restarted, vec![1, 2]);
        assert!(!st.is_down(1) && !st.is_down(2));
        assert_eq!(st.counters().crashes, 2);
        assert_eq!(st.counters().restarts, 2);
    }

    #[test]
    fn probe_fate_times_out_on_down_or_partitioned_peers() {
        let plan = ChaosPlan::none()
            .takedown(&[3], 0, None)
            .partition(vec![0, 1], 0, 10_000);
        let mut st = ChaosState::new(plan, 6, 0);
        st.advance(0);
        assert_eq!(st.probe_fate(0, 3, 5, 10.0), ProbeFate::Timeout);
        assert_eq!(st.probe_fate(0, 2, 5, 10.0), ProbeFate::Timeout, "split");
        assert_eq!(
            st.probe_fate(0, 1, 5, 10.0),
            ProbeFate::Delivered(10.0),
            "same side"
        );
        assert_eq!(
            st.probe_fate(4, 5, 20_000, 10.0),
            ProbeFate::Delivered(10.0),
            "window over"
        );
        assert_eq!(st.counters().timeouts, 2);
    }

    #[test]
    fn empty_plan_draws_nothing_and_never_times_out() {
        let mut st = ChaosState::new(ChaosPlan::none(), 8, 0);
        let rng_before = format!("{:?}", st.rng);
        for t in 0..64u64 {
            assert!(st.advance(t * 1000).is_empty());
            assert_eq!(
                st.probe_fate(0, 1, t * 1000, 5.0),
                ProbeFate::Delivered(5.0)
            );
        }
        assert_eq!(
            format!("{:?}", st.rng),
            rng_before,
            "empty plan must not consume randomness"
        );
        assert_eq!(*st.counters(), ChaosCounters::default());
    }

    #[test]
    fn retry_delays_back_off_exponentially() {
        let st = ChaosState::new(ChaosPlan::none(), 2, 0);
        assert_eq!(st.retry_delay_ms(1), 3_000.0);
        assert_eq!(st.retry_delay_ms(2), 6_000.0);
        assert_eq!(st.retry_delay_ms(3), 12_000.0);
    }

    #[test]
    fn bursts_mark_and_spike_probes() {
        let plan = ChaosPlan::with_seed(11).bursts(BurstModel {
            p_enter: 1.0,
            p_exit: 0.0,
            loss: 0.0,
            spike_ms: 30.0,
        });
        let mut st = ChaosState::new(plan, 2, 0);
        assert_eq!(st.probe_fate(0, 1, 0, 10.0), ProbeFate::Delivered(40.0));
        assert_eq!(st.counters().spiked, 1);
    }
}
