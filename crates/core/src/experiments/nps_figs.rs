//! Figure runners for the NPS attacks (paper figures 14–26).
//!
//! x axes are repositioning rounds (one round ≈ 60 s simulated); attack
//! injection happens at `scale.nps_warmup_rounds`.

use crate::attacks::nps::{
    NpsAntiDetection, NpsCollusionIsolation, NpsCombined, NpsSimpleDisorder,
};
use crate::experiments::harness::{run_nps, NpsFactory, NpsRun};
use crate::experiments::{average_series, run_repetitions, FigureResult, Scale};
use crate::knowledge::Knowledge;
use vcoord_metrics::Cdf;
use vcoord_nps::NpsConfig;
use vcoord_space::Space;

/// Malicious fractions used across the NPS figures.
pub const FRACTIONS: [f64; 5] = [0.10, 0.20, 0.30, 0.40, 0.50];

fn quantile_grid() -> Vec<f64> {
    (0..=50).map(|k| k as f64 / 50.0).collect()
}

type BoxedNpsAdversary = Box<dyn vcoord_attackkit::AttackStrategy>;

fn disorder_factory() -> impl Fn(
    &mut vcoord_nps::NpsSim,
    &[usize],
    &vcoord_netsim::SeedStream,
) -> (BoxedNpsAdversary, Option<Vec<usize>>)
       + Sync {
    |_sim, _attackers, _seeds| {
        (
            Box::new(NpsSimpleDisorder::default()) as BoxedNpsAdversary,
            None,
        )
    }
}

fn anti_detection_factory(
    knowledge: Knowledge,
    sophisticated: bool,
) -> impl Fn(
    &mut vcoord_nps::NpsSim,
    &[usize],
    &vcoord_netsim::SeedStream,
) -> (BoxedNpsAdversary, Option<Vec<usize>>)
       + Sync {
    move |_sim, _attackers, _seeds| {
        let adv = if sophisticated {
            NpsAntiDetection::sophisticated(knowledge)
        } else {
            NpsAntiDetection::naive(knowledge)
        };
        (Box::new(adv) as BoxedNpsAdversary, None)
    }
}

/// Colluding-isolation factory; victims are reported as the focus set so
/// the harness can track their error separately (figure 25).
fn collusion_factory(
    victim_fraction: f64,
) -> impl Fn(
    &mut vcoord_nps::NpsSim,
    &[usize],
    &vcoord_netsim::SeedStream,
) -> (BoxedNpsAdversary, Option<Vec<usize>>)
       + Sync {
    move |sim, attackers, seeds| {
        use rand::seq::SliceRandom;
        // Choose the common victim set here so it can double as the focus
        // set; pass it to the adversary as a preset.
        let mut pool: Vec<usize> = (0..sim.matrix().len())
            .filter(|&i| sim.layers_of()[i] == 2 && !attackers.contains(&i))
            .collect();
        pool.shuffle(&mut seeds.rng("collusion-victims"));
        let k = ((pool.len() as f64) * victim_fraction).round().max(1.0) as usize;
        pool.truncate(k);
        let mut adv = NpsCollusionIsolation::new(victim_fraction);
        adv.preset_victims(pool.iter().copied().collect());
        (Box::new(adv) as BoxedNpsAdversary, Some(pool))
    }
}

fn combined_factory(
    knowledge: Knowledge,
) -> impl Fn(
    &mut vcoord_nps::NpsSim,
    &[usize],
    &vcoord_netsim::SeedStream,
) -> (BoxedNpsAdversary, Option<Vec<usize>>)
       + Sync {
    move |_sim, _attackers, _seeds| {
        (
            Box::new(NpsCombined::new(knowledge, 0.2)) as BoxedNpsAdversary,
            None,
        )
    }
}

fn runs_for(
    scale: &Scale,
    config: NpsConfig,
    fraction: f64,
    seed: u64,
    factory: NpsFactory<'_>,
) -> Vec<NpsRun> {
    run_repetitions(scale.repetitions, |rep| {
        run_nps(
            scale,
            config.clone(),
            scale.nodes,
            fraction,
            seed,
            rep,
            factory,
        )
    })
}

/// Error-vs-time figure over fractions × configs (figures 14, 18, 26).
fn error_vs_time(
    id: &str,
    title: &str,
    scale: &Scale,
    seed: u64,
    fractions: &[f64],
    configs: &[(&str, NpsConfig)],
    factory: NpsFactory<'_>,
) -> FigureResult {
    let mut columns = vec!["round".to_string()];
    let mut all_series = Vec::new();
    let mut notes = Vec::new();
    for &f in fractions {
        for (label, config) in configs {
            columns.push(format!("err_{}pct_{label}", (f * 100.0).round() as u32));
            let runs = runs_for(scale, config.clone(), f, seed, factory);
            let avg = average_series(
                &runs
                    .iter()
                    .map(|r| r.attack_series.clone())
                    .collect::<Vec<_>>(),
            );
            let clean = runs.iter().map(|r| r.clean_ref).sum::<f64>() / runs.len() as f64;
            notes.push(format!(
                "{}% {label}: clean {:.2} -> attacked {:.2}",
                (f * 100.0).round(),
                clean,
                avg.tail_mean(3)
            ));
            all_series.push(avg);
        }
    }
    let len = all_series.iter().map(|s| s.len()).min().unwrap_or(0);
    let rows: Vec<Vec<f64>> = (0..len)
        .map(|k| {
            let mut row = vec![all_series[0].points()[k].0 as f64];
            row.extend(all_series.iter().map(|s| s.points()[k].1));
            row
        })
        .collect();
    FigureResult {
        id: id.into(),
        title: title.into(),
        columns,
        rows,
        notes,
    }
}

/// Figure 14 — independent disorder without the detection mechanism.
pub fn fig14(scale: &Scale, seed: u64) -> FigureResult {
    let insecure = NpsConfig {
        security: false,
        ..NpsConfig::default()
    };
    let secure = NpsConfig {
        security: true,
        ..NpsConfig::default()
    };
    error_vs_time(
        "fig14",
        "Injection of independent Disorder attackers on NPS (security off vs on): average relative error",
        scale,
        seed,
        &[0.10, 0.20, 0.30, 0.50],
        &[("off", insecure), ("on", secure)],
        &disorder_factory(),
    )
}

/// Figure 15 — independent disorder: CDF, security on vs off.
pub fn fig15(scale: &Scale, seed: u64) -> FigureResult {
    let grid = quantile_grid();
    let fractions = [0.20, 0.40];
    let mut columns = vec!["quantile".to_string()];
    let mut cdfs = Vec::new();
    let mut notes = Vec::new();
    let factory = disorder_factory();
    for &f in &fractions {
        for security in [false, true] {
            let config = NpsConfig {
                security,
                ..NpsConfig::default()
            };
            let label = if security { "on" } else { "off" };
            columns.push(format!("err_{}pct_sec_{label}", (f * 100.0) as u32));
            let runs = runs_for(scale, config, f, seed, &factory);
            let all: Vec<f64> = runs.iter().flat_map(|r| r.final_errors.clone()).collect();
            let cdf = Cdf::from_samples(&all);
            notes.push(format!(
                "{}% sec={label}: median {:.2}",
                (f * 100.0) as u32,
                cdf.median()
            ));
            cdfs.push(cdf);
        }
    }
    let rows: Vec<Vec<f64>> = grid
        .iter()
        .map(|&q| {
            let mut row = vec![q];
            row.extend(cdfs.iter().map(|c| c.quantile(q)));
            row
        })
        .collect();
    FigureResult {
        id: "fig15".into(),
        title: "Injection of independent Disorder attackers on NPS: CDF".into(),
        columns,
        rows,
        notes,
    }
}

/// Figure 16 — independent disorder: impact of dimensionality.
pub fn fig16(scale: &Scale, seed: u64) -> FigureResult {
    let dims = [2usize, 4, 8, 12];
    let fractions = [0.10, 0.20, 0.30, 0.50];
    let mut columns = vec!["fraction_pct".to_string()];
    for d in dims {
        columns.push(format!("err_{d}D"));
    }
    let factory = disorder_factory();
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let mut clean_by_dim = vec![0.0; dims.len()];
    for (k, &f) in fractions.iter().enumerate() {
        let mut row = vec![f * 100.0];
        for (di, &d) in dims.iter().enumerate() {
            let config = NpsConfig::in_space(Space::Euclidean(d));
            let runs = runs_for(scale, config, f, seed, &factory);
            row.push(
                runs.iter()
                    .map(|r| r.attack_series.tail_mean(3))
                    .sum::<f64>()
                    / runs.len() as f64,
            );
            if k == 0 {
                clean_by_dim[di] =
                    runs.iter().map(|r| r.clean_ref).sum::<f64>() / runs.len() as f64;
            }
        }
        rows.push(row);
    }
    for (di, &d) in dims.iter().enumerate() {
        notes.push(format!("{d}D clean error {:.2}", clean_by_dim[di]));
    }
    FigureResult {
        id: "fig16".into(),
        title: "Injection of independent Disorder attackers on NPS: impact of dimensionality"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// Figure 17 is the anti-detection geometry *diagram*; this runner emits
/// the closed-form quantities it illustrates (push bound per α, and the
/// sophistication cut for the 5 s threshold), which are unit-tested in
/// `attacks::geometry`.
pub fn fig17(_scale: &Scale, _seed: u64) -> FigureResult {
    use crate::attacks::geometry::{naive_push_bound, sophistication_cut_ms};
    let alphas = [0.0, 1.0, 2.0, 4.0];
    let rows: Vec<Vec<f64>> = alphas
        .iter()
        .map(|&a| {
            vec![
                a,
                naive_push_bound(a),
                sophistication_cut_ms(5_000.0, naive_push_bound(a)),
            ]
        })
        .collect();
    FigureResult {
        id: "fig17".into(),
        title: "Anti-detection NPS attack geometry (diagram; closed forms)".into(),
        columns: vec![
            "alpha".into(),
            "push_bound_x_d".into(),
            "victim_cut_ms".into(),
        ],
        rows,
        notes: vec![
            "fig 17 in the paper is a geometry diagram, not a data plot".into(),
            "lie construction verified by attacks::geometry unit tests".into(),
        ],
    }
}

/// Figure 18 — anti-detection naive attackers: impact on convergence,
/// security on vs off (probe threshold always on).
pub fn fig18(scale: &Scale, seed: u64) -> FigureResult {
    let on = NpsConfig {
        security: true,
        ..NpsConfig::default()
    };
    // Threshold stays on in the "off" arm: the paper's comparison.
    let off = NpsConfig {
        security: false,
        ..NpsConfig::default()
    };
    error_vs_time(
        "fig18",
        "Injection in NPS of anti-detection naive attackers: impact on convergence",
        scale,
        seed,
        &[0.10, 0.20, 0.30],
        &[("secOn", on), ("secOff", off)],
        &anti_detection_factory(Knowledge::half(), false),
    )
}

/// Figure 19 — anti-detection naive: effect of victim-coordinate knowledge
/// on the error ratio.
pub fn fig19(scale: &Scale, seed: u64) -> FigureResult {
    knowledge_sweep(
        "fig19",
        "Injection in NPS of anti-detection naive attackers: effect of victim coordinate knowledge",
        scale,
        seed,
        false,
        KnowledgeMetric::ErrorRatio,
    )
}

/// Figure 20 — anti-detection naive: ratio of filtered malicious nodes to
/// all filtered nodes, per knowledge level.
pub fn fig20(scale: &Scale, seed: u64) -> FigureResult {
    knowledge_sweep(
        "fig20",
        "Anti-detection naive attackers: filtered-malicious share of all filter events",
        scale,
        seed,
        false,
        KnowledgeMetric::FilteredMaliciousRatio,
    )
}

/// Figure 21 — anti-detection sophisticated attackers: CDF.
pub fn fig21(scale: &Scale, seed: u64) -> FigureResult {
    let grid = quantile_grid();
    let fractions = [0.10, 0.20, 0.30];
    let factory = anti_detection_factory(Knowledge::half(), true);
    let mut columns = vec!["quantile".to_string()];
    let mut cdfs = Vec::new();
    let mut notes = Vec::new();
    for &f in &fractions {
        columns.push(format!("err_{}pct", (f * 100.0) as u32));
        let runs = runs_for(scale, NpsConfig::default(), f, seed, &factory);
        let all: Vec<f64> = runs.iter().flat_map(|r| r.final_errors.clone()).collect();
        let clean = runs.iter().map(|r| r.clean_ref).sum::<f64>() / runs.len() as f64;
        let cdf = Cdf::from_samples(&all);
        notes.push(format!(
            "{}%: median {:.2} (clean system mean ≈ {:.2}); fraction worse than clean mean: {:.2}",
            (f * 100.0) as u32,
            cdf.median(),
            clean,
            1.0 - cdf.fraction_below(clean)
        ));
        cdfs.push(cdf);
    }
    let rows: Vec<Vec<f64>> = grid
        .iter()
        .map(|&q| {
            let mut row = vec![q];
            row.extend(cdfs.iter().map(|c| c.quantile(q)));
            row
        })
        .collect();
    FigureResult {
        id: "fig21".into(),
        title: "Injected anti-detection sophisticated attacks on NPS: CDF".into(),
        columns,
        rows,
        notes,
    }
}

/// Figure 22 — anti-detection sophisticated: filtered-malicious share per
/// knowledge level.
pub fn fig22(scale: &Scale, seed: u64) -> FigureResult {
    knowledge_sweep(
        "fig22",
        "Anti-detection sophisticated attackers: filtered-malicious share per knowledge level",
        scale,
        seed,
        true,
        KnowledgeMetric::FilteredMaliciousRatio,
    )
}

enum KnowledgeMetric {
    ErrorRatio,
    FilteredMaliciousRatio,
}

fn knowledge_sweep(
    id: &str,
    title: &str,
    scale: &Scale,
    seed: u64,
    sophisticated: bool,
    metric: KnowledgeMetric,
) -> FigureResult {
    let knowledges = [Knowledge::None, Knowledge::half(), Knowledge::Oracle];
    let fractions = [0.05, 0.10, 0.20, 0.30];
    let mut columns = vec!["fraction_pct".to_string()];
    for k in &knowledges {
        columns.push(format!("p{}", k.probability()));
    }
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for &f in &fractions {
        let mut row = vec![f * 100.0];
        for &k in &knowledges {
            let factory = anti_detection_factory(k, sophisticated);
            let runs = runs_for(scale, NpsConfig::default(), f, seed, &factory);
            let value = match metric {
                KnowledgeMetric::ErrorRatio => {
                    runs.iter()
                        .map(|r| r.attack_series.tail_mean(3) / r.clean_ref.max(1e-9))
                        .sum::<f64>()
                        / runs.len() as f64
                }
                KnowledgeMetric::FilteredMaliciousRatio => {
                    // Pool filter events over repetitions (single runs may
                    // have few events).
                    let mut pooled = vcoord_metrics::FilterLedger::new();
                    for r in &runs {
                        pooled.merge(&r.ledger);
                    }
                    if matches!(metric, KnowledgeMetric::FilteredMaliciousRatio) {
                        notes.push(format!(
                            "{}% p={}: filter events {} (malicious {}), threshold bans {}",
                            (f * 100.0).round(),
                            k.probability(),
                            pooled.total(),
                            pooled.filtered_malicious,
                            runs.iter().map(|r| r.threshold_ledger.total()).sum::<u64>()
                        ));
                    }
                    pooled.malicious_ratio().unwrap_or(0.0)
                }
            };
            row.push(value);
        }
        rows.push(row);
    }
    FigureResult {
        id: id.into(),
        title: title.into(),
        columns,
        rows,
        notes,
    }
}

/// Figure 23 — colluding isolation, 3-layer system: CDF of relative errors.
pub fn fig23(scale: &Scale, seed: u64) -> FigureResult {
    collusion_cdf("fig23", 3, scale, seed)
}

/// Figure 24 — colluding isolation, 4-layer system: CDF of relative errors.
pub fn fig24(scale: &Scale, seed: u64) -> FigureResult {
    collusion_cdf("fig24", 4, scale, seed)
}

fn collusion_cdf(id: &str, layers: usize, scale: &Scale, seed: u64) -> FigureResult {
    let grid = quantile_grid();
    let fractions = [0.10, 0.20, 0.30];
    let factory = collusion_factory(0.2);
    let mut columns = vec!["quantile".to_string()];
    let mut cdfs = Vec::new();
    let mut notes = Vec::new();
    for &f in &fractions {
        columns.push(format!("err_{}pct", (f * 100.0) as u32));
        let runs = runs_for(scale, NpsConfig::with_layers(layers), f, seed, &factory);
        let all: Vec<f64> = runs.iter().flat_map(|r| r.final_errors.clone()).collect();
        let victims_err: f64 = {
            let vals: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.focus_series.as_ref().map(|s| s.tail_mean(3)))
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let cdf = Cdf::from_samples(&all);
        notes.push(format!(
            "{layers}-layer {}%: system median {:.2}, victim avg {:.2}",
            (f * 100.0) as u32,
            cdf.median(),
            victims_err
        ));
        cdfs.push(cdf);
    }
    let rows: Vec<Vec<f64>> = grid
        .iter()
        .map(|&q| {
            let mut row = vec![q];
            row.extend(cdfs.iter().map(|c| c.quantile(q)));
            row
        })
        .collect();
    FigureResult {
        id: id.into(),
        title: format!(
            "Injection of colluding Isolation attack on NPS ({layers}-layer): CDF of relative errors"
        ),
        columns,
        rows,
        notes,
    }
}

/// Figure 25 — colluding isolation: propagation of errors across layers
/// (layer-2 victims vs layer-3 nodes, clean vs 20 % corrupted).
pub fn fig25(scale: &Scale, seed: u64) -> FigureResult {
    let factory = collusion_factory(0.2);
    let honest_factory: NpsFactory<'_> = &|_sim, _attackers, _seeds| {
        (
            Box::new(vcoord_attackkit::Honest) as BoxedNpsAdversary,
            None,
        )
    };
    let fraction = 0.20;

    // Corrupted 3-layer and 4-layer systems.
    let r3 = runs_for(scale, NpsConfig::with_layers(3), fraction, seed, &factory);
    let r4 = runs_for(scale, NpsConfig::with_layers(4), fraction, seed, &factory);
    // Clean references (0% attackers; honest factory keeps plumbing equal).
    let c3 = runs_for(scale, NpsConfig::with_layers(3), 0.0, seed, honest_factory);
    let c4 = runs_for(scale, NpsConfig::with_layers(4), 0.0, seed, honest_factory);

    let layer_avg = |runs: &[NpsRun], layer: u8| -> f64 {
        let vals: Vec<f64> = runs
            .iter()
            .flat_map(|r| {
                r.layer_series
                    .iter()
                    .filter(|(l, _)| *l == layer)
                    .map(|(_, s)| s.tail_mean(3))
            })
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let victim_avg = |runs: &[NpsRun]| -> f64 {
        let vals: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.focus_series.as_ref().map(|s| s.tail_mean(3)))
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };

    let rows = vec![
        vec![
            3.0,
            2.0,
            layer_avg(&c3, 2),
            layer_avg(&r3, 2),
            victim_avg(&r3),
        ],
        vec![
            4.0,
            2.0,
            layer_avg(&c4, 2),
            layer_avg(&r4, 2),
            victim_avg(&r4),
        ],
        vec![4.0, 3.0, layer_avg(&c4, 3), layer_avg(&r4, 3), f64::NAN],
    ];
    let notes = vec![
        format!(
            "layer-2 victim error similar across structures: 3L {:.2} vs 4L {:.2}",
            victim_avg(&r3),
            victim_avg(&r4)
        ),
        format!(
            "layer-3 amplification in 4-layer system: clean {:.2} -> attacked {:.2}",
            layer_avg(&c4, 3),
            layer_avg(&r4, 3)
        ),
    ];
    FigureResult {
        id: "fig25".into(),
        title: "Colluding Isolation on NPS: propagation of errors across layers".into(),
        columns: vec![
            "system_layers".into(),
            "layer".into(),
            "clean_err".into(),
            "attacked_err".into(),
            "victim_err".into(),
        ],
        rows,
        notes,
    }
}

/// Figure 26 — combined NPS attacks: impact on convergence.
pub fn fig26(scale: &Scale, seed: u64) -> FigureResult {
    error_vs_time(
        "fig26",
        "Injection of combined attacks on NPS: impact on convergence",
        scale,
        seed,
        &[0.05, 0.10, 0.15],
        &[("combined", NpsConfig::default())],
        &combined_factory(Knowledge::half()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_is_static_and_correct() {
        let fig = fig17(&Scale::smoke(), 0);
        assert_eq!(fig.rows.len(), 4);
        // α = 2 row: bound 399.
        let row = &fig.rows[2];
        assert_eq!(row[0], 2.0);
        assert!((row[1] - 399.0).abs() < 1e-9);
    }

    #[test]
    fn fig14_smoke_shows_attack_effect() {
        let scale = Scale::smoke();
        let fig = fig14(&scale, 5);
        assert!(!fig.rows.is_empty());
        assert_eq!(fig.columns.len(), 1 + 4 * 2);
    }
}
