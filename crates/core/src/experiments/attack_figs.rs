//! Figure runners for the `attackkit` scenario families (beyond the
//! paper's evaluation): attack-strength sweeps of the generic strategies —
//! frog-boiling, oscillation, network partition, inflation, deflation —
//! against both Vivaldi and NPS, plus a drift-velocity study of
//! frog-boiling step sizes.
//!
//! Each sweep CSV reports, per malicious fraction and strategy, the
//! converged relative error of the honest population *and* its drift
//! velocity (mean coordinate displacement per round). The two metrics
//! separate the attack families: random/inflation lies blow the error up
//! immediately, while gradual attacks keep the error low at first and show
//! up as a steady non-zero drift — the signature any displacement-threshold
//! defence has to contend with.

use crate::experiments::harness::{run_nps, run_vivaldi, NpsFactory, VivaldiFactory};
use crate::experiments::{average_series, run_repetitions, FigureResult, Scale};
use vcoord_attackkit::{
    AttackStrategy, Deflation, FrogBoiling, Inflation, NetworkPartition, Oscillation,
};
use vcoord_nps::NpsConfig;
use vcoord_space::Space;

/// The generic strategy labels swept by the attack figures, in CSV column
/// order.
pub const STRATEGIES: [&str; 5] = [
    "frog_boiling",
    "oscillation",
    "partition",
    "inflation",
    "deflation",
];

/// Malicious fractions swept by the attack-strength figures.
const FRACTIONS: [f64; 3] = [0.10, 0.30, 0.50];

/// Workspace-default instance of one generic strategy by label (shared
/// with the defense sweeps in `experiments::defense_figs`).
pub fn strategy_by(label: &str) -> Box<dyn AttackStrategy> {
    match label {
        "frog_boiling" => Box::new(FrogBoiling::default()),
        "oscillation" => Box::new(Oscillation::default()),
        "partition" => Box::new(NetworkPartition::default()),
        "inflation" => Box::new(Inflation::default()),
        "deflation" => Box::new(Deflation::default()),
        other => unreachable!("unknown attackkit strategy label {other}"),
    }
}

/// One attack-strength sweep row set: for each fraction, per-strategy
/// converged error and drift velocity, from `runner(strategy_label,
/// fraction) -> (err, drift)`.
fn sweep_rows<F>(runner: F) -> (Vec<String>, Vec<Vec<f64>>, Vec<String>)
where
    F: Fn(&str, f64) -> (f64, f64),
{
    let mut columns = vec!["fraction_pct".to_string()];
    for s in STRATEGIES {
        columns.push(format!("err_{s}"));
    }
    for s in STRATEGIES {
        columns.push(format!("drift_{s}"));
    }
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for &f in &FRACTIONS {
        let mut errs = Vec::new();
        let mut drifts = Vec::new();
        for s in STRATEGIES {
            let (e, d) = runner(s, f);
            errs.push(e);
            drifts.push(d);
        }
        let mut row = vec![f * 100.0];
        row.extend(errs.iter().copied());
        row.extend(drifts.iter().copied());
        rows.push(row);
        notes.push(format!(
            "{}% malicious: err frog {:.2} / osc {:.2} / part {:.2} / infl {:.2} / defl {:.2}; drift frog {:.2} / part {:.2} ms/round",
            (f * 100.0).round(),
            errs[0],
            errs[1],
            errs[2],
            errs[3],
            errs[4],
            drifts[0],
            drifts[2],
        ));
    }
    (columns, rows, notes)
}

/// Tail-mean of one series per run, averaged across repetitions — the
/// shared (error, drift) cell aggregation of the sweep figures (also used
/// by `experiments::defense_figs`).
pub(crate) fn mean_tails<'a, R: 'a>(
    runs: &'a [R],
    series: impl Fn(&'a R) -> &'a vcoord_metrics::TimeSeries,
) -> f64 {
    runs.iter().map(|r| series(r).tail_mean(3)).sum::<f64>() / runs.len().max(1) as f64
}

/// `atk-sweep-vivaldi` — attack-strength sweep of the generic strategies
/// against Vivaldi: converged relative error and drift velocity per
/// malicious fraction.
pub fn atk_sweep_vivaldi(scale: &Scale, seed: u64) -> FigureResult {
    let (columns, rows, notes) = sweep_rows(|label, fraction| {
        let factory: VivaldiFactory<'_> =
            &move |_sim, _attackers, _seeds| (strategy_by(label), None);
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi(
                scale,
                Space::Euclidean(2),
                scale.nodes,
                fraction,
                seed,
                rep,
                factory,
            )
        });
        (
            mean_tails(&runs, |r| &r.attack_series),
            mean_tails(&runs, |r| &r.drift_series),
        )
    });
    FigureResult {
        id: "atk-sweep-vivaldi".into(),
        title: "attackkit strategies on Vivaldi: error and drift velocity vs malicious share"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// `atk-sweep-nps` — the same sweep against NPS (default 3-layer
/// hierarchy, security filter on).
pub fn atk_sweep_nps(scale: &Scale, seed: u64) -> FigureResult {
    let (columns, rows, notes) = sweep_rows(|label, fraction| {
        let factory: NpsFactory<'_> = &move |_sim, _attackers, _seeds| (strategy_by(label), None);
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_nps(
                scale,
                NpsConfig::default(),
                scale.nodes,
                fraction,
                seed,
                rep,
                factory,
            )
        });
        (
            mean_tails(&runs, |r| &r.attack_series),
            mean_tails(&runs, |r| &r.drift_series),
        )
    });
    FigureResult {
        id: "atk-sweep-nps".into(),
        title: "attackkit strategies on NPS: error and drift velocity vs malicious share".into(),
        columns,
        rows,
        notes,
    }
}

/// `atk-frog-drift` — frog-boiling on Vivaldi: honest-population drift
/// velocity over time for several step sizes (30 % malicious).
///
/// The point of the attack is that the *victim-side* drift stays roughly
/// proportional to the configured step — small enough per round to pass
/// under displacement thresholds — while the offsets integrate without
/// bound.
pub fn atk_frog_drift(scale: &Scale, seed: u64) -> FigureResult {
    let steps = [1.0, 5.0, 25.0];
    let fraction = 0.30;
    let mut columns = vec!["tick".to_string()];
    let mut per_step = Vec::new();
    let mut notes = Vec::new();
    for &step in &steps {
        columns.push(format!("drift_step_{step:.0}ms"));
        let factory: VivaldiFactory<'_> = &move |_sim, _attackers, _seeds| {
            (
                Box::new(FrogBoiling::new(step)) as Box<dyn AttackStrategy>,
                None,
            )
        };
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi(
                scale,
                Space::Euclidean(2),
                scale.nodes,
                fraction,
                seed,
                rep,
                factory,
            )
        });
        let drifts: Vec<_> = runs.iter().map(|r| r.drift_series.clone()).collect();
        let avg = average_series(&drifts);
        let errs = mean_tails(&runs, |r| &r.attack_series);
        notes.push(format!(
            "step {step} ms/round: steady drift {:.2} ms/tick, final error {errs:.2}",
            avg.tail_mean(3)
        ));
        per_step.push(avg);
    }
    let len = per_step.iter().map(|s| s.len()).min().unwrap_or(0);
    let rows: Vec<Vec<f64>> = (0..len)
        .map(|k| {
            let mut row = vec![per_step[0].points()[k].0 as f64];
            row.extend(per_step.iter().map(|s| s.points()[k].1));
            row
        })
        .collect();
    FigureResult {
        id: "atk-frog-drift".into(),
        title: "Frog-boiling on Vivaldi: drift velocity vs time by step size".into(),
        columns,
        rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_vivaldi_smoke_has_expected_shape() {
        let scale = Scale::smoke();
        let fig = atk_sweep_vivaldi(&scale, 7);
        assert_eq!(fig.id, "atk-sweep-vivaldi");
        assert_eq!(fig.columns.len(), 1 + 2 * STRATEGIES.len());
        assert_eq!(fig.rows.len(), FRACTIONS.len());
        for row in &fig.rows {
            assert_eq!(row.len(), fig.columns.len());
            assert!(row.iter().all(|v| v.is_finite()));
        }
        // Gradual attacks must produce non-zero drift at 50% malicious.
        let last = fig.rows.last().expect("rows");
        let drift_frog = last[1 + STRATEGIES.len()];
        assert!(drift_frog > 0.0, "frog-boiling drift missing: {last:?}");
    }

    #[test]
    fn frog_drift_smoke_tracks_time() {
        let scale = Scale::smoke();
        let fig = atk_frog_drift(&scale, 9);
        assert_eq!(fig.columns.len(), 4);
        assert!(!fig.rows.is_empty());
    }

    #[test]
    fn every_strategy_label_resolves() {
        for s in STRATEGIES {
            assert!(!strategy_by(s).label().is_empty());
        }
    }
}
