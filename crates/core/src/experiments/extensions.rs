//! Extension experiments beyond the paper's figures.
//!
//! * [`ext_genesis`] — *genesis vs injection* timing: the paper studies the
//!   injection scenario and cites its companion work (Kaafar et al.,
//!   SIGCOMM LSAD'06, reference \[9\]) for attackers present from the
//!   system's creation. This experiment runs both timings side by side on
//!   identical topologies and seeds.
//! * [`ext_faults`] — *benign faults are not attacks*: probe loss and
//!   jitter sweeps on a clean Vivaldi system versus a lightly attacked one,
//!   demonstrating that the coordinate system's robustness to benign
//!   degradation does not extend to adversarial (systematically biased)
//!   inputs.

use crate::attacks::vivaldi::VivaldiDisorder;
use crate::experiments::{run_repetitions, FigureResult, Scale};
use vcoord_metrics::EvalPlan;
use vcoord_netsim::{LinkModel, SeedStream};
use vcoord_space::Space;
use vcoord_topo::{KingLike, KingLikeConfig};
use vcoord_vivaldi::{VivaldiConfig, VivaldiSim};

/// When the malicious population becomes active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackTiming {
    /// Attackers are present from the system's creation (reference \[9\]'s
    /// scenario): honest nodes never get a clean convergence phase.
    Genesis,
    /// Attackers are injected into a converged system (the paper's §5
    /// scenario).
    Injection,
}

/// Final average relative error of honest nodes for one disorder run at the
/// given timing.
fn disorder_run(scale: &Scale, timing: AttackTiming, fraction: f64, seed: u64, rep: u64) -> f64 {
    let seeds = SeedStream::new(seed).derive_indexed("ext-genesis", rep);
    let matrix =
        KingLike::new(KingLikeConfig::with_nodes(scale.nodes)).generate(&mut seeds.rng("topo"));
    let mut sim = VivaldiSim::new(matrix, VivaldiConfig::in_space(Space::Euclidean(2)), &seeds);

    let horizon = scale.vivaldi_warmup_ticks + scale.vivaldi_attack_ticks;
    match timing {
        AttackTiming::Genesis => {
            let attackers = sim.pick_attackers(fraction);
            sim.inject_adversary(&attackers, Box::new(VivaldiDisorder::default()));
            sim.run_ticks(horizon);
        }
        AttackTiming::Injection => {
            sim.run_ticks(scale.vivaldi_warmup_ticks);
            let attackers = sim.pick_attackers(fraction);
            sim.inject_adversary(&attackers, Box::new(VivaldiDisorder::default()));
            sim.run_ticks(scale.vivaldi_attack_ticks);
        }
    }
    let plan = EvalPlan::with_params(
        &sim.honest_nodes(),
        scale.eval_all_pairs_threshold,
        scale.eval_sample_peers,
        &mut seeds.rng("plan"),
    );
    plan.avg_error_with(
        sim.coords(),
        sim.space(),
        sim.matrix(),
        crate::experiments::eval_thread_budget(scale.repetitions),
    )
}

/// Genesis vs injection comparison across attacker fractions.
pub fn ext_genesis(scale: &Scale, seed: u64) -> FigureResult {
    let fractions = [0.0, 0.10, 0.20, 0.30];
    let mut rows = Vec::new();
    for &f in &fractions {
        let genesis = run_repetitions(scale.repetitions, |rep| {
            disorder_run(scale, AttackTiming::Genesis, f, seed, rep)
        });
        let injection = run_repetitions(scale.repetitions, |rep| {
            disorder_run(scale, AttackTiming::Injection, f, seed, rep)
        });
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        rows.push(vec![f * 100.0, mean(&genesis), mean(&injection)]);
    }
    let notes = vec![
        "extension beyond the paper: §5.2 notes injection is the realistic scenario; genesis is its companion work [9]".into(),
        "a genesis attack also denies the system its clean convergence (cold-start disruption)".into(),
    ];
    FigureResult {
        id: "ext-genesis".into(),
        title: "Extension: genesis vs injection timing of the Vivaldi disorder attack".into(),
        columns: vec![
            "fraction_pct".into(),
            "err_genesis".into(),
            "err_injection".into(),
        ],
        rows,
        notes,
    }
}

/// Benign-fault sweep vs a light attack.
pub fn ext_faults(scale: &Scale, seed: u64) -> FigureResult {
    let cases: [(&str, LinkModel, f64); 5] = [
        ("clean", LinkModel::ideal(), 0.0),
        (
            "loss20",
            LinkModel {
                loss: 0.2,
                jitter_ms: 0.0,
            },
            0.0,
        ),
        (
            "jitter10ms",
            LinkModel {
                loss: 0.0,
                jitter_ms: 10.0,
            },
            0.0,
        ),
        (
            "loss20_jitter10",
            LinkModel {
                loss: 0.2,
                jitter_ms: 10.0,
            },
            0.0,
        ),
        ("attack10pct", LinkModel::ideal(), 0.10),
    ];
    let mut rows = Vec::new();
    for (idx, (_, link, fraction)) in cases.iter().enumerate() {
        let errs = run_repetitions(scale.repetitions, |rep| {
            let seeds = SeedStream::new(seed).derive_indexed("ext-faults", rep);
            let matrix = KingLike::new(KingLikeConfig::with_nodes(scale.nodes))
                .generate(&mut seeds.rng("topo"));
            let config = VivaldiConfig {
                link: *link,
                ..VivaldiConfig::default()
            };
            let mut sim = VivaldiSim::new(matrix, config, &seeds);
            sim.run_ticks(scale.vivaldi_warmup_ticks);
            if *fraction > 0.0 {
                let attackers = sim.pick_attackers(*fraction);
                sim.inject_adversary(&attackers, Box::new(VivaldiDisorder::default()));
            }
            sim.run_ticks(scale.vivaldi_attack_ticks);
            let plan = EvalPlan::with_params(
                &sim.honest_nodes(),
                scale.eval_all_pairs_threshold,
                scale.eval_sample_peers,
                &mut seeds.rng("plan"),
            );
            plan.avg_error_with(
                sim.coords(),
                sim.space(),
                sim.matrix(),
                crate::experiments::eval_thread_budget(scale.repetitions),
            )
        });
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        rows.push(vec![idx as f64, mean]);
    }
    let notes = vec![
        "row index: 0=clean 1=20% loss 2=10ms jitter 3=both 4=10% disorder attackers".into(),
        "benign faults cost percent-level accuracy; a 10% attack costs orders of magnitude".into(),
    ];
    FigureResult {
        id: "ext-faults".into(),
        title: "Extension: benign probe faults vs adversarial behaviour on Vivaldi".into(),
        columns: vec!["case".into(), "avg_rel_error".into()],
        rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_extension_shape() {
        let scale = Scale::smoke();
        let fig = ext_genesis(&scale, 3);
        assert_eq!(fig.rows.len(), 4);
        // Fraction 0: both timings equal the clean system (within noise).
        let clean = &fig.rows[0];
        assert!(clean[1] < 1.0 && clean[2] < 1.0, "{clean:?}");
        // Attacked rows are much worse under either timing.
        let attacked = &fig.rows[3];
        assert!(attacked[1] > clean[1] * 3.0);
        assert!(attacked[2] > clean[2] * 3.0);
    }
}
