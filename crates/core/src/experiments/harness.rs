//! Per-run drivers: converge a clean system, inject an attack, record.
//!
//! Both drivers follow the paper's *injection* protocol (§5.2): the system
//! first converges cleanly (warm-up), the malicious population is then
//! selected at random and activated, and metrics are recorded before and
//! after. Every run is fully determined by `(master_seed, repetition)`.

use crate::experiments::Scale;
use vcoord_attackkit::AttackStrategy;
use vcoord_chaos::{ChaosCounters, ChaosPlan};
use vcoord_defense::{DefenseStats, DefenseStrategy};
use vcoord_metrics::{random_baseline_with, Confusion, EvalPlan, FilterLedger, TimeSeries};
use vcoord_netsim::SeedStream;
use vcoord_nps::{NpsConfig, NpsSim};
use vcoord_space::{Coord, Space};
use vcoord_topo::{KingLike, KingLikeConfig};
use vcoord_vivaldi::{VivaldiConfig, VivaldiSim};

/// The random-coordinate interval of the paper's worst-case baseline.
pub const RANDOM_RANGE: f64 = 50_000.0;

/// Flag events a node must accumulate before the harness counts it as
/// *detected* when grading verdicts into a [`Confusion`]: sample-level
/// filters (MAD, EWMA) throw occasional single rejections at honest nodes
/// under noise, so node-level detection requires persistence.
pub const DETECTION_MIN_FLAGS: u64 = 3;

/// Minimum share of a node's inspected samples that must be flagged (on
/// top of [`DETECTION_MIN_FLAGS`]) — the count floor alone stops
/// separating honest tail-noise from real detections as runs get longer.
pub const DETECTION_MIN_RATE: f64 = 0.08;

/// What a deployed defense did during the attack window, graded against
/// attackkit's ground-truth malicious set after the run.
#[derive(Debug, Clone)]
pub struct DefenseOutcome {
    /// The strategy's label.
    pub label: String,
    /// Samples accepted unchanged.
    pub accepted: u64,
    /// Samples rejected.
    pub rejected: u64,
    /// Samples dampened below full strength.
    pub dampened: u64,
    /// Node-level ban events routed through the reputation channel.
    pub bans: u64,
    /// Node-level reinstatements (non-zero only for decaying defenses).
    pub reinstated: u64,
    /// Honest nodes still banned when the run ended — the steady-state
    /// defamation cost a permanently-banning defense accumulates and a
    /// decaying one sheds.
    pub banned_honest_final: u64,
    /// Malicious nodes still banned when the run ended.
    pub banned_malicious_final: u64,
    /// Samples quarantined by provenance (readmission-lease evidence that
    /// was judged but never recorded — see `vcoord_defense::Provenance`).
    pub quarantined: u64,
    /// Node-level detection quality at [`DETECTION_MIN_FLAGS`].
    pub confusion: Confusion,
    /// Rejections per recording interval (the defense's activity trace).
    pub reject_series: TimeSeries,
}

impl DefenseOutcome {
    fn grade(
        label: &str,
        stats: &DefenseStats,
        malicious: &[bool],
        banned_now: &[usize],
        reject_series: TimeSeries,
    ) -> DefenseOutcome {
        let banned_malicious_final = banned_now
            .iter()
            .filter(|&&n| malicious.get(n).copied().unwrap_or(false))
            .count() as u64;
        DefenseOutcome {
            label: label.to_string(),
            accepted: stats.accepted,
            rejected: stats.rejected,
            dampened: stats.dampened,
            bans: stats.bans,
            reinstated: stats.reinstated,
            banned_honest_final: banned_now.len() as u64 - banned_malicious_final,
            banned_malicious_final,
            quarantined: stats.quarantined,
            confusion: stats.confusion_rated(malicious, DETECTION_MIN_FLAGS, DETECTION_MIN_RATE),
            reject_series,
        }
    }
}

/// Outcome of one Vivaldi attack run.
#[derive(Debug, Clone)]
pub struct VivaldiRun {
    /// Average relative error of (eventually honest) nodes, sampled during
    /// warm-up.
    pub clean_series: TimeSeries,
    /// Average relative error of honest nodes after injection.
    pub attack_series: TimeSeries,
    /// Converged clean error (tail mean of the warm-up series) — the
    /// denominator of the paper's *error ratio*.
    pub clean_ref: f64,
    /// Per-honest-node relative errors at the end of the run (CDF input).
    pub final_errors: Vec<f64>,
    /// Error of the focus set (e.g. the isolation target), when tracked.
    pub focus_series: Option<TimeSeries>,
    /// Mean honest-node coordinate displacement per tick during the attack
    /// window (ms/tick) — the *drift velocity* gradual attacks maximize
    /// while staying under displacement thresholds.
    pub drift_series: TimeSeries,
    /// Average error of the random-coordinate baseline on this topology.
    pub random_baseline: f64,
    /// Number of attackers injected.
    pub attackers: usize,
    /// What the deployed defense did, when one was deployed.
    pub defense: Option<DefenseOutcome>,
    /// Fault-injection accounting, when a chaos plan was installed.
    pub chaos: Option<ChaosCounters>,
}

/// Builds the adversary once the attacker set is known. Returns the boxed
/// strategy plus an optional *focus set* of nodes whose error the harness
/// should track separately (isolation targets, designated victims).
pub type VivaldiFactory<'a> = &'a (dyn Fn(&mut VivaldiSim, &[usize], &SeedStream) -> (Box<dyn AttackStrategy>, Option<Vec<usize>>)
         + Sync);

/// Builds the fault-injection plan installed at the injection instant.
/// Like defense factories, chaos factories see the converged system (for
/// structural targeting — landmark ids, system size) and the seed stream;
/// plan times are milliseconds *after installation*.
pub type VivaldiChaosFactory<'a> = &'a (dyn Fn(&VivaldiSim, &SeedStream) -> ChaosPlan + Sync);

/// Chaos-plan factory for NPS runs (see [`VivaldiChaosFactory`]).
pub type NpsChaosFactory<'a> = &'a (dyn Fn(&NpsSim, &SeedStream) -> ChaosPlan + Sync);

/// Builds the defense to deploy at injection time. Unlike the adversary
/// factories this one never sees the attacker set — a defense that knew
/// ground truth would be cheating — only the converged system (for
/// structural configuration like trusted sets) and the seed stream.
pub type VivaldiDefenseFactory<'a> =
    &'a (dyn Fn(&VivaldiSim, &SeedStream) -> Box<dyn DefenseStrategy> + Sync);

/// Defense factory for NPS runs (see [`VivaldiDefenseFactory`]).
pub type NpsDefenseFactory<'a> =
    &'a (dyn Fn(&NpsSim, &SeedStream) -> Box<dyn DefenseStrategy> + Sync);

/// Thread budget for per-tick `EvalPlan` sweeps inside one repetition —
/// see [`eval_thread_budget`](crate::experiments::eval_thread_budget).
fn eval_threads(scale: &Scale) -> usize {
    crate::experiments::eval_thread_budget(scale.repetitions)
}

/// Mean displacement per round of `nodes` between `prev` (updated in
/// place) and their current coordinates — the drift-velocity sample.
fn drift_sample(
    nodes: &[usize],
    prev: &mut [Coord],
    coords: &[Coord],
    space: &Space,
    rounds: u64,
) -> f64 {
    let mut total = 0.0;
    for (k, &i) in nodes.iter().enumerate() {
        total += space.distance(&coords[i], &prev[k]);
        prev[k] = coords[i].clone();
    }
    total / (nodes.len().max(1) as f64 * rounds.max(1) as f64)
}

/// Run one Vivaldi injection experiment.
///
/// `nodes` overrides `scale.nodes` (system-size sweeps); `fraction` is the
/// malicious share of the population.
#[allow(clippy::too_many_arguments)]
pub fn run_vivaldi(
    scale: &Scale,
    space: Space,
    nodes: usize,
    fraction: f64,
    master_seed: u64,
    rep: u64,
    factory: VivaldiFactory<'_>,
) -> VivaldiRun {
    run_vivaldi_defended(
        scale,
        space,
        nodes,
        fraction,
        master_seed,
        rep,
        factory,
        None,
    )
}

/// [`run_vivaldi`] with a defense deployed at injection time (on the
/// converged system, the moment the attack goes live) — the attack×defense
/// sweep driver. With `defense: None` this *is* `run_vivaldi`: the
/// undefended path is untouched.
#[allow(clippy::too_many_arguments)]
pub fn run_vivaldi_defended(
    scale: &Scale,
    space: Space,
    nodes: usize,
    fraction: f64,
    master_seed: u64,
    rep: u64,
    factory: VivaldiFactory<'_>,
    defense: Option<VivaldiDefenseFactory<'_>>,
) -> VivaldiRun {
    run_vivaldi_chaos(
        scale,
        space,
        nodes,
        fraction,
        master_seed,
        rep,
        factory,
        defense,
        None,
    )
}

/// [`run_vivaldi_defended`] with a fault-injection plan installed at the
/// injection instant — the chaos-sweep driver. With `chaos: None` the sim
/// never allocates chaos state and this *is* `run_vivaldi_defended` (the
/// chaos-off inertness property pinned by `tests/chaos_properties.rs`).
#[allow(clippy::too_many_arguments)]
pub fn run_vivaldi_chaos(
    scale: &Scale,
    space: Space,
    nodes: usize,
    fraction: f64,
    master_seed: u64,
    rep: u64,
    factory: VivaldiFactory<'_>,
    defense: Option<VivaldiDefenseFactory<'_>>,
    chaos: Option<VivaldiChaosFactory<'_>>,
) -> VivaldiRun {
    let seeds = SeedStream::new(master_seed).derive_indexed("vivaldi-rep", rep);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(nodes)).generate(&mut seeds.rng("topo"));
    let config = VivaldiConfig::in_space(space);
    let mut sim = VivaldiSim::new(matrix, config, &seeds);
    let threads = eval_threads(scale);

    let all: Vec<usize> = (0..nodes).collect();
    let mut plan_rng = seeds.rng("eval-plan");
    let plan_all = EvalPlan::with_params(
        &all,
        scale.eval_all_pairs_threshold,
        scale.eval_sample_peers,
        &mut plan_rng,
    );

    // Warm-up: converge cleanly, recording the reference series.
    let mut clean_series = TimeSeries::new();
    let mut t = 0;
    while t < scale.vivaldi_warmup_ticks {
        sim.run_ticks(scale.vivaldi_record_every);
        t += scale.vivaldi_record_every;
        clean_series.push(
            sim.now_ticks(),
            plan_all.avg_error_with(sim.coords(), sim.space(), sim.matrix(), threads),
        );
    }
    let clean_ref = clean_series.tail_mean(5).max(1e-6);

    // Injection — and, in the same instant, defense deployment: the sweep
    // measures how a converged, defended system absorbs a fresh attack.
    let attackers = sim.pick_attackers(fraction);
    let n_attackers = attackers.len();
    let (adversary, focus) = factory(&mut sim, &attackers, &seeds);
    sim.inject_adversary(&attackers, adversary);
    if let Some(build) = defense {
        let strategy = build(&sim, &seeds);
        sim.deploy_defense(strategy);
    }
    if let Some(build) = chaos {
        let plan = build(&sim, &seeds);
        sim.install_chaos(plan);
    }

    // Honest-population evaluation plan (the paper measures victims).
    let honest = sim.honest_nodes();
    let plan_honest = EvalPlan::with_params(
        &honest,
        scale.eval_all_pairs_threshold,
        scale.eval_sample_peers,
        &mut plan_rng,
    );
    let focus_indices: Option<Vec<usize>> = focus.as_ref().map(|f| {
        f.iter()
            .filter_map(|id| plan_honest.nodes().iter().position(|&n| n == *id))
            .collect()
    });

    let mut attack_series = TimeSeries::new();
    let mut drift_series = TimeSeries::new();
    let mut reject_series = TimeSeries::new();
    let mut rejected_so_far = 0u64;
    let mut focus_series = focus_indices.as_ref().map(|_| TimeSeries::new());
    let mut final_errors: Vec<f64> = Vec::new();
    let mut prev_coords: Vec<Coord> = plan_honest
        .nodes()
        .iter()
        .map(|&i| sim.coords()[i].clone())
        .collect();
    let mut t = 0;
    while t < scale.vivaldi_attack_ticks {
        sim.run_ticks(scale.vivaldi_record_every);
        t += scale.vivaldi_record_every;
        let errs =
            plan_honest.per_node_errors_with(sim.coords(), sim.space(), sim.matrix(), threads);
        let avg = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        attack_series.push(sim.now_ticks(), avg);
        drift_series.push(
            sim.now_ticks(),
            drift_sample(
                plan_honest.nodes(),
                &mut prev_coords,
                sim.coords(),
                sim.space(),
                scale.vivaldi_record_every,
            ),
        );
        if let Some(stats) = sim.defense_stats() {
            reject_series.push(sim.now_ticks(), (stats.rejected - rejected_so_far) as f64);
            rejected_so_far = stats.rejected;
        }
        if let (Some(fs), Some(fi)) = (focus_series.as_mut(), focus_indices.as_ref()) {
            let favg = fi.iter().map(|&k| errs[k]).sum::<f64>() / fi.len().max(1) as f64;
            fs.push(sim.now_ticks(), favg);
        }
        final_errors = errs;
    }

    let banned_now: Vec<usize> = sim
        .quarantined()
        .iter()
        .enumerate()
        .filter(|(_, &q)| q)
        .map(|(i, _)| i)
        .collect();
    let defense_outcome = sim.defense().map(|d| {
        DefenseOutcome::grade(
            d.label(),
            d.stats(),
            sim.malicious(),
            &banned_now,
            reject_series,
        )
    });

    let random_baseline = random_baseline_with(
        &plan_honest,
        sim.space(),
        sim.matrix(),
        RANDOM_RANGE,
        &mut seeds.rng("random-baseline"),
        threads,
    );

    VivaldiRun {
        clean_series,
        attack_series,
        clean_ref,
        final_errors,
        focus_series,
        drift_series,
        random_baseline,
        attackers: n_attackers,
        defense: defense_outcome,
        chaos: sim.chaos_counters().copied(),
    }
}

/// Outcome of one NPS attack run.
#[derive(Debug, Clone)]
pub struct NpsRun {
    /// Average relative error during warm-up.
    pub clean_series: TimeSeries,
    /// Average relative error of honest ordinary nodes after injection.
    pub attack_series: TimeSeries,
    /// Converged clean error (ratio denominator).
    pub clean_ref: f64,
    /// Per-honest-node errors at the end (CDF input), in eval-plan order.
    pub final_errors: Vec<f64>,
    /// Per-layer average error series (layer, series) — figure 25.
    pub layer_series: Vec<(u8, TimeSeries)>,
    /// Error of the focus set (designated victims), when tracked.
    pub focus_series: Option<TimeSeries>,
    /// Mean honest-node coordinate displacement per repositioning round
    /// during the attack window (ms/round) — the drift velocity.
    pub drift_series: TimeSeries,
    /// Security-filter events attributable to the attack window.
    pub ledger: FilterLedger,
    /// Probe-threshold eliminations during the attack window.
    pub threshold_ledger: FilterLedger,
    /// Average error of the random-coordinate baseline on this topology.
    pub random_baseline: f64,
    /// Number of attackers injected.
    pub attackers: usize,
    /// What the deployed defense did, when one was deployed.
    pub defense: Option<DefenseOutcome>,
    /// Fault-injection accounting, when a chaos plan was installed.
    pub chaos: Option<ChaosCounters>,
}

/// Adversary factory for NPS runs (see [`VivaldiFactory`]).
pub type NpsFactory<'a> = &'a (dyn Fn(&mut NpsSim, &[usize], &SeedStream) -> (Box<dyn AttackStrategy>, Option<Vec<usize>>)
         + Sync);

/// Run one NPS injection experiment.
#[allow(clippy::too_many_arguments)]
pub fn run_nps(
    scale: &Scale,
    config: NpsConfig,
    nodes: usize,
    fraction: f64,
    master_seed: u64,
    rep: u64,
    factory: NpsFactory<'_>,
) -> NpsRun {
    run_nps_defended(
        scale,
        config,
        nodes,
        fraction,
        master_seed,
        rep,
        factory,
        None,
    )
}

/// [`run_nps`] with a defense deployed at injection time (see
/// [`run_vivaldi_defended`]). With `defense: None` this *is* `run_nps`.
#[allow(clippy::too_many_arguments)]
pub fn run_nps_defended(
    scale: &Scale,
    config: NpsConfig,
    nodes: usize,
    fraction: f64,
    master_seed: u64,
    rep: u64,
    factory: NpsFactory<'_>,
    defense: Option<NpsDefenseFactory<'_>>,
) -> NpsRun {
    run_nps_chaos(
        scale,
        config,
        nodes,
        fraction,
        master_seed,
        rep,
        factory,
        defense,
        None,
    )
}

/// [`run_nps_defended`] with a fault-injection plan installed at the
/// injection instant (see [`run_vivaldi_chaos`]). With `chaos: None` this
/// *is* `run_nps_defended`.
#[allow(clippy::too_many_arguments)]
pub fn run_nps_chaos(
    scale: &Scale,
    config: NpsConfig,
    nodes: usize,
    fraction: f64,
    master_seed: u64,
    rep: u64,
    factory: NpsFactory<'_>,
    defense: Option<NpsDefenseFactory<'_>>,
    chaos: Option<NpsChaosFactory<'_>>,
) -> NpsRun {
    let seeds = SeedStream::new(master_seed).derive_indexed("nps-rep", rep);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(nodes)).generate(&mut seeds.rng("topo"));
    let mut config = config;
    // CI seam: `VCOORD_NPS_WARM=1` forces warm-started positioning so the
    // quick-tier NPS figures can run as a non-golden, property-bounded
    // lane (.github/workflows/ci.yml). Unset, nothing changes — the
    // goldens are recorded with whatever mode the figure asked for.
    if std::env::var_os("VCOORD_NPS_WARM").is_some_and(|v| v == "1") {
        config.positioning =
            vcoord_nps::PositioningMode::Warm(vcoord_space::ResumePolicy::default_warm());
    }
    let layers = config.layers;
    let mut sim = NpsSim::new(matrix, config, &seeds);
    let threads = eval_threads(scale);
    let mut plan_rng = seeds.rng("eval-plan");

    // Warm-up: staggered joins + clean repositioning.
    let mut clean_series = TimeSeries::new();
    let mut r = 0;
    while r < scale.nps_warmup_rounds {
        sim.run_rounds(scale.nps_record_every);
        r += scale.nps_record_every;
        let eval = sim.eval_nodes();
        if eval.len() < 8 {
            clean_series.push(sim.now_rounds(), f64::NAN);
            continue; // joins still in progress
        }
        let plan = EvalPlan::with_params(
            &eval,
            scale.eval_all_pairs_threshold,
            scale.eval_sample_peers,
            &mut plan_rng,
        );
        clean_series.push(
            sim.now_rounds(),
            plan.avg_error_with(sim.coords(), sim.space(), sim.matrix(), threads),
        );
    }
    let clean_tail: Vec<f64> = clean_series
        .points()
        .iter()
        .rev()
        .take(5)
        .map(|&(_, v)| v)
        .filter(|v| v.is_finite())
        .collect();
    let clean_ref = if clean_tail.is_empty() {
        1e-6
    } else {
        (clean_tail.iter().sum::<f64>() / clean_tail.len() as f64).max(1e-6)
    };

    let ledger_before = sim.ledger();
    let counters_before = sim.counters();
    let threshold_before = sim.threshold_ledger();
    let _ = counters_before;

    // Injection — and, in the same instant, defense deployment.
    let attackers = sim.pick_attackers(fraction);
    let n_attackers = attackers.len();
    let (adversary, focus) = factory(&mut sim, &attackers, &seeds);
    sim.inject_adversary(&attackers, adversary);
    if let Some(build) = defense {
        let strategy = build(&sim, &seeds);
        sim.deploy_defense(strategy);
    }
    if let Some(build) = chaos {
        let plan = build(&sim, &seeds);
        sim.install_chaos(plan);
    }

    let honest = sim.eval_nodes();
    let plan_honest = EvalPlan::with_params(
        &honest,
        scale.eval_all_pairs_threshold,
        scale.eval_sample_peers,
        &mut plan_rng,
    );
    let node_layers: Vec<u8> = plan_honest
        .nodes()
        .iter()
        .map(|&i| sim.layers_of()[i])
        .collect();
    let focus_indices: Option<Vec<usize>> = focus.as_ref().map(|f| {
        f.iter()
            .filter_map(|id| plan_honest.nodes().iter().position(|&n| n == *id))
            .collect()
    });

    let mut attack_series = TimeSeries::new();
    let mut drift_series = TimeSeries::new();
    let mut reject_series = TimeSeries::new();
    let mut rejected_so_far = 0u64;
    let mut layer_acc: Vec<(u8, TimeSeries)> =
        (1..layers).map(|l| (l as u8, TimeSeries::new())).collect();
    let mut focus_series = focus_indices.as_ref().map(|_| TimeSeries::new());
    let mut final_errors: Vec<f64> = Vec::new();
    let mut prev_coords: Vec<Coord> = plan_honest
        .nodes()
        .iter()
        .map(|&i| sim.coords()[i].clone())
        .collect();
    let mut r = 0;
    while r < scale.nps_attack_rounds {
        sim.run_rounds(scale.nps_record_every);
        r += scale.nps_record_every;
        let errs =
            plan_honest.per_node_errors_with(sim.coords(), sim.space(), sim.matrix(), threads);
        let avg = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        attack_series.push(sim.now_rounds(), avg);
        drift_series.push(
            sim.now_rounds(),
            drift_sample(
                plan_honest.nodes(),
                &mut prev_coords,
                sim.coords(),
                sim.space(),
                scale.nps_record_every,
            ),
        );
        if let Some(stats) = sim.defense_stats() {
            reject_series.push(sim.now_rounds(), (stats.rejected - rejected_so_far) as f64);
            rejected_so_far = stats.rejected;
        }
        for (l, series) in layer_acc.iter_mut() {
            let vals: Vec<f64> = errs
                .iter()
                .zip(&node_layers)
                .filter(|(_, &nl)| nl == *l)
                .map(|(&e, _)| e)
                .collect();
            if !vals.is_empty() {
                series.push(
                    sim.now_rounds(),
                    vals.iter().sum::<f64>() / vals.len() as f64,
                );
            }
        }
        if let (Some(fs), Some(fi)) = (focus_series.as_mut(), focus_indices.as_ref()) {
            if !fi.is_empty() {
                let favg = fi.iter().map(|&k| errs[k]).sum::<f64>() / fi.len() as f64;
                fs.push(sim.now_rounds(), favg);
            }
        }
        final_errors = errs;
    }

    let banned_now = sim.currently_banned();
    let defense_outcome = sim.defense().map(|d| {
        DefenseOutcome::grade(
            d.label(),
            d.stats(),
            sim.malicious(),
            &banned_now,
            reject_series,
        )
    });

    let ledger_after = sim.ledger();
    let threshold_after = sim.threshold_ledger();
    let ledger = FilterLedger {
        filtered_malicious: ledger_after.filtered_malicious - ledger_before.filtered_malicious,
        filtered_honest: ledger_after.filtered_honest - ledger_before.filtered_honest,
    };
    let threshold_ledger = FilterLedger {
        filtered_malicious: threshold_after.filtered_malicious
            - threshold_before.filtered_malicious,
        filtered_honest: threshold_after.filtered_honest - threshold_before.filtered_honest,
    };

    let random_baseline = random_baseline_with(
        &plan_honest,
        sim.space(),
        sim.matrix(),
        RANDOM_RANGE,
        &mut seeds.rng("random-baseline"),
        threads,
    );

    NpsRun {
        clean_series,
        attack_series,
        clean_ref,
        final_errors,
        layer_series: layer_acc,
        focus_series,
        drift_series,
        ledger,
        threshold_ledger,
        random_baseline,
        attackers: n_attackers,
        defense: defense_outcome,
        chaos: sim.chaos_counters().copied(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::vivaldi::VivaldiDisorder;
    use vcoord_defense::NoDefense;

    #[test]
    fn no_defense_run_matches_undefended_run_exactly() {
        let scale = Scale::smoke();
        let factory: VivaldiFactory<'_> =
            &|_sim, _attackers, _seeds| (Box::new(VivaldiDisorder::default()), None);
        let bare = run_vivaldi(&scale, Space::Euclidean(2), scale.nodes, 0.2, 5, 0, factory);
        let defended = run_vivaldi_defended(
            &scale,
            Space::Euclidean(2),
            scale.nodes,
            0.2,
            5,
            0,
            factory,
            Some(&|_sim, _seeds| Box::new(NoDefense)),
        );
        // Byte-identical trajectories: the NoDefense fast path perturbs
        // nothing, so every recorded series matches exactly.
        assert_eq!(bare.final_errors, defended.final_errors);
        assert_eq!(bare.attack_series.points(), defended.attack_series.points());
        assert_eq!(bare.drift_series.points(), defended.drift_series.points());
        let outcome = defended.defense.expect("defense was deployed");
        assert_eq!(outcome.label, "none");
        assert_eq!(outcome.rejected, 0);
        assert!(outcome.accepted > 0, "samples flowed through the fast path");
        assert!(bare.defense.is_none());
    }

    #[test]
    fn vivaldi_run_produces_complete_record() {
        let scale = Scale::smoke();
        let run = run_vivaldi(
            &scale,
            Space::Euclidean(2),
            scale.nodes,
            0.3,
            7,
            0,
            &|_sim, _attackers, _seeds| (Box::new(VivaldiDisorder::default()), None),
        );
        assert!(run.clean_series.len() >= 5);
        assert!(run.attack_series.len() >= 5);
        assert!(
            run.clean_ref > 0.0 && run.clean_ref < 2.0,
            "clean_ref={}",
            run.clean_ref
        );
        assert!(!run.final_errors.is_empty());
        assert_eq!(run.attackers, (scale.nodes as f64 * 0.3).round() as usize);
        assert!(run.random_baseline > 10.0);
        // The attack must visibly degrade accuracy.
        let attacked = run.attack_series.tail_mean(3);
        assert!(
            attacked > 3.0 * run.clean_ref,
            "disorder had no effect: clean={} attacked={attacked}",
            run.clean_ref
        );
    }
}
