//! Figure runners for the defense/detection sweeps (`def-*`): every
//! attackkit strategy crossed with every defensekit strategy, on both
//! systems, plus a frog-boiling drift study and a ROC curve.
//!
//! The sweep surface answers the question the paper leaves open — *how
//! much attack does a defended system absorb?* — and makes the headline
//! claim measurable: error-based filters (MAD outlier rejection, EWMA
//! change-point detection) stop the loud attacks but are structurally
//! blind to frog-boiling, while the drift cap (a bound on the mean
//! *signed* residual a neighbor may sustain — the drag that actually moves
//! victims) catches it with a false-positive rate of zero on honest runs.
//!
//! Detection quality is graded node-level against attackkit's ground-truth
//! malicious set (see `harness::DETECTION_MIN_FLAGS`): TPR = flagged
//! malicious / all malicious, FPR = flagged honest / all honest.

use crate::experiments::attack_figs::{mean_tails, strategy_by, STRATEGIES};
use crate::experiments::harness::{
    run_nps_defended, run_vivaldi_defended, NpsFactory, VivaldiFactory,
};
use crate::experiments::{average_series, run_repetitions, FigureResult, Scale};
use vcoord_defense::{
    DefenseStrategy, DriftCap, EwmaChangePoint, NoDefense, ResidualOutlier, TriangleCheck,
    TrustedBaseline,
};
use vcoord_metrics::Confusion;
use vcoord_nps::NpsConfig;
use vcoord_space::Space;

/// The defense labels swept by the `def-*` figures, in CSV column order.
pub const DEFENSES: [&str; 6] = [
    "none",
    "mad_outlier",
    "ewma_cpd",
    "drift_cap",
    "triangle",
    "trusted",
];

/// Malicious fraction of the attack×defense sweeps (the paper's standard
/// heavy-attack share).
const FRACTION: f64 = 0.30;

/// Workspace-default instance of one defense by label. `trusted` ids feed
/// the verified-set strategy; the other labels ignore them.
pub fn defense_by(label: &str, trusted: &[usize]) -> Box<dyn DefenseStrategy> {
    match label {
        "none" => Box::new(NoDefense),
        "mad_outlier" => Box::new(ResidualOutlier::default()),
        "ewma_cpd" => Box::new(EwmaChangePoint::default()),
        "drift_cap" => Box::new(DriftCap::default()),
        "triangle" => Box::new(TriangleCheck::default()),
        "trusted" => Box::new(TrustedBaseline::new(trusted.iter().copied())),
        other => unreachable!("unknown defensekit strategy label {other}"),
    }
}

/// Paper-style verified set for Vivaldi: the first tenth of the node ids
/// (at least 8) are declared infrastructure. Trust is an assumption, not
/// knowledge — the uniform attacker draw can and does hit this set.
fn vivaldi_trusted(n: usize) -> Vec<usize> {
    (0..n.div_ceil(10).max(8).min(n)).collect()
}

/// One (attack × defense) cell: converged honest error plus node-level
/// detection quality, merged across repetitions.
struct Cell {
    err: f64,
    tpr: f64,
    fpr: f64,
}

fn vivaldi_cell(scale: &Scale, seed: u64, attack: &'static str, defense: &'static str) -> Cell {
    let factory: VivaldiFactory<'_> = &move |_sim, _attackers, _seeds| (strategy_by(attack), None);
    let runs = run_repetitions(scale.repetitions, |rep| {
        run_vivaldi_defended(
            scale,
            Space::Euclidean(2),
            scale.nodes,
            FRACTION,
            seed,
            rep,
            factory,
            Some(&move |sim, _seeds| defense_by(defense, &vivaldi_trusted(sim.coords().len()))),
        )
    });
    let mut confusion = Confusion::new();
    for r in &runs {
        if let Some(d) = &r.defense {
            confusion.merge(&d.confusion);
        }
    }
    Cell {
        err: mean_tails(&runs, |r| &r.attack_series),
        tpr: confusion.tpr().unwrap_or(0.0),
        fpr: confusion.fpr().unwrap_or(0.0),
    }
}

fn nps_cell(scale: &Scale, seed: u64, attack: &'static str, defense: &'static str) -> Cell {
    let factory: NpsFactory<'_> = &move |_sim, _attackers, _seeds| (strategy_by(attack), None);
    let runs = run_repetitions(scale.repetitions, |rep| {
        run_nps_defended(
            scale,
            NpsConfig::default(),
            scale.nodes,
            FRACTION,
            seed,
            rep,
            factory,
            Some(&move |sim, _seeds| {
                // The verified set NPS already postulates: the landmarks.
                let landmarks: Vec<usize> = sim
                    .layers_of()
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| l == 0)
                    .map(|(i, _)| i)
                    .collect();
                defense_by(defense, &landmarks)
            }),
        )
    });
    let mut confusion = Confusion::new();
    for r in &runs {
        if let Some(d) = &r.defense {
            confusion.merge(&d.confusion);
        }
    }
    Cell {
        err: mean_tails(&runs, |r| &r.attack_series),
        tpr: confusion.tpr().unwrap_or(0.0),
        fpr: confusion.fpr().unwrap_or(0.0),
    }
}

/// Assemble one sweep figure from `cell(attack, defense)`.
fn sweep_figure(
    id: &str,
    title: &str,
    cell: impl Fn(&'static str, &'static str) -> Cell,
) -> FigureResult {
    let mut columns = vec!["attack_idx".to_string()];
    for d in DEFENSES {
        columns.push(format!("err_{d}"));
    }
    for d in DEFENSES.iter().skip(1) {
        columns.push(format!("tpr_{d}"));
    }
    for d in DEFENSES.iter().skip(1) {
        columns.push(format!("fpr_{d}"));
    }
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (a_idx, attack) in STRATEGIES.iter().enumerate() {
        let cells: Vec<Cell> = DEFENSES.iter().map(|d| cell(attack, d)).collect();
        let mut row = vec![a_idx as f64];
        row.extend(cells.iter().map(|c| c.err));
        row.extend(cells.iter().skip(1).map(|c| c.tpr));
        row.extend(cells.iter().skip(1).map(|c| c.fpr));
        rows.push(row);
        // Best real defense by error, with its detection quality.
        let (best_idx, best) = cells
            .iter()
            .enumerate()
            .skip(1)
            .min_by(|a, b| a.1.err.partial_cmp(&b.1.err).unwrap())
            .expect("non-empty defense set");
        notes.push(format!(
            "{attack}: undefended err {:.2}; best defense {} (err {:.2}, tpr {:.2}, fpr {:.2}); drift-cap tpr {:.2}",
            cells[0].err,
            DEFENSES[best_idx],
            best.err,
            best.tpr,
            best.fpr,
            cells[3].tpr,
        ));
    }
    FigureResult {
        id: id.into(),
        title: title.into(),
        columns,
        rows,
        notes,
    }
}

/// `def-sweep-vivaldi` — the full attack×defense matrix on Vivaldi at 30 %
/// malicious: converged honest error per cell plus node-level TPR/FPR per
/// defense.
pub fn def_sweep_vivaldi(scale: &Scale, seed: u64) -> FigureResult {
    sweep_figure(
        "def-sweep-vivaldi",
        "defensekit strategies vs attackkit strategies on Vivaldi: error and detection quality",
        |attack, defense| vivaldi_cell(scale, seed, attack, defense),
    )
}

/// `def-sweep-nps` — the same matrix on NPS (default 3-layer hierarchy,
/// built-in security filter on, defense layered on top).
pub fn def_sweep_nps(scale: &Scale, seed: u64) -> FigureResult {
    sweep_figure(
        "def-sweep-nps",
        "defensekit strategies vs attackkit strategies on NPS: error and detection quality",
        |attack, defense| nps_cell(scale, seed, attack, defense),
    )
}

/// `def-frog-drift` — frog-boiling on Vivaldi (30 % malicious) under no
/// defense, the MAD outlier filter, and the drift cap: honest-population
/// drift velocity and error over time.
///
/// The point of the figure: the residual filter can only touch the drift
/// by cascading — as the attack degrades the embedding, honest residuals
/// overflow a threshold calibrated on the shrinking accepted population,
/// and the filter ends up rejecting half the honest nodes' samples (the
/// paper's figure-20/22 filter inversion, against a generic filter). The
/// drift cap reaches the same drift reduction by banning exactly the
/// colluders — the *integrated* directed pull is what it bounds — at a
/// false-positive rate of zero.
pub fn def_frog_drift(scale: &Scale, seed: u64) -> FigureResult {
    let defenses: [&'static str; 3] = ["none", "mad_outlier", "drift_cap"];
    let mut columns = vec!["tick".to_string()];
    for d in defenses {
        columns.push(format!("drift_{d}"));
    }
    for d in defenses {
        columns.push(format!("err_{d}"));
    }
    let factory: VivaldiFactory<'_> =
        &|_sim, _attackers, _seeds| (strategy_by("frog_boiling"), None);
    let mut drift_avgs = Vec::new();
    let mut err_avgs = Vec::new();
    let mut notes = Vec::new();
    for defense in defenses {
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi_defended(
                scale,
                Space::Euclidean(2),
                scale.nodes,
                FRACTION,
                seed,
                rep,
                factory,
                Some(&move |sim, _seeds| defense_by(defense, &vivaldi_trusted(sim.coords().len()))),
            )
        });
        let drifts: Vec<_> = runs.iter().map(|r| r.drift_series.clone()).collect();
        let errs: Vec<_> = runs.iter().map(|r| r.attack_series.clone()).collect();
        let mut confusion = Confusion::new();
        let mut rejected = 0u64;
        for r in &runs {
            if let Some(d) = &r.defense {
                confusion.merge(&d.confusion);
                rejected += d.rejected;
            }
        }
        let drift_avg = average_series(&drifts);
        notes.push(format!(
            "{defense}: steady drift {:.2} ms/tick, final err {:.2}, tpr {:.2}, fpr {:.2}, {} rejections",
            drift_avg.tail_mean(3),
            mean_tails(&runs, |r| &r.attack_series),
            confusion.tpr().unwrap_or(0.0),
            confusion.fpr().unwrap_or(0.0),
            rejected,
        ));
        drift_avgs.push(drift_avg);
        err_avgs.push(average_series(&errs));
    }
    let len = drift_avgs
        .iter()
        .chain(&err_avgs)
        .map(|s| s.len())
        .min()
        .unwrap_or(0);
    let rows: Vec<Vec<f64>> = (0..len)
        .map(|k| {
            let mut row = vec![drift_avgs[0].points()[k].0 as f64];
            row.extend(drift_avgs.iter().map(|s| s.points()[k].1));
            row.extend(err_avgs.iter().map(|s| s.points()[k].1));
            row
        })
        .collect();
    FigureResult {
        id: "def-frog-drift".into(),
        title: "Frog-boiling vs defenses on Vivaldi: drift velocity and error over time".into(),
        columns,
        rows,
        notes,
    }
}

/// `def-roc` — detection ROC points under frog-boiling on Vivaldi (30 %
/// malicious): the drift cap swept over its drag threshold next to the MAD
/// filter swept over its `k`, each point one (FPR, TPR) pair.
///
/// The expected shape is the tentpole claim in one figure: the drift-cap
/// curve reaches the top-left corner (full detection at zero false
/// positives) while the MAD curve hugs the floor at every threshold —
/// frog-boiling is invisible to error-magnitude detection at any
/// sensitivity.
pub fn def_roc(scale: &Scale, seed: u64) -> FigureResult {
    let caps = [10.0, 20.0, 40.0, 80.0, 160.0];
    let ks = [1.0, 2.0, 3.0, 4.0, 6.0];
    let factory: VivaldiFactory<'_> =
        &|_sim, _attackers, _seeds| (strategy_by("frog_boiling"), None);
    let point = |strategy_for: &(dyn Fn() -> Box<dyn DefenseStrategy> + Sync)| {
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi_defended(
                scale,
                Space::Euclidean(2),
                scale.nodes,
                FRACTION,
                seed,
                rep,
                factory,
                Some(&|_sim, _seeds| strategy_for()),
            )
        });
        let mut confusion = Confusion::new();
        for r in &runs {
            if let Some(d) = &r.defense {
                confusion.merge(&d.confusion);
            }
        }
        (
            confusion.tpr().unwrap_or(0.0),
            confusion.fpr().unwrap_or(0.0),
        )
    };
    let columns = vec![
        "point_idx".to_string(),
        "drift_cap_ms".to_string(),
        "tpr_drift_cap".to_string(),
        "fpr_drift_cap".to_string(),
        "mad_k".to_string(),
        "tpr_mad".to_string(),
        "fpr_mad".to_string(),
    ];
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for i in 0..caps.len() {
        let cap = caps[i];
        let k = ks[i];
        let (dr_tpr, dr_fpr) = point(&move || Box::new(DriftCap::new(cap)));
        let (mad_tpr, mad_fpr) = point(&move || Box::new(ResidualOutlier::new(12, k)));
        rows.push(vec![i as f64, cap, dr_tpr, dr_fpr, k, mad_tpr, mad_fpr]);
        notes.push(format!(
            "cap {cap} ms: drift-cap ({dr_fpr:.2}, {dr_tpr:.2}); mad k={k}: ({mad_fpr:.2}, {mad_tpr:.2}) as (fpr, tpr)"
        ));
    }
    FigureResult {
        id: "def-roc".into(),
        title: "Frog-boiling detection ROC on Vivaldi: drift cap vs MAD outlier filter".into(),
        columns,
        rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_defense_label_resolves() {
        for d in DEFENSES {
            assert!(!defense_by(d, &[0, 1]).label().is_empty());
        }
    }

    #[test]
    fn vivaldi_trusted_is_small_but_nonempty() {
        assert_eq!(vivaldi_trusted(400).len(), 40);
        assert_eq!(vivaldi_trusted(72).len(), 8);
        assert_eq!(vivaldi_trusted(4).len(), 4, "clamped to the population");
    }

    #[test]
    fn frog_drift_figure_shows_drift_cap_mitigation() {
        let scale = Scale::smoke();
        let fig = def_frog_drift(&scale, 7);
        assert_eq!(fig.id, "def-frog-drift");
        assert_eq!(fig.columns.len(), 7);
        assert!(!fig.rows.is_empty());
        for row in &fig.rows {
            assert_eq!(row.len(), fig.columns.len());
            assert!(row.iter().all(|v| v.is_finite()));
        }
        // Tail drift: the drift cap must beat no-defense decisively.
        let tail: Vec<&Vec<f64>> = fig.rows.iter().rev().take(3).collect();
        let tail_mean =
            |col: usize| -> f64 { tail.iter().map(|r| r[col]).sum::<f64>() / tail.len() as f64 };
        let (drift_none, drift_cap) = (tail_mean(1), tail_mean(3));
        assert!(
            drift_cap < drift_none * 0.5,
            "drift cap must kill the drift: none {drift_none:.2} vs capped {drift_cap:.2}"
        );
    }

    #[test]
    fn drift_cap_detects_frog_cleanly_where_mad_pays_collateral() {
        // The tentpole claim, asserted at the harness level: under
        // frog-boiling the drift cap separates colluders from honest
        // nodes (high TPR, zero FPR), while the MAD filter — whatever it
        // does to the drift — cannot act without defaming a substantial
        // share of the dragged honest population.
        let scale = Scale::smoke();
        let frog = vivaldi_cell(&scale, 2006, "frog_boiling", "drift_cap");
        assert!(frog.tpr > 0.9, "drift cap tpr {:.2}", frog.tpr);
        assert_eq!(frog.fpr, 0.0, "drift cap must not defame honest nodes");
        let mad = vivaldi_cell(&scale, 2006, "frog_boiling", "mad_outlier");
        assert!(
            mad.fpr > 0.2,
            "error-based filtering under frog-boiling acts only via honest \
             collateral (the fig-20/22 inversion): fpr {:.2}",
            mad.fpr
        );
    }

    #[test]
    fn roc_figure_shape() {
        let scale = Scale::smoke();
        let fig = def_roc(&scale, 7);
        assert_eq!(fig.columns.len(), 7);
        assert_eq!(fig.rows.len(), 5);
        for row in &fig.rows {
            for v in &row[2..4] {
                assert!((0.0..=1.0).contains(v), "rates in [0,1]: {row:?}");
            }
        }
    }
}
