//! Figure registry: id → runner.

use crate::experiments::{
    arms_figs, attack_figs, chaos_figs, defense_figs, extensions, nps_figs, vivaldi_figs,
    FigureResult, Scale,
};

type Runner = fn(&Scale, u64) -> FigureResult;

/// All figure ids with their runners and one-line summaries, in paper
/// order. Figure 17 is a diagram; its entry emits the closed forms it
/// illustrates (see `nps_figs::fig17`).
pub const FIGURES: &[(&str, Runner, &str)] = &[
    (
        "fig1",
        vivaldi_figs::fig01 as Runner,
        "Vivaldi disorder: error ratio vs time",
    ),
    (
        "fig2",
        vivaldi_figs::fig02,
        "Vivaldi disorder: CDF of relative error",
    ),
    (
        "fig3",
        vivaldi_figs::fig03,
        "Vivaldi disorder: impact of dimensions",
    ),
    (
        "fig4",
        vivaldi_figs::fig04,
        "Vivaldi disorder: impact of system size",
    ),
    (
        "fig5",
        vivaldi_figs::fig05,
        "Vivaldi repulsion: CDF of relative error",
    ),
    (
        "fig6",
        vivaldi_figs::fig06,
        "Vivaldi repulsion: impact of dimensions",
    ),
    (
        "fig7",
        vivaldi_figs::fig07,
        "Vivaldi repulsion on victim subsets",
    ),
    (
        "fig8",
        vivaldi_figs::fig08,
        "Vivaldi repulsion: impact of system size",
    ),
    (
        "fig9",
        vivaldi_figs::fig09,
        "Vivaldi colluding isolation: error ratio vs time",
    ),
    (
        "fig10",
        vivaldi_figs::fig10,
        "Vivaldi colluding isolation: target error",
    ),
    (
        "fig11",
        vivaldi_figs::fig11,
        "Vivaldi colluding isolation: CDF (both strategies)",
    ),
    (
        "fig12",
        vivaldi_figs::fig12,
        "Vivaldi combined attacks: convergence",
    ),
    (
        "fig13",
        vivaldi_figs::fig13,
        "Vivaldi combined attacks: system size",
    ),
    (
        "fig14",
        nps_figs::fig14,
        "NPS disorder: error vs time (security on/off)",
    ),
    (
        "fig15",
        nps_figs::fig15,
        "NPS disorder: CDF (security on/off)",
    ),
    (
        "fig16",
        nps_figs::fig16,
        "NPS disorder: impact of dimensionality",
    ),
    (
        "fig17",
        nps_figs::fig17,
        "NPS anti-detection geometry (diagram closed forms)",
    ),
    (
        "fig18",
        nps_figs::fig18,
        "NPS anti-detection naive: convergence",
    ),
    (
        "fig19",
        nps_figs::fig19,
        "NPS anti-detection naive: knowledge vs error ratio",
    ),
    (
        "fig20",
        nps_figs::fig20,
        "NPS anti-detection naive: filtered-malicious share",
    ),
    (
        "fig21",
        nps_figs::fig21,
        "NPS anti-detection sophisticated: CDF",
    ),
    (
        "fig22",
        nps_figs::fig22,
        "NPS anti-detection sophisticated: filtered share",
    ),
    (
        "fig23",
        nps_figs::fig23,
        "NPS colluding isolation 3-layer: CDF",
    ),
    (
        "fig24",
        nps_figs::fig24,
        "NPS colluding isolation 4-layer: CDF",
    ),
    (
        "fig25",
        nps_figs::fig25,
        "NPS colluding isolation: error propagation",
    ),
    (
        "fig26",
        nps_figs::fig26,
        "NPS combined attacks: convergence",
    ),
    // Extensions beyond the paper's evaluation (see experiments::extensions).
    (
        "ext-genesis",
        extensions::ext_genesis,
        "EXT: genesis vs injection attack timing",
    ),
    (
        "ext-faults",
        extensions::ext_faults,
        "EXT: benign faults vs adversarial behaviour",
    ),
    // attackkit scenario families (frog-boiling, oscillation, partition,
    // inflation, deflation — see experiments::attack_figs).
    (
        "atk-sweep-vivaldi",
        attack_figs::atk_sweep_vivaldi,
        "ATK: attackkit strategy sweep on Vivaldi (error + drift)",
    ),
    (
        "atk-sweep-nps",
        attack_figs::atk_sweep_nps,
        "ATK: attackkit strategy sweep on NPS (error + drift)",
    ),
    (
        "atk-frog-drift",
        attack_figs::atk_frog_drift,
        "ATK: frog-boiling drift velocity by step size (Vivaldi)",
    ),
    // defensekit sweeps (outlier filters, change-point detection, drift
    // caps, triangle checks, trusted baselines — see
    // experiments::defense_figs).
    (
        "def-sweep-vivaldi",
        defense_figs::def_sweep_vivaldi,
        "DEF: attack×defense matrix on Vivaldi (error + TPR/FPR)",
    ),
    (
        "def-sweep-nps",
        defense_figs::def_sweep_nps,
        "DEF: attack×defense matrix on NPS (error + TPR/FPR)",
    ),
    (
        "def-frog-drift",
        defense_figs::def_frog_drift,
        "DEF: frog-boiling vs defenses — drift and error over time (Vivaldi)",
    ),
    (
        "def-roc",
        defense_figs::def_roc,
        "DEF: frog-boiling detection ROC — drift cap vs MAD filter (Vivaldi)",
    ),
    // arms-race sweeps (defense-aware adaptive attackers, reputation decay
    // — see experiments::arms_figs).
    (
        "arms-sweep-vivaldi",
        arms_figs::arms_sweep_vivaldi,
        "ARMS: adaptive attack×defense matrix on Vivaldi (error + TPR/FPR + reinstatements)",
    ),
    (
        "arms-sweep-nps",
        arms_figs::arms_sweep_nps,
        "ARMS: adaptive attack×defense matrix on NPS (error + TPR/FPR + reinstatements)",
    ),
    (
        "arms-evasion-roc",
        arms_figs::arms_evasion_roc,
        "ARMS: classic vs defense-modeling frog-boiling over deployed drift caps (Vivaldi)",
    ),
    (
        "arms-evasion-learning",
        arms_figs::arms_evasion_learning,
        "ARMS: fixed-model vs cap-learning frog-boiling over deployed drift caps (Vivaldi)",
    ),
    (
        "arms-decay-tradeoff",
        arms_figs::arms_decay_tradeoff,
        "ARMS: sleeper collusion vs drift-cap reputation decay half-lives (Vivaldi)",
    ),
    // fault-injection sweeps (churn, correlated loss bursts, landmark
    // takedown, partitions — see experiments::chaos_figs).
    (
        "chaos-churn-vivaldi",
        chaos_figs::chaos_churn_vivaldi,
        "CHAOS: crash/restart waves vs retry+backoff+eviction on Vivaldi (recovery)",
    ),
    (
        "chaos-churn-nps",
        chaos_figs::chaos_churn_nps,
        "CHAOS: crash/restart waves vs in-round retries and membership fail-over on NPS",
    ),
    (
        "chaos-landmark-takedown",
        chaos_figs::chaos_landmark_takedown,
        "CHAOS: permanent layer-0 landmark loss vs membership fail-over (NPS)",
    ),
    (
        "chaos-loss-bursts",
        chaos_figs::chaos_loss_bursts,
        "CHAOS: Gilbert-Elliott loss bursts vs drift-cap false positives (honest Vivaldi)",
    ),
    (
        "chaos-frog-hides-in-churn",
        chaos_figs::chaos_frog_hides_in_churn,
        "CHAOS: frog-boiling detection quality under churn noise (Vivaldi, headline)",
    ),
    (
        "chaos-partition-recovery",
        chaos_figs::chaos_partition_recovery,
        "CHAOS: timed network partition — degradation while split, recovery after heal (Vivaldi)",
    ),
    (
        "chaos-probation-nps",
        chaos_figs::chaos_probation_nps,
        "CHAOS: probation channel — reputation decay composing with membership banishment (NPS)",
    ),
    (
        "chaos-probation-leak",
        chaos_figs::chaos_probation_leak,
        "CHAOS: readmission leases quarantining relief-valve evidence at every window (NPS)",
    ),
    (
        "chaos-detectors-under-faults",
        chaos_figs::chaos_detectors_under_faults,
        "CHAOS: MAD/EWMA/triangle detectors crossed with churn and loss-burst noise (Vivaldi)",
    ),
];

/// All known figure ids, in paper order.
pub fn figure_ids() -> Vec<&'static str> {
    FIGURES.iter().map(|(id, _, _)| *id).collect()
}

/// Short description of a figure id, if known.
pub fn describe(id: &str) -> Option<&'static str> {
    FIGURES
        .iter()
        .find(|(fid, _, _)| *fid == id)
        .map(|(_, _, d)| *d)
}

/// Run one figure by id. Returns `None` for unknown ids.
pub fn run_figure(id: &str, scale: &Scale, seed: u64) -> Option<FigureResult> {
    FIGURES
        .iter()
        .find(|(fid, _, _)| *fid == id)
        .map(|(_, runner, _)| runner(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_evaluation_figure() {
        let ids = figure_ids();
        assert_eq!(
            ids.len(),
            49,
            "26 paper figures + 2 extensions + 3 attackkit sweeps + 4 defensekit \
             sweeps + 5 arms-race sweeps + 9 chaos sweeps"
        );
        for k in 1..=26 {
            assert!(ids.contains(&format!("fig{k}").as_str()), "missing fig{k}");
        }
        assert!(ids.contains(&"ext-genesis"));
        assert!(ids.contains(&"ext-faults"));
        for id in [
            "atk-sweep-vivaldi",
            "atk-sweep-nps",
            "atk-frog-drift",
            "def-sweep-vivaldi",
            "def-sweep-nps",
            "def-frog-drift",
            "def-roc",
            "arms-sweep-vivaldi",
            "arms-sweep-nps",
            "arms-evasion-roc",
            "arms-evasion-learning",
            "arms-decay-tradeoff",
            "chaos-churn-vivaldi",
            "chaos-churn-nps",
            "chaos-landmark-takedown",
            "chaos-loss-bursts",
            "chaos-frog-hides-in-churn",
            "chaos-partition-recovery",
            "chaos-probation-nps",
            "chaos-probation-leak",
            "chaos-detectors-under-faults",
        ] {
            assert!(ids.contains(&id), "missing {id}");
        }
    }

    #[test]
    fn unknown_figure_is_none() {
        assert!(run_figure("fig99", &Scale::smoke(), 0).is_none());
        assert!(describe("fig99").is_none());
        assert!(describe("fig21").is_some());
    }

    #[test]
    fn fig17_runs_instantly() {
        let fig = run_figure("fig17", &Scale::smoke(), 0).unwrap();
        assert_eq!(fig.id, "fig17");
        assert!(!fig.rows.is_empty());
    }
}
