//! The experiment suite: one reproducible runner per figure of the paper's
//! evaluation (§5).
//!
//! Every runner takes a [`Scale`] (quick vs full/paper scale) and a master
//! seed, fans independent repetitions out over threads, and returns a
//! [`FigureResult`] — a header plus numeric rows mirroring the series the
//! paper plots. The `figures` binary in `vcoord-bench` prints/persists
//! these; integration tests run them at tiny scale.
//!
//! See `DESIGN.md` for the figure-by-figure index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured outcomes.

pub mod arms_figs;
pub mod attack_figs;
pub mod chaos_figs;
pub mod defense_figs;
pub mod extensions;
pub mod harness;
pub mod nps_figs;
pub mod registry;
pub mod vivaldi_figs;

pub use harness::{NpsRun, VivaldiRun};
pub use registry::{figure_ids, run_figure};

use vcoord_metrics::TimeSeries;

/// Experiment scale knobs.
///
/// `quick` keeps every figure under roughly a minute on a laptop while
/// preserving the paper's qualitative shapes; `full` is the paper-scale
/// configuration (1740 nodes, 10 repetitions).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Nodes drawn from the synthesized 1740-node King-equivalent matrix.
    pub nodes: usize,
    /// Independent repetitions (the paper repeats each scenario 10×).
    pub repetitions: usize,
    /// Vivaldi: ticks before injection (clean convergence phase).
    pub vivaldi_warmup_ticks: u64,
    /// Vivaldi: ticks observed after injection.
    pub vivaldi_attack_ticks: u64,
    /// Vivaldi: metric sampling interval in ticks.
    pub vivaldi_record_every: u64,
    /// NPS: repositioning rounds before injection.
    pub nps_warmup_rounds: u64,
    /// NPS: rounds observed after injection.
    pub nps_attack_rounds: u64,
    /// NPS: metric sampling interval in rounds.
    pub nps_record_every: u64,
    /// Peer-sampling bound handed to `EvalPlan` (all pairs under this).
    pub eval_all_pairs_threshold: usize,
    /// Sampled peers per node above the threshold.
    pub eval_sample_peers: usize,
}

impl Scale {
    /// Laptop-friendly scale (default for the `figures` binary).
    pub fn quick() -> Scale {
        Scale {
            nodes: 400,
            repetitions: 3,
            vivaldi_warmup_ticks: 300,
            vivaldi_attack_ticks: 500,
            vivaldi_record_every: 10,
            nps_warmup_rounds: 25,
            nps_attack_rounds: 50,
            nps_record_every: 2,
            eval_all_pairs_threshold: 128,
            eval_sample_peers: 96,
        }
    }

    /// Paper scale: all 1740 nodes, 10 repetitions, long horizons.
    pub fn full() -> Scale {
        Scale {
            nodes: 1740,
            repetitions: 10,
            vivaldi_warmup_ticks: 2000,
            vivaldi_attack_ticks: 3000,
            vivaldi_record_every: 25,
            nps_warmup_rounds: 50,
            nps_attack_rounds: 100,
            nps_record_every: 2,
            eval_all_pairs_threshold: 256,
            eval_sample_peers: 128,
        }
    }

    /// Minimal scale for smoke tests (seconds, not minutes).
    pub fn smoke() -> Scale {
        Scale {
            nodes: 72,
            repetitions: 1,
            vivaldi_warmup_ticks: 80,
            vivaldi_attack_ticks: 120,
            vivaldi_record_every: 10,
            nps_warmup_rounds: 8,
            nps_attack_rounds: 16,
            nps_record_every: 2,
            eval_all_pairs_threshold: 128,
            eval_sample_peers: 48,
        }
    }
}

/// A regenerated figure: a table of rows mirroring the series the paper
/// plots, with column headers and free-form shape notes.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure id, e.g. `"fig1"`.
    pub id: String,
    /// Human-readable title (matches the paper's caption).
    pub title: String,
    /// Column names; the first column is the x axis.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
    /// Shape-check annotations recorded by the runner.
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Serialize as CSV (header + rows, `#`-prefixed notes at the top).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}: {}\n", self.id, self.title));
        for n in &self.notes {
            out.push_str(&format!("# note: {n}\n"));
        }
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Render a compact, aligned text table (for terminal output).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&self.columns.join("\t"));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Average several same-shaped time series pointwise (they share tick
/// schedules because every repetition records on the same boundaries).
pub fn average_series(series: &[TimeSeries]) -> TimeSeries {
    let mut out = TimeSeries::new();
    let Some(first) = series.first() else {
        return out;
    };
    let len = series.iter().map(|s| s.len()).min().unwrap_or(0);
    for k in 0..len {
        let tick = first.points()[k].0;
        let mean = series.iter().map(|s| s.points()[k].1).sum::<f64>() / series.len() as f64;
        out.push(tick, mean);
    }
    out
}

/// Run `repetitions` independent jobs on a bounded pool of worker threads
/// and collect their results in repetition order. Used by every figure
/// runner; CPU-bound work, so plain scoped threads (see DESIGN.md
/// guide-conformance notes).
///
/// The pool is capped at [`vcoord_metrics::worker_threads`] — the machine's
/// available parallelism unless the `VCOORD_THREADS` override pins it (CI
/// and benches set the override so runs are reproducible on any core
/// count). Spawning one thread per repetition was fine at the paper's 10
/// repetitions, but over-subscribes badly once sweeps multiply the job
/// count. Workers pull repetition indices from a shared counter, so the cap
/// costs nothing when `repetitions` is small.
///
/// This is also the observability merge seam: when the `vcoord_obs` gated
/// plane is on, each worker drains its thread-local recorder after every
/// repetition (tagging the events with the repetition index) and the
/// coordinator absorbs the reports *in repetition order* — so per-figure
/// traces are byte-identical for any pool width, exactly like the figure
/// CSVs themselves.
pub fn run_repetitions<T, F>(repetitions: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let workers = repetition_pool_width(repetitions);
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..repetitions).map(|_| None).collect();
    let mut reports: Vec<Option<vcoord_obs::ObsReport>> = (0..repetitions).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let next = &next;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    // Leftovers from earlier work on this pool thread must
                    // not leak into the first repetition's report.
                    if vcoord_obs::enabled() {
                        vcoord_obs::reset();
                    }
                    loop {
                        let rep = next.fetch_add(1, Ordering::Relaxed);
                        if rep >= repetitions {
                            break;
                        }
                        let span = vcoord_obs::span(vcoord_obs::metric_id!("figure.rep_ns"));
                        let value = f(rep as u64);
                        drop(span);
                        let report = if vcoord_obs::enabled() {
                            let mut r = vcoord_obs::drain();
                            r.retag_rep(rep as i32);
                            Some(r)
                        } else {
                            None
                        };
                        done.push((rep, value, report));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (rep, value, report) in h.join().expect("repetition worker panicked") {
                results[rep] = Some(value);
                reports[rep] = report;
            }
        }
    });
    for report in reports.into_iter().flatten() {
        vcoord_obs::absorb(report);
    }
    results
        .into_iter()
        .map(|r| r.expect("all repetitions completed"))
        .collect()
}

/// Width of the [`run_repetitions`] pool for `repetitions` jobs — the
/// single source of truth shared with [`eval_thread_budget`].
pub fn repetition_pool_width(repetitions: usize) -> usize {
    vcoord_metrics::worker_threads().min(repetitions).max(1)
}

/// Leftover per-repetition thread budget for nested sweeps (the
/// [`EvalPlan`] snapshot path) running *inside* a [`run_repetitions`]
/// worker: the machine budget divided by the pool width, never zero.
/// Handing each repetition the full budget instead would multiply pools —
/// W×W scoped threads spawned per sample tick. The sweeps are bit-identical
/// for any worker count, so this is purely a scheduling choice.
///
/// [`EvalPlan`]: vcoord_metrics::EvalPlan
pub fn eval_thread_budget(repetitions: usize) -> usize {
    (vcoord_metrics::worker_threads() / repetition_pool_width(repetitions)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_pool_and_eval_budget_partition_the_machine() {
        let total = vcoord_metrics::worker_threads();
        for reps in [1usize, 2, 3, 10, 1000] {
            let pool = repetition_pool_width(reps);
            let eval = eval_thread_budget(reps);
            assert!(pool >= 1 && eval >= 1);
            assert!(pool <= total.max(1));
            // The product never oversubscribes the budget (up to the
            // integer-division remainder kept by the final .max(1)).
            assert!(
                pool * eval <= total.max(1) || eval == 1,
                "pool={pool} eval={eval} total={total}"
            );
        }
    }

    #[test]
    fn csv_roundtrip_shape() {
        let fig = FigureResult {
            id: "figX".into(),
            title: "test".into(),
            columns: vec!["x".into(), "y".into()],
            rows: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            notes: vec!["shape holds".into()],
        };
        let csv = fig.to_csv();
        assert!(csv.contains("x,y"));
        assert!(csv.contains("1.000000,2.000000"));
        assert!(csv.contains("# note: shape holds"));
        assert!(fig.to_table().contains("figX"));
    }

    #[test]
    fn average_series_is_pointwise() {
        let mut a = TimeSeries::new();
        let mut b = TimeSeries::new();
        for t in 0..4 {
            a.push(t, t as f64);
            b.push(t, (t as f64) * 3.0);
        }
        let avg = average_series(&[a, b]);
        assert_eq!(avg.points()[2], (2, 4.0));
    }

    #[test]
    fn run_repetitions_preserves_order() {
        let out = run_repetitions(8, |rep| rep * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_repetitions_bounds_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let cap = vcoord_metrics::worker_threads();
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        // Far more repetitions than cores: the pool must still finish, keep
        // order, and never run more jobs at once than the cap.
        let out = run_repetitions(4 * cap + 3, |rep| {
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            active.fetch_sub(1, Ordering::SeqCst);
            rep
        });
        assert_eq!(out, (0..(4 * cap as u64 + 3)).collect::<Vec<_>>());
        assert!(
            peak.load(Ordering::SeqCst) <= cap,
            "worker pool exceeded available parallelism: {} > {cap}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::smoke().nodes < Scale::quick().nodes);
        assert!(Scale::quick().nodes < Scale::full().nodes);
        assert_eq!(Scale::full().nodes, 1740);
        assert_eq!(Scale::full().repetitions, 10);
    }
}
