//! Figure runners for the arms-race sweeps (`arms-*`): defense-aware
//! adaptive attackers against the defensekit detectors, on both systems.
//!
//! PR 4's `def-*` sweeps measured static attacks against static defenses
//! and crowned the drift cap — (FPR 0.00, TPR 0.95) against frog-boiling
//! at the 80 ms corner. The paper's central lesson (and the frog-boiling
//! literature after it) is that a published threshold is a target: these
//! figures measure the *next move* on each side.
//!
//! * `arms-sweep-vivaldi` / `arms-sweep-nps` — adaptive attacks
//!   (defense-modeling evasion, feedback-driven threshold probing,
//!   decay-timed sleeper bursts) crossed with the drift cap, its decaying
//!   variant, and the MAD filter.
//! * `arms-evasion-roc` — the headline: classic vs evading frog-boiling
//!   at *matched per-round budget* over a sweep of deployed cap values.
//!   The evader models the default 80 ms cap and throttles its drift to
//!   stay under it, collapsing the cap's TPR toward zero everywhere the
//!   deployment is at (or looser than) the modeled bound — detection
//!   survives only where the defender deployed a cap *tighter* than the
//!   attacker's model.
//! * `arms-decay-tradeoff` — reputation decay half-lives against the
//!   sleeper: forgiveness un-defames the honest nodes a tight cap trips
//!   during bursts (steady-state FPR falls) but re-admits the sleeper for
//!   every new burst (drift/error exposure rises). Permanent bans are the
//!   other corner: one burst is the last, at the price of every false
//!   positive being banned forever.

use crate::experiments::attack_figs::{mean_tails, strategy_by};
use crate::experiments::harness::{
    run_nps_defended, run_vivaldi_defended, DefenseOutcome, NpsFactory, VivaldiFactory,
};
use crate::experiments::{run_repetitions, FigureResult, Scale};
use vcoord_attackkit::{
    AttackStrategy, DefenseModel, EvadingFrogBoil, SleeperCollusion, ThresholdProbe,
};
use vcoord_defense::{DefenseStrategy, DriftCap, DriftDecay, ResidualOutlier};
use vcoord_metrics::Confusion;
use vcoord_nps::NpsConfig;
use vcoord_space::Space;

/// The adaptive attack labels swept by the `arms-sweep-*` figures, in CSV
/// column order. `frog_boiling` rides along as the non-adaptive baseline
/// every adaptive variant is judged against.
pub const ARMS_ATTACKS: [&str; 4] = ["frog_boiling", "evading_frog", "threshold_probe", "sleeper"];

/// The defense labels of the `arms-sweep-*` figures: the permanent-ban
/// drift cap, its decaying (forgiving) variant, and the MAD filter as the
/// error-magnitude baseline.
pub const ARMS_DEFENSES: [&str; 3] = ["drift_cap", "drift_cap_decay", "mad_outlier"];

/// Malicious fraction of the arms sweeps (matches the `def-*` sweeps).
const FRACTION: f64 = 0.30;

/// Half-life (rounds) of the sweeps' decaying drift cap — comfortably
/// inside even the smoke-scale attack window so forgiveness is observable.
const SWEEP_HALF_LIFE: f64 = 40.0;

/// Workspace-default instance of one adaptive attack by label.
pub fn arms_strategy_by(label: &str) -> Box<dyn AttackStrategy> {
    match label {
        // Classic baseline at the default 5 ms/round budget.
        "frog_boiling" => strategy_by("frog_boiling"),
        // Same 5 ms/round budget, throttled against the modeled default
        // cap — the matched-budget comparison the evasion ROC plots.
        "evading_frog" => Box::new(EvadingFrogBoil::default()),
        "threshold_probe" => Box::new(ThresholdProbe::default()),
        "sleeper" => Box::new(SleeperCollusion::default()),
        other => unreachable!("unknown arms attack label {other}"),
    }
}

/// Workspace-default instance of one arms-sweep defense by label.
pub fn arms_defense_by(label: &str) -> Box<dyn DefenseStrategy> {
    match label {
        "drift_cap" => Box::new(DriftCap::default()),
        "drift_cap_decay" => Box::new(DriftCap::with_decay(80.0, DriftDecay::new(SWEEP_HALF_LIFE))),
        "mad_outlier" => Box::new(ResidualOutlier::default()),
        other => unreachable!("unknown arms defense label {other}"),
    }
}

/// One (attack × defense) cell of an arms sweep, merged across
/// repetitions.
struct ArmsCell {
    err: f64,
    drift: f64,
    tpr: f64,
    fpr: f64,
    reinstated: f64,
}

/// Defense accounting merged across one cell's repetitions — the single
/// aggregation every arms figure reduces its runs through.
#[derive(Default)]
struct DefenseAgg {
    confusion: Confusion,
    bans: u64,
    reinstated: u64,
    banned_honest: u64,
    banned_malicious: u64,
}

fn aggregate_defense<'a>(outcomes: impl Iterator<Item = Option<&'a DefenseOutcome>>) -> DefenseAgg {
    let mut agg = DefenseAgg::default();
    for d in outcomes.flatten() {
        agg.confusion.merge(&d.confusion);
        agg.bans += d.bans;
        agg.reinstated += d.reinstated;
        agg.banned_honest += d.banned_honest_final;
        agg.banned_malicious += d.banned_malicious_final;
    }
    agg
}

fn vivaldi_arms_cell(
    scale: &Scale,
    seed: u64,
    attack: &'static str,
    defense: &'static str,
) -> ArmsCell {
    let factory: VivaldiFactory<'_> =
        &move |_sim, _attackers, _seeds| (arms_strategy_by(attack), None);
    let runs = run_repetitions(scale.repetitions, |rep| {
        run_vivaldi_defended(
            scale,
            Space::Euclidean(2),
            scale.nodes,
            FRACTION,
            seed,
            rep,
            factory,
            Some(&move |_sim, _seeds| arms_defense_by(defense)),
        )
    });
    let agg = aggregate_defense(runs.iter().map(|r| r.defense.as_ref()));
    ArmsCell {
        err: mean_tails(&runs, |r| &r.attack_series),
        drift: mean_tails(&runs, |r| &r.drift_series),
        tpr: agg.confusion.tpr().unwrap_or(0.0),
        fpr: agg.confusion.fpr().unwrap_or(0.0),
        reinstated: agg.reinstated as f64 / runs.len().max(1) as f64,
    }
}

fn nps_arms_cell(
    scale: &Scale,
    seed: u64,
    attack: &'static str,
    defense: &'static str,
) -> ArmsCell {
    let factory: NpsFactory<'_> = &move |_sim, _attackers, _seeds| (arms_strategy_by(attack), None);
    let runs = run_repetitions(scale.repetitions, |rep| {
        run_nps_defended(
            scale,
            NpsConfig::default(),
            scale.nodes,
            FRACTION,
            seed,
            rep,
            factory,
            Some(&move |_sim, _seeds| arms_defense_by(defense)),
        )
    });
    let agg = aggregate_defense(runs.iter().map(|r| r.defense.as_ref()));
    ArmsCell {
        err: mean_tails(&runs, |r| &r.attack_series),
        drift: mean_tails(&runs, |r| &r.drift_series),
        tpr: agg.confusion.tpr().unwrap_or(0.0),
        fpr: agg.confusion.fpr().unwrap_or(0.0),
        reinstated: agg.reinstated as f64 / runs.len().max(1) as f64,
    }
}

/// Assemble one arms sweep figure from `cell(attack, defense)`.
fn arms_sweep_figure(
    id: &str,
    title: &str,
    cell: impl Fn(&'static str, &'static str) -> ArmsCell,
) -> FigureResult {
    let mut columns = vec!["attack_idx".to_string()];
    for d in ARMS_DEFENSES {
        columns.push(format!("err_{d}"));
    }
    for d in ARMS_DEFENSES {
        columns.push(format!("drift_{d}"));
    }
    for d in ARMS_DEFENSES {
        columns.push(format!("tpr_{d}"));
    }
    for d in ARMS_DEFENSES {
        columns.push(format!("fpr_{d}"));
    }
    for d in ARMS_DEFENSES {
        columns.push(format!("reinstated_{d}"));
    }
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (a_idx, attack) in ARMS_ATTACKS.iter().enumerate() {
        let cells: Vec<ArmsCell> = ARMS_DEFENSES.iter().map(|d| cell(attack, d)).collect();
        let mut row = vec![a_idx as f64];
        row.extend(cells.iter().map(|c| c.err));
        row.extend(cells.iter().map(|c| c.drift));
        row.extend(cells.iter().map(|c| c.tpr));
        row.extend(cells.iter().map(|c| c.fpr));
        row.extend(cells.iter().map(|c| c.reinstated));
        rows.push(row);
        notes.push(format!(
            "{attack}: drift-cap (err {:.2}, tpr {:.2}, fpr {:.2}); with decay (err {:.2}, \
             tpr {:.2}, reinstated {:.1}); mad (err {:.2}, tpr {:.2}, fpr {:.2})",
            cells[0].err,
            cells[0].tpr,
            cells[0].fpr,
            cells[1].err,
            cells[1].tpr,
            cells[1].reinstated,
            cells[2].err,
            cells[2].tpr,
            cells[2].fpr,
        ));
    }
    FigureResult {
        id: id.into(),
        title: title.into(),
        columns,
        rows,
        notes,
    }
}

/// `arms-sweep-vivaldi` — adaptive attacks × (drift cap, decaying drift
/// cap, MAD filter) on Vivaldi at 30 % malicious.
pub fn arms_sweep_vivaldi(scale: &Scale, seed: u64) -> FigureResult {
    arms_sweep_figure(
        "arms-sweep-vivaldi",
        "Adaptive (defense-aware) attacks vs defenses on Vivaldi: error and detection quality",
        |attack, defense| vivaldi_arms_cell(scale, seed, attack, defense),
    )
}

/// `arms-sweep-nps` — the same matrix on NPS (default 3-layer hierarchy,
/// built-in security filter on).
pub fn arms_sweep_nps(scale: &Scale, seed: u64) -> FigureResult {
    arms_sweep_figure(
        "arms-sweep-nps",
        "Adaptive (defense-aware) attacks vs defenses on NPS: error and detection quality",
        |attack, defense| nps_arms_cell(scale, seed, attack, defense),
    )
}

/// `arms-evasion-roc` — classic vs evading frog-boiling at matched 5
/// ms/round budget, against drift caps swept over the deployed bound. The
/// evader models the *default* 80 ms cap; points where the deployment is
/// tighter than the model measure how wrong the attacker's belief may be
/// before evasion fails.
pub fn arms_evasion_roc(scale: &Scale, seed: u64) -> FigureResult {
    let caps = [10.0, 20.0, 40.0, 80.0, 160.0];
    let columns = vec![
        "point_idx".to_string(),
        "deployed_cap_ms".to_string(),
        "tpr_frog".to_string(),
        "fpr_frog".to_string(),
        "drift_frog".to_string(),
        "tpr_evading".to_string(),
        "fpr_evading".to_string(),
        "drift_evading".to_string(),
        "j_frog".to_string(),
        "j_evading".to_string(),
    ];
    let point = |attack: &'static str, cap: f64| {
        let factory: VivaldiFactory<'_> =
            &move |_sim, _attackers, _seeds| (arms_strategy_by(attack), None);
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi_defended(
                scale,
                Space::Euclidean(2),
                scale.nodes,
                FRACTION,
                seed,
                rep,
                factory,
                Some(&move |_sim, _seeds| Box::new(DriftCap::new(cap)) as Box<dyn DefenseStrategy>),
            )
        });
        let agg = aggregate_defense(runs.iter().map(|r| r.defense.as_ref()));
        (
            agg.confusion.tpr().unwrap_or(0.0),
            agg.confusion.fpr().unwrap_or(0.0),
            mean_tails(&runs, |r| &r.drift_series),
            agg.confusion.youden_j().unwrap_or(0.0),
        )
    };
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (i, &cap) in caps.iter().enumerate() {
        let (f_tpr, f_fpr, f_drift, f_j) = point("frog_boiling", cap);
        let (e_tpr, e_fpr, e_drift, e_j) = point("evading_frog", cap);
        rows.push(vec![
            i as f64, cap, f_tpr, f_fpr, f_drift, e_tpr, e_fpr, e_drift, f_j, e_j,
        ]);
        notes.push(format!(
            "cap {cap} ms: classic frog tpr {f_tpr:.2} (drift {f_drift:.2} ms/tick), \
             evading frog tpr {e_tpr:.2} (drift {e_drift:.2} ms/tick) at matched 5 ms/round budget"
        ));
    }
    FigureResult {
        id: "arms-evasion-roc".into(),
        title: "Evasion vs the drift cap on Vivaldi: classic and defense-modeling frog-boiling \
                at matched budget"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// `arms-evasion-learning` — the fixed-model evader vs the *learning*
/// evader ([`EvadingFrogBoil::learning`], PR 6's [`CapLearner`]) over the
/// same deployed-cap sweep as `arms-evasion-roc`. The fixed evader's
/// detectability is a cliff: wherever the deployment is tighter than its
/// hard-coded 80 ms belief, it walks straight into the cap. The learner
/// bisects its believed cap downward from defense feedback, recovering
/// evasion (TPR falls back toward the evader's floor) at deployments the
/// fixed model loses to — the arms race's next move after `def-roc`
/// published the threshold.
///
/// [`CapLearner`]: vcoord_attackkit::CapLearner
pub fn arms_evasion_learning(scale: &Scale, seed: u64) -> FigureResult {
    let caps = [10.0, 20.0, 40.0, 80.0, 160.0];
    let columns = vec![
        "point_idx".to_string(),
        "deployed_cap_ms".to_string(),
        "tpr_fixed".to_string(),
        "fpr_fixed".to_string(),
        "drift_fixed".to_string(),
        "tpr_learning".to_string(),
        "fpr_learning".to_string(),
        "drift_learning".to_string(),
        "err_fixed".to_string(),
        "err_learning".to_string(),
    ];
    let point = |learning: bool, cap: f64| {
        let factory: VivaldiFactory<'_> = &move |_sim, _attackers, _seeds| {
            let evader = if learning {
                EvadingFrogBoil::learning(5.0, DefenseModel::default())
            } else {
                EvadingFrogBoil::new(5.0, DefenseModel::default())
            };
            (Box::new(evader) as Box<dyn AttackStrategy>, None)
        };
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi_defended(
                scale,
                Space::Euclidean(2),
                scale.nodes,
                FRACTION,
                seed,
                rep,
                factory,
                Some(&move |_sim, _seeds| Box::new(DriftCap::new(cap)) as Box<dyn DefenseStrategy>),
            )
        });
        let agg = aggregate_defense(runs.iter().map(|r| r.defense.as_ref()));
        (
            agg.confusion.tpr().unwrap_or(0.0),
            agg.confusion.fpr().unwrap_or(0.0),
            mean_tails(&runs, |r| &r.drift_series),
            mean_tails(&runs, |r| &r.attack_series),
        )
    };
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (i, &cap) in caps.iter().enumerate() {
        let (f_tpr, f_fpr, f_drift, f_err) = point(false, cap);
        let (l_tpr, l_fpr, l_drift, l_err) = point(true, cap);
        rows.push(vec![
            i as f64, cap, f_tpr, f_fpr, f_drift, l_tpr, l_fpr, l_drift, f_err, l_err,
        ]);
        notes.push(format!(
            "cap {cap} ms: fixed-model evader tpr {f_tpr:.2} (drift {f_drift:.2}), \
             learning evader tpr {l_tpr:.2} (drift {l_drift:.2}) — both believe 80 ms \
             at injection, only the learner revises"
        ));
    }
    FigureResult {
        id: "arms-evasion-learning".into(),
        title: "Learned evasion vs the drift cap on Vivaldi: fixed-model cliff against the \
                cap-learner's recovery over deployed bounds"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// `arms-decay-tradeoff` — the sleeper against drift caps with reputation
/// decay at several half-lives (0 = permanent bans), on Vivaldi.
///
/// The cap is deliberately *tight* (40 ms): under burst drag some honest
/// laggards trip it, so permanence has a measurable defamation cost —
/// exactly the FPR-vs-exposure trade decay is supposed to navigate.
pub fn arms_decay_tradeoff(scale: &Scale, seed: u64) -> FigureResult {
    let half_lives = [0.0, 20.0, 40.0, 80.0];
    let cap = 40.0;
    let columns = vec![
        "point_idx".to_string(),
        "half_life_rounds".to_string(),
        "err".to_string(),
        "drift".to_string(),
        "tpr".to_string(),
        "fpr".to_string(),
        "bans".to_string(),
        "reinstated".to_string(),
        "banned_honest_final".to_string(),
        "banned_malicious_final".to_string(),
    ];
    let factory: VivaldiFactory<'_> =
        &|_sim, _attackers, _seeds| (arms_strategy_by("sleeper"), None);
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (i, &hl) in half_lives.iter().enumerate() {
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi_defended(
                scale,
                Space::Euclidean(2),
                scale.nodes,
                FRACTION,
                seed,
                rep,
                factory,
                Some(&move |_sim, _seeds| -> Box<dyn DefenseStrategy> {
                    if hl > 0.0 {
                        Box::new(DriftCap::with_decay(cap, DriftDecay::new(hl)))
                    } else {
                        Box::new(DriftCap::new(cap))
                    }
                }),
            )
        });
        let agg = aggregate_defense(runs.iter().map(|r| r.defense.as_ref()));
        let n = runs.len().max(1) as f64;
        let err = mean_tails(&runs, |r| &r.attack_series);
        let drift = mean_tails(&runs, |r| &r.drift_series);
        let fpr = agg.confusion.fpr().unwrap_or(0.0);
        rows.push(vec![
            i as f64,
            hl,
            err,
            drift,
            agg.confusion.tpr().unwrap_or(0.0),
            fpr,
            agg.bans as f64 / n,
            agg.reinstated as f64 / n,
            agg.banned_honest as f64 / n,
            agg.banned_malicious as f64 / n,
        ]);
        notes.push(format!(
            "half-life {}: err {err:.2}, drift {drift:.2} ms/tick, fpr {fpr:.2}, \
             {:.1} bans / {:.1} reinstated per run, steady-state banned: \
             {:.1} honest / {:.1} malicious",
            if hl > 0.0 {
                format!("{hl:.0} rounds")
            } else {
                "none (permanent)".to_string()
            },
            agg.bans as f64 / n,
            agg.reinstated as f64 / n,
            agg.banned_honest as f64 / n,
            agg.banned_malicious as f64 / n,
        ));
    }
    FigureResult {
        id: "arms-decay-tradeoff".into(),
        title: "Sleeper collusion vs drift-cap reputation decay on Vivaldi: forgiveness \
                half-life against burst exposure"
            .into(),
        columns,
        rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_arms_label_resolves() {
        for a in ARMS_ATTACKS {
            assert!(!arms_strategy_by(a).label().is_empty());
        }
        for d in ARMS_DEFENSES {
            assert!(!arms_defense_by(d).label().is_empty());
        }
    }

    #[test]
    fn evasion_collapses_drift_cap_detection_at_the_modeled_cap() {
        // The tentpole claim at harness level: at the deployed = modeled
        // 80 ms cap, the classic frog is caught near-perfectly while the
        // evader — same 5 ms/round budget — goes essentially undetected.
        let scale = Scale::smoke();
        let classic = vivaldi_arms_cell(&scale, 2006, "frog_boiling", "drift_cap");
        let evading = vivaldi_arms_cell(&scale, 2006, "evading_frog", "drift_cap");
        assert!(
            classic.tpr > 0.9,
            "classic frog must be caught: tpr {:.2}",
            classic.tpr
        );
        assert!(
            evading.tpr < 0.25,
            "the evader must collapse drift-cap detection: tpr {:.2}",
            evading.tpr
        );
        // And evasion is not free: the evader's realized drift undercuts
        // the classic frog's (the throttle is a real cost).
        assert!(evading.drift >= 0.0 && classic.drift >= 0.0);
    }

    #[test]
    fn decay_tradeoff_smoke_shape() {
        let scale = Scale::smoke();
        let fig = arms_decay_tradeoff(&scale, 7);
        assert_eq!(fig.id, "arms-decay-tradeoff");
        assert_eq!(fig.columns.len(), 10);
        assert_eq!(fig.rows.len(), 4);
        for row in &fig.rows {
            assert_eq!(row.len(), fig.columns.len());
            assert!(row.iter().all(|v| v.is_finite()));
        }
        // Permanent bans reinstate nobody; decaying caps do.
        assert_eq!(fig.rows[0][7], 0.0, "permanent: no reinstatements");
        assert!(
            fig.rows.iter().skip(1).any(|r| r[7] > 0.0),
            "some decaying half-life must reinstate: {:?}",
            fig.rows
        );
    }
}
