//! Figure runners for the fault-injection sweeps (`chaos-*`): churn,
//! correlated loss bursts, landmark takedown, and partitions crossed with
//! the attack and defense families — graceful degradation under fire.
//!
//! Every prior figure family measured an *adversary* against a *healthy*
//! network. Real deployments are never healthy: nodes crash and rejoin,
//! links burst-lose probes, and routing splits. These figures measure two
//! things the paper's threat model leaves open:
//!
//! * **recovery** — after a fault wave, does a defended system re-converge
//!   to its no-fault steady state (the `recovery_ratio` column, pinned at
//!   ≤ 1.1 by the suite's tests), or does degradation compound?
//! * **confusion** — do benign faults look like attacks to the defenses
//!   (loss bursts tripping the drift cap's FPR), and can an attacker hide
//!   inside fault noise (frog-boiling under churn, the headline
//!   `chaos-frog-hides-in-churn`)?
//!
//! Fault plans are installed at the injection instant through the harness
//! chaos seam ([`run_vivaldi_chaos`] / [`run_nps_chaos`]); all fault
//! randomness draws from the plan's own seeded streams, so the `0`-level
//! row of every sweep is the *byte-identical* no-chaos run.

use crate::experiments::attack_figs::{mean_tails, strategy_by};
use crate::experiments::harness::{
    run_nps_chaos, run_vivaldi_chaos, DefenseOutcome, NpsChaosFactory, NpsFactory,
    VivaldiChaosFactory, VivaldiFactory,
};
use crate::experiments::{average_series, run_repetitions, FigureResult, Scale};
use rand_chacha::ChaCha12Rng;
use vcoord_attackkit::{AttackStrategy, Collusion, CoordView, Honest, Lie, Probe};
use vcoord_chaos::{BurstModel, ChaosCounters, ChaosPlan};
use vcoord_defense::{
    DefenseStrategy, DriftCap, DriftDecay, EwmaChangePoint, ResidualOutlier, TriangleCheck,
};
use vcoord_netsim::TICK_MS;
use vcoord_nps::NpsConfig;
use vcoord_space::Space;

/// Malicious fraction of the attacked chaos sweeps (matches `def-*`/`arms-*`).
const FRACTION: f64 = 0.30;

/// NPS repositioning period (ms) at the workspace-default config — the
/// round-to-milliseconds factor for NPS fault schedules.
const NPS_ROUND_MS: u64 = 60_000;

/// Churn-intensity grid shared by the churn sweeps: fraction of the
/// population crashed in the wave (0 = the no-fault baseline row).
const CHURN_FRACTIONS: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// Scale with the post-injection window stretched so post-fault recovery
/// is observable: restarted nodes need room to re-converge *after* the
/// restart lands mid-window. Fault waves also add run-to-run variance the
/// attack sweeps don't have (a crash schedule is a handful of discrete
/// events), so the recovery ratios are averaged over at least three
/// repetitions even at smoke scale.
fn recovery_scale(scale: &Scale) -> Scale {
    let mut s = scale.clone();
    s.vivaldi_attack_ticks *= 4;
    s.nps_attack_rounds *= 2;
    s.repetitions = s.repetitions.max(3);
    s
}

/// Fault totals averaged across repetitions.
#[derive(Default)]
struct ChaosAgg {
    crashes: f64,
    restarts: f64,
    timeouts: f64,
    retries: f64,
    evictions: f64,
    failovers: f64,
    burst_losses: f64,
    spiked: f64,
    leases: f64,
    lease_returns: f64,
}

fn aggregate_chaos<'a>(counters: impl Iterator<Item = Option<&'a ChaosCounters>>) -> ChaosAgg {
    let mut agg = ChaosAgg::default();
    let mut n = 0u64;
    for c in counters {
        n += 1;
        let Some(c) = c else { continue };
        agg.crashes += c.crashes as f64;
        agg.restarts += c.restarts as f64;
        agg.timeouts += c.timeouts as f64;
        agg.retries += c.retries as f64;
        agg.evictions += c.evictions as f64;
        agg.failovers += c.failovers as f64;
        agg.burst_losses += c.burst_losses as f64;
        agg.spiked += c.spiked as f64;
        agg.leases += c.leases as f64;
        agg.lease_returns += c.lease_returns as f64;
    }
    let n = n.max(1) as f64;
    agg.crashes /= n;
    agg.restarts /= n;
    agg.timeouts /= n;
    agg.retries /= n;
    agg.evictions /= n;
    agg.failovers /= n;
    agg.burst_losses /= n;
    agg.spiked /= n;
    agg.leases /= n;
    agg.lease_returns /= n;
    agg
}

/// Detection accounting merged across one cell's repetitions.
fn merge_outcomes<'a>(
    outcomes: impl Iterator<Item = Option<&'a DefenseOutcome>>,
) -> (vcoord_metrics::Confusion, f64, f64, f64, f64) {
    let (confusion, bans, reinstated, honest, malicious, _) = merge_outcomes_full(outcomes);
    (confusion, bans, reinstated, honest, malicious)
}

/// [`merge_outcomes`] plus the per-repetition mean of quarantined
/// (lease-provenance) samples — the leak sweep's direct evidence that the
/// relief valve's readmissions are on loan rather than forgiven.
fn merge_outcomes_full<'a>(
    outcomes: impl Iterator<Item = Option<&'a DefenseOutcome>>,
) -> (vcoord_metrics::Confusion, f64, f64, f64, f64, f64) {
    let mut confusion = vcoord_metrics::Confusion::default();
    let (mut bans, mut reinstated, mut honest, mut malicious, mut quarantined, mut n) =
        (0.0, 0.0, 0.0, 0.0, 0.0, 0u64);
    for d in outcomes {
        n += 1;
        let Some(d) = d else { continue };
        confusion.merge(&d.confusion);
        bans += d.bans as f64;
        reinstated += d.reinstated as f64;
        honest += d.banned_honest_final as f64;
        malicious += d.banned_malicious_final as f64;
        quarantined += d.quarantined as f64;
    }
    let n = n.max(1) as f64;
    (
        confusion,
        bans / n,
        reinstated / n,
        honest / n,
        malicious / n,
        quarantined / n,
    )
}

/// The all-honest adversary factory: chaos-only runs still go through the
/// injection protocol (with an empty attacker set) so fault plans install
/// at the same instant attacks would.
fn honest_vivaldi() -> (Box<dyn AttackStrategy>, Option<Vec<usize>>) {
    (Box::new(Honest), None)
}

/// `chaos-churn-vivaldi` — crash/restart waves against a defended Vivaldi:
/// probes to dead peers time out, retry with backoff, and stale neighbors
/// are evicted; restarted nodes rejoin from the origin and re-converge.
pub fn chaos_churn_vivaldi(scale: &Scale, seed: u64) -> FigureResult {
    let scale = recovery_scale(scale);
    let columns = vec![
        "point_idx".to_string(),
        "churn_fraction".to_string(),
        "err_tail".to_string(),
        "recovery_ratio".to_string(),
        "crashes".to_string(),
        "restarts".to_string(),
        "timeouts".to_string(),
        "retries".to_string(),
        "evictions".to_string(),
    ];
    let factory: VivaldiFactory<'_> = &|_sim, _attackers, _seeds| honest_vivaldi();
    let nodes = scale.nodes;
    let cell = |frac: f64| {
        let chaos: VivaldiChaosFactory<'_> = &move |_sim, _seeds| {
            ChaosPlan::with_seed(seed ^ 0xC11A05)
                // Down 10 ticks into the window, back up 30 ticks later.
                .churn_wave(nodes, frac, 10 * TICK_MS, 30 * TICK_MS)
        };
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi_chaos(
                &scale,
                Space::Euclidean(2),
                nodes,
                0.0,
                seed,
                rep,
                factory,
                Some(&|_sim, _seeds| Box::new(DriftCap::default()) as Box<dyn DefenseStrategy>),
                if frac > 0.0 { Some(chaos) } else { None },
            )
        });
        let err = mean_tails(&runs, |r| &r.attack_series);
        let agg = aggregate_chaos(runs.iter().map(|r| r.chaos.as_ref()));
        (err, agg)
    };
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let mut baseline = f64::NAN;
    for (i, &frac) in CHURN_FRACTIONS.iter().enumerate() {
        let (err, agg) = cell(frac);
        if i == 0 {
            baseline = err.max(1e-9);
        }
        let ratio = err / baseline;
        rows.push(vec![
            i as f64,
            frac,
            err,
            ratio,
            agg.crashes,
            agg.restarts,
            agg.timeouts,
            agg.retries,
            agg.evictions,
        ]);
        notes.push(format!(
            "churn {:.0}%: tail err {err:.3} ({ratio:.2}x the no-churn steady state), \
             {:.0} crashes / {:.0} restarts, {:.0} timeouts, {:.0} evictions",
            frac * 100.0,
            agg.crashes,
            agg.restarts,
            agg.timeouts,
            agg.evictions,
        ));
    }
    FigureResult {
        id: "chaos-churn-vivaldi".into(),
        title: "Vivaldi under churn: crash/restart waves vs retry, backoff, and staleness \
                eviction (drift cap deployed)"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// `chaos-churn-nps` — the same crash/restart waves against a defended
/// NPS hierarchy: dead references fail over through the membership
/// replacement channel; restarted ordinary nodes rejoin from scratch.
pub fn chaos_churn_nps(scale: &Scale, seed: u64) -> FigureResult {
    let scale = recovery_scale(scale);
    let columns = vec![
        "point_idx".to_string(),
        "churn_fraction".to_string(),
        "err_tail".to_string(),
        "recovery_ratio".to_string(),
        "crashes".to_string(),
        "restarts".to_string(),
        "timeouts".to_string(),
        "retries".to_string(),
        "failovers".to_string(),
    ];
    let factory: NpsFactory<'_> = &|_sim, _attackers, _seeds| honest_vivaldi();
    let nodes = scale.nodes;
    let cell = |frac: f64| {
        let chaos: NpsChaosFactory<'_> = &move |_sim, _seeds| {
            ChaosPlan::with_seed(seed ^ 0xC11A05)
                // Down 2 rounds into the window, back up 6 rounds later.
                .churn_wave(nodes, frac, 2 * NPS_ROUND_MS, 6 * NPS_ROUND_MS)
        };
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_nps_chaos(
                &scale,
                NpsConfig::default(),
                nodes,
                0.0,
                seed,
                rep,
                factory,
                Some(&|_sim, _seeds| Box::new(DriftCap::default()) as Box<dyn DefenseStrategy>),
                if frac > 0.0 { Some(chaos) } else { None },
            )
        });
        let err = mean_tails(&runs, |r| &r.attack_series);
        let agg = aggregate_chaos(runs.iter().map(|r| r.chaos.as_ref()));
        (err, agg)
    };
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let mut baseline = f64::NAN;
    for (i, &frac) in CHURN_FRACTIONS.iter().enumerate() {
        let (err, agg) = cell(frac);
        if i == 0 {
            baseline = err.max(1e-9);
        }
        let ratio = err / baseline;
        rows.push(vec![
            i as f64,
            frac,
            err,
            ratio,
            agg.crashes,
            agg.restarts,
            agg.timeouts,
            agg.retries,
            agg.failovers,
        ]);
        notes.push(format!(
            "churn {:.0}%: tail err {err:.3} ({ratio:.2}x no-churn), {:.0} crashes, \
             {:.0} in-round retries, {:.0} reference fail-overs",
            frac * 100.0,
            agg.crashes,
            agg.retries,
            agg.failovers,
        ));
    }
    FigureResult {
        id: "chaos-churn-nps".into(),
        title: "NPS under churn: crash/restart waves vs in-round retries and membership \
                fail-over (drift cap deployed)"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// `chaos-landmark-takedown` — degree-targeted takedown of the layer-0
/// landmark backbone, *permanently*: the paper assumes landmarks are
/// "highly secure machines", so this measures what their loss (not their
/// compromise) costs, and whether membership fail-over absorbs it.
pub fn chaos_landmark_takedown(scale: &Scale, seed: u64) -> FigureResult {
    let scale = recovery_scale(scale);
    let downs = [0usize, 2, 4, 6];
    let columns = vec![
        "point_idx".to_string(),
        "landmarks_down".to_string(),
        "err_tail".to_string(),
        "recovery_ratio".to_string(),
        "crashes".to_string(),
        "timeouts".to_string(),
        "retries".to_string(),
        "failovers".to_string(),
    ];
    let factory: NpsFactory<'_> = &|_sim, _attackers, _seeds| honest_vivaldi();
    let cell = |k: usize| {
        let chaos: NpsChaosFactory<'_> = &move |sim, _seeds| {
            let landmarks = sim.landmark_ids();
            let k = k.min(landmarks.len());
            ChaosPlan::with_seed(seed ^ 0x7A4E).takedown(&landmarks[..k], NPS_ROUND_MS, None)
        };
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_nps_chaos(
                &scale,
                NpsConfig::default(),
                scale.nodes,
                0.0,
                seed,
                rep,
                factory,
                Some(&|_sim, _seeds| Box::new(DriftCap::default()) as Box<dyn DefenseStrategy>),
                if k > 0 { Some(chaos) } else { None },
            )
        });
        let err = mean_tails(&runs, |r| &r.attack_series);
        let agg = aggregate_chaos(runs.iter().map(|r| r.chaos.as_ref()));
        (err, agg)
    };
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let mut baseline = f64::NAN;
    for (i, &k) in downs.iter().enumerate() {
        let (err, agg) = cell(k);
        if i == 0 {
            baseline = err.max(1e-9);
        }
        let ratio = err / baseline;
        rows.push(vec![
            i as f64,
            k as f64,
            err,
            ratio,
            agg.crashes,
            agg.timeouts,
            agg.retries,
            agg.failovers,
        ]);
        notes.push(format!(
            "{k} landmarks down (permanent): tail err {err:.3} ({ratio:.2}x intact), \
             {:.0} fail-overs through membership",
            agg.failovers,
        ));
    }
    FigureResult {
        id: "chaos-landmark-takedown".into(),
        title: "NPS landmark takedown: permanent loss of layer-0 infrastructure vs \
                membership fail-over"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// `chaos-loss-bursts` — Gilbert–Elliott correlated loss/RTT-spike regimes
/// on an *honest* population with the drift cap deployed: do benign burst
/// faults read as attacks (false-positive bans)?
pub fn chaos_loss_bursts(scale: &Scale, seed: u64) -> FigureResult {
    let scale = recovery_scale(scale);
    let enters = [0.0, 0.02, 0.05, 0.10];
    let columns = vec![
        "point_idx".to_string(),
        "p_enter".to_string(),
        "err_tail".to_string(),
        "recovery_ratio".to_string(),
        "fpr".to_string(),
        "banned_honest_final".to_string(),
        "burst_losses".to_string(),
        "spiked".to_string(),
        "timeouts".to_string(),
    ];
    let factory: VivaldiFactory<'_> = &|_sim, _attackers, _seeds| honest_vivaldi();
    let cell = |p_enter: f64| {
        let chaos: VivaldiChaosFactory<'_> = &move |_sim, _seeds| {
            ChaosPlan::with_seed(seed ^ 0xB0557).bursts(BurstModel {
                p_enter,
                ..BurstModel::mild()
            })
        };
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi_chaos(
                &scale,
                Space::Euclidean(2),
                scale.nodes,
                0.0,
                seed,
                rep,
                factory,
                Some(&|_sim, _seeds| Box::new(DriftCap::default()) as Box<dyn DefenseStrategy>),
                if p_enter > 0.0 { Some(chaos) } else { None },
            )
        });
        let err = mean_tails(&runs, |r| &r.attack_series);
        let agg = aggregate_chaos(runs.iter().map(|r| r.chaos.as_ref()));
        let (confusion, _, _, banned_honest, _) =
            merge_outcomes(runs.iter().map(|r| r.defense.as_ref()));
        (err, agg, confusion.fpr().unwrap_or(0.0), banned_honest)
    };
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let mut baseline = f64::NAN;
    for (i, &p_enter) in enters.iter().enumerate() {
        let (err, agg, fpr, banned_honest) = cell(p_enter);
        if i == 0 {
            baseline = err.max(1e-9);
        }
        let ratio = err / baseline;
        rows.push(vec![
            i as f64,
            p_enter,
            err,
            ratio,
            fpr,
            banned_honest,
            agg.burst_losses,
            agg.spiked,
            agg.timeouts,
        ]);
        notes.push(format!(
            "p_enter {p_enter:.2}: tail err {err:.3} ({ratio:.2}x clean links), drift-cap \
             fpr {fpr:.3}, {banned_honest:.1} honest nodes banned, {:.0} burst losses / \
             {:.0} spiked probes",
            agg.burst_losses, agg.spiked,
        ));
    }
    FigureResult {
        id: "chaos-loss-bursts".into(),
        title: "Gilbert-Elliott loss bursts vs the drift cap on honest Vivaldi: do benign \
                bursts false-positive as attacks?"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// `chaos-frog-hides-in-churn` — the headline cross: frog-boiling at 30 %
/// malicious against the drift cap, swept over churn intensity. Churn
/// noise both *hides* the attacker (TPR under churn) and *defames* honest
/// rejoining nodes (FPR under churn).
pub fn chaos_frog_hides_in_churn(scale: &Scale, seed: u64) -> FigureResult {
    let scale = recovery_scale(scale);
    let columns = vec![
        "point_idx".to_string(),
        "churn_fraction".to_string(),
        "tpr".to_string(),
        "fpr".to_string(),
        "err_tail".to_string(),
        "err_ratio".to_string(),
        "drift".to_string(),
        "crashes".to_string(),
        "evictions".to_string(),
    ];
    let factory: VivaldiFactory<'_> =
        &|_sim, _attackers, _seeds| (strategy_by("frog_boiling"), None);
    let nodes = scale.nodes;
    let cell = |frac: f64| {
        let chaos: VivaldiChaosFactory<'_> = &move |_sim, _seeds| {
            ChaosPlan::with_seed(seed ^ 0xF406).churn_wave(nodes, frac, 10 * TICK_MS, 30 * TICK_MS)
        };
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi_chaos(
                &scale,
                Space::Euclidean(2),
                nodes,
                FRACTION,
                seed,
                rep,
                factory,
                Some(&|_sim, _seeds| Box::new(DriftCap::default()) as Box<dyn DefenseStrategy>),
                if frac > 0.0 { Some(chaos) } else { None },
            )
        });
        let err = mean_tails(&runs, |r| &r.attack_series);
        let drift = mean_tails(&runs, |r| &r.drift_series);
        let agg = aggregate_chaos(runs.iter().map(|r| r.chaos.as_ref()));
        let (confusion, _, _, _, _) = merge_outcomes(runs.iter().map(|r| r.defense.as_ref()));
        (err, drift, agg, confusion)
    };
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let mut baseline = f64::NAN;
    for (i, &frac) in CHURN_FRACTIONS.iter().enumerate() {
        let (err, drift, agg, confusion) = cell(frac);
        if i == 0 {
            baseline = err.max(1e-9);
        }
        let tpr = confusion.tpr().unwrap_or(0.0);
        let fpr = confusion.fpr().unwrap_or(0.0);
        rows.push(vec![
            i as f64,
            frac,
            tpr,
            fpr,
            err,
            err / baseline,
            drift,
            agg.crashes,
            agg.evictions,
        ]);
        notes.push(format!(
            "churn {:.0}%: frog-boiling tpr {tpr:.2} / fpr {fpr:.3}, tail err {err:.3} \
             ({:.2}x calm), drift {drift:.2} ms/tick",
            frac * 100.0,
            err / baseline,
        ));
    }
    FigureResult {
        id: "chaos-frog-hides-in-churn".into(),
        title: "Frog-boiling inside churn noise: drift-cap detection quality vs churn \
                intensity (Vivaldi, 30% malicious)"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// `chaos-partition-recovery` — a timed network partition through a
/// defended honest Vivaldi system: error time-series with and without the
/// partition, showing degradation while split and re-convergence after
/// healing.
pub fn chaos_partition_recovery(scale: &Scale, seed: u64) -> FigureResult {
    let scale = recovery_scale(scale);
    let nodes = scale.nodes;
    // Split half the population from the rest for a third of the window.
    let start = 10 * TICK_MS;
    let end = start + (scale.vivaldi_attack_ticks / 3) * TICK_MS;
    let factory: VivaldiFactory<'_> = &|_sim, _attackers, _seeds| honest_vivaldi();
    let run_with = |partitioned: bool| {
        let chaos: VivaldiChaosFactory<'_> =
            &move |_sim, _seeds| ChaosPlan::with_seed(seed ^ 0x9A47).split(nodes, 0.5, start, end);
        run_repetitions(scale.repetitions, |rep| {
            run_vivaldi_chaos(
                &scale,
                Space::Euclidean(2),
                nodes,
                0.0,
                seed,
                rep,
                factory,
                Some(&|_sim, _seeds| Box::new(DriftCap::default()) as Box<dyn DefenseStrategy>),
                if partitioned { Some(chaos) } else { None },
            )
        })
    };
    let split_runs = run_with(true);
    let calm_runs = run_with(false);
    let split_series = average_series(
        &split_runs
            .iter()
            .map(|r| r.attack_series.clone())
            .collect::<Vec<_>>(),
    );
    let calm_series = average_series(
        &calm_runs
            .iter()
            .map(|r| r.attack_series.clone())
            .collect::<Vec<_>>(),
    );
    let mut rows = Vec::new();
    for (k, &(tick, err_split)) in split_series.points().iter().enumerate() {
        let err_calm = calm_series
            .points()
            .get(k)
            .map(|&(_, v)| v)
            .unwrap_or(f64::NAN);
        rows.push(vec![
            tick as f64,
            err_split,
            err_calm,
            err_split / err_calm.max(1e-9),
        ]);
    }
    let agg = aggregate_chaos(split_runs.iter().map(|r| r.chaos.as_ref()));
    let tail_split = mean_tails(&split_runs, |r| &r.attack_series);
    let tail_calm = mean_tails(&calm_runs, |r| &r.attack_series).max(1e-9);
    let notes = vec![format!(
        "partition [{start}, {end}) ms: {:.0} timed-out probes, {:.0} retries, {:.0} \
         evictions; tail err {tail_split:.3} vs calm {tail_calm:.3} \
         (recovery ratio {:.2})",
        agg.timeouts,
        agg.retries,
        agg.evictions,
        tail_split / tail_calm,
    )];
    FigureResult {
        id: "chaos-partition-recovery".into(),
        title: "Timed network partition on honest Vivaldi: error while split and \
                re-convergence after healing (drift cap deployed)"
            .into(),
        columns: vec![
            "tick".to_string(),
            "err_partitioned".to_string(),
            "err_baseline".to_string(),
            "ratio".to_string(),
        ],
        rows,
        notes,
    }
}

/// Figure-local burst/reform collusion tuned to NPS geometry: every
/// attacker reports its coordinate shifted a flat 250 ms along axis 0 for
/// the first `attack_rounds` repositioning rounds after injection, then
/// answers honestly forever. The flat offset is flagrant to the drift
/// cap's vector-mean pull (no per-observer cancellation), so every
/// attacker lands in the defense's *global* ban set during the burst —
/// exactly the evidence-starved population the probation channel exists
/// to re-measure once the reform is real.
struct BurstThenReform {
    attack_rounds: u64,
    injected_at: Option<u64>,
}

impl BurstThenReform {
    fn new(attack_rounds: u64) -> BurstThenReform {
        BurstThenReform {
            attack_rounds,
            injected_at: None,
        }
    }
}

impl AttackStrategy for BurstThenReform {
    fn inject(
        &mut self,
        _attackers: &[usize],
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) {
        self.injected_at = Some(view.round);
    }

    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        let start = self.injected_at.unwrap_or(0);
        if view.round.saturating_sub(start) >= self.attack_rounds {
            return None; // reformed
        }
        let mut coord = view.coords[probe.attacker].clone();
        coord.vec[0] += 250.0;
        Some(Lie {
            coord,
            error: 0.01,
            delay_ms: 0.0,
        })
    }

    fn label(&self) -> &'static str {
        "burst-then-reform"
    }
}

/// `chaos-probation-nps` — the probation channel: NPS's membership-
/// mediated banning removes banned references from the probe set, which
/// starves reputation *decay* of the evidence it needs to forgive. The
/// sweep crosses probation frequency with the decaying drift cap under a
/// burst-then-reform collusion, plus mild correlated loss bursts riding
/// along (bursts stress retries without resetting any coordinates, so the
/// probation probes themselves must survive fault noise).
pub fn chaos_probation_nps(scale: &Scale, seed: u64) -> FigureResult {
    let mut scale = recovery_scale(scale);
    // Reinstatement timing is the noisiest statistic in the chaos family
    // (a single late probation probe moves the tail by a round's worth of
    // error), so this figure averages more repetitions than the rest.
    // Starvation-relief readmissions are leases now (sim.rs): the relief
    // valve's evidence is quarantined by provenance, so the off-row stays
    // a true evidence-starvation baseline at any window length —
    // `chaos-probation-leak` pins that directly.
    scale.repetitions = scale.repetitions.max(7);
    let periods = [0u64, 8, 4, 2];
    let columns = vec![
        "point_idx".to_string(),
        "probation_every".to_string(),
        "err_tail".to_string(),
        "recovery_ratio".to_string(),
        "bans".to_string(),
        "reinstated".to_string(),
        "banned_honest_final".to_string(),
        "banned_malicious_final".to_string(),
        "fpr".to_string(),
    ];
    let factory: NpsFactory<'_> = &|_sim, _attackers, _seeds| {
        (
            Box::new(BurstThenReform::new(10)) as Box<dyn AttackStrategy>,
            None,
        )
    };
    let chaos: NpsChaosFactory<'_> =
        &move |_sim, _seeds| ChaosPlan::with_seed(seed ^ 0x960B).bursts(BurstModel::mild());
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let mut baseline = f64::NAN;
    for (i, &every) in periods.iter().enumerate() {
        // Tight reference economy: with the pool this small the membership
        // server has no spare candidates to re-hand a banned reference to
        // an unsuspecting observer, so a banned node's *only* evidence
        // channel is probation — the isolation that makes the sweep's
        // off-row a true evidence-starvation baseline.
        let config = NpsConfig {
            probation_every: every,
            landmarks: 12,
            refs_per_node: 12,
            space: Space::Euclidean(4),
            ..NpsConfig::default()
        };
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_nps_chaos(
                &scale,
                config.clone(),
                scale.nodes,
                FRACTION,
                seed,
                rep,
                factory,
                Some(&|_sim, _seeds| {
                    Box::new(DriftCap::with_decay(40.0, DriftDecay::new(5.0)))
                        as Box<dyn DefenseStrategy>
                }),
                Some(chaos),
            )
        });
        let err = mean_tails(&runs, |r| &r.attack_series);
        let (confusion, bans, reinstated, banned_honest, banned_malicious) =
            merge_outcomes(runs.iter().map(|r| r.defense.as_ref()));
        let fpr = confusion.fpr().unwrap_or(0.0);
        if i == 0 {
            baseline = err.max(1e-9);
        }
        let ratio = err / baseline;
        rows.push(vec![
            i as f64,
            every as f64,
            err,
            ratio,
            bans,
            reinstated,
            banned_honest,
            banned_malicious,
            fpr,
        ]);
        notes.push(format!(
            "probation every {}: tail err {err:.3} ({ratio:.2}x channel-off), {bans:.1} bans, \
             {reinstated:.1} reinstated, steady-state banned {banned_honest:.1} honest / \
             {banned_malicious:.1} malicious, fpr {fpr:.3}",
            if every == 0 {
                "never (channel off)".to_string()
            } else {
                format!("{every} rounds")
            },
        ));
    }
    FigureResult {
        id: "chaos-probation-nps".into(),
        title: "The probation channel on NPS: re-measuring banned references lets \
                reputation decay compose with membership banishment (burst-then-reform \
                collusion, decaying drift cap, mild loss bursts)"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// Post-injection window multipliers for the leak sweep, ×recovery-scale
/// rounds (the 1× row is the short-window contrast the leak rate is read
/// against).
const LEAK_WINDOWS: [u64; 4] = [1, 2, 4, 8];

/// `chaos-probation-leak` — the starvation-relief readmission guard's
/// healed-evidence leak, measured directly — and, since readmissions
/// became *leases*, pinned closed. With the probation channel *off*
/// (`probation_every: 0`) and the tight reference economy of
/// `chaos-probation-nps`, a banned reference has exactly one path back
/// into anyone's probe set: the relief valve in `NpsSim::reposition`
/// leases the oldest ban back when fault noise starves a node below the
/// `dim + 1` positioning constraint. Before the fix, each re-admitted (by
/// then reformed) attacker handed honest samples to the decaying drift
/// cap, its reputation healed, and reinstatements appeared on a channel
/// that is nominally closed — leak rate 0.31 at short windows, saturating
/// to 1.00 from 64 rounds. Now every leased sample carries
/// `Provenance::Lease` and the defense quarantines it (judged, never
/// recorded), so the sweep's long windows show leases firing and
/// quarantined evidence piling up while the leak rate stays ≤ 0.05 at
/// every window.
pub fn chaos_probation_leak(scale: &Scale, seed: u64) -> FigureResult {
    let mut base = recovery_scale(scale);
    // Same variance argument as chaos-probation-nps: a single late
    // readmission moves a whole row, so average more repetitions.
    base.repetitions = base.repetitions.max(5);
    let columns = vec![
        "point_idx".to_string(),
        "window_rounds".to_string(),
        "err_tail".to_string(),
        "leases".to_string(),
        "bans".to_string(),
        "leaked_reinstated".to_string(),
        "leak_rate".to_string(),
        "banned_malicious_final".to_string(),
        "quarantined".to_string(),
    ];
    let factory: NpsFactory<'_> = &|_sim, _attackers, _seeds| {
        (
            Box::new(BurstThenReform::new(10)) as Box<dyn AttackStrategy>,
            None,
        )
    };
    let chaos: NpsChaosFactory<'_> =
        &move |_sim, _seeds| ChaosPlan::with_seed(seed ^ 0x1EAC).bursts(BurstModel::mild());
    // Tight reference economy (see chaos-probation-nps): no spare
    // membership candidates means bans are structurally final — the
    // relief valve can only *lease* them back.
    let config = NpsConfig {
        probation_every: 0,
        landmarks: 12,
        refs_per_node: 12,
        space: Space::Euclidean(4),
        ..NpsConfig::default()
    };
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (i, &mult) in LEAK_WINDOWS.iter().enumerate() {
        let mut s = base.clone();
        s.nps_attack_rounds = base.nps_attack_rounds * mult;
        let runs = run_repetitions(s.repetitions, |rep| {
            run_nps_chaos(
                &s,
                config.clone(),
                s.nodes,
                FRACTION,
                seed,
                rep,
                factory,
                Some(&|_sim, _seeds| {
                    Box::new(DriftCap::with_decay(40.0, DriftDecay::new(5.0)))
                        as Box<dyn DefenseStrategy>
                }),
                Some(chaos),
            )
        });
        let err = mean_tails(&runs, |r| &r.attack_series);
        let agg = aggregate_chaos(runs.iter().map(|r| r.chaos.as_ref()));
        let (_, bans, leaked, _, banned_malicious, quarantined) =
            merge_outcomes_full(runs.iter().map(|r| r.defense.as_ref()));
        let leak_rate = if bans > 0.0 { leaked / bans } else { 0.0 };
        rows.push(vec![
            i as f64,
            s.nps_attack_rounds as f64,
            err,
            agg.leases,
            bans,
            leaked,
            leak_rate,
            banned_malicious,
            quarantined,
        ]);
        notes.push(format!(
            "window {} rounds: {:.1} readmission leases, {bans:.1} bans, {leaked:.1} \
             reinstated with the channel off (leak rate {leak_rate:.3}), {quarantined:.0} \
             quarantined samples, steady-state banned malicious {banned_malicious:.1}, \
             tail err {err:.3}",
            s.nps_attack_rounds, agg.leases,
        ));
    }
    FigureResult {
        id: "chaos-probation-leak".into(),
        title: "Readmission leases close the covert probation channel: quarantined \
                lease evidence never heals a decaying ban, at any window (NPS, probation \
                off, burst-then-reform collusion, decaying drift cap, mild loss bursts)"
            .into(),
        columns,
        rows,
        notes,
    }
}

/// Detector grid for `chaos-detectors-under-faults`.
const FAULT_DETECTORS: [&str; 3] = ["mad", "ewma", "triangle"];
/// Fault regimes crossed against the detectors (0 = clean baseline).
const FAULT_REGIMES: [&str; 3] = ["none", "churn", "loss"];

fn detector_by(label: &str) -> Box<dyn DefenseStrategy> {
    match label {
        "mad" => Box::new(ResidualOutlier::default()),
        "ewma" => Box::new(EwmaChangePoint::default()),
        "triangle" => Box::new(TriangleCheck::default()),
        other => unreachable!("unknown detector label {other}"),
    }
}

/// `chaos-detectors-under-faults` — the lightweight per-sample detectors
/// (MAD residual outlier, EWMA change-point, triangle-inequality check)
/// crossed with benign fault regimes (churn wave, correlated loss bursts)
/// under a loud inflation collusion on Vivaldi. The drift cap owns the
/// chaos family's other sweeps; this one asks how the *rest* of the
/// defense rack degrades when fault noise pollutes exactly the statistics
/// each detector keys on — residual spread (MAD), residual trend (EWMA),
/// and RTT-vs-prediction consistency (triangle).
pub fn chaos_detectors_under_faults(scale: &Scale, seed: u64) -> FigureResult {
    let scale = recovery_scale(scale);
    let columns = vec![
        "point_idx".to_string(),
        "detector_idx".to_string(),
        "regime_idx".to_string(),
        "tpr".to_string(),
        "fpr".to_string(),
        "err_tail".to_string(),
        "err_ratio".to_string(),
    ];
    let factory: VivaldiFactory<'_> = &|_sim, _attackers, _seeds| (strategy_by("inflation"), None);
    let nodes = scale.nodes;
    let cell = |detector: &'static str, regime: &'static str| {
        let chaos: VivaldiChaosFactory<'_> = &move |_sim, _seeds| {
            let plan = ChaosPlan::with_seed(seed ^ 0xDE7EC7);
            match regime {
                "churn" => plan.churn_wave(nodes, 0.2, 10 * TICK_MS, 30 * TICK_MS),
                "loss" => plan.bursts(BurstModel::mild()),
                _ => unreachable!("the clean regime installs no plan"),
            }
        };
        let runs = run_repetitions(scale.repetitions, |rep| {
            run_vivaldi_chaos(
                &scale,
                Space::Euclidean(2),
                nodes,
                FRACTION,
                seed,
                rep,
                factory,
                Some(&move |_sim, _seeds| detector_by(detector)),
                if regime == "none" { None } else { Some(chaos) },
            )
        });
        let err = mean_tails(&runs, |r| &r.attack_series);
        let (confusion, _, _, _, _) = merge_outcomes(runs.iter().map(|r| r.defense.as_ref()));
        (err, confusion)
    };
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let mut point = 0usize;
    for (di, &detector) in FAULT_DETECTORS.iter().enumerate() {
        let mut baseline = f64::NAN;
        for (ri, &regime) in FAULT_REGIMES.iter().enumerate() {
            let (err, confusion) = cell(detector, regime);
            if ri == 0 {
                baseline = err.max(1e-9);
            }
            let tpr = confusion.tpr().unwrap_or(0.0);
            let fpr = confusion.fpr().unwrap_or(0.0);
            rows.push(vec![
                point as f64,
                di as f64,
                ri as f64,
                tpr,
                fpr,
                err,
                err / baseline,
            ]);
            notes.push(format!(
                "{detector} under {regime}: tpr {tpr:.2} / fpr {fpr:.3}, tail err {err:.3} \
                 ({:.2}x its clean row)",
                err / baseline,
            ));
            point += 1;
        }
    }
    FigureResult {
        id: "chaos-detectors-under-faults".into(),
        title: "MAD / EWMA / triangle detectors under benign fault noise: detection \
                quality vs churn and loss bursts (Vivaldi, inflation collusion, 30% \
                malicious)"
            .into(),
        columns,
        rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_shape(fig: &FigureResult, rows: usize) {
        assert_eq!(fig.rows.len(), rows, "{}", fig.id);
        for row in &fig.rows {
            assert_eq!(row.len(), fig.columns.len(), "{}", fig.id);
            assert!(row.iter().all(|v| v.is_finite()), "{}: {row:?}", fig.id);
        }
        assert!(!fig.notes.is_empty());
    }

    #[test]
    fn churn_vivaldi_recovers_within_ten_percent() {
        let fig = chaos_churn_vivaldi(&Scale::smoke(), 2006);
        assert_shape(&fig, CHURN_FRACTIONS.len());
        for row in &fig.rows {
            // The acceptance gate: post-churn tail error re-converges to
            // within 10% of the no-churn steady state at every intensity.
            assert!(
                row[3] <= 1.1,
                "churn {:.0}% failed to recover: ratio {:.3}",
                row[1] * 100.0,
                row[3]
            );
        }
        let faulty = &fig.rows[CHURN_FRACTIONS.len() - 1];
        assert!(faulty[4] > 0.0 && faulty[5] > 0.0, "crashes and restarts");
        assert!(faulty[6] > 0.0, "timeouts must be observed");
    }

    #[test]
    fn churn_nps_recovers_and_fails_over() {
        let fig = chaos_churn_nps(&Scale::smoke(), 2006);
        assert_shape(&fig, CHURN_FRACTIONS.len());
        for row in &fig.rows {
            assert!(
                row[3] <= 1.1,
                "churn {:.0}% failed to recover: ratio {:.3}",
                row[1] * 100.0,
                row[3]
            );
        }
        assert!(
            fig.rows.iter().any(|r| r[8] > 0.0),
            "some churn level must force reference fail-overs"
        );
    }

    #[test]
    fn partition_recovery_heals() {
        let fig = chaos_partition_recovery(&Scale::smoke(), 2006);
        assert!(fig.rows.len() >= 5);
        // While split, error is visibly worse than calm at some point...
        let peak = fig
            .rows
            .iter()
            .map(|r| r[3])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            peak > 1.05,
            "partition had no visible effect: peak {peak:.3}"
        );
        // ...and the final ratio shows the healed system re-converged.
        let last = fig.rows.last().unwrap();
        assert!(
            last[3] <= 1.1,
            "post-heal ratio {:.3} did not recover",
            last[3]
        );
    }

    #[test]
    fn probation_reinstates_only_when_enabled() {
        let fig = chaos_probation_nps(&Scale::smoke(), 2006);
        assert_shape(&fig, 4);
        // Channel off: decay starves, nobody comes back.
        // Channel on at some frequency: reinstatements flow.
        let off = fig.rows[0][5];
        let best_on = fig.rows[1..]
            .iter()
            .map(|r| r[5])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_on > off,
            "probation must unlock reinstatement: off {off:.1}, best on {best_on:.1}"
        );
        // And forgiveness must not cost accuracy at the fastest channel:
        // with probation every 2 rounds the reinstated (reformed)
        // references settle back to within 10% of the channel-off tail.
        let fastest = fig.rows.last().unwrap();
        assert!(
            fastest[3] <= 1.1,
            "probation every {} failed to recover: ratio {:.3}",
            fastest[1],
            fastest[3]
        );
    }

    #[test]
    fn probation_leak_is_closed_by_leases() {
        let fig = chaos_probation_leak(&Scale::smoke(), 2006);
        assert_shape(&fig, LEAK_WINDOWS.len());
        // The relief valve must actually fire — no leases means the sweep
        // isn't exercising starvation relief at all.
        assert!(
            fig.rows.iter().all(|r| r[3] > 0.0),
            "every window must observe readmission leases"
        );
        // The fix's acceptance gate: before leases the leak rate was 0.31
        // at the shortest window and 1.00 from 64 rounds; with lease
        // evidence quarantined it must stay ≤ 0.05 at EVERY window —
        // including the longest, where the old guard saturated.
        for row in &fig.rows {
            assert!(
                row[6] <= 0.05,
                "window {} rounds leaked: rate {:.3} (reinstated {:.1} of {:.1} bans)",
                row[1],
                row[6],
                row[5],
                row[4]
            );
        }
        // And the quarantine must be doing the closing: leased references
        // keep probing, so quarantined evidence accumulates with the
        // window instead of healing anyone.
        let (first, last) = (&fig.rows[0], fig.rows.last().unwrap());
        assert!(
            last[8] > 0.0 && last[8] >= first[8],
            "quarantined evidence must accumulate: {:.0} -> {:.0}",
            first[8],
            last[8]
        );
    }

    #[test]
    fn detectors_under_faults_covers_the_grid() {
        let fig = chaos_detectors_under_faults(&Scale::smoke(), 2006);
        assert_shape(&fig, FAULT_DETECTORS.len() * FAULT_REGIMES.len());
        // Every detector must actually flag the loud inflation on its
        // clean row — a detector that can't see the attack without fault
        // noise makes the degradation columns meaningless.
        for (di, &detector) in FAULT_DETECTORS.iter().enumerate() {
            let clean = &fig.rows[di * FAULT_REGIMES.len()];
            assert!(
                clean[3] > 0.0,
                "{detector} must flag inflation on the clean row: tpr {:.2}",
                clean[3]
            );
        }
    }

    #[test]
    fn landmark_takedown_fails_over_and_recovers() {
        let fig = chaos_landmark_takedown(&Scale::smoke(), 2006);
        assert_shape(&fig, 4);
        for row in &fig.rows {
            assert!(
                row[3] <= 1.1,
                "{:.0} landmarks down failed to recover: ratio {:.3}",
                row[1],
                row[3]
            );
        }
        assert!(
            fig.rows.iter().any(|r| r[7] > 0.0),
            "takedown must force fail-overs through membership"
        );
    }

    #[test]
    fn loss_bursts_do_not_defame_honest_nodes() {
        let fig = chaos_loss_bursts(&Scale::smoke(), 2006);
        assert_shape(&fig, 4);
        for row in &fig.rows {
            assert!(
                row[3] <= 1.1,
                "p_enter {:.2} failed to recover: ratio {:.3}",
                row[1],
                row[3]
            );
            // Benign bursts must not read as attacks to the drift cap.
            assert!(
                row[4] == 0.0 && row[5] == 0.0,
                "p_enter {:.2}: benign bursts banned honest nodes (fpr {:.3}, {:.1} banned)",
                row[1],
                row[4],
                row[5]
            );
        }
        let faulty = fig.rows.last().unwrap();
        assert!(faulty[6] > 0.0 && faulty[7] > 0.0, "losses and spikes");
    }
}
