//! Figure runners for the Vivaldi attacks (paper figures 1–13).
//!
//! Each function regenerates one figure's data series. Scaling notes:
//! x axes are simulation ticks (≈17 s each) counted from simulation start;
//! attack injection happens at `scale.vivaldi_warmup_ticks`.

use crate::attacks::vivaldi::{
    VivaldiCollusionLure, VivaldiCollusionRepel, VivaldiCombined, VivaldiDisorder, VivaldiRepulsion,
};
use crate::experiments::harness::{run_vivaldi, VivaldiFactory, VivaldiRun};
use crate::experiments::{average_series, run_repetitions, FigureResult, Scale};
use rand::seq::SliceRandom;
use vcoord_metrics::Cdf;
use vcoord_space::Space;

/// Malicious fractions used across the Vivaldi figures (§5.2).
pub const FRACTIONS: [f64; 6] = [0.10, 0.20, 0.30, 0.40, 0.50, 0.75];

/// What an adversary factory yields: the adversary and its victims (if any).
type AdversaryChoice = (
    Box<dyn vcoord_attackkit::AttackStrategy>,
    Option<Vec<usize>>,
);

/// Quantile grid used for all CDF figures.
fn quantile_grid() -> Vec<f64> {
    (0..=50).map(|k| k as f64 / 50.0).collect()
}

fn disorder_factory(
) -> impl Fn(&mut vcoord_vivaldi::VivaldiSim, &[usize], &vcoord_netsim::SeedStream) -> AdversaryChoice
       + Sync {
    |_sim, _attackers, _seeds| {
        (
            Box::new(VivaldiDisorder::default()) as Box<dyn vcoord_attackkit::AttackStrategy>,
            None,
        )
    }
}

fn repulsion_factory(
    subset: Option<usize>,
) -> impl Fn(&mut vcoord_vivaldi::VivaldiSim, &[usize], &vcoord_netsim::SeedStream) -> AdversaryChoice
       + Sync {
    move |_sim, _attackers, _seeds| {
        let adv: Box<dyn vcoord_attackkit::AttackStrategy> = match subset {
            Some(k) => Box::new(VivaldiRepulsion::with_subset(50_000.0, k)),
            None => Box::new(VivaldiRepulsion::default()),
        };
        (adv, None)
    }
}

/// Collusion strategy-1 factory (repel everyone from a random target).
fn collusion_repel_factory(
) -> impl Fn(&mut vcoord_vivaldi::VivaldiSim, &[usize], &vcoord_netsim::SeedStream) -> AdversaryChoice
       + Sync {
    |sim, attackers, seeds| {
        // Attackers are not yet flagged malicious at factory time: exclude
        // them explicitly so the isolation target is a genuine victim.
        let honest: Vec<usize> = sim
            .honest_nodes()
            .into_iter()
            .filter(|n| !attackers.contains(n))
            .collect();
        let target = *honest
            .choose(&mut seeds.rng("collusion-target"))
            .expect("honest nodes exist");
        (
            Box::new(VivaldiCollusionRepel::against(target, 10_000.0))
                as Box<dyn vcoord_attackkit::AttackStrategy>,
            Some(vec![target]),
        )
    }
}

/// Collusion strategy-2 factory (lure a random target into a remote
/// cluster).
fn collusion_lure_factory(
) -> impl Fn(&mut vcoord_vivaldi::VivaldiSim, &[usize], &vcoord_netsim::SeedStream) -> AdversaryChoice
       + Sync {
    |sim, attackers, seeds| {
        let honest: Vec<usize> = sim
            .honest_nodes()
            .into_iter()
            .filter(|n| !attackers.contains(n))
            .collect();
        let target = *honest
            .choose(&mut seeds.rng("collusion-target"))
            .expect("honest nodes exist");
        (
            Box::new(VivaldiCollusionLure::against(target, 10_000.0))
                as Box<dyn vcoord_attackkit::AttackStrategy>,
            Some(vec![target]),
        )
    }
}

fn combined_factory(
) -> impl Fn(&mut vcoord_vivaldi::VivaldiSim, &[usize], &vcoord_netsim::SeedStream) -> AdversaryChoice
       + Sync {
    |_sim, _attackers, _seeds| {
        (
            Box::new(VivaldiCombined::new()) as Box<dyn vcoord_attackkit::AttackStrategy>,
            None,
        )
    }
}

/// Run `repetitions` of a scenario and return the runs.
fn runs_for(
    scale: &Scale,
    space: Space,
    nodes: usize,
    fraction: f64,
    seed: u64,
    factory: VivaldiFactory<'_>,
) -> Vec<VivaldiRun> {
    run_repetitions(scale.repetitions, |rep| {
        run_vivaldi(scale, space, nodes, fraction, seed, rep, factory)
    })
}

/// Ratio-vs-time figure over a set of fractions (figures 1, 9, 12).
fn ratio_vs_time(
    id: &str,
    title: &str,
    scale: &Scale,
    seed: u64,
    fractions: &[f64],
    factory: VivaldiFactory<'_>,
) -> FigureResult {
    let mut columns = vec!["tick".to_string()];
    let mut per_fraction: Vec<vcoord_metrics::TimeSeries> = Vec::new();
    let mut notes = Vec::new();
    for &f in fractions {
        columns.push(format!("ratio_{}pct", (f * 100.0).round() as u32));
        let runs = runs_for(scale, Space::Euclidean(2), scale.nodes, f, seed, factory);
        let ratios: Vec<_> = runs
            .iter()
            .map(|r| r.attack_series.ratio_to(r.clean_ref))
            .collect();
        let avg = average_series(&ratios);
        let random_ratio = runs
            .iter()
            .map(|r| r.random_baseline / r.clean_ref.max(1e-9))
            .sum::<f64>()
            / runs.len() as f64;
        notes.push(format!(
            "{}% malicious: final ratio {:.1} (random-system ratio ≈ {:.0})",
            (f * 100.0).round(),
            avg.tail_mean(3),
            random_ratio
        ));
        per_fraction.push(avg);
    }
    let len = per_fraction.iter().map(|s| s.len()).min().unwrap_or(0);
    let rows: Vec<Vec<f64>> = (0..len)
        .map(|k| {
            let mut row = vec![per_fraction[0].points()[k].0 as f64];
            row.extend(per_fraction.iter().map(|s| s.points()[k].1));
            row
        })
        .collect();
    FigureResult {
        id: id.into(),
        title: title.into(),
        columns,
        rows,
        notes,
    }
}

/// CDF figure over a set of fractions (figures 2, 5).
fn cdf_by_fraction(
    id: &str,
    title: &str,
    scale: &Scale,
    seed: u64,
    fractions: &[f64],
    factory: VivaldiFactory<'_>,
) -> FigureResult {
    let grid = quantile_grid();
    let mut columns = vec!["quantile".to_string()];
    let mut cdfs: Vec<Cdf> = Vec::new();
    let mut notes = Vec::new();
    for &f in fractions {
        columns.push(format!("err_{}pct", (f * 100.0).round() as u32));
        let runs = runs_for(scale, Space::Euclidean(2), scale.nodes, f, seed, factory);
        let all: Vec<f64> = runs.iter().flat_map(|r| r.final_errors.clone()).collect();
        let baseline = runs.iter().map(|r| r.random_baseline).sum::<f64>() / runs.len() as f64;
        let cdf = Cdf::from_samples(&all);
        notes.push(format!(
            "{}% malicious: median {:.2}, p90 {:.2}, random baseline {:.0}, fraction at/above random {:.2}",
            (f * 100.0).round(),
            cdf.median(),
            cdf.quantile(0.9),
            baseline,
            1.0 - cdf.fraction_below(baseline)
        ));
        cdfs.push(cdf);
    }
    let rows: Vec<Vec<f64>> = grid
        .iter()
        .map(|&q| {
            let mut row = vec![q];
            row.extend(cdfs.iter().map(|c| c.quantile(q)));
            row
        })
        .collect();
    FigureResult {
        id: id.into(),
        title: title.into(),
        columns,
        rows,
        notes,
    }
}

/// Dimension-sweep figure (figures 3, 6): converged error per space per
/// fraction, plus the random baseline per space.
fn dimension_sweep(
    id: &str,
    title: &str,
    scale: &Scale,
    seed: u64,
    factory: VivaldiFactory<'_>,
) -> FigureResult {
    let spaces = [
        Space::Euclidean(2),
        Space::Euclidean(3),
        Space::Euclidean(5),
        Space::EuclideanHeight(2),
    ];
    let fractions = [0.10, 0.20, 0.30, 0.50];
    let mut columns = vec!["fraction_pct".to_string()];
    for s in &spaces {
        columns.push(format!("err_{}", s.label()));
    }
    for s in &spaces {
        columns.push(format!("rand_{}", s.label()));
    }
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    // Track clean errors to verify the accuracy/vulnerability trade-off.
    let mut clean_by_space = vec![0.0; spaces.len()];
    let mut attacked_low_fraction = vec![0.0; spaces.len()];
    let mut baselines = vec![0.0; spaces.len()];
    for (k, &f) in fractions.iter().enumerate() {
        let mut row = vec![f * 100.0];
        let mut rands = Vec::new();
        for (si, &space) in spaces.iter().enumerate() {
            let runs = runs_for(scale, space, scale.nodes, f, seed, factory);
            let err = runs
                .iter()
                .map(|r| r.attack_series.tail_mean(3))
                .sum::<f64>()
                / runs.len() as f64;
            let rand = runs.iter().map(|r| r.random_baseline).sum::<f64>() / runs.len() as f64;
            row.push(err);
            rands.push(rand);
            if k == 0 {
                clean_by_space[si] =
                    runs.iter().map(|r| r.clean_ref).sum::<f64>() / runs.len() as f64;
                attacked_low_fraction[si] = err;
                baselines[si] = rand;
            }
        }
        row.extend(rands);
        rows.push(row);
    }
    for (si, s) in spaces.iter().enumerate() {
        notes.push(format!(
            "{}: clean {:.3}, attacked@10% {:.2}, random {:.0}",
            s.label(),
            clean_by_space[si],
            attacked_low_fraction[si],
            baselines[si]
        ));
    }
    FigureResult {
        id: id.into(),
        title: title.into(),
        columns,
        rows,
        notes,
    }
}

/// System-size sweep (figures 4, 8, 13).
fn size_sweep(
    id: &str,
    title: &str,
    scale: &Scale,
    seed: u64,
    fractions: &[f64],
    factory: VivaldiFactory<'_>,
) -> FigureResult {
    let sizes: Vec<usize> = if scale.nodes >= 1740 {
        vec![200, 400, 800, 1200, 1740]
    } else {
        vec![(scale.nodes / 4).max(40), scale.nodes / 2, scale.nodes]
    };
    let mut columns = vec!["system_size".to_string()];
    for &f in fractions {
        columns.push(format!("err_{}pct", (f * 100.0).round() as u32));
    }
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut row = vec![n as f64];
        for &f in fractions {
            let runs = runs_for(scale, Space::Euclidean(2), n, f, seed, factory);
            let err = runs
                .iter()
                .map(|r| r.attack_series.tail_mean(3))
                .sum::<f64>()
                / runs.len() as f64;
            row.push(err);
        }
        rows.push(row);
    }
    let mut notes = Vec::new();
    if rows.len() >= 2 {
        let first = rows.first().expect("non-empty");
        let last = rows.last().expect("non-empty");
        for (k, &f) in fractions.iter().enumerate() {
            let shrink = last[k + 1] / first[k + 1].max(1e-9);
            notes.push(format!(
                "{}% malicious: error shrinks ×{:.2} from n={} to n={} (larger is more resilient when < 1)",
                (f * 100.0).round(),
                shrink,
                first[0],
                last[0]
            ));
        }
    }
    FigureResult {
        id: id.into(),
        title: title.into(),
        columns,
        rows,
        notes,
    }
}

/// Figure 1 — injected disorder: average relative error *ratio* vs time.
pub fn fig01(scale: &Scale, seed: u64) -> FigureResult {
    ratio_vs_time(
        "fig1",
        "Injection of Disorder attackers on Vivaldi: average relative error ratio",
        scale,
        seed,
        &FRACTIONS,
        &disorder_factory(),
    )
}

/// Figure 2 — injected disorder: CDF of relative error after the attack.
pub fn fig02(scale: &Scale, seed: u64) -> FigureResult {
    cdf_by_fraction(
        "fig2",
        "Injected Disorder attack on Vivaldi: CDF of relative error",
        scale,
        seed,
        &FRACTIONS,
        &disorder_factory(),
    )
}

/// Figure 3 — injected disorder: impact of space dimension.
pub fn fig03(scale: &Scale, seed: u64) -> FigureResult {
    dimension_sweep(
        "fig3",
        "Injected Disorder attack on Vivaldi: impact of space dimensions",
        scale,
        seed,
        &disorder_factory(),
    )
}

/// Figure 4 — injected disorder: impact of system size.
pub fn fig04(scale: &Scale, seed: u64) -> FigureResult {
    size_sweep(
        "fig4",
        "Injection of Disorder attackers on Vivaldi: impact of system size",
        scale,
        seed,
        &[0.10, 0.30, 0.50],
        &disorder_factory(),
    )
}

/// Figure 5 — injected repulsion: CDF of relative error.
pub fn fig05(scale: &Scale, seed: u64) -> FigureResult {
    cdf_by_fraction(
        "fig5",
        "Injected Repulsion attack on Vivaldi: CDF of relative error",
        scale,
        seed,
        &FRACTIONS,
        &repulsion_factory(None),
    )
}

/// Figure 6 — injected repulsion: impact of space dimensions.
pub fn fig06(scale: &Scale, seed: u64) -> FigureResult {
    dimension_sweep(
        "fig6",
        "Injected Repulsion attack on Vivaldi: impact of space dimensions",
        scale,
        seed,
        &repulsion_factory(None),
    )
}

/// Figure 7 — repulsion on subsets of target nodes.
pub fn fig07(scale: &Scale, seed: u64) -> FigureResult {
    let shares = [0.10, 0.30, 1.00];
    let fractions = [0.10, 0.20, 0.30, 0.50];
    let mut columns = vec!["fraction_pct".to_string()];
    for &s in &shares {
        columns.push(format!("err_subset_{}pct", (s * 100.0) as u32));
    }
    let mut rows = Vec::new();
    for &f in &fractions {
        let mut row = vec![f * 100.0];
        for &s in &shares {
            let subset = ((scale.nodes as f64) * s).round() as usize;
            let factory = repulsion_factory(Some(subset));
            let runs = runs_for(scale, Space::Euclidean(2), scale.nodes, f, seed, &factory);
            row.push(
                runs.iter()
                    .map(|r| r.attack_series.tail_mean(3))
                    .sum::<f64>()
                    / runs.len() as f64,
            );
        }
        rows.push(row);
    }
    let notes =
        vec!["smaller independently-chosen subsets dilute the attack (paper fig. 7)".into()];
    FigureResult {
        id: "fig7".into(),
        title: "Injected Repulsion attack on subsets of target nodes".into(),
        columns,
        rows,
        notes,
    }
}

/// Figure 8 — injected repulsion: effect of system size.
pub fn fig08(scale: &Scale, seed: u64) -> FigureResult {
    size_sweep(
        "fig8",
        "Injection Repulsion attack on Vivaldi: effect of system size",
        scale,
        seed,
        &[0.10, 0.30, 0.50],
        &repulsion_factory(None),
    )
}

/// Figure 9 — colluding isolation (strategy 1): average error ratio.
pub fn fig09(scale: &Scale, seed: u64) -> FigureResult {
    ratio_vs_time(
        "fig9",
        "Colluding Isolation attack on Vivaldi: average relative error ratio",
        scale,
        seed,
        &FRACTIONS[..5], // 10–50%
        &collusion_repel_factory(),
    )
}

/// Figure 10 — colluding isolation: the target's relative error over time,
/// strategy 1 (repel the world) vs strategy 2 (lure the target).
pub fn fig10(scale: &Scale, seed: u64) -> FigureResult {
    let fraction = 0.30;
    let s1 = runs_for(
        scale,
        Space::Euclidean(2),
        scale.nodes,
        fraction,
        seed,
        &collusion_repel_factory(),
    );
    let s2 = runs_for(
        scale,
        Space::Euclidean(2),
        scale.nodes,
        fraction,
        seed,
        &collusion_lure_factory(),
    );
    let series1 = average_series(
        &s1.iter()
            .filter_map(|r| r.focus_series.clone())
            .collect::<Vec<_>>(),
    );
    let series2 = average_series(
        &s2.iter()
            .filter_map(|r| r.focus_series.clone())
            .collect::<Vec<_>>(),
    );
    let len = series1.len().min(series2.len());
    let rows: Vec<Vec<f64>> = (0..len)
        .map(|k| {
            vec![
                series1.points()[k].0 as f64,
                series1.points()[k].1,
                series2.points()[k].1,
            ]
        })
        .collect();
    let notes = vec![format!(
        "target final error: strategy1 {:.2}, strategy2 {:.2} (paper: strategy 1 is more effective)",
        series1.tail_mean(3),
        series2.tail_mean(3)
    )];
    FigureResult {
        id: "fig10".into(),
        title: "Colluding Isolation attack on Vivaldi: target relative error".into(),
        columns: vec![
            "tick".into(),
            "target_err_strategy1".into(),
            "target_err_strategy2".into(),
        ],
        rows,
        notes,
    }
}

/// Figure 11 — colluding isolation: CDF of relative errors under both
/// strategies.
pub fn fig11(scale: &Scale, seed: u64) -> FigureResult {
    let fraction = 0.30;
    let grid = quantile_grid();
    let mut cdfs = Vec::new();
    for (label, factory) in [
        (
            "strategy1",
            &collusion_repel_factory() as VivaldiFactory<'_>,
        ),
        ("strategy2", &collusion_lure_factory() as VivaldiFactory<'_>),
    ] {
        let runs = runs_for(
            scale,
            Space::Euclidean(2),
            scale.nodes,
            fraction,
            seed,
            factory,
        );
        let all: Vec<f64> = runs.iter().flat_map(|r| r.final_errors.clone()).collect();
        cdfs.push((label, Cdf::from_samples(&all)));
    }
    let rows: Vec<Vec<f64>> = grid
        .iter()
        .map(|&q| vec![q, cdfs[0].1.quantile(q), cdfs[1].1.quantile(q)])
        .collect();
    let notes = vec![format!(
        "system-wide median error: strategy1 {:.2}, strategy2 {:.2} (strategy 1 distorts the whole space)",
        cdfs[0].1.median(),
        cdfs[1].1.median()
    )];
    FigureResult {
        id: "fig11".into(),
        title: "Colluding Isolation attack on Vivaldi: CDF of relative errors".into(),
        columns: vec![
            "quantile".into(),
            "err_strategy1".into(),
            "err_strategy2".into(),
        ],
        rows,
        notes,
    }
}

/// Figure 12 — combined attacks at low residual levels: impact on
/// convergence.
pub fn fig12(scale: &Scale, seed: u64) -> FigureResult {
    ratio_vs_time(
        "fig12",
        "Combining attacks on Vivaldi: impact on convergence",
        scale,
        seed,
        &[0.03, 0.06, 0.09, 0.15],
        &combined_factory(),
    )
}

/// Figure 13 — combined attacks: effect of system size.
pub fn fig13(scale: &Scale, seed: u64) -> FigureResult {
    size_sweep(
        "fig13",
        "Combined attacks on Vivaldi: effect of system size",
        scale,
        seed,
        &[0.06, 0.15],
        &combined_factory(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_smoke_has_expected_shape() {
        let scale = Scale::smoke();
        let fig = fig01(&scale, 99);
        assert_eq!(fig.id, "fig1");
        assert_eq!(fig.columns.len(), 1 + FRACTIONS.len());
        assert!(!fig.rows.is_empty());
        // More attackers, more damage: final ratio monotone-ish between the
        // extreme fractions.
        let last = fig.rows.last().expect("rows");
        assert!(
            last[FRACTIONS.len()] > last[1],
            "75% should beat 10%: {last:?}"
        );
    }

    #[test]
    fn fig10_tracks_targets() {
        let scale = Scale::smoke();
        let fig = fig10(&scale, 42);
        assert_eq!(fig.columns.len(), 3);
        assert!(!fig.rows.is_empty());
        let last = fig.rows.last().expect("rows");
        // Both strategies must hurt the target noticeably.
        assert!(last[1] > 1.0 || last[2] > 1.0, "{last:?}");
    }
}
