//! The attacker's victim-coordinate knowledge model.
//!
//! §5.4.2/§5.4.3 of the paper study how much an attacker gains from knowing
//! its victims' coordinates "prior to striking" (e.g. from previous
//! positioning requests), sweeping the probability `p` that the coordinates
//! are known. This module centralizes that model so attack strategies stay
//! free of sampling logic.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How much an attacker knows about a victim's current coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Knowledge {
    /// Always knows (the paper's "full knowledge", `p = 1`).
    Oracle,
    /// Knows with probability `p`, decided independently per probe.
    Prob(f64),
    /// Never knows (`p = 0`): pure guesswork.
    None,
}

impl Knowledge {
    /// The paper's default for the anti-detection attacks: `p = 1/2`.
    pub fn half() -> Knowledge {
        Knowledge::Prob(0.5)
    }

    /// Sample whether this particular probe benefits from knowledge.
    pub fn knows<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        match *self {
            Knowledge::Oracle => true,
            Knowledge::None => false,
            Knowledge::Prob(p) => {
                if p <= 0.0 {
                    false
                } else if p >= 1.0 {
                    true
                } else {
                    rng.gen_bool(p)
                }
            }
        }
    }

    /// The nominal probability (for CSV headers and sweeps).
    pub fn probability(&self) -> f64 {
        match *self {
            Knowledge::Oracle => 1.0,
            Knowledge::None => 0.0,
            Knowledge::Prob(p) => p.clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn oracle_and_none_are_constant() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..64 {
            assert!(Knowledge::Oracle.knows(&mut rng));
            assert!(!Knowledge::None.knows(&mut rng));
        }
    }

    #[test]
    fn prob_rate_is_plausible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let k = Knowledge::Prob(0.3);
        let hits = (0..10_000).filter(|_| k.knows(&mut rng)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((0.27..0.33).contains(&rate), "rate {rate}");
    }

    #[test]
    fn degenerate_probabilities_clamp() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert!(Knowledge::Prob(2.0).knows(&mut rng));
        assert!(!Knowledge::Prob(-1.0).knows(&mut rng));
        assert_eq!(Knowledge::Prob(2.0).probability(), 1.0);
    }

    #[test]
    fn probabilities_report() {
        assert_eq!(Knowledge::Oracle.probability(), 1.0);
        assert_eq!(Knowledge::None.probability(), 0.0);
        assert_eq!(Knowledge::half().probability(), 0.5);
    }
}
