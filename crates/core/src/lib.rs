//! # vcoord — Virtual Networks under Attack
//!
//! A Rust reproduction of *"Virtual Networks under Attack: Disrupting
//! Internet Coordinate Systems"* (Kaafar, Mathy, Turletti, Dabbous —
//! CoNEXT 2006): the attack taxonomy, the attack implementations against
//! **Vivaldi** and **NPS**, and the full experiment suite regenerating every
//! figure of the paper's evaluation.
//!
//! This crate is the workspace facade. The substrates live in their own
//! crates and are re-exported here:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`space`] | `vcoord-space` | coordinate algebra, Simplex Downhill |
//! | [`topo`] | `vcoord-topo` | latency matrices, King-equivalent synthesis |
//! | [`netsim`] | `vcoord-netsim` | discrete-event engine, seed streams |
//! | [`metrics`] | `vcoord-metrics` | relative error, CDFs, filter ledger |
//! | [`attackkit`] | `vcoord-attackkit` | generic attack-scenario engine |
//! | [`defense`] | `vcoord-defense` | generic defense/detection engine |
//! | [`vivaldi`] | `vcoord-vivaldi` | the Vivaldi system under test |
//! | [`nps`] | `vcoord-nps` | the NPS system under test |
//!
//! The paper-specific pieces are local:
//!
//! * [`attacks`] — every attack strategy from §4/§5, built on the shared
//!   lie-consistency geometry of [`attacks::geometry`];
//! * [`knowledge`] — the attacker's victim-coordinate knowledge model
//!   (figures 19/20/22 sweep it);
//! * [`experiments`] — one configured, reproducible runner per figure.
//!
//! ## Quickstart
//!
//! ```
//! use vcoord::prelude::*;
//!
//! // A small King-like topology and a converged Vivaldi system.
//! let seeds = SeedStream::new(42);
//! let matrix = KingLike::new(KingLikeConfig::with_nodes(60))
//!     .generate(&mut seeds.rng("topo"));
//! let mut sim = VivaldiSim::new(matrix, VivaldiConfig::default(), &seeds);
//! sim.run_ticks(200);
//!
//! // Inject 30% disorder attackers into the converged system.
//! let attackers = sim.pick_attackers(0.30);
//! sim.inject_adversary(&attackers, Box::new(VivaldiDisorder::default()));
//! sim.run_ticks(50);
//!
//! // Accuracy of the honest population, measured against ground truth.
//! let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
//! let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
//! assert!(err > 0.5, "attack should visibly disrupt the system");
//! ```

pub mod attacks;
pub mod experiments;
pub mod knowledge;

pub use knowledge::Knowledge;

// Substrate re-exports under stable names.
pub use vcoord_attackkit as attackkit;
pub use vcoord_defense as defense;
pub use vcoord_metrics as metrics;
pub use vcoord_netsim as netsim;
pub use vcoord_nps as nps;
pub use vcoord_obs as obs;
pub use vcoord_space as space;
pub use vcoord_topo as topo;
pub use vcoord_vivaldi as vivaldi;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use crate::attacks::nps::{
        NpsAntiDetection, NpsCollusionIsolation, NpsCombined, NpsSimpleDisorder,
    };
    pub use crate::attacks::vivaldi::{
        VivaldiCollusionLure, VivaldiCollusionRepel, VivaldiCombined, VivaldiDisorder,
        VivaldiRepulsion,
    };
    pub use crate::knowledge::Knowledge;
    pub use vcoord_attackkit::{
        AttackStrategy, Collusion, CoordView, Deflation, FrogBoiling, Honest, Inflation, Lie,
        NetworkPartition, Oscillation, Probe, Protocol, RandomLie, Scenario,
    };
    pub use vcoord_chaos::{BurstModel, ChaosCounters, ChaosPlan, ProbePolicy};
    pub use vcoord_defense::{
        Defense, DefenseStrategy, DriftCap, DriftDecay, EwmaChangePoint, NoDefense, Provenance,
        ResidualOutlier, TriangleCheck, TrustedBaseline, Verdict,
    };
    pub use vcoord_metrics::{relative_error, Cdf, Confusion, EvalPlan, FilterLedger, TimeSeries};
    pub use vcoord_netsim::{LinkModel, SeedStream};
    pub use vcoord_nps::{NpsConfig, NpsSim};
    pub use vcoord_space::{Coord, Space};
    pub use vcoord_topo::{KingLike, KingLikeConfig, RttMatrix, TopoStats};
    pub use vcoord_vivaldi::{VivaldiConfig, VivaldiSim};
}
