//! Attack strategies against NPS (paper §5.4).
//!
//! Attackers act in their role as *reference points*: they lie about their
//! coordinates and delay positioning probes. Unlike Vivaldi, NPS victims do
//! not hand their coordinates to arbitrary peers, so the strategies here
//! route all victim-coordinate access through the [`Knowledge`] model
//! (figures 19, 20 and 22 sweep it). All of them implement the generic
//! [`vcoord_attackkit::AttackStrategy`] seam; the NPS-specific part is
//! which oracle fields they use (`layer`, `params.probe_threshold_ms`).

use crate::attacks::geometry::{anti_detection_lie, sophistication_cut_ms};
use crate::knowledge::Knowledge;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::{HashMap, HashSet};
use vcoord_attackkit::{AttackStrategy, Collusion, CoordView, Lie, Probe};
use vcoord_space::Coord;

/// §5.4.1 — *independent disorder*: a malicious reference point transmits
/// its **correct** coordinates but delays measurement probes by a random
/// `[100, 1000]` ms, without caring about lie consistency.
#[derive(Debug, Clone)]
pub struct NpsSimpleDisorder {
    /// Probe delay range in ms.
    pub delay_range: (f64, f64),
}

impl Default for NpsSimpleDisorder {
    fn default() -> Self {
        NpsSimpleDisorder {
            delay_range: (100.0, 1000.0),
        }
    }
}

impl AttackStrategy for NpsSimpleDisorder {
    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        Some(Lie {
            coord: view.coords[probe.attacker].clone(),
            error: 0.01,
            delay_ms: rng.gen_range(self.delay_range.0..self.delay_range.1),
        })
    }

    fn label(&self) -> &'static str {
        "nps-simple-disorder"
    }
}

/// §5.4.2/§5.4.3 — the *anti-detection* disorder attacks.
///
/// The attacker lies consistently: it pretends to sit `push_factor · d`
/// away from the victim and delays the probe by the corresponding amount,
/// keeping the victim-computed fitting error under the NPS filter's 0.01
/// floor. With probability given by [`Knowledge`] it knows the victim's
/// coordinates (perfect anchoring); otherwise it guesses the direction and
/// estimates the distance from the probe's one-way timestamp.
///
/// The `sophisticated` variant additionally refuses to attack victims it
/// believes to be farther than [`NpsAntiDetection::victim_cut_ms`], so the
/// inflated RTT stays below the victim's probe threshold and the attack
/// never trips the threshold check (§5.4.3: with a 5 s threshold and the
/// paper's parameters this cut is 25 ms).
#[derive(Debug, Clone)]
pub struct NpsAntiDetection {
    /// Victim-coordinate knowledge model.
    pub knowledge: Knowledge,
    /// How far to push, as a multiple of the estimated victim distance.
    pub push_factor: f64,
    /// Aggression margin as a fraction of the filter's 1 % floor (see
    /// [`anti_detection_lie`]).
    pub margin: f64,
    /// Whether to avoid the probe-threshold mechanism (§5.4.3).
    pub sophisticated: bool,
}

impl NpsAntiDetection {
    /// The naive variant (§5.4.2) with the paper's default half-knowledge.
    pub fn naive(knowledge: Knowledge) -> Self {
        NpsAntiDetection {
            knowledge,
            push_factor: 199.0,
            margin: 0.25,
            sophisticated: false,
        }
    }

    /// The sophisticated variant (§5.4.3).
    pub fn sophisticated(knowledge: Knowledge) -> Self {
        NpsAntiDetection {
            knowledge,
            push_factor: 199.0,
            margin: 0.25,
            sophisticated: true,
        }
    }

    /// The victim-distance cut used by the sophisticated variant, given the
    /// protocol's probe threshold.
    pub fn victim_cut_ms(&self, probe_threshold_ms: f64) -> f64 {
        sophistication_cut_ms(probe_threshold_ms, self.push_factor)
    }
}

impl AttackStrategy for NpsAntiDetection {
    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        let knows = self.knowledge.knows(rng);
        // Distance estimate: the true RTT when the victim is known (the
        // attacker can correlate coordinates and measurements), otherwise
        // the one-way timestamp difference of the incoming probe (≈ rtt/2).
        let d_est = if knows { probe.rtt } else { probe.rtt / 2.0 };

        if self.sophisticated && d_est > self.victim_cut_ms(view.params.probe_threshold_ms) {
            return None; // too far: attacking would trip the probe threshold
        }

        let attacker_pos = &view.coords[probe.attacker];
        let anchor = if knows {
            view.coords[probe.victim].clone()
        } else {
            attacker_pos.clone()
        };
        let lie = anti_detection_lie(
            view.space,
            &anchor,
            attacker_pos,
            d_est,
            self.push_factor,
            self.margin,
            knows,
            rng,
        );
        Some(Lie {
            coord: lie.coord,
            error: 0.01,
            delay_ms: lie.needed_rtt - probe.rtt,
        })
    }

    fn label(&self) -> &'static str {
        if self.sophisticated {
            "nps-anti-detection-sophisticated"
        } else {
            "nps-anti-detection-naive"
        }
    }
}

/// §5.4.4 — *colluding isolation*.
///
/// The attackers behave honestly until at least `min_active` of them serve
/// as reference points in the agreed attack layer. They then pick a common
/// victim set in the layer below and, only when serving those victims,
/// pretend to be clustered in a remote region of the space while delaying
/// probes consistently with an agreed isolation point at the *opposite*
/// side — pushing every victim there. Non-victims always observe honest
/// behaviour, and by lying as a group the colluders drag the median fitting
/// error upward, blunting condition (2) of the NPS filter.
pub struct NpsCollusionIsolation {
    /// Colluders needed in the attack layer before the attack activates.
    pub min_active: usize,
    /// The reference layer the colluders attack from.
    pub attack_layer: u8,
    /// Fraction of the layer below designated as common victims.
    pub victim_fraction: f64,
    /// Distance of the pretend cluster from the origin.
    pub cluster_range: f64,
    /// Scatter of colluders within the cluster.
    pub cluster_spread: f64,
    active: bool,
    cluster: HashMap<usize, Coord>,
    victims: HashSet<usize>,
    victims_preset: bool,
    isolation_point: Coord,
}

impl NpsCollusionIsolation {
    /// Build with the paper's activation threshold (5 colluding reference
    /// points) attacking from layer 1.
    pub fn new(victim_fraction: f64) -> Self {
        NpsCollusionIsolation {
            min_active: 5,
            attack_layer: 1,
            victim_fraction,
            cluster_range: 10_000.0,
            cluster_spread: 100.0,
            active: false,
            cluster: HashMap::new(),
            victims: HashSet::new(),
            victims_preset: false,
            isolation_point: Coord::origin(0),
        }
    }

    /// Whether enough colluders became reference points to activate.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Preset the common victim set (otherwise chosen at injection). Used
    /// by the experiment harness so it can track exactly these nodes.
    pub fn preset_victims(&mut self, victims: HashSet<usize>) {
        self.victims = victims;
        self.victims_preset = true;
    }

    /// The agreed victim set (empty before activation).
    pub fn victims(&self) -> &HashSet<usize> {
        &self.victims
    }
}

impl AttackStrategy for NpsCollusionIsolation {
    fn inject(
        &mut self,
        attackers: &[usize],
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        let colluders: Vec<usize> = attackers
            .iter()
            .copied()
            .filter(|&a| view.layer_of(a) == self.attack_layer)
            .collect();
        if colluders.len() < self.min_active {
            log::debug!(
                "nps-collusion: only {} colluders in layer {}, staying dormant",
                colluders.len(),
                self.attack_layer
            );
            return;
        }
        self.active = true;

        // Agree on the remote cluster and the opposite isolation point.
        // The cluster–isolation separation bounds the RTT the colluders
        // must claim (≈ 2·range); cap it safely under the victims' probe
        // threshold — the colluders know the protocol constant, and a lie
        // above it would simply be discarded and banned.
        let range = if view.params.probe_threshold_ms.is_finite() {
            self.cluster_range.min(0.4 * view.params.probe_threshold_ms)
        } else {
            self.cluster_range
        };
        let mut centre = view.space.origin();
        let dir = view.space.random_unit(rng);
        view.space.apply(&mut centre, &dir, range);
        let mut iso = view.space.origin();
        view.space.apply(&mut iso, &dir, -range);
        self.isolation_point = iso;
        for &a in &colluders {
            let mut pos = centre.clone();
            let jitter = view.space.random_unit(rng);
            view.space
                .apply(&mut pos, &jitter, rng.gen_range(0.0..self.cluster_spread));
            self.cluster.insert(a, pos);
        }

        // Common victim set: honest nodes of the layer below (unless the
        // caller preset one).
        if !self.victims_preset {
            let mut pool: Vec<usize> = (0..view.coords.len())
                .filter(|&i| view.layer_of(i) == self.attack_layer + 1 && !view.malicious[i])
                .collect();
            pool.shuffle(rng);
            let k = ((pool.len() as f64) * self.victim_fraction.clamp(0.0, 1.0)).round() as usize;
            pool.truncate(k.max(1));
            self.victims = pool.into_iter().collect();
        }
    }

    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        if !self.active || !self.victims.contains(&probe.victim) {
            return None; // honest toward everyone but the agreed victims
        }
        let pos = self.cluster.get(&probe.attacker)?;
        // Consistent with the victim sitting at the isolation point: the
        // positioning solution is dragged toward it.
        let needed = view.space.distance(pos, &self.isolation_point);
        Some(Lie {
            coord: pos.clone(),
            error: 0.01,
            delay_ms: needed - probe.rtt,
        })
    }

    fn label(&self) -> &'static str {
        "nps-collusion-isolation"
    }
}

/// Figure 26 — *combined NPS attacks*: equal shares of independent
/// disorder, anti-detection sophisticated disorder, and colluding isolation
/// attackers, modelling the low-level residual infection after an outbreak.
pub struct NpsCombined {
    disorder: NpsSimpleDisorder,
    anti_detection: NpsAntiDetection,
    collusion: NpsCollusionIsolation,
    assignment: HashMap<usize, u8>,
}

impl NpsCombined {
    /// Build with the paper's sub-strategy parameters.
    pub fn new(knowledge: Knowledge, victim_fraction: f64) -> Self {
        NpsCombined {
            disorder: NpsSimpleDisorder::default(),
            anti_detection: NpsAntiDetection::sophisticated(knowledge),
            collusion: NpsCollusionIsolation::new(victim_fraction),
            assignment: HashMap::new(),
        }
    }

    /// How many attackers were assigned to each class (d, a, c).
    pub fn class_sizes(&self) -> (usize, usize, usize) {
        let mut d = 0;
        let mut a = 0;
        let mut c = 0;
        for v in self.assignment.values() {
            match v {
                0 => d += 1,
                1 => a += 1,
                _ => c += 1,
            }
        }
        (d, a, c)
    }
}

impl AttackStrategy for NpsCombined {
    fn inject(
        &mut self,
        attackers: &[usize],
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        let mut shuffled = attackers.to_vec();
        shuffled.shuffle(rng);
        // Give the collusion share first pick of reference-layer nodes so
        // the activation threshold has a fighting chance at low fractions,
        // then split the rest evenly.
        shuffled.sort_by_key(|&a| {
            if view.layer_of(a) == self.collusion.attack_layer {
                0
            } else {
                1
            }
        });
        let third = attackers.len().div_ceil(3);
        let (c, rest) = shuffled.split_at(third.min(shuffled.len()));
        let (d, a) = rest.split_at(rest.len().div_ceil(2));
        for &x in c {
            self.assignment.insert(x, 2);
        }
        for &x in d {
            self.assignment.insert(x, 0);
        }
        for &x in a {
            self.assignment.insert(x, 1);
        }
        self.collusion.inject(c, collusion, view, rng);
    }

    fn respond(
        &mut self,
        probe: &Probe,
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        match self.assignment.get(&probe.attacker) {
            Some(0) => self.disorder.respond(probe, collusion, view, rng),
            Some(1) => self.anti_detection.respond(probe, collusion, view, rng),
            Some(2) => self.collusion.respond(probe, collusion, view, rng),
            _ => None,
        }
    }

    fn label(&self) -> &'static str {
        "nps-combined"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vcoord_attackkit::Protocol;
    use vcoord_space::Space;

    struct Fixture {
        space: Space,
        coords: Vec<Coord>,
        layer: Vec<u8>,
        malicious: Vec<bool>,
        is_ref: Vec<bool>,
    }

    fn fixture() -> Fixture {
        // 0..5 are layer-1 refs (malicious), 6..11 are layer-2 ordinary.
        let space = Space::Euclidean(2);
        let coords: Vec<Coord> = (0..12)
            .map(|i| Coord::from_vec(vec![10.0 * i as f64, 5.0 * i as f64]))
            .collect();
        let mut layer = vec![1u8; 6];
        layer.extend(vec![2u8; 6]);
        let mut malicious = vec![true; 6];
        malicious.extend(vec![false; 6]);
        let is_ref = layer.iter().map(|&l| l == 1).collect();
        Fixture {
            space,
            coords,
            layer,
            malicious,
            is_ref,
        }
    }

    fn view(f: &Fixture) -> CoordView<'_> {
        CoordView {
            space: &f.space,
            coords: &f.coords,
            errors: &[],
            layer: &f.layer,
            malicious: &f.malicious,
            is_ref: &f.is_ref,
            round: 0,
            now_ms: 0,
            params: Protocol {
                cc: 0.25,
                probe_threshold_ms: 5_000.0,
            },
        }
    }

    fn probe(attacker: usize, victim: usize, rtt: f64) -> Probe {
        Probe {
            attacker,
            victim,
            rtt,
        }
    }

    #[test]
    fn simple_disorder_reports_true_coords_with_delay() {
        let f = fixture();
        let v = view(&f);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut coll = Collusion::new();
        let mut adv = NpsSimpleDisorder::default();
        let lie = adv
            .respond(&probe(2, 7, 50.0), &mut coll, &v, &mut rng)
            .unwrap();
        assert_eq!(lie.coord, f.coords[2], "coords must be truthful");
        assert!((100.0..1000.0).contains(&lie.delay_ms));
    }

    #[test]
    fn anti_detection_with_knowledge_is_consistent() {
        let f = fixture();
        let v = view(&f);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut coll = Collusion::new();
        let mut adv = NpsAntiDetection::naive(Knowledge::Oracle);
        let rtt = f.space.distance(&f.coords[0], &f.coords[7]);
        let lie = adv
            .respond(&probe(0, 7, rtt), &mut coll, &v, &mut rng)
            .unwrap();
        // Victim-side fitting error at its current coordinates equals the
        // margin bound — under C·median for a typically-converged victim.
        let measured = rtt + lie.delay_ms;
        let implied = f.space.distance(&f.coords[7], &lie.coord);
        let fit = (implied - measured).abs() / measured;
        let bound = adv.margin / (1.0 - adv.margin);
        assert!((fit - bound).abs() < 1e-9, "fit {fit} vs bound {bound}");
        assert!(lie.delay_ms > 0.0);
    }

    #[test]
    fn sophisticated_skips_far_victims() {
        let f = fixture();
        let v = view(&f);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut coll = Collusion::new();
        let mut adv = NpsAntiDetection::sophisticated(Knowledge::Oracle);
        assert_eq!(adv.victim_cut_ms(5_000.0), 25.0);
        // Far victim (rtt 100 > 25): honest behaviour.
        assert!(adv
            .respond(&probe(0, 7, 100.0), &mut coll, &v, &mut rng)
            .is_none());
        // Near victim: attacked, and the inflated RTT stays under the
        // threshold.
        let lie = adv
            .respond(&probe(0, 7, 20.0), &mut coll, &v, &mut rng)
            .unwrap();
        assert!(
            20.0 + lie.delay_ms <= 5_000.0,
            "must not trip the threshold"
        );
    }

    #[test]
    fn collusion_stays_dormant_below_quorum() {
        let f = fixture();
        let v = view(&f);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut coll = Collusion::new();
        let mut adv = NpsCollusionIsolation::new(0.5);
        adv.inject(&[0, 1, 2, 3], &mut coll, &v, &mut rng); // only 4 < 5
        assert!(!adv.is_active());
        assert!(adv
            .respond(&probe(0, 7, 50.0), &mut coll, &v, &mut rng)
            .is_none());
    }

    #[test]
    fn collusion_activates_and_attacks_only_victims() {
        let f = fixture();
        let v = view(&f);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut coll = Collusion::new();
        let mut adv = NpsCollusionIsolation::new(0.5);
        adv.inject(&[0, 1, 2, 3, 4], &mut coll, &v, &mut rng);
        assert!(adv.is_active());
        let victims = adv.victims().clone();
        assert!(!victims.is_empty());
        assert!(victims.iter().all(|&w| f.layer[w] == 2 && !f.malicious[w]));
        for w in 6..12 {
            let lie = adv.respond(&probe(0, w, 50.0), &mut coll, &v, &mut rng);
            assert_eq!(lie.is_some(), victims.contains(&w));
        }
        // Cluster coordinates are remote and consistent across probes.
        let w = *victims.iter().next().unwrap();
        let l1 = adv
            .respond(&probe(1, w, 50.0), &mut coll, &v, &mut rng)
            .unwrap();
        let l2 = adv
            .respond(&probe(1, w, 50.0), &mut coll, &v, &mut rng)
            .unwrap();
        assert_eq!(l1.coord, l2.coord);
        // Cluster is remote, but its separation from the isolation point is
        // capped under the probe threshold (≈ 0.4 × 5000 = 2000 here).
        assert!(l1.coord.magnitude() > 1_000.0);
        assert!(
            50.0 + l1.delay_ms <= v.params.probe_threshold_ms,
            "lie must pass the threshold"
        );
    }

    #[test]
    fn combined_assigns_all_attackers() {
        let f = fixture();
        let v = view(&f);
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut coll = Collusion::new();
        let mut adv = NpsCombined::new(Knowledge::half(), 0.3);
        let attackers = [0usize, 1, 2, 3, 4, 5];
        adv.inject(&attackers, &mut coll, &v, &mut rng);
        let (d, a, c) = adv.class_sizes();
        assert_eq!(d + a + c, 6);
        assert!(d >= 1 && a >= 1 && c >= 1);
    }
}
