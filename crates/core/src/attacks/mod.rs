//! Attack strategies against Internet coordinate systems (paper §4/§5).
//!
//! The taxonomy of §4 maps onto these implementations:
//!
//! | class | Vivaldi (§5.3) | NPS (§5.4) |
//! |-------|----------------|------------|
//! | Disorder | [`vivaldi::VivaldiDisorder`] | [`nps::NpsSimpleDisorder`], [`nps::NpsAntiDetection`] |
//! | Repulsion | [`vivaldi::VivaldiRepulsion`] (incl. subset targeting) | — |
//! | Isolation (collusion) | [`vivaldi::VivaldiCollusionRepel`], [`vivaldi::VivaldiCollusionLure`] | [`nps::NpsCollusionIsolation`] |
//! | System control | emerges from error propagation in 4-layer NPS (fig. 24/25) | idem |
//! | Combined | [`vivaldi::VivaldiCombined`] | [`nps::NpsCombined`] |
//!
//! All coordinate/delay arithmetic shared between strategies lives in
//! [`geometry`], which is unit-tested against the paper's closed forms.

pub mod geometry;
pub mod nps;
pub mod vivaldi;
