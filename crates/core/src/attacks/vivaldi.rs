//! Attack strategies against Vivaldi (paper §5.3).
//!
//! In Vivaldi every node freely hands out its coordinates when probed, so
//! attackers legitimately learn victim positions "by means of previous
//! requests" (§5.3.2) — the strategies here therefore read the view oracle
//! directly. All of them implement the generic
//! [`vcoord_attackkit::AttackStrategy`] seam; the Vivaldi-specific part is
//! only which oracle fields they use (`errors`, `params.cc`).

use crate::attacks::geometry::repulsion_lie;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::{HashMap, HashSet};
use vcoord_attackkit::{AttackStrategy, Collusion, CoordView, Lie, Probe};
use vcoord_space::Coord;

/// §5.3.1 — the *disorder* attack.
///
/// When solicited, a malicious node sends a randomly selected coordinate
/// with a very low reported error (0.01) and delays the measurement by a
/// random value in `[100, 1000]` ms. No lie consistency is attempted: the
/// low reported error alone maximizes the victim's adaptive timestep.
///
/// The lie shape is exactly [`RandomLie`](vcoord_attackkit::RandomLie) —
/// this type only pins the paper's name and defaults on it, so the two can
/// never drift apart.
// `RandomLie::default()` IS the paper's §5.3.1 parameter set.
#[derive(Debug, Clone, Default)]
pub struct VivaldiDisorder(vcoord_attackkit::RandomLie);

impl AttackStrategy for VivaldiDisorder {
    fn respond(
        &mut self,
        probe: &Probe,
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        self.0.respond(probe, collusion, view, rng)
    }

    fn label(&self) -> &'static str {
        "vivaldi-disorder"
    }
}

/// §5.3.2 — the *repulsion* attack.
///
/// Each attacker independently fixes a coordinate `X_target` far from the
/// origin and consistently directs every victim (or a fixed-size random
/// subset of victims, figure 7) toward it: it reports the mirror point of
/// `X_target` through the victim's current position and delays the probe to
/// the paper's `RTT = d/δ + d`, so the lie is fully consistent.
#[derive(Debug, Clone)]
pub struct VivaldiRepulsion {
    /// Magnitude of each attacker's `X_target` (distance from the origin).
    pub target_range: f64,
    /// Error estimate reported with every lie (drives victim weight → 1).
    pub lie_error: f64,
    /// If set, each attacker only attacks this many victims, chosen
    /// independently at injection (figure 7's modified attack).
    pub subset_size: Option<usize>,
    targets: HashMap<usize, Coord>,
    victims: HashMap<usize, HashSet<usize>>,
}

impl VivaldiRepulsion {
    /// Attack every requesting node (the base attack).
    pub fn new(target_range: f64) -> Self {
        VivaldiRepulsion {
            target_range,
            lie_error: 0.01,
            subset_size: None,
            targets: HashMap::new(),
            victims: HashMap::new(),
        }
    }

    /// Attack only `subset` victims per attacker (figure 7).
    pub fn with_subset(target_range: f64, subset: usize) -> Self {
        VivaldiRepulsion {
            subset_size: Some(subset),
            ..Self::new(target_range)
        }
    }

    /// The `X_target` chosen by `attacker` (after injection).
    pub fn target_of(&self, attacker: usize) -> Option<&Coord> {
        self.targets.get(&attacker)
    }
}

impl Default for VivaldiRepulsion {
    fn default() -> Self {
        // "Far away from the origin": the random-interval scale of §5.1.
        // The paper leaves the magnitude open; at this scale the attacked
        // system degrades to the random-baseline regime (see
        // EXPERIMENTS.md calibration notes).
        Self::new(50_000.0)
    }
}

impl AttackStrategy for VivaldiRepulsion {
    fn inject(
        &mut self,
        attackers: &[usize],
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        let population: Vec<usize> = (0..view.coords.len())
            .filter(|i| !view.malicious[*i])
            .collect();
        for &a in attackers {
            // "Each malicious node is selecting a random coordinate that is
            // far away from the origin."
            let mut target = view.space.origin();
            let dir = view.space.random_unit(rng);
            let magnitude = rng.gen_range(0.5..1.0) * self.target_range;
            view.space.apply(&mut target, &dir, magnitude);
            self.targets.insert(a, target);

            if let Some(k) = self.subset_size {
                let mut pool = population.clone();
                pool.shuffle(rng);
                pool.truncate(k);
                self.victims.insert(a, pool.into_iter().collect());
            }
        }
    }

    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        if let Some(set) = self.victims.get(&probe.attacker) {
            if !set.contains(&probe.victim) {
                return None; // outside my subset: behave honestly
            }
        }
        let target = self.targets.get(&probe.attacker)?;
        let lie = repulsion_lie(
            view.space,
            &view.coords[probe.victim],
            target,
            view.params.cc,
            rng,
        );
        Some(Lie {
            coord: lie.coord,
            error: self.lie_error,
            delay_ms: lie.needed_rtt - probe.rtt,
        })
    }

    fn label(&self) -> &'static str {
        "vivaldi-repulsion"
    }
}

/// §5.3.3 strategy 1 — *colluding isolation by repelling the world*.
///
/// All attackers agree on one target node and on a designated coordinate
/// per victim (computed radially away from the target at an agreed
/// distance, frozen when first used), then collectively and consistently
/// repel every other honest node toward its designated coordinate. The
/// target itself is left alone; it ends up isolated because everyone else
/// has been moved away.
#[derive(Debug, Clone)]
pub struct VivaldiCollusionRepel {
    /// The agreed isolation distance from the target.
    pub distance: f64,
    /// Error estimate reported with every lie.
    pub lie_error: f64,
    /// The designated target node (chosen at injection unless preset).
    pub target: Option<usize>,
    target_coord: Coord,
    designated: HashMap<usize, Coord>,
}

impl VivaldiCollusionRepel {
    /// Collude to isolate a random honest node at the given distance.
    pub fn new(distance: f64) -> Self {
        VivaldiCollusionRepel {
            distance,
            lie_error: 0.01,
            target: None,
            target_coord: Coord::origin(0),
            designated: HashMap::new(),
        }
    }

    /// Collude against a specific node.
    pub fn against(target: usize, distance: f64) -> Self {
        VivaldiCollusionRepel {
            target: Some(target),
            ..Self::new(distance)
        }
    }

    /// The victim's shared designated coordinate, fixed on first use so all
    /// colluders push consistently toward the same point.
    fn designated_for(
        &mut self,
        victim: usize,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Coord {
        if let Some(c) = self.designated.get(&victim) {
            return c.clone();
        }
        let dir = view
            .space
            .direction(&view.coords[victim], &self.target_coord, rng);
        let mut dest = self.target_coord.clone();
        view.space.apply(&mut dest, &dir, self.distance);
        self.designated.insert(victim, dest.clone());
        dest
    }
}

impl AttackStrategy for VivaldiCollusionRepel {
    fn inject(
        &mut self,
        _attackers: &[usize],
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        if self.target.is_none() {
            let honest: Vec<usize> = (0..view.coords.len())
                .filter(|i| !view.malicious[*i])
                .collect();
            self.target = honest.choose(rng).copied();
        }
        if let Some(t) = self.target {
            self.target_coord = view.coords[t].clone();
        }
    }

    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        let target = self.target?;
        if probe.victim == target {
            return None; // the target observes honest behaviour
        }
        let dest = self.designated_for(probe.victim, view, rng);
        let lie = repulsion_lie(
            view.space,
            &view.coords[probe.victim],
            &dest,
            view.params.cc,
            rng,
        );
        Some(Lie {
            coord: lie.coord,
            error: self.lie_error,
            delay_ms: lie.needed_rtt - probe.rtt,
        })
    }

    fn label(&self) -> &'static str {
        "vivaldi-collusion-repel"
    }
}

/// §5.3.3 strategy 2 — *colluding isolation by luring the target*.
///
/// The attackers pretend to be clustered in a remote area of the coordinate
/// space (agreed before the attack) and convince the chosen victim that its
/// own coordinate lies within that cluster: every probe from the victim is
/// answered with a cluster coordinate and a near-zero error, so the victim
/// is pulled into the (empty) remote area. All other nodes see honest
/// behaviour.
#[derive(Debug, Clone)]
pub struct VivaldiCollusionLure {
    /// Distance of the pretend cluster from the origin.
    pub cluster_range: f64,
    /// Scatter of individual attackers inside the cluster.
    pub cluster_spread: f64,
    /// Error estimate reported with every lie.
    pub lie_error: f64,
    /// The designated victim (chosen at injection unless preset).
    pub target: Option<usize>,
    cluster: HashMap<usize, Coord>,
}

impl VivaldiCollusionLure {
    /// Lure a random honest node into a remote cluster.
    pub fn new(cluster_range: f64) -> Self {
        VivaldiCollusionLure {
            cluster_range,
            cluster_spread: 50.0,
            lie_error: 0.01,
            target: None,
            cluster: HashMap::new(),
        }
    }

    /// Lure a specific node.
    pub fn against(target: usize, cluster_range: f64) -> Self {
        VivaldiCollusionLure {
            target: Some(target),
            ..Self::new(cluster_range)
        }
    }
}

impl AttackStrategy for VivaldiCollusionLure {
    fn inject(
        &mut self,
        attackers: &[usize],
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        if self.target.is_none() {
            let honest: Vec<usize> = (0..view.coords.len())
                .filter(|i| !view.malicious[*i])
                .collect();
            self.target = honest.choose(rng).copied();
        }
        // Agree on a remote cluster centre, then scatter members around it.
        let mut centre = view.space.origin();
        let dir = view.space.random_unit(rng);
        view.space.apply(&mut centre, &dir, self.cluster_range);
        for &a in attackers {
            let mut pos = centre.clone();
            let jitter = view.space.random_unit(rng);
            view.space
                .apply(&mut pos, &jitter, rng.gen_range(0.0..self.cluster_spread));
            self.cluster.insert(a, pos);
        }
    }

    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        _view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        if Some(probe.victim) != self.target {
            return None;
        }
        let coord = self.cluster.get(&probe.attacker)?.clone();
        // No delay needed: the huge reported distance versus the small true
        // RTT already pulls the victim toward the cluster with maximal
        // steps (rtt − dist ≪ 0).
        Some(Lie {
            coord,
            error: self.lie_error,
            delay_ms: 0.0,
        })
    }

    fn label(&self) -> &'static str {
        "vivaldi-collusion-lure"
    }
}

/// §5.3.4 — *combined attacks*: equal shares of disorder, repulsion and
/// colluding-isolation (strategy 1) attackers coexist, modelling the
/// long-tail aftermath of a worm outbreak.
pub struct VivaldiCombined {
    disorder: VivaldiDisorder,
    repulsion: VivaldiRepulsion,
    collusion: VivaldiCollusionRepel,
    assignment: HashMap<usize, u8>,
}

impl VivaldiCombined {
    /// Build with the workspace-default sub-strategies.
    pub fn new() -> Self {
        VivaldiCombined {
            disorder: VivaldiDisorder::default(),
            repulsion: VivaldiRepulsion::default(),
            collusion: VivaldiCollusionRepel::new(10_000.0),
            assignment: HashMap::new(),
        }
    }

    /// How many attackers were assigned to each class (d, r, c).
    pub fn class_sizes(&self) -> (usize, usize, usize) {
        let mut d = 0;
        let mut r = 0;
        let mut c = 0;
        for v in self.assignment.values() {
            match v {
                0 => d += 1,
                1 => r += 1,
                _ => c += 1,
            }
        }
        (d, r, c)
    }
}

impl Default for VivaldiCombined {
    fn default() -> Self {
        Self::new()
    }
}

impl AttackStrategy for VivaldiCombined {
    fn inject(
        &mut self,
        attackers: &[usize],
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        // The paper uses equal percentages of each type.
        let mut shuffled = attackers.to_vec();
        shuffled.shuffle(rng);
        let third = shuffled.len().div_ceil(3);
        let (d, rest) = shuffled.split_at(third.min(shuffled.len()));
        let (r, c) = rest.split_at(third.min(rest.len()));
        for &a in d {
            self.assignment.insert(a, 0);
        }
        for &a in r {
            self.assignment.insert(a, 1);
        }
        for &a in c {
            self.assignment.insert(a, 2);
        }
        self.repulsion.inject(r, collusion, view, rng);
        self.collusion.inject(c, collusion, view, rng);
    }

    fn respond(
        &mut self,
        probe: &Probe,
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        match self.assignment.get(&probe.attacker) {
            Some(0) => self.disorder.respond(probe, collusion, view, rng),
            Some(1) => self.repulsion.respond(probe, collusion, view, rng),
            Some(2) => self.collusion.respond(probe, collusion, view, rng),
            _ => None,
        }
    }

    fn label(&self) -> &'static str {
        "vivaldi-combined"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vcoord_attackkit::Protocol;
    use vcoord_space::Space;

    fn view_fixture<'a>(
        space: &'a Space,
        coords: &'a [Coord],
        errors: &'a [f64],
        malicious: &'a [bool],
    ) -> CoordView<'a> {
        CoordView {
            space,
            coords,
            errors,
            layer: &[],
            malicious,
            is_ref: &[],
            round: 0,
            now_ms: 0,
            params: Protocol {
                cc: 0.25,
                probe_threshold_ms: f64::INFINITY,
            },
        }
    }

    fn fixture() -> (Space, Vec<Coord>, Vec<f64>, Vec<bool>) {
        let space = Space::Euclidean(2);
        let coords = vec![
            Coord::from_vec(vec![0.0, 0.0]),
            Coord::from_vec(vec![100.0, 0.0]),
            Coord::from_vec(vec![0.0, 100.0]),
            Coord::from_vec(vec![50.0, 50.0]),
        ];
        let errors = vec![0.2; 4];
        let malicious = vec![true, false, false, false];
        (space, coords, errors, malicious)
    }

    fn probe(attacker: usize, victim: usize, rtt: f64) -> Probe {
        Probe {
            attacker,
            victim,
            rtt,
        }
    }

    #[test]
    fn disorder_lies_have_paper_shape() {
        let (space, coords, errors, malicious) = fixture();
        let view = view_fixture(&space, &coords, &errors, &malicious);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut coll = Collusion::new();
        let mut adv = VivaldiDisorder::default();
        for _ in 0..50 {
            let lie = adv
                .respond(&probe(0, 1, 80.0), &mut coll, &view, &mut rng)
                .unwrap();
            assert_eq!(lie.error, 0.01);
            assert!((100.0..1000.0).contains(&lie.delay_ms));
            assert!(lie.coord.vec.iter().all(|x| x.abs() <= 50_000.0));
        }
    }

    #[test]
    fn repulsion_lie_is_consistent() {
        let (space, coords, errors, malicious) = fixture();
        let view = view_fixture(&space, &coords, &errors, &malicious);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut coll = Collusion::new();
        let mut adv = VivaldiRepulsion::new(5_000.0);
        adv.inject(&[0], &mut coll, &view, &mut rng);
        let target = adv.target_of(0).unwrap().clone();
        assert!(
            target.magnitude() >= 2_500.0,
            "target must be far from origin"
        );

        let lie = adv
            .respond(&probe(0, 1, 80.0), &mut coll, &view, &mut rng)
            .unwrap();
        // Consistency: measured (rtt + delay) equals d/Cc + d for the
        // victim-target distance d.
        let d = space.distance(&coords[1], &target);
        let measured = 80.0 + lie.delay_ms;
        assert!(
            (measured - (d / 0.25 + d)).abs() < 1e-6,
            "lie must follow the paper's RTT formula"
        );
    }

    #[test]
    fn subset_repulsion_spares_non_victims() {
        let (space, coords, errors, malicious) = fixture();
        let view = view_fixture(&space, &coords, &errors, &malicious);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut coll = Collusion::new();
        let mut adv = VivaldiRepulsion::with_subset(5_000.0, 1);
        adv.inject(&[0], &mut coll, &view, &mut rng);
        let attacked: Vec<bool> = (1..4)
            .map(|v| {
                adv.respond(&probe(0, v, 80.0), &mut coll, &view, &mut rng)
                    .is_some()
            })
            .collect();
        assert_eq!(attacked.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn collusion_repel_spares_target_and_is_shared() {
        let (space, coords, errors, malicious) = fixture();
        let view = view_fixture(&space, &coords, &errors, &malicious);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut coll = Collusion::new();
        let mut adv = VivaldiCollusionRepel::against(3, 4_000.0);
        adv.inject(&[0], &mut coll, &view, &mut rng);
        assert!(adv
            .respond(&probe(0, 3, 80.0), &mut coll, &view, &mut rng)
            .is_none());
        // Designated coordinate for a victim is frozen across probes.
        let l1 = adv
            .respond(&probe(0, 1, 80.0), &mut coll, &view, &mut rng)
            .unwrap();
        let l2 = adv
            .respond(&probe(0, 1, 80.0), &mut coll, &view, &mut rng)
            .unwrap();
        assert_eq!(l1.coord, l2.coord);
        assert_eq!(l1.delay_ms, l2.delay_ms);
    }

    #[test]
    fn collusion_lure_attacks_only_target_with_cluster_coords() {
        let (space, coords, errors, malicious) = fixture();
        let view = view_fixture(&space, &coords, &errors, &malicious);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut coll = Collusion::new();
        let mut adv = VivaldiCollusionLure::against(2, 8_000.0);
        adv.inject(&[0], &mut coll, &view, &mut rng);
        assert!(adv
            .respond(&probe(0, 1, 80.0), &mut coll, &view, &mut rng)
            .is_none());
        let lie = adv
            .respond(&probe(0, 2, 80.0), &mut coll, &view, &mut rng)
            .unwrap();
        assert_eq!(lie.delay_ms, 0.0);
        assert!(
            lie.coord.magnitude() > 4_000.0,
            "cluster must be remote, got {:?}",
            lie.coord
        );
    }

    #[test]
    fn combined_splits_equally() {
        let (space, coords, errors, malicious) = fixture();
        let view = view_fixture(&space, &coords, &errors, &malicious);
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut coll = Collusion::new();
        let mut adv = VivaldiCombined::new();
        let attackers: Vec<usize> = (0..9).collect();
        adv.inject(&attackers, &mut coll, &view, &mut rng);
        assert_eq!(adv.class_sizes(), (3, 3, 3));
    }
}
