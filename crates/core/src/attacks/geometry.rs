//! Lie-consistency geometry shared by the attack strategies.
//!
//! The constraint every "consistent" lie must satisfy (paper §5.3.2,
//! fig. 17): a malicious node can freely choose the coordinates it reports
//! and can *add* delay to a probe, but can never make a probe faster than
//! the true RTT. A lie is consistent when the victim's measured RTT matches
//! the distance implied by the reported coordinates — then the victim's
//! fitting/sample error stays low and detection heuristics see nothing.

use rand::Rng;
use vcoord_space::{Coord, Space};

/// A consistent lie: coordinates to report plus the RTT the victim must be
/// made to measure. The caller turns the latter into a delay
/// (`needed_rtt − true_rtt`, clamped at zero by the simulator).
#[derive(Debug, Clone)]
pub struct ConsistentLie {
    /// Coordinates the attacker reports.
    pub coord: Coord,
    /// The RTT the victim should measure for the lie to be consistent.
    pub needed_rtt: f64,
}

/// Construct the Vivaldi *repulsion* lie (§5.3.2).
///
/// Goal: make `victim` (currently at `victim_pos`) relocate to `target`.
/// Vivaldi moves a sampled node *away* from the reported coordinate by
/// `δ · (rtt − dist)`; reporting the mirror point of `target` through
/// `victim_pos` and inflating the RTT to `d/δ + d` (the paper's formula,
/// with `d = ‖target − victim‖` and `δ = Cc` since the attacker also
/// reports a near-zero error to drive the victim's weight to ≈1) lands the
/// victim exactly on `target`.
pub fn repulsion_lie<R: Rng + ?Sized>(
    space: &Space,
    victim_pos: &Coord,
    target: &Coord,
    cc: f64,
    rng: &mut R,
) -> ConsistentLie {
    let d = space.distance(target, victim_pos).max(1e-6);
    // Unit direction victim → target; mirror the target through the victim.
    let u = space.direction(target, victim_pos, rng);
    let mut coord = victim_pos.clone();
    space.apply(&mut coord, &u, -d);
    let needed_rtt = d / cc.max(1e-6) + d;
    ConsistentLie { coord, needed_rtt }
}

/// Construct the NPS *anti-detection* lie (§5.4.2, fig. 17).
///
/// The mechanics of "lie consistently while inflating distances": the
/// attacker pretends to sit at a point `push_factor · d ≈ 199·d` away from
/// the victim's believed coordinates (`d` being its distance estimate) and
/// under-claims the RTT by a `margin` fraction of the implied coordinate
/// distance. The huge fake distance is the denominator of the victim's
/// fitting error, so an enormous *absolute* residual (the pull that drags
/// the victim) maps to a modest *relative* error that hides under the NPS
/// filter's `C · median` condition — this is the mechanical content of the
/// paper's push bound `d″ > (α + 1.99)/0.01 · d` (fig. 17): push far
/// enough and any fixed tolerance absorbs the attack.
///
/// * `victim_anchor` — the attacker's belief of the victim's coordinates
///   (true coordinates under knowledge; its own position as a fallback
///   anchor otherwise — anchor error then adds uncontrolled fitting error,
///   which is what gets guessing attackers caught in figures 20/22).
/// * `d_est` — the attacker's estimate of the victim distance (true RTT
///   under knowledge, one-way-timestamp estimate otherwise).
/// * `margin` — aggression: the fraction of the implied coordinate
///   distance by which the claimed RTT is under-stated. The victim-side
///   fitting error is `margin / (1 − margin)`; the filter only fires when
///   that exceeds `max(0.01, C · median)`, so with honest fitting errors
///   around 0.1–0.2 (C = 4 ⇒ bound ≈ 0.5–0.8) a margin of ~0.25 pulls with
///   ≈ `0.25 · push_factor · d ≈ 50·d` per round while staying under the
///   detection bound of a *converged* victim — and becomes ever safer as
///   the attack itself inflates the victim's median. This is the paper's
///   observation that the filter's median gets "skewed sufficiently that
///   malicious behaviour is assimilated to normal behaviour".
#[allow(clippy::too_many_arguments)] // the lie construction takes the full attack context
pub fn anti_detection_lie<R: Rng + ?Sized>(
    space: &Space,
    victim_anchor: &Coord,
    attacker_pos: &Coord,
    d_est: f64,
    push_factor: f64,
    margin: f64,
    direction_known: bool,
    rng: &mut R,
) -> ConsistentLie {
    let d = d_est.max(0.1);
    let push = push_factor.max(1.0) * d;
    let u = if direction_known {
        space.direction(attacker_pos, victim_anchor, rng)
    } else {
        space.random_unit(rng)
    };
    let mut coord = victim_anchor.clone();
    space.apply(&mut coord, &u, push);
    let implied = space.distance(victim_anchor, &coord);
    // Under-claim a fraction of the implied distance: a steady pull toward
    // the fake coordinate whose fitting error hides under the C·median
    // condition of the NPS filter.
    let needed_rtt = (implied * (1.0 - margin.clamp(0.0, 0.95))).max(d);
    ConsistentLie { coord, needed_rtt }
}

/// The paper's naive-attack bound (§5.4.2): for the victim's fitting error
/// to stay below 0.01, the pushed distance `d″` must exceed
/// `(α + 1.99)/0.01 · d`. Used to pick sane `push_factor` defaults and to
/// unit-test the lie construction.
pub fn naive_push_bound(alpha: f64) -> f64 {
    (alpha + 1.99) / 0.01
}

/// The sophisticated-attack victim cut (§5.4.3): with probe threshold `T`
/// and pushed distance `push_factor · d`, the measured RTT stays below `T`
/// only when `d < T / (push_factor + 1)` — 25 ms for the paper's parameters
/// (5 s threshold, push ≈ 199·d).
pub fn sophistication_cut_ms(probe_threshold_ms: f64, push_factor: f64) -> f64 {
    probe_threshold_ms / (push_factor + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;
    use vcoord_metrics::relative_error;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(3)
    }

    #[test]
    fn repulsion_lie_lands_victim_on_target() {
        // Simulate one Vivaldi update with the lie and check the victim
        // arrives at the target (weight ≈ 1 as the attacker reports ~zero
        // error).
        let space = Space::Euclidean(2);
        let victim = Coord::from_vec(vec![10.0, -5.0]);
        let target = Coord::from_vec(vec![500.0, 400.0]);
        let cc = 0.25;
        let lie = repulsion_lie(&space, &victim, &target, cc, &mut rng());

        // Reported coordinate is the mirror: ‖victim − coord‖ = d.
        let d = space.distance(&target, &victim);
        assert!((space.distance(&victim, &lie.coord) - d).abs() < 1e-6);
        assert!((lie.needed_rtt - (d / cc + d)).abs() < 1e-6);

        // Vivaldi step with weight 1: x += Cc · (rtt − dist) · u(x − x_lie).
        let mut moved = victim.clone();
        let dist = space.distance(&victim, &lie.coord);
        let u = space.direction(&victim, &lie.coord, &mut rng());
        space.apply(&mut moved, &u, cc * (lie.needed_rtt - dist));
        assert!(
            space.distance(&moved, &target) < 1e-6,
            "victim should land on target, ended {:?}",
            moved
        );
    }

    #[test]
    fn repulsion_lie_handles_coincident_victim_and_target() {
        let space = Space::Euclidean(2);
        let p = Coord::from_vec(vec![1.0, 1.0]);
        let lie = repulsion_lie(&space, &p, &p, 0.25, &mut rng());
        assert!(lie.coord.is_finite());
        assert!(lie.needed_rtt.is_finite() && lie.needed_rtt >= 0.0);
    }

    #[test]
    fn anti_detection_lie_is_consistent_under_knowledge() {
        // With full knowledge the victim's fitting error at its believed
        // position stays strictly under the 1% floor — condition (1) of the
        // NPS filter can then never fire on this reference — while the
        // residual still pulls with ≈ margin·1%·push力.
        let space = Space::Euclidean(8);
        let victim = Coord::from_vec(vec![10.0, 0.0, 5.0, 0.0, 0.0, 1.0, 0.0, 2.0]);
        let attacker = Coord::from_vec(vec![40.0, 10.0, 5.0, 0.0, 3.0, 1.0, 0.0, 2.0]);
        let d = space.distance(&victim, &attacker);
        let margin = 0.35;
        let lie = anti_detection_lie(
            &space,
            &victim,
            &attacker,
            d,
            199.0,
            margin,
            true,
            &mut rng(),
        );
        let implied = space.distance(&victim, &lie.coord);
        // Victim-side fitting error = margin/(1−margin) ≈ 0.54, which hides
        // under C·median for typical honest medians (4 × 0.15 = 0.6).
        let fit = (implied - lie.needed_rtt).abs() / lie.needed_rtt;
        assert!((fit - margin / (1.0 - margin)).abs() < 1e-9, "fit {fit}");
        assert!(lie.needed_rtt > 100.0 * d, "must actually push far");
        // Residual pull is enormous: margin · 199 · d.
        let residual = implied - lie.needed_rtt;
        assert!(
            residual > 50.0 * d,
            "pull {residual} should be ≈ 70·d (d = {d})"
        );
    }

    #[test]
    fn anti_detection_lie_without_knowledge_is_sloppier() {
        // Anchoring at the attacker itself with a random direction yields a
        // lie whose consistency *at the victim* carries the anchor error —
        // this is what gets guessing attackers caught (figures 20/22).
        let space = Space::Euclidean(2);
        let victim = Coord::from_vec(vec![0.0, 0.0]);
        let attacker = Coord::from_vec(vec![100.0, 0.0]);
        let d_est = 40.0; // bad estimate (true distance is 100)
        let mut r = rng();
        let margin = 0.35;
        let bound = margin / (1.0 - margin);
        let mut worse_than_oracle = 0;
        let trials = 200;
        for _ in 0..trials {
            let lie = anti_detection_lie(
                &space, &attacker, &attacker, d_est, 199.0, margin, false, &mut r,
            );
            let implied_at_victim = space.distance(&victim, &lie.coord);
            let fit = relative_error(lie.needed_rtt, implied_at_victim);
            if fit > bound + 1e-9 {
                worse_than_oracle += 1;
            }
            // Oracle-anchored lies sit exactly at the margin bound.
            let oracle = anti_detection_lie(
                &space, &victim, &attacker, 100.0, 199.0, margin, true, &mut r,
            );
            let oracle_fit =
                (space.distance(&victim, &oracle.coord) - oracle.needed_rtt) / oracle.needed_rtt;
            assert!(
                (oracle_fit - bound).abs() < 1e-9,
                "oracle lie fit {oracle_fit} != bound {bound}"
            );
        }
        // The anchor offset (≈100 ms) pushes a share of guessed lies above
        // the oracle bound — the knowledge effect of figures 20/22 (guessed
        // lies are additionally mis-aimed, halving their pull).
        assert!(
            worse_than_oracle > trials / 20,
            "guessed lies should sometimes exceed the bound: {worse_than_oracle}/{trials}"
        );
    }

    #[test]
    fn paper_bound_values() {
        assert!((naive_push_bound(2.0) - 399.0).abs() < 1e-9);
        // Paper: threshold 5 s and their α give d < 25 ms.
        let cut = sophistication_cut_ms(5_000.0, 199.0);
        assert!((cut - 25.0).abs() < 1e-9);
    }

    #[test]
    fn needed_rtt_never_below_estimate() {
        // The lie must be implementable by *delaying* (needed ≥ true d).
        let space = Space::Euclidean(3);
        let mut r = rng();
        for _ in 0..100 {
            let victim = space.random_coord(200.0, &mut r);
            let attacker = space.random_coord(200.0, &mut r);
            let d = space.distance(&victim, &attacker);
            let lie = anti_detection_lie(&space, &victim, &attacker, d, 50.0, 0.35, true, &mut r);
            assert!(lie.needed_rtt >= d - 1e-9);
        }
    }
}
