use vcoord::attacks::nps::NpsSimpleDisorder;
use vcoord::metrics::EvalPlan;
use vcoord::netsim::SeedStream;
use vcoord::nps::{NpsConfig, NpsSim};
use vcoord::topo::{KingLike, KingLikeConfig};

#[test]
#[ignore]
fn diag_disorder_filter() {
    let seeds = SeedStream::new(77);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(400)).generate(&mut seeds.rng("topo"));
    let mut sim = NpsSim::new(matrix, NpsConfig::default(), &seeds);
    sim.run_rounds(25);
    let plan = EvalPlan::new(&sim.eval_nodes(), &mut seeds.rng("plan"));
    let clean = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
    let l0 = sim.ledger();
    let attackers = sim.pick_attackers(0.2);
    sim.inject_adversary(&attackers, Box::new(NpsSimpleDisorder::default()));
    for k in 0..5 {
        sim.run_rounds(10);
        let plan2 = EvalPlan::new(&sim.eval_nodes(), &mut seeds.rng("plan"));
        let err = plan2.avg_error(sim.coords(), sim.space(), sim.matrix());
        let l = sim.ledger();
        let c = sim.counters();
        println!("round +{}: err={:.2} (clean {:.2}) filter_mal={} filter_hon={} threshold={} skipped={}",
            (k+1)*10, err, clean,
            l.filtered_malicious - l0.filtered_malicious,
            l.filtered_honest - l0.filtered_honest,
            sim.threshold_ledger().total(), c.skipped_rounds);
    }
}
