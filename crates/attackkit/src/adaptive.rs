//! Defense-aware adaptive strategies — the attacker side of the arms race.
//!
//! PR 4's defensekit closed the loop the paper opens in §6: filters that
//! reject implausible updates. The frog-boiling line of work (Chan-Tin et
//! al., and the eclipse-style adaptive adversaries of *Total Eclipse of the
//! Heart*) shows what happens next: static thresholds invite adversaries
//! who calibrate to them. This module supplies those adversaries:
//!
//! * [`DefenseModel`] — the attacker's *belief* about the deployed defense
//!   (drift-cap bound, MAD sensitivity, trusted-baseline percentile). The
//!   model is knowledge the arms race hands every serious adversary: the
//!   detector's algorithm and default thresholds are public (published
//!   code, observable behaviour), even when the concrete deployment tuned
//!   them — which is exactly what the `arms-evasion-roc` sweep probes by
//!   deploying caps the model did *not* anticipate.
//! * [`EvadingFrogBoil`] — frog-boiling that modulates its per-round
//!   displacement to keep the vector mean pull each colluder exerts
//!   *strictly under* the modeled drift cap, advancing only when its
//!   victims have caught up enough to re-open headroom.
//! * [`ThresholdProbe`] — reconnaissance: binary-searches the deployed
//!   filter's rejection boundary on the relative residual, driven by the
//!   [`AttackStrategy::feedback`] channel (which lies got flagged).
//! * [`CapLearner`] — the same bracket-halving recon, turned inward:
//!   [`EvadingFrogBoil::learning`] refines its *own* modeled drift cap
//!   online from first-flag evidence, so a mis-modeled deployment stops
//!   being a mass ban and becomes a few sacrificial probes.
//! * [`SleeperCollusion`] — behaves honestly until reputation accrues,
//!   then attacks in bursts timed to the defense's forgiveness windows —
//!   the adversary that makes permanent-vs-decaying bans a real trade-off.
//!
//! All three honour the delay-only threat model and add no probe delay.

use crate::collusion::Collusion;
use crate::strategies::drifted;
use crate::strategy::{AttackStrategy, CoordView, Lie, Probe};
use rand_chacha::ChaCha12Rng;
use vcoord_space::Coord;

/// Reported error estimate driving a Vivaldi victim's sample weight toward
/// 1; ignored by NPS (same convention as the non-adaptive strategies).
const LIE_ERROR: f64 = 0.01;

/// The attacker's belief about the deployed defense.
///
/// Defaults mirror the workspace-default detectors (the `def-roc` corner
/// cap, the MAD filter's `k`, the trusted baseline's quantile): the
/// adversary assumes the defender deployed the published configuration.
/// [`DefenseModel::safety_margin`] is the fraction of the modeled bound the
/// attacker is willing to occupy — headroom against the model being
/// slightly wrong (embedding noise, a re-tuned deployment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseModel {
    /// Modeled drift-cap bound: largest sustained vector mean pull (ms per
    /// sample) a neighbor may exert before being banned.
    pub drift_cap_ms: f64,
    /// Modeled MAD-filter multiplier `k` (relative-residual units).
    pub mad_k: f64,
    /// Modeled trusted-baseline upper quantile.
    pub trusted_quantile: f64,
    /// Fraction of the modeled bound the attacker occupies (in `(0, 1]`).
    pub safety_margin: f64,
}

impl Default for DefenseModel {
    fn default() -> Self {
        DefenseModel {
            drift_cap_ms: 80.0,
            mad_k: 3.0,
            trusted_quantile: 0.9,
            safety_margin: 0.8,
        }
    }
}

impl DefenseModel {
    /// A model of a drift cap at `cap_ms` with the default margin.
    pub fn drift_cap(cap_ms: f64) -> DefenseModel {
        DefenseModel {
            drift_cap_ms: cap_ms,
            ..DefenseModel::default()
        }
    }

    /// The pull budget the attacker allows itself: `margin × modeled cap`.
    pub fn evasion_budget_ms(&self) -> f64 {
        self.safety_margin.clamp(0.0, 1.0) * self.drift_cap_ms
    }
}

/// Online drift-cap learner: turns the arms-race feedback channel into a
/// running bisection on the *deployed* drift cap, so an
/// [`EvadingFrogBoil`] whose modeled cap is wrong converges onto the real
/// one instead of feeding every colluder into a ban it believes cannot
/// happen.
///
/// Evidence comes in two kinds, mirroring [`ThresholdProbe`]'s bracket:
///
/// * **First flags** — a colluder's sample rejected for the first time.
///   The deployed cap sits at or below the pull the colluders were
///   exerting, so the upper bracket drops to that pull. Only the *first*
///   flag per colluder is informative: the drift cap bans permanently,
///   and every later rejection of the same colluder merely re-states the
///   old evidence.
/// * **Clean patience windows** — [`CapLearner::patience`] consecutive
///   rounds without a fresh flag. The pull sustained across the window
///   outlived the defense's evidence window without a ban, so the lower
///   bracket rises to it.
///
/// The believed cap is the bracket midpoint once a flag has bounded it
/// from above; until then the configured model stands, so a learner
/// facing a correctly-modeled (or laxer) deployment behaves exactly like
/// the fixed-model evader.
#[derive(Debug, Clone)]
pub struct CapLearner {
    /// Rounds without a fresh flag before the sustained pull is accepted
    /// as proven-safe. Sized past the drift cap's default evidence window
    /// (16 residuals at roughly one inspection per round): a shorter
    /// window would promote pulls the defense simply had not finished
    /// judging.
    pub patience: u64,
    /// Largest sustained pull proven safe so far (ms).
    lo: f64,
    /// Smallest pull observed to draw a ban (`f64::INFINITY` until one).
    hi: f64,
    clean_rounds: u64,
    flagged: std::collections::HashSet<usize>,
    first_flags: u64,
}

impl Default for CapLearner {
    fn default() -> Self {
        CapLearner::new(20)
    }
}

impl CapLearner {
    /// A fresh learner with the given patience window.
    pub fn new(patience: u64) -> CapLearner {
        CapLearner {
            patience: patience.max(1),
            lo: 0.0,
            hi: f64::INFINITY,
            clean_rounds: 0,
            flagged: std::collections::HashSet::new(),
            first_flags: 0,
        }
    }

    /// Current bracket `(lo, hi)` on the deployed cap, in ms of pull.
    pub fn bracket(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// First flags absorbed so far (distinct colluders banned).
    pub fn first_flags(&self) -> u64 {
        self.first_flags
    }

    /// One round passed; `sustained` is the worst pull the colluders held
    /// through it. After a full clean patience window that pull is
    /// proven safe and becomes the lower bracket.
    pub fn observe_round(&mut self, sustained: f64) {
        self.clean_rounds += 1;
        if self.clean_rounds < self.patience {
            return;
        }
        self.clean_rounds = 0;
        if sustained.is_finite() && sustained > self.lo && sustained < self.hi {
            self.lo = sustained;
        }
    }

    /// A sample of `attacker` was rejected while the colluders exerted an
    /// estimated worst pull of `pull`. Returns whether this was a first
    /// flag (informative evidence) rather than a permanent ban re-firing.
    pub fn observe_flag(&mut self, attacker: usize, pull: f64) -> bool {
        if !self.flagged.insert(attacker) {
            return false;
        }
        self.first_flags += 1;
        self.clean_rounds = 0;
        if pull.is_finite() && pull > 0.0 && pull < self.hi {
            if pull <= self.lo {
                // Contradicts a pull we had promoted to proven-safe: the
                // estimate was noisy or the window had not filled. Hard
                // evidence (a ban) outranks soft evidence — re-learn the
                // floor.
                self.lo = 0.0;
            }
            self.hi = pull;
        }
        true
    }

    /// Current belief about the deployed cap: the bracket midpoint once a
    /// flag bounded it above, otherwise the configured model `fallback`.
    pub fn believed_cap(&self, fallback: f64) -> f64 {
        if self.hi.is_finite() {
            0.5 * (self.lo + self.hi)
        } else {
            fallback
        }
    }
}

/// Norm of the mean pull `attacker`'s current lie exerts on `victims`, as
/// the attacker itself can estimate it.
///
/// The RTT proxy is the distance between the *converged* coordinates the
/// attacker snapshotted at injection time (`init`): a converged embedding
/// predicts RTTs to within its relative error, the snapshot is immutable
/// (like the RTTs themselves), and — critically — the estimate tracks the
/// gap *closing* as dragged victims move: `predicted` uses the victims'
/// current coordinates, so the estimated residual decays exactly when the
/// real one does, re-opening headroom for the next advance.
fn estimated_pull_norm(
    view: &CoordView<'_>,
    init: &[Coord],
    attacker: usize,
    reported: &Coord,
    victims: &[usize],
) -> f64 {
    let dims = reported.vec.len();
    let mut acc = vec![0.0f64; dims + 1];
    let mut counted = 0usize;
    for &v in victims {
        let rtt_est = view.space.distance(&init[v], &init[attacker]);
        let predicted = view.space.distance(&view.coords[v], reported);
        let residual = rtt_est - predicted;
        // Pull direction: u(observer − reported) under the height-model
        // norm (heights add), matching the defense's bookkeeping. Two
        // passes over the components — norm first, then accumulate scaled
        // directly into `acc` — so the per-victim loop allocates nothing.
        let observer = &view.coords[v];
        let mut sq = 0.0;
        for (a, b) in observer.vec.iter().zip(&reported.vec) {
            let c = a - b;
            sq += c * c;
        }
        let height = observer.height + reported.height;
        let norm = sq.sqrt() + height;
        if norm > f64::EPSILON {
            let s = residual / norm;
            for (slot, (a, b)) in acc.iter_mut().zip(observer.vec.iter().zip(&reported.vec)) {
                *slot += (a - b) * s;
            }
            acc[dims] += height * s;
        }
        counted += 1;
    }
    if counted == 0 {
        return 0.0;
    }
    let n = counted as f64;
    acc.iter().map(|a| (a / n) * (a / n)).sum::<f64>().sqrt()
}

/// Up to `cap` ids evenly strided across `ids` (deterministic coverage
/// without an RNG draw).
fn strided_sample(ids: &[usize], cap: usize) -> Vec<usize> {
    if ids.len() <= cap {
        return ids.to_vec();
    }
    let stride = ids.len() as f64 / cap as f64;
    (0..cap)
        .map(|k| ids[(k as f64 * stride) as usize])
        .collect()
}

/// *Evading frog-boiling*: the classic coherent drift, throttled against a
/// [`DefenseModel`] so each colluder's estimated vector mean pull stays
/// strictly under the modeled drift cap.
///
/// The classic attack advances its offset every round regardless of
/// whether the victims keep up; the lag between offset and victim drift is
/// the sustained pull the drift cap bans on. This variant advances *only
/// when the estimated pull plus one more step still fits inside
/// [`DefenseModel::evasion_budget_ms`]*, and holds otherwise — victims
/// catch up, the gap re-closes, and the drift resumes. Against a deployed
/// cap at (or above) the modeled bound it is never banned, and the
/// integrated displacement is unbounded: slower than the classic frog, but
/// invisible to the detector that kills the classic frog outright.
#[derive(Debug, Clone)]
pub struct EvadingFrogBoil {
    /// Largest per-round offset advance, ms — the same detectability
    /// budget knob as [`FrogBoiling::step`](crate::FrogBoiling::step), for
    /// matched-budget comparisons.
    pub step: f64,
    /// The attacker's belief about the deployed defense.
    pub model: DefenseModel,
    /// Error estimate reported with every lie.
    pub lie_error: f64,
    /// Honest victims sampled for the pull estimate each round.
    pub victim_sample: usize,
    /// Colluders sampled for the worst-case pull estimate each round.
    pub attacker_sample: usize,
    /// Converged coordinates snapshotted at injection (the RTT proxy).
    init_coords: Vec<Coord>,
    /// The sampled honest victims (fixed at injection).
    victims: Vec<usize>,
    /// The sampled colluders (fixed at injection).
    sampled_attackers: Vec<usize>,
    /// Rounds the throttle held (diagnostics).
    held_rounds: u64,
    /// Online cap learner; `None` means the model is taken on faith.
    learner: Option<CapLearner>,
    /// Worst pull estimate from the latest round — the evidence level a
    /// first flag is attributed to (feedback carries no coordinate view).
    last_worst_pull: f64,
}

impl EvadingFrogBoil {
    /// Evade `model` while drifting up to `step` ms per round.
    pub fn new(step: f64, model: DefenseModel) -> EvadingFrogBoil {
        EvadingFrogBoil {
            step,
            model,
            lie_error: LIE_ERROR,
            victim_sample: 32,
            attacker_sample: 16,
            init_coords: Vec::new(),
            victims: Vec::new(),
            sampled_attackers: Vec::new(),
            held_rounds: 0,
            learner: None,
            last_worst_pull: 0.0,
        }
    }

    /// Evade `model` while *refining* its drift cap online: first-flag
    /// feedback and clean patience windows drive a [`CapLearner`] whose
    /// believed cap replaces [`DefenseModel::drift_cap_ms`] every round.
    /// Until the first flag the behaviour is exactly [`EvadingFrogBoil::new`]'s.
    pub fn learning(step: f64, model: DefenseModel) -> EvadingFrogBoil {
        EvadingFrogBoil {
            learner: Some(CapLearner::default()),
            ..EvadingFrogBoil::new(step, model)
        }
    }

    /// The online cap learner, when built via [`EvadingFrogBoil::learning`].
    pub fn learner(&self) -> Option<&CapLearner> {
        self.learner.as_ref()
    }

    /// Rounds the throttle held the offset so far.
    pub fn held_rounds(&self) -> u64 {
        self.held_rounds
    }

    /// Worst estimated per-colluder mean pull at the current offset, as
    /// the attacker computes it (exposed for the evasion property tests).
    pub fn worst_estimated_pull(&self, collusion: &Collusion, view: &CoordView<'_>) -> f64 {
        let mut worst = 0.0f64;
        for &a in &self.sampled_attackers {
            let Some(group) = collusion.group_for(a) else {
                continue;
            };
            let reported = drifted(view, a, &group.axis, group.offset);
            let pull = estimated_pull_norm(view, &self.init_coords, a, &reported, &self.victims);
            worst = worst.max(pull);
        }
        worst
    }
}

impl Default for EvadingFrogBoil {
    fn default() -> Self {
        // Matched budget with FrogBoiling::default() (5 ms/round) against
        // the workspace-default drift cap model.
        EvadingFrogBoil::new(5.0, DefenseModel::default())
    }
}

impl AttackStrategy for EvadingFrogBoil {
    fn inject(
        &mut self,
        attackers: &[usize],
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        collusion.form_groups(attackers, 1, view, rng);
        // Snapshot the converged map: the attacker's immutable RTT proxy.
        self.init_coords = view.coords.to_vec();
        self.victims = strided_sample(&view.honest_nodes(), self.victim_sample.max(1));
        self.sampled_attackers = strided_sample(attackers, self.attacker_sample.max(1));
    }

    fn on_round(
        &mut self,
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) {
        let worst = self.worst_estimated_pull(collusion, view);
        self.last_worst_pull = worst;
        if let Some(learner) = self.learner.as_mut() {
            // No fresh flag reached `feedback` since the last round (a
            // flag would have zeroed the clean streak), so this round
            // counts toward the patience window at the sustained pull.
            learner.observe_round(worst);
            self.model.drift_cap_ms = learner.believed_cap(self.model.drift_cap_ms);
        }
        if worst + self.step <= self.model.evasion_budget_ms() {
            collusion.advance_all(self.step, f64::INFINITY);
            if vcoord_obs::enabled() {
                let offset = collusion.groups().first().map_or(0.0, |g| g.offset);
                vcoord_obs::event(
                    vcoord_obs::metric_id!("attack.offset_advance"),
                    view.round,
                    vcoord_obs::NO_NODE,
                    offset,
                );
            }
        } else {
            // Hold: let the dragged victims close the gap before pulling
            // again. This is the whole evasion — the classic frog would
            // advance here and let the lag integrate past the cap.
            self.held_rounds += 1;
        }
    }

    fn respond(
        &mut self,
        probe: &Probe,
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        let group = collusion.group_for(probe.attacker)?;
        let coord = drifted(view, probe.attacker, &group.axis, group.offset);
        Some(Lie {
            coord,
            error: self.lie_error,
            delay_ms: 0.0,
        })
    }

    fn feedback(
        &mut self,
        attacker: usize,
        _victim: usize,
        flagged: bool,
        _collusion: &mut Collusion,
    ) {
        if !flagged {
            return;
        }
        let Some(learner) = self.learner.as_mut() else {
            return;
        };
        learner.observe_flag(attacker, self.last_worst_pull);
        self.model.drift_cap_ms = learner.believed_cap(self.model.drift_cap_ms);
    }

    fn label(&self) -> &'static str {
        if self.learner.is_some() {
            "evading-frog-learn"
        } else {
            "evading-frog"
        }
    }
}

/// *Threshold probe*: reconnaissance that binary-searches the deployed
/// filter's rejection boundary on the relative residual.
///
/// Each probe response claims a position exactly `rtt · (1 + guess)` away
/// from the victim's current coordinate (which the knowledge oracle
/// provides), so the victim-side relative residual of the lie *is* the
/// current guess. The [`AttackStrategy::feedback`] channel reports which
/// lies were flagged; once per round the bracket halves — flagged rounds
/// lower the upper bound, clean rounds raise the lower one. After `k`
/// informative rounds the boundary is pinned to `(hi − lo) / 2^k`.
#[derive(Debug, Clone)]
pub struct ThresholdProbe {
    /// Lower bracket: a relative residual known (assumed) to pass.
    pub lo: f64,
    /// Upper bracket: a relative residual known (assumed) to be rejected.
    pub hi: f64,
    /// Error estimate reported with every lie.
    pub lie_error: f64,
    guess: f64,
    flagged_this_round: bool,
    responses_this_round: u32,
    informative_rounds: u64,
}

impl ThresholdProbe {
    /// Search the boundary inside `[lo, hi]` (relative-residual units).
    pub fn new(lo: f64, hi: f64) -> ThresholdProbe {
        let lo = lo.max(0.0);
        let hi = hi.max(lo + f64::EPSILON);
        ThresholdProbe {
            lo,
            hi,
            lie_error: LIE_ERROR,
            guess: 0.5 * (lo + hi),
            flagged_this_round: false,
            responses_this_round: 0,
            informative_rounds: 0,
        }
    }

    /// Current estimate of the rejection boundary.
    pub fn estimate(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Rounds in which at least one probe answer produced feedback.
    pub fn informative_rounds(&self) -> u64 {
        self.informative_rounds
    }
}

impl Default for ThresholdProbe {
    fn default() -> Self {
        // Bracket below the MAD filter's unconditional hard-reject bound
        // (5.0): the interesting boundary is the adaptive one under it.
        ThresholdProbe::new(0.0, 4.0)
    }
}

impl AttackStrategy for ThresholdProbe {
    fn on_round(
        &mut self,
        _collusion: &mut Collusion,
        _view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) {
        if self.responses_this_round == 0 {
            return; // no feedback arrived: keep the bracket
        }
        if self.flagged_this_round {
            self.hi = self.guess;
        } else {
            self.lo = self.guess;
        }
        self.guess = 0.5 * (self.lo + self.hi);
        self.flagged_this_round = false;
        self.responses_this_round = 0;
        self.informative_rounds += 1;
    }

    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        // Claim a position at distance rtt · (1 + guess) from the victim,
        // along the victim→attacker ray: the victim-side relative residual
        // |predicted − rtt| / rtt of this lie is exactly `guess`.
        let victim = &view.coords[probe.victim];
        let truth = &view.coords[probe.attacker];
        let dir = view.space.direction(truth, victim, rng);
        let mut coord = victim.clone();
        view.space
            .apply(&mut coord, &dir, probe.rtt * (1.0 + self.guess));
        Some(Lie {
            coord,
            error: self.lie_error,
            delay_ms: 0.0,
        })
    }

    fn feedback(
        &mut self,
        _attacker: usize,
        _victim: usize,
        flagged: bool,
        _collusion: &mut Collusion,
    ) {
        self.responses_this_round += 1;
        self.flagged_this_round |= flagged;
    }

    fn label(&self) -> &'static str {
        "threshold-probe"
    }
}

/// Where a [`SleeperCollusion`] attacker currently is in its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleeperPhase {
    /// Accruing reputation: every probe answered honestly.
    Sleep,
    /// Attacking: coherent drift at full step.
    Burst,
    /// Recovering: honest again, waiting out the defense's forgiveness
    /// window.
    Rest,
}

/// *Sleeper collusion*: honest until reputation accrues, then attack in
/// bursts timed to the defense's decay windows.
///
/// Against a permanently-banning drift cap the first burst is the last —
/// every subsequent burst is pre-banned, and the attack is expensive
/// recon. Against a cap with reputation decay, each rest phase (sized to
/// the modeled half-life) buys the colluders re-admission, and the bursts
/// repeat indefinitely: this is the adversary that makes the
/// `arms-decay-tradeoff` sweep a real trade-off rather than a free win for
/// forgiveness.
#[derive(Debug, Clone)]
pub struct SleeperCollusion {
    /// Rounds of honest behaviour after injection (reputation accrual).
    pub sleep_rounds: u64,
    /// Rounds of coherent drift per burst.
    pub burst_rounds: u64,
    /// Honest rounds between bursts — size this to the modeled ban
    /// half-life so re-admission lands just before the next burst.
    pub rest_rounds: u64,
    /// Per-round drift during a burst, ms (deliberately loud: the sleeper
    /// relies on forgiveness, not stealth).
    pub step: f64,
    /// Error estimate reported with every lie.
    pub lie_error: f64,
    rounds: u64,
    in_burst: bool,
    bursts_started: u64,
}

impl SleeperCollusion {
    /// Sleep, then cycle `burst_rounds` of drift with `rest_rounds` of
    /// honesty.
    pub fn new(sleep_rounds: u64, burst_rounds: u64, rest_rounds: u64) -> SleeperCollusion {
        SleeperCollusion {
            sleep_rounds,
            burst_rounds: burst_rounds.max(1),
            rest_rounds: rest_rounds.max(1),
            step: 25.0,
            lie_error: LIE_ERROR,
            rounds: 0,
            in_burst: false,
            bursts_started: 0,
        }
    }

    /// The current phase of the cycle.
    pub fn phase(&self) -> SleeperPhase {
        if self.rounds < self.sleep_rounds {
            return SleeperPhase::Sleep;
        }
        let pos = (self.rounds - self.sleep_rounds) % (self.burst_rounds + self.rest_rounds);
        if pos < self.burst_rounds {
            SleeperPhase::Burst
        } else {
            SleeperPhase::Rest
        }
    }

    /// Bursts begun so far.
    pub fn bursts_started(&self) -> u64 {
        self.bursts_started
    }
}

impl Default for SleeperCollusion {
    fn default() -> Self {
        // Sleep past the drift cap's evidence window, burst for roughly
        // one window, rest for the arms-decay-tradeoff's middle half-life.
        SleeperCollusion::new(30, 12, 60)
    }
}

impl AttackStrategy for SleeperCollusion {
    fn inject(
        &mut self,
        attackers: &[usize],
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        collusion.form_groups(attackers, 1, view, rng);
    }

    fn on_round(
        &mut self,
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) {
        self.rounds += 1;
        if self.phase() != SleeperPhase::Burst {
            self.in_burst = false;
            return;
        }
        if !self.in_burst {
            // Fresh burst (detected as the phase edge, so a zero-sleep
            // config counts its first burst too): restart the drift from
            // the truth — resuming from the previous burst's accumulated
            // offset would open a huge instantaneous residual that any
            // magnitude filter kills.
            self.in_burst = true;
            for g in collusion.groups_mut() {
                g.offset = 0.0;
            }
            self.bursts_started += 1;
        }
        collusion.advance_all(self.step, f64::INFINITY);
        if vcoord_obs::enabled() {
            let offset = collusion.groups().first().map_or(0.0, |g| g.offset);
            vcoord_obs::event(
                vcoord_obs::metric_id!("attack.offset_advance"),
                view.round,
                vcoord_obs::NO_NODE,
                offset,
            );
        }
    }

    fn respond(
        &mut self,
        probe: &Probe,
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        if self.phase() != SleeperPhase::Burst {
            return None; // honest: reputation accrual / recovery
        }
        let group = collusion.group_for(probe.attacker)?;
        let coord = drifted(view, probe.attacker, &group.axis, group.offset);
        Some(Lie {
            coord,
            error: self.lie_error,
            delay_ms: 0.0,
        })
    }

    fn label(&self) -> &'static str {
        "sleeper-collusion"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Protocol;
    use rand::SeedableRng;
    use vcoord_space::Space;

    struct Fixture {
        space: Space,
        coords: Vec<Coord>,
        malicious: Vec<bool>,
    }

    fn fixture(n: usize, attackers: usize) -> Fixture {
        let space = Space::Euclidean(2);
        let coords: Vec<Coord> = (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                Coord::from_vec(vec![120.0 * a.cos(), 120.0 * a.sin()])
            })
            .collect();
        let mut malicious = vec![true; attackers];
        malicious.extend(vec![false; n - attackers]);
        Fixture {
            space,
            coords,
            malicious,
        }
    }

    fn view_at(f: &Fixture, round: u64) -> CoordView<'_> {
        CoordView {
            space: &f.space,
            coords: &f.coords,
            errors: &[],
            layer: &[],
            malicious: &f.malicious,
            is_ref: &[],
            round,
            now_ms: round * 1000,
            params: Protocol::default(),
        }
    }

    fn probe(attacker: usize, victim: usize, rtt: f64) -> Probe {
        Probe {
            attacker,
            victim,
            rtt,
        }
    }

    #[test]
    fn defense_model_budget_applies_margin() {
        let m = DefenseModel::default();
        assert_eq!(m.drift_cap_ms, 80.0);
        assert!((m.evasion_budget_ms() - 64.0).abs() < 1e-12);
        let tight = DefenseModel::drift_cap(40.0);
        assert!((tight.evasion_budget_ms() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn evading_frog_advances_until_budget_then_holds() {
        let f = fixture(24, 6);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut coll = Collusion::new();
        let mut adv = EvadingFrogBoil::new(10.0, DefenseModel::drift_cap(50.0));
        adv.inject(&[0, 1, 2, 3, 4, 5], &mut coll, &view_at(&f, 0), &mut rng);

        // Victims never move in this static fixture, so the estimated pull
        // tracks the raw offset: the throttle must stop the advance before
        // the 0.8 × 50 = 40 ms budget and hold from then on.
        for r in 1..=20 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
        }
        let offset = coll.groups()[0].offset;
        assert!(offset > 0.0, "the evader must still attack");
        let worst = adv.worst_estimated_pull(&coll, &view_at(&f, 20));
        assert!(
            worst < 50.0 * 0.8 + 1e-9,
            "estimated pull {worst:.1} must stay under the budget"
        );
        assert!(adv.held_rounds() > 0, "the throttle must have engaged");
        // And it still lies with the drifted coordinate, no delay.
        let lie = adv
            .respond(&probe(0, 10, 90.0), &mut coll, &view_at(&f, 20), &mut rng)
            .unwrap();
        assert_eq!(lie.delay_ms, 0.0);
        let moved = f.space.distance(&lie.coord, &f.coords[0]);
        assert!((moved - offset).abs() < 1e-9);
    }

    #[test]
    fn evading_frog_resumes_when_victims_catch_up() {
        let mut f = fixture(24, 6);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut coll = Collusion::new();
        let mut adv = EvadingFrogBoil::new(10.0, DefenseModel::drift_cap(50.0));
        adv.inject(&[0, 1, 2, 3, 4, 5], &mut coll, &view_at(&f, 0), &mut rng);
        for r in 1..=10 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
        }
        let stalled = coll.groups()[0].offset;
        // Teleport every honest victim along the collusion axis — the
        // dragged-population state the throttle is waiting for.
        let axis = coll.groups()[0].axis.clone();
        for i in 6..24 {
            f.space.apply(&mut f.coords[i], &axis, stalled);
        }
        for r in 11..=13 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
        }
        assert!(
            coll.groups()[0].offset > stalled,
            "headroom re-opened: the drift must resume ({} -> {})",
            stalled,
            coll.groups()[0].offset
        );
    }

    #[test]
    fn cap_learner_bisects_toward_the_deployed_cap() {
        let mut l = CapLearner::new(2);
        assert_eq!(l.bracket(), (0.0, f64::INFINITY));
        // Unbounded above: the configured model stands.
        assert_eq!(l.believed_cap(80.0), 80.0);
        // Two clean rounds at 30 ms sustained: proven safe.
        l.observe_round(30.0);
        l.observe_round(30.0);
        assert_eq!(l.bracket().0, 30.0);
        // First flag at a worst pull of 70 ms bounds the cap above.
        assert!(l.observe_flag(0, 70.0));
        assert_eq!(l.bracket(), (30.0, 70.0));
        assert_eq!(l.believed_cap(80.0), 50.0);
        // The same colluder re-flagging (permanent ban) is not evidence.
        assert!(!l.observe_flag(0, 55.0));
        assert_eq!(l.bracket(), (30.0, 70.0));
        // A different colluder's first flag tightens the top.
        assert!(l.observe_flag(1, 60.0));
        assert_eq!(l.bracket(), (30.0, 60.0));
        assert_eq!(l.believed_cap(80.0), 45.0);
        assert_eq!(l.first_flags(), 2);
        // A flag below the proven-safe floor resets the floor: hard
        // evidence outranks soft.
        assert!(l.observe_flag(2, 25.0));
        assert_eq!(l.bracket(), (0.0, 25.0));
    }

    #[test]
    fn learning_evader_cuts_its_budget_on_first_flag_feedback() {
        let f = fixture(24, 6);
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        let mut coll = Collusion::new();
        // Modeled cap 80 ms: budget 64. Suppose the deployment is tighter.
        let mut adv = EvadingFrogBoil::learning(10.0, DefenseModel::drift_cap(80.0));
        adv.inject(&[0, 1, 2, 3, 4, 5], &mut coll, &view_at(&f, 0), &mut rng);
        for r in 1..=4 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
        }
        let offset_before = coll.groups()[0].offset;
        assert!(offset_before >= 40.0, "the mis-modeled evader advances");
        // A colluder gets banned: the bracket closes over the pull level
        // the colluders were exerting, and the budget collapses under it.
        adv.feedback(0, 10, true, &mut coll);
        let learned = adv.model.drift_cap_ms;
        assert!(
            learned < 80.0,
            "believed cap must drop below the model: {learned}"
        );
        assert!(adv.model.evasion_budget_ms() < adv.last_worst_pull);
        // Subsequent rounds hold instead of feeding more colluders in.
        for r in 5..=10 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
        }
        assert_eq!(coll.groups()[0].offset, offset_before, "throttle holds");
        assert_eq!(adv.learner().unwrap().first_flags(), 1);
        // A fixed-model twin keeps advancing at the same point in time.
        let mut coll2 = Collusion::new();
        let mut fixed = EvadingFrogBoil::new(10.0, DefenseModel::drift_cap(80.0));
        fixed.inject(&[0, 1, 2, 3, 4, 5], &mut coll2, &view_at(&f, 0), &mut rng);
        for r in 1..=10 {
            fixed.on_round(&mut coll2, &view_at(&f, r), &mut rng);
        }
        assert!(coll2.groups()[0].offset > offset_before);
    }

    #[test]
    fn threshold_probe_lie_encodes_the_guess() {
        let f = fixture(16, 2);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut coll = Collusion::new();
        let mut adv = ThresholdProbe::new(0.0, 2.0);
        let rtt = 80.0;
        let lie = adv
            .respond(&probe(0, 5, rtt), &mut coll, &view_at(&f, 0), &mut rng)
            .unwrap();
        let predicted = f.space.distance(&f.coords[5], &lie.coord);
        let rel = (predicted - rtt).abs() / rtt;
        assert!(
            (rel - adv.estimate()).abs() < 1e-9,
            "lie must realize the current guess: rel {rel} vs guess {}",
            adv.estimate()
        );
    }

    #[test]
    fn threshold_probe_binary_search_converges() {
        // Synthetic boundary: the defense flags any relative residual
        // above 0.73. Drive respond/feedback/on_round cycles and check the
        // estimate lands within 10 % of the truth.
        let f = fixture(16, 2);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut coll = Collusion::new();
        let mut adv = ThresholdProbe::new(0.0, 4.0);
        let boundary = 0.73;
        let rtt = 100.0;
        for round in 0..30u64 {
            let lie = adv
                .respond(&probe(0, 5, rtt), &mut coll, &view_at(&f, round), &mut rng)
                .unwrap();
            let predicted = f.space.distance(&f.coords[5], &lie.coord);
            let rel = (predicted - rtt).abs() / rtt;
            adv.feedback(0, 5, rel > boundary, &mut coll);
            adv.on_round(&mut coll, &view_at(&f, round + 1), &mut rng);
        }
        let est = adv.estimate();
        assert!(
            (est - boundary).abs() / boundary < 0.10,
            "estimate {est:.3} must be within 10% of {boundary}"
        );
        assert!(adv.informative_rounds() >= 20);
    }

    #[test]
    fn sleeper_cycles_through_phases_and_resets_bursts() {
        let f = fixture(20, 4);
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut coll = Collusion::new();
        let mut adv = SleeperCollusion::new(5, 3, 4);
        adv.inject(&[0, 1, 2, 3], &mut coll, &view_at(&f, 0), &mut rng);
        assert_eq!(adv.phase(), SleeperPhase::Sleep);
        // Sleep: honest responses.
        for r in 1..=4 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
            assert!(adv
                .respond(&probe(0, 10, 90.0), &mut coll, &view_at(&f, r), &mut rng)
                .is_none());
        }
        // Round 5 begins the first burst (offset restarts from 0, then
        // advances by step).
        adv.on_round(&mut coll, &view_at(&f, 5), &mut rng);
        assert_eq!(adv.phase(), SleeperPhase::Burst);
        assert_eq!(adv.bursts_started(), 1);
        assert_eq!(coll.groups()[0].offset, 25.0);
        assert!(adv
            .respond(&probe(0, 10, 90.0), &mut coll, &view_at(&f, 5), &mut rng)
            .is_some());
        // Through the burst and into rest: honest again.
        for r in 6..=8 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
        }
        assert_eq!(adv.phase(), SleeperPhase::Rest);
        assert!(adv
            .respond(&probe(0, 10, 90.0), &mut coll, &view_at(&f, 8), &mut rng)
            .is_none());
        // Next cycle: a fresh burst restarts the offset.
        for r in 9..=12 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
        }
        assert_eq!(adv.phase(), SleeperPhase::Burst);
        assert_eq!(adv.bursts_started(), 2);
        assert_eq!(coll.groups()[0].offset, 25.0, "burst restarts from truth");
    }

    #[test]
    fn sleeper_with_zero_sleep_counts_its_first_burst() {
        let f = fixture(20, 4);
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut coll = Collusion::new();
        let mut adv = SleeperCollusion::new(0, 4, 4);
        adv.inject(&[0, 1, 2, 3], &mut coll, &view_at(&f, 0), &mut rng);
        adv.on_round(&mut coll, &view_at(&f, 1), &mut rng);
        assert_eq!(adv.phase(), SleeperPhase::Burst);
        assert_eq!(adv.bursts_started(), 1, "the first burst must be counted");
        assert_eq!(coll.groups()[0].offset, 25.0);
        // Through rest and into the second burst.
        for r in 2..=9 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
        }
        assert_eq!(adv.bursts_started(), 2);
    }

    #[test]
    fn adaptive_strategies_never_delay_probes() {
        let f = fixture(20, 4);
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        let attackers = [0usize, 1, 2, 3];
        let mut all: Vec<Box<dyn AttackStrategy>> = vec![
            Box::new(EvadingFrogBoil::default()),
            Box::new(ThresholdProbe::default()),
            Box::new(SleeperCollusion::new(0, 4, 4)),
        ];
        for adv in all.iter_mut() {
            let mut coll = Collusion::new();
            adv.inject(&attackers, &mut coll, &view_at(&f, 0), &mut rng);
            adv.on_round(&mut coll, &view_at(&f, 1), &mut rng);
            if let Some(lie) =
                adv.respond(&probe(0, 10, 90.0), &mut coll, &view_at(&f, 1), &mut rng)
            {
                assert_eq!(lie.delay_ms, 0.0, "{} delayed a probe", adv.label());
            }
        }
    }

    #[test]
    fn labels_are_distinct_from_the_classic_families() {
        let labels = [
            EvadingFrogBoil::default().label(),
            EvadingFrogBoil::learning(5.0, DefenseModel::default()).label(),
            ThresholdProbe::default().label(),
            SleeperCollusion::default().label(),
            crate::FrogBoiling::default().label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len(), "duplicate labels: {labels:?}");
    }
}
