//! The [`Collusion`] coordinator: shared state for groups of malicious
//! nodes acting in concert.
//!
//! Drift-group attacks need agreement — a common axis, a shared
//! accumulated offset, an anchor point. The scenario engine owns one
//! [`Collusion`] and passes it to every strategy hook; partition attacks
//! are the canonical client: two groups of colluders drift in *opposite*
//! directions, which only works if each group shares one axis and one
//! offset. Its state is also observable from outside the strategy
//! (`Scenario::collusion`), which the partition property tests rely on.
//!
//! Scope note: this models *group-drift* agreement specifically.
//! Strategies whose agreed state has a different shape (per-victim
//! designated coordinates in the paper's colluding-isolation attacks,
//! per-attacker cluster scatter) keep that state privately and simply
//! ignore the coordinator.

use crate::strategy::CoordView;
use rand::seq::SliceRandom;
use rand_chacha::ChaCha12Rng;
use std::collections::HashMap;
use vcoord_space::{Coord, Displacement};

/// One colluding group: its members and the state they agreed on.
#[derive(Debug, Clone)]
pub struct Group {
    /// Member node ids, in formation order.
    pub members: Vec<usize>,
    /// The agreed unit drift axis.
    pub axis: Displacement,
    /// Accumulated drift magnitude along `axis` (per-round mutable state).
    pub offset: f64,
    /// The agreed anchor: centroid of the members' true coordinates at
    /// formation time.
    pub anchor: Coord,
}

/// Shared state for colluding malicious nodes, owned by the scenario
/// engine and handed to every [`crate::AttackStrategy`] hook.
#[derive(Debug, Clone, Default)]
pub struct Collusion {
    groups: Vec<Group>,
    group_of: HashMap<usize, usize>,
}

impl Collusion {
    /// No groups formed yet.
    pub fn new() -> Collusion {
        Collusion::default()
    }

    /// Split `members` into `n_groups` near-equal groups (shuffled, so the
    /// split is unbiased) and agree on per-group axes and anchors.
    ///
    /// With `n_groups == 2` the two axes are exactly antiparallel — the
    /// partition-attack geometry. With any other count each group draws an
    /// independent random unit axis. Re-forming replaces existing groups.
    pub fn form_groups(
        &mut self,
        members: &[usize],
        n_groups: usize,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        self.groups.clear();
        self.group_of.clear();
        let n_groups = n_groups.max(1);
        let mut pool = members.to_vec();
        pool.shuffle(rng);

        let base_axis = view.space.random_unit(rng);
        for g in 0..n_groups {
            let axis = if n_groups == 2 && g == 1 {
                // Partition geometry: the second group drifts exactly
                // opposite to the first.
                let mut a = base_axis.clone();
                a.scale(-1.0);
                a
            } else if g == 0 {
                base_axis.clone()
            } else {
                view.space.random_unit(rng)
            };
            self.groups.push(Group {
                members: Vec::new(),
                axis,
                offset: 0.0,
                anchor: view.space.origin(),
            });
        }

        for (k, &m) in pool.iter().enumerate() {
            let g = k % n_groups;
            self.groups[g].members.push(m);
            self.group_of.insert(m, g);
        }

        // Anchors: centroid of each group's true coordinates at formation.
        for group in &mut self.groups {
            if group.members.is_empty() {
                continue;
            }
            let dim = view.space.dim();
            let mut centroid = Coord::origin(dim);
            for &m in &group.members {
                for (c, x) in centroid.vec.iter_mut().zip(&view.coords[m].vec) {
                    *c += x;
                }
                centroid.height += view.coords[m].height;
            }
            let n = group.members.len() as f64;
            for c in centroid.vec.iter_mut() {
                *c /= n;
            }
            centroid.height /= n;
            group.anchor = centroid;
        }
    }

    /// Advance every group's accumulated offset by `step`, capped at
    /// `max_offset` — the shared per-round drift update.
    pub fn advance_all(&mut self, step: f64, max_offset: f64) {
        for g in &mut self.groups {
            g.offset = (g.offset + step).min(max_offset);
        }
    }

    /// All formed groups.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Mutable access to the formed groups.
    pub fn groups_mut(&mut self) -> &mut [Group] {
        &mut self.groups
    }

    /// The group index `node` belongs to, if any.
    pub fn group_of(&self, node: usize) -> Option<usize> {
        self.group_of.get(&node).copied()
    }

    /// The group `node` belongs to, if any.
    pub fn group_for(&self, node: usize) -> Option<&Group> {
        self.group_of(node).map(|g| &self.groups[g])
    }

    /// Number of formed groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when no groups have been formed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Protocol;
    use rand::SeedableRng;
    use vcoord_space::Space;

    fn view_fixture<'a>(
        space: &'a Space,
        coords: &'a [Coord],
        malicious: &'a [bool],
    ) -> CoordView<'a> {
        CoordView {
            space,
            coords,
            errors: &[],
            layer: &[],
            malicious,
            is_ref: &[],
            round: 0,
            now_ms: 0,
            params: Protocol::default(),
        }
    }

    #[test]
    fn two_groups_are_antiparallel_and_cover_members() {
        let space = Space::Euclidean(3);
        let coords: Vec<Coord> = (0..10)
            .map(|i| Coord::from_vec(vec![i as f64, 0.0, 0.0]))
            .collect();
        let malicious = vec![true; 10];
        let view = view_fixture(&space, &coords, &malicious);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let members: Vec<usize> = (0..10).collect();
        let mut coll = Collusion::new();
        coll.form_groups(&members, 2, &view, &mut rng);

        assert_eq!(coll.len(), 2);
        let sizes: Vec<usize> = coll.groups().iter().map(|g| g.members.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 5), "near-equal split: {sizes:?}");
        for &m in &members {
            assert!(coll.group_of(m).is_some());
        }
        let a = &coll.groups()[0].axis;
        let b = &coll.groups()[1].axis;
        let dot: f64 = a.vec.iter().zip(&b.vec).map(|(x, y)| x * y).sum();
        assert!(
            (dot + 1.0).abs() < 1e-12,
            "axes must be antiparallel: {dot}"
        );
    }

    #[test]
    fn advance_all_caps_offsets() {
        let space = Space::Euclidean(2);
        let coords = vec![Coord::origin(2); 4];
        let malicious = vec![true; 4];
        let view = view_fixture(&space, &coords, &malicious);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut coll = Collusion::new();
        coll.form_groups(&[0, 1, 2, 3], 1, &view, &mut rng);
        for _ in 0..10 {
            coll.advance_all(3.0, 12.0);
        }
        assert_eq!(coll.groups()[0].offset, 12.0);
    }

    #[test]
    fn anchors_are_group_centroids() {
        let space = Space::Euclidean(2);
        let coords = vec![
            Coord::from_vec(vec![2.0, 0.0]),
            Coord::from_vec(vec![4.0, 2.0]),
        ];
        let malicious = vec![true; 2];
        let view = view_fixture(&space, &coords, &malicious);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut coll = Collusion::new();
        coll.form_groups(&[0, 1], 1, &view, &mut rng);
        assert_eq!(coll.groups()[0].anchor.vec, vec![3.0, 1.0]);
    }
}
