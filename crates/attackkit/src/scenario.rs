//! The [`Scenario`] engine: one strategy plus its collusion state, with
//! round-advancement bookkeeping.
//!
//! Simulators hold a `Scenario` rather than a bare strategy. The scenario
//! owns the [`Collusion`] coordinator, forwards the injection hook, and —
//! before the first response of each new round — fires
//! [`AttackStrategy::on_round`] exactly once per elapsed round, so gradual
//! strategies (frog-boiling, partition drift) advance at a rate fixed in
//! *rounds*, not probes.

use crate::collusion::Collusion;
use crate::strategy::{AttackStrategy, CoordView, Lie, Probe};
use rand_chacha::ChaCha12Rng;

/// A running attack: strategy + shared collusion state + round cursor.
pub struct Scenario {
    strategy: Box<dyn AttackStrategy>,
    collusion: Collusion,
    last_round: Option<u64>,
}

impl Scenario {
    /// Wrap a strategy into a scenario with fresh collusion state.
    pub fn new(strategy: Box<dyn AttackStrategy>) -> Scenario {
        Scenario {
            strategy,
            collusion: Collusion::new(),
            last_round: None,
        }
    }

    /// The strategy's label (for logs and CSV headers).
    pub fn label(&self) -> &'static str {
        self.strategy.label()
    }

    /// The shared collusion state (groups, axes, offsets).
    pub fn collusion(&self) -> &Collusion {
        &self.collusion
    }

    /// Forward the injection hook. The round cursor starts at the injection
    /// round: rounds already elapsed before the attack never fire
    /// `on_round`.
    pub fn inject(&mut self, attackers: &[usize], view: &CoordView<'_>, rng: &mut ChaCha12Rng) {
        self.last_round = Some(view.round);
        self.strategy
            .inject(attackers, &mut self.collusion, view, rng);
    }

    /// Produce the response to `probe`, advancing per-round state first.
    ///
    /// `on_round` fires once per round elapsed since the last response (or
    /// since injection), lazily at the round's first probe of a malicious
    /// node — at most a handful of iterations, since malicious nodes are
    /// probed every round in both simulators.
    pub fn respond(
        &mut self,
        probe: Probe,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        let from = self.last_round.unwrap_or(view.round);
        for _ in from..view.round {
            self.strategy.on_round(&mut self.collusion, view, rng);
        }
        self.last_round = Some(view.round.max(from));
        self.strategy
            .respond(&probe, &mut self.collusion, view, rng)
    }

    /// Forward one defense-verdict observation to the strategy (the
    /// arms-race feedback seam — see [`AttackStrategy::feedback`]). The
    /// simulators call this for every sample of a malicious node that a
    /// deployed defense judged; with no defense deployed it is never
    /// called.
    pub fn feedback(&mut self, attacker: usize, victim: usize, flagged: bool) {
        if vcoord_obs::enabled() {
            vcoord_obs::event(
                vcoord_obs::metric_id!("attack.feedback"),
                self.last_round.unwrap_or(0),
                attacker as u32,
                if flagged { 1.0 } else { 0.0 },
            );
        }
        self.strategy
            .feedback(attacker, victim, flagged, &mut self.collusion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Protocol;
    use rand::SeedableRng;
    use vcoord_space::{Coord, Space};

    /// Counts hook invocations; lies with the round index as delay.
    #[derive(Default)]
    struct Counter {
        injected: usize,
        rounds: usize,
        responses: usize,
    }

    impl AttackStrategy for Counter {
        fn inject(
            &mut self,
            _attackers: &[usize],
            _collusion: &mut Collusion,
            _view: &CoordView<'_>,
            _rng: &mut ChaCha12Rng,
        ) {
            self.injected += 1;
        }

        fn on_round(
            &mut self,
            _collusion: &mut Collusion,
            _view: &CoordView<'_>,
            _rng: &mut ChaCha12Rng,
        ) {
            self.rounds += 1;
        }

        fn respond(
            &mut self,
            _probe: &Probe,
            _collusion: &mut Collusion,
            view: &CoordView<'_>,
            _rng: &mut ChaCha12Rng,
        ) -> Option<Lie> {
            self.responses += 1;
            Some(Lie {
                coord: view.space.origin(),
                error: 0.01,
                delay_ms: self.rounds as f64,
            })
        }

        fn label(&self) -> &'static str {
            "counter"
        }
    }

    fn view_at<'a>(
        space: &'a Space,
        coords: &'a [Coord],
        malicious: &'a [bool],
        round: u64,
    ) -> CoordView<'a> {
        CoordView {
            space,
            coords,
            errors: &[],
            layer: &[],
            malicious,
            is_ref: &[],
            round,
            now_ms: round * 1000,
            params: Protocol::default(),
        }
    }

    #[test]
    fn on_round_fires_once_per_elapsed_round() {
        let space = Space::Euclidean(2);
        let coords = vec![Coord::origin(2); 2];
        let malicious = vec![true, false];
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut s = Scenario::new(Box::new(Counter::default()));
        let probe = Probe {
            attacker: 0,
            victim: 1,
            rtt: 10.0,
        };

        s.inject(&[0], &view_at(&space, &coords, &malicious, 5), &mut rng);
        // Same round as injection: no round hook yet.
        let l = s
            .respond(probe, &view_at(&space, &coords, &malicious, 5), &mut rng)
            .unwrap();
        assert_eq!(l.delay_ms, 0.0);
        // Two rounds later: exactly two on_round calls, then the response.
        let l = s
            .respond(probe, &view_at(&space, &coords, &malicious, 7), &mut rng)
            .unwrap();
        assert_eq!(l.delay_ms, 2.0);
        // Multiple probes within one round advance nothing.
        let l = s
            .respond(probe, &view_at(&space, &coords, &malicious, 7), &mut rng)
            .unwrap();
        assert_eq!(l.delay_ms, 2.0);
        assert_eq!(s.label(), "counter");
    }
}
