//! Concrete attack strategies.
//!
//! Gradual / coordinated families beyond the CoNEXT'06 taxonomy:
//!
//! * [`FrogBoiling`] — all colluders drift their reported coordinates by a
//!   small shared step per round, staying under any per-update displacement
//!   threshold a detector might impose (cf. Chan-Tin et al., *The
//!   Frog-Boiling Attack*).
//! * [`Oscillation`] — reported coordinates swing sinusoidally around the
//!   truth, denying convergence without ever straying far.
//! * [`NetworkPartition`] — colluders split into two groups drifting in
//!   exactly opposite directions, tearing the coordinate space into two
//!   clusters (eclipse-style partitioning of the overlay).
//!
//! Plus generic re-expressions of the classic single-shape lies the
//! per-system modules used to hard-code:
//!
//! * [`Inflation`] — report coordinates pushed radially far outward.
//! * [`Deflation`] — report coordinates shrunk toward the origin.
//! * [`RandomLie`] — disorder: a fresh random coordinate every probe.
//!
//! All strategies honour the delay-only threat model. The coordinate-lie
//! families (frog-boiling, oscillation, partition, inflation, deflation)
//! deliberately add **no delay at all**: the probe measures the true RTT,
//! so nothing trips an RTT plausibility check or the NPS probe threshold —
//! the attack lives entirely in the small residual between the reported
//! coordinate and the honestly-measured RTT, which is exactly the spring
//! force (Vivaldi) or fitting pull (NPS) that drags victims along the
//! attacker-chosen direction. A *perfectly* consistent lie (measured RTT
//! equal to the implied distance) would exert zero pull and do nothing.

use crate::collusion::Collusion;
use crate::strategy::{AttackStrategy, CoordView, Lie, Probe};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::HashMap;
use vcoord_space::{Coord, Displacement};

/// Reported error estimate that drives a Vivaldi victim's sample weight
/// toward 1 (the paper's disorder value); ignored by NPS.
const LIE_ERROR: f64 = 0.01;

/// Drift the true coordinate of `node` by `offset` along `axis` (shared
/// with the adaptive strategies in [`crate::adaptive`]).
pub(crate) fn drifted(
    view: &CoordView<'_>,
    node: usize,
    axis: &Displacement,
    offset: f64,
) -> Coord {
    let mut coord = view.coords[node].clone();
    view.space.apply(&mut coord, axis, offset);
    coord
}

/// *Frog-boiling*: every colluder reports its true position displaced by a
/// shared offset that grows by [`FrogBoiling::step`] ms per round.
///
/// Each individual lie is tiny — the per-round displacement of the reported
/// coordinate never exceeds `step`, so no displacement-threshold detector
/// fires — but the offsets integrate: after `r` rounds the whole malicious
/// population has coherently dragged its victims `r · step` ms off truth.
#[derive(Debug, Clone)]
pub struct FrogBoiling {
    /// Coordinate drift per round, ms. This is the attack's detectability
    /// budget: reported positions never move more than this per round.
    pub step: f64,
    /// Cap on the accumulated offset (`f64::INFINITY` = boil forever).
    pub max_offset: f64,
    /// Error estimate reported with every lie.
    pub lie_error: f64,
}

impl FrogBoiling {
    /// Drift by `step` ms per round, unbounded.
    pub fn new(step: f64) -> FrogBoiling {
        FrogBoiling {
            step,
            max_offset: f64::INFINITY,
            lie_error: LIE_ERROR,
        }
    }
}

impl Default for FrogBoiling {
    fn default() -> Self {
        // Small against the topology's ~100 ms median RTT: each lie is
        // within benign-update magnitude.
        FrogBoiling::new(5.0)
    }
}

impl AttackStrategy for FrogBoiling {
    fn inject(
        &mut self,
        attackers: &[usize],
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        // One coherent group: all colluders share the drift axis and offset.
        collusion.form_groups(attackers, 1, view, rng);
    }

    fn on_round(
        &mut self,
        collusion: &mut Collusion,
        _view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) {
        collusion.advance_all(self.step, self.max_offset);
    }

    fn respond(
        &mut self,
        probe: &Probe,
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        let group = collusion.group_for(probe.attacker)?;
        let coord = drifted(view, probe.attacker, &group.axis, group.offset);
        // No delay: the probe looks entirely benign. The small gap between
        // the honestly-measured RTT and the drifted coordinate is the pull
        // that walks the victim along the axis; as the population follows,
        // the gap re-closes and the next round's step re-opens it.
        Some(Lie {
            coord,
            error: self.lie_error,
            delay_ms: 0.0,
        })
    }

    fn label(&self) -> &'static str {
        "frog-boiling"
    }
}

/// *Oscillation*: each attacker's reported position swings sinusoidally
/// along a private axis — `offset = amplitude · sin(2π · round / period)` —
/// so victims chase a moving target and never settle.
#[derive(Debug, Clone)]
pub struct Oscillation {
    /// Peak displacement of the reported coordinate, ms.
    pub amplitude: f64,
    /// Rounds per full swing cycle.
    pub period: u64,
    /// Error estimate reported with every lie.
    pub lie_error: f64,
    axes: HashMap<usize, Displacement>,
}

impl Oscillation {
    /// Swing `amplitude` ms over `period` rounds.
    pub fn new(amplitude: f64, period: u64) -> Oscillation {
        Oscillation {
            amplitude,
            period: period.max(2),
            lie_error: LIE_ERROR,
            axes: HashMap::new(),
        }
    }
}

impl Default for Oscillation {
    fn default() -> Self {
        Oscillation::new(500.0, 20)
    }
}

impl AttackStrategy for Oscillation {
    fn inject(
        &mut self,
        attackers: &[usize],
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        for &a in attackers {
            self.axes.insert(a, view.space.random_unit(rng));
        }
    }

    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        // Late-infected attackers draw their axis on first use.
        let axis = self
            .axes
            .entry(probe.attacker)
            .or_insert_with(|| view.space.random_unit(rng));
        let phase = (view.round % self.period) as f64 / self.period as f64;
        let offset = self.amplitude * (2.0 * std::f64::consts::PI * phase).sin();
        let coord = drifted(view, probe.attacker, axis, offset);
        // No delay: victims chase the honestly-timed but swinging target.
        Some(Lie {
            coord,
            error: self.lie_error,
            delay_ms: 0.0,
        })
    }

    fn label(&self) -> &'static str {
        "oscillation"
    }
}

/// *Network partition*: the colluders split into exactly two groups whose
/// reported positions drift in opposite directions at
/// [`NetworkPartition::step`] ms per round.
///
/// Victims anchored (through their probe mix) to either half get dragged
/// with it: the embedding tears into two mutually-distant clusters whose
/// inter-cluster distance estimates diverge — an eclipse-style partition of
/// the coordinate overlay without touching a single packet route.
#[derive(Debug, Clone)]
pub struct NetworkPartition {
    /// Per-round drift of each half, ms (the halves separate at `2·step`
    /// per round).
    pub step: f64,
    /// Cap on each half's accumulated offset.
    pub max_offset: f64,
    /// Error estimate reported with every lie.
    pub lie_error: f64,
}

impl NetworkPartition {
    /// Separate the two halves by `2·step` ms per round, unbounded.
    pub fn new(step: f64) -> NetworkPartition {
        NetworkPartition {
            step,
            max_offset: f64::INFINITY,
            lie_error: LIE_ERROR,
        }
    }
}

impl Default for NetworkPartition {
    fn default() -> Self {
        NetworkPartition::new(25.0)
    }
}

impl AttackStrategy for NetworkPartition {
    fn inject(
        &mut self,
        attackers: &[usize],
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) {
        // Two coherent drift groups with antiparallel axes.
        collusion.form_groups(attackers, 2, view, rng);
    }

    fn on_round(
        &mut self,
        collusion: &mut Collusion,
        _view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) {
        collusion.advance_all(self.step, self.max_offset);
    }

    fn respond(
        &mut self,
        probe: &Probe,
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        let group = collusion.group_for(probe.attacker)?;
        let coord = drifted(view, probe.attacker, &group.axis, group.offset);
        // No delay (see FrogBoiling): each half's victims get walked in
        // that half's direction; the two sub-populations tear apart.
        Some(Lie {
            coord,
            error: self.lie_error,
            delay_ms: 0.0,
        })
    }

    fn label(&self) -> &'static str {
        "network-partition"
    }
}

/// *Inflation*: report coordinates pushed `magnitude` ms radially outward
/// from the origin, inflating every distance estimate involving an
/// attacker and stretching the space.
#[derive(Debug, Clone)]
pub struct Inflation {
    /// Radial push distance, ms.
    pub magnitude: f64,
    /// Error estimate reported with every lie.
    pub lie_error: f64,
}

impl Inflation {
    /// Push reported positions `magnitude` ms outward.
    pub fn new(magnitude: f64) -> Inflation {
        Inflation {
            magnitude,
            lie_error: LIE_ERROR,
        }
    }
}

impl Default for Inflation {
    fn default() -> Self {
        Inflation::new(5_000.0)
    }
}

impl AttackStrategy for Inflation {
    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        let truth = &view.coords[probe.attacker];
        // Radially away from the origin (random direction at the origin).
        let axis = view.space.direction(truth, &view.space.origin(), rng);
        let coord = drifted(view, probe.attacker, &axis, self.magnitude);
        // No delay: the implied distance dwarfs the honestly-measured RTT,
        // so every sample yanks the victim hard toward the remote fake
        // position (rtt − dist ≪ 0 in the Vivaldi update).
        Some(Lie {
            coord,
            error: self.lie_error,
            delay_ms: 0.0,
        })
    }

    fn label(&self) -> &'static str {
        "inflation"
    }
}

/// *Deflation*: report coordinates shrunk toward the origin by
/// [`Deflation::shrink`], under-stating distances. The attacker cannot
/// shorten the matching RTT (delay-only model), so the lie is inherently
/// inconsistent — its signature is a cluster of implausibly central nodes
/// whose measured RTTs contradict their claimed positions.
#[derive(Debug, Clone)]
pub struct Deflation {
    /// Scale factor applied to the true coordinates (0 = collapse to the
    /// origin).
    pub shrink: f64,
    /// Error estimate reported with every lie.
    pub lie_error: f64,
}

impl Deflation {
    /// Scale reported coordinates by `shrink` toward the origin.
    pub fn new(shrink: f64) -> Deflation {
        Deflation {
            shrink: shrink.clamp(0.0, 1.0),
            lie_error: LIE_ERROR,
        }
    }
}

impl Default for Deflation {
    fn default() -> Self {
        Deflation::new(0.05)
    }
}

impl AttackStrategy for Deflation {
    fn respond(
        &mut self,
        probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        let mut coord = view.coords[probe.attacker].clone();
        for x in &mut coord.vec {
            *x *= self.shrink;
        }
        coord.height *= self.shrink;
        Some(Lie {
            coord,
            error: self.lie_error,
            delay_ms: 0.0,
        })
    }

    fn label(&self) -> &'static str {
        "deflation"
    }
}

/// *Random lie* (disorder): a fresh random coordinate every probe, with a
/// random delay — the generic re-expression of the paper's §5.3.1 attack.
#[derive(Debug, Clone)]
pub struct RandomLie {
    /// Range of the random coordinate components (the paper's random
    /// scenario interval `[-50000, 50000]` is the default).
    pub coord_range: f64,
    /// Probe delay range in ms.
    pub delay_range: (f64, f64),
    /// Error estimate reported with every lie.
    pub lie_error: f64,
}

impl RandomLie {
    /// Random coordinates in `[-range, range]` per component.
    pub fn new(coord_range: f64) -> RandomLie {
        RandomLie {
            coord_range,
            delay_range: (100.0, 1000.0),
            lie_error: LIE_ERROR,
        }
    }
}

impl Default for RandomLie {
    fn default() -> Self {
        RandomLie::new(50_000.0)
    }
}

impl AttackStrategy for RandomLie {
    fn respond(
        &mut self,
        _probe: &Probe,
        _collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        Some(Lie {
            coord: view.space.random_coord(self.coord_range, rng),
            error: self.lie_error,
            delay_ms: rng.gen_range(self.delay_range.0..self.delay_range.1),
        })
    }

    fn label(&self) -> &'static str {
        "random-lie"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Protocol;
    use rand::SeedableRng;
    use vcoord_space::Space;

    struct Fixture {
        space: Space,
        coords: Vec<Coord>,
        malicious: Vec<bool>,
    }

    fn fixture() -> Fixture {
        let space = Space::Euclidean(2);
        let coords: Vec<Coord> = (0..8)
            .map(|i| Coord::from_vec(vec![20.0 * i as f64, 10.0 * i as f64]))
            .collect();
        let mut malicious = vec![true; 4];
        malicious.extend(vec![false; 4]);
        Fixture {
            space,
            coords,
            malicious,
        }
    }

    fn view_at(f: &Fixture, round: u64) -> CoordView<'_> {
        CoordView {
            space: &f.space,
            coords: &f.coords,
            errors: &[],
            layer: &[],
            malicious: &f.malicious,
            is_ref: &[],
            round,
            now_ms: round * 1000,
            params: Protocol::default(),
        }
    }

    fn probe(attacker: usize, victim: usize) -> Probe {
        Probe {
            attacker,
            victim,
            rtt: 50.0,
        }
    }

    #[test]
    fn frog_boiling_reported_drift_equals_offset() {
        let f = fixture();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut coll = Collusion::new();
        let mut adv = FrogBoiling::new(3.0);
        adv.inject(&[0, 1, 2, 3], &mut coll, &view_at(&f, 0), &mut rng);
        assert_eq!(coll.len(), 1, "frog-boiling is one coherent group");

        // Round 0: no drift yet — the lie is the truth.
        let l0 = adv
            .respond(&probe(0, 5), &mut coll, &view_at(&f, 0), &mut rng)
            .unwrap();
        assert_eq!(l0.coord, f.coords[0]);

        // After two rounds the reported coordinate sits exactly 2·step off.
        adv.on_round(&mut coll, &view_at(&f, 1), &mut rng);
        adv.on_round(&mut coll, &view_at(&f, 2), &mut rng);
        let l2 = adv
            .respond(&probe(0, 5), &mut coll, &view_at(&f, 2), &mut rng)
            .unwrap();
        let moved = f.space.distance(&l2.coord, &f.coords[0]);
        assert!((moved - 6.0).abs() < 1e-9, "drift {moved} != 6.0");
        assert!(l2.delay_ms >= 0.0);
    }

    #[test]
    fn frog_boiling_respects_max_offset() {
        let f = fixture();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut coll = Collusion::new();
        let mut adv = FrogBoiling {
            step: 10.0,
            max_offset: 25.0,
            lie_error: 0.01,
        };
        adv.inject(&[0, 1], &mut coll, &view_at(&f, 0), &mut rng);
        for r in 1..=10 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
        }
        assert_eq!(coll.groups()[0].offset, 25.0);
    }

    #[test]
    fn oscillation_returns_to_truth_each_cycle() {
        let f = fixture();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut coll = Collusion::new();
        let mut adv = Oscillation::new(200.0, 8);
        adv.inject(&[0], &mut coll, &view_at(&f, 0), &mut rng);
        let at = |round: u64, adv: &mut Oscillation, rng: &mut ChaCha12Rng| {
            adv.respond(
                &probe(0, 5),
                &mut Collusion::new(),
                &view_at(&f, round),
                rng,
            )
            .unwrap()
            .coord
        };
        // Phase 0 and a full period later: the truth.
        assert!(f.space.distance(&at(0, &mut adv, &mut rng), &f.coords[0]) < 1e-9);
        assert!(f.space.distance(&at(8, &mut adv, &mut rng), &f.coords[0]) < 1e-9);
        // Quarter period: peak amplitude.
        let peak = f.space.distance(&at(2, &mut adv, &mut rng), &f.coords[0]);
        assert!((peak - 200.0).abs() < 1e-9, "peak {peak}");
    }

    #[test]
    fn partition_halves_drift_apart() {
        let f = fixture();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut coll = Collusion::new();
        let mut adv = NetworkPartition::new(10.0);
        adv.inject(&[0, 1, 2, 3], &mut coll, &view_at(&f, 0), &mut rng);
        assert_eq!(coll.len(), 2);
        for r in 1..=5 {
            adv.on_round(&mut coll, &view_at(&f, r), &mut rng);
        }
        // Pick one attacker per group; their lies move in opposite
        // directions relative to their true positions.
        let (a, b) = (coll.groups()[0].members[0], coll.groups()[1].members[0]);
        let la = adv
            .respond(&probe(a, 5), &mut coll, &view_at(&f, 5), &mut rng)
            .unwrap();
        let lb = adv
            .respond(&probe(b, 5), &mut coll, &view_at(&f, 5), &mut rng)
            .unwrap();
        let da: Vec<f64> = la
            .coord
            .vec
            .iter()
            .zip(&f.coords[a].vec)
            .map(|(x, t)| x - t)
            .collect();
        let db: Vec<f64> = lb
            .coord
            .vec
            .iter()
            .zip(&f.coords[b].vec)
            .map(|(x, t)| x - t)
            .collect();
        let dot: f64 = da.iter().zip(&db).map(|(x, y)| x * y).sum();
        assert!(dot < 0.0, "drifts must oppose: {da:?} vs {db:?}");
        let na = da.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((na - 50.0).abs() < 1e-9, "each half moved 5·step: {na}");
    }

    #[test]
    fn inflation_pushes_outward_deflation_pulls_inward() {
        let f = fixture();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut coll = Collusion::new();
        let truth_mag = f.coords[2].magnitude();

        let li = Inflation::new(1_000.0)
            .respond(&probe(2, 5), &mut coll, &view_at(&f, 0), &mut rng)
            .unwrap();
        assert!((li.coord.magnitude() - (truth_mag + 1_000.0)).abs() < 1e-6);

        let ld = Deflation::new(0.1)
            .respond(&probe(2, 5), &mut coll, &view_at(&f, 0), &mut rng)
            .unwrap();
        assert!((ld.coord.magnitude() - 0.1 * truth_mag).abs() < 1e-9);
        assert_eq!(ld.delay_ms, 0.0, "deflation cannot shorten probes");
    }

    #[test]
    fn random_lie_matches_disorder_shape() {
        let f = fixture();
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        let mut coll = Collusion::new();
        let mut adv = RandomLie::default();
        for _ in 0..50 {
            let lie = adv
                .respond(&probe(0, 5), &mut coll, &view_at(&f, 0), &mut rng)
                .unwrap();
            assert_eq!(lie.error, 0.01);
            assert!((100.0..1000.0).contains(&lie.delay_ms));
            assert!(lie.coord.vec.iter().all(|x| x.abs() <= 50_000.0));
        }
    }

    #[test]
    fn coordinate_lie_families_never_delay_probes() {
        // The gradual/shape families must leave measured RTTs untouched —
        // their stealth (and their pull) lives in the coordinate residual.
        let f = fixture();
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut coll = Collusion::new();
        let attackers = [0usize, 1, 2, 3];
        let mut all: Vec<Box<dyn AttackStrategy>> = vec![
            Box::new(FrogBoiling::default()),
            Box::new(Oscillation::default()),
            Box::new(NetworkPartition::default()),
            Box::new(Inflation::default()),
            Box::new(Deflation::default()),
        ];
        for adv in all.iter_mut() {
            adv.inject(&attackers, &mut coll, &view_at(&f, 0), &mut rng);
            adv.on_round(&mut coll, &view_at(&f, 1), &mut rng);
            let lie = adv
                .respond(&probe(0, 5), &mut coll, &view_at(&f, 1), &mut rng)
                .unwrap();
            assert_eq!(lie.delay_ms, 0.0, "{} delayed a probe", adv.label());
        }
    }
}
