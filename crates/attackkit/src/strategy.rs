//! The generic adversary seam: [`AttackStrategy`], its [`CoordView`]
//! oracle, and the lie/probe value types shared by every coordinate system.
//!
//! The contract encodes the paper's threat model for both Vivaldi and NPS:
//!
//! * a malicious node controls the **coordinates** (and, where the protocol
//!   carries one, the **error estimate**) it reports, and may **delay** the
//!   probe;
//! * it can never *shorten* a measurement — the simulators clamp negative
//!   delays to zero and log the violation;
//! * attackers may know their victims' true coordinates (the paper's
//!   "knowledge" parameter); the [`CoordView`] passed to a strategy is that
//!   oracle, and strategies decide how much of it to use.

use crate::collusion::Collusion;
use rand_chacha::ChaCha12Rng;
use vcoord_space::{Coord, Space};

/// Protocol constants a strategy may legitimately know (they are public
/// parameters of the deployed system, not secrets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Protocol {
    /// Vivaldi's adaptive-timestep constant `Cc`. Defaults to the paper's
    /// 0.25; meaningless for NPS but kept at its default there so
    /// cross-system strategies can always read it.
    pub cc: f64,
    /// The victim-side probe threshold in ms (NPS discards and bans probes
    /// above it). `f64::INFINITY` for systems without one (Vivaldi).
    pub probe_threshold_ms: f64,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            cc: 0.25,
            probe_threshold_ms: f64::INFINITY,
        }
    }
}

/// Read-only view of the true system state offered to adversaries.
///
/// This is the knowledge *oracle* shared by both simulators. Fields a
/// system does not track are empty slices (Vivaldi fills `errors` but has
/// no `layer`; NPS fills `layer` but keeps no error estimates); use the
/// accessor methods, which substitute sane defaults, instead of indexing
/// optional slices directly.
pub struct CoordView<'a> {
    /// The embedding space.
    pub space: &'a Space,
    /// True current coordinates of every node.
    pub coords: &'a [Coord],
    /// True current local error estimates (empty when the system tracks
    /// none, e.g. NPS).
    pub errors: &'a [f64],
    /// Hierarchy layer of every node, 0 = landmark (empty for flat systems,
    /// e.g. Vivaldi).
    pub layer: &'a [u8],
    /// Which nodes are currently malicious.
    pub malicious: &'a [bool],
    /// Whether each node serves in a reference-eligible layer (empty for
    /// systems without reference roles).
    pub is_ref: &'a [bool],
    /// The system's round index: Vivaldi probe ticks, NPS repositioning
    /// periods. Drives per-round strategy state.
    pub round: u64,
    /// Current simulated time, ms.
    pub now_ms: u64,
    /// Public protocol constants.
    pub params: Protocol,
}

impl CoordView<'_> {
    /// Number of nodes in the system.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// `true` when the view covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Error estimate of `node`, or `1.0` when the system tracks none.
    pub fn error_of(&self, node: usize) -> f64 {
        self.errors.get(node).copied().unwrap_or(1.0)
    }

    /// Layer of `node`, or `u8::MAX` when the system has no hierarchy.
    pub fn layer_of(&self, node: usize) -> u8 {
        self.layer.get(node).copied().unwrap_or(u8::MAX)
    }

    /// Ids of currently honest nodes.
    pub fn honest_nodes(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.malicious[i]).collect()
    }
}

/// One probe of a malicious node: `victim` measured `rtt` ms to `attacker`
/// and awaits the attacker's reported state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// The malicious node being probed.
    pub attacker: usize,
    /// The honest node performing the measurement.
    pub victim: usize,
    /// The true RTT of the probe, ms.
    pub rtt: f64,
}

/// What a probed malicious node sends back.
#[derive(Debug, Clone)]
pub struct Lie {
    /// Reported coordinates.
    pub coord: Coord,
    /// Reported error estimate. Vivaldi victims weight samples by it; NPS
    /// carries no error field and ignores it.
    pub error: f64,
    /// Extra delay added to the probe, in ms. Clamped to `>= 0` by the
    /// simulators: the threat model forbids shortening RTTs.
    pub delay_ms: f64,
}

/// A strategy deciding how malicious nodes answer probes, with per-round
/// mutable state and access to the [`Collusion`] coordinator.
///
/// Strategies are system-agnostic: the same object drives Vivaldi and NPS
/// through [`crate::Scenario`], which owns the collusion state and invokes
/// [`AttackStrategy::on_round`] once per elapsed round before the round's
/// first response.
pub trait AttackStrategy {
    /// Called once when the attacker set is injected into the running
    /// system, before any lie is requested. Collusion strategies use this
    /// to form groups and agree on targets, axes and cluster positions.
    fn inject(
        &mut self,
        _attackers: &[usize],
        _collusion: &mut Collusion,
        _view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) {
    }

    /// Called exactly once per elapsed round (Vivaldi tick / NPS
    /// repositioning period), before the first [`AttackStrategy::respond`]
    /// of that round. Gradual strategies advance their drift state here.
    fn on_round(
        &mut self,
        _collusion: &mut Collusion,
        _view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) {
    }

    /// Produce the response to `probe`.
    ///
    /// Returning `None` means "behave honestly for this probe" (used by
    /// subset-targeted and colluding attacks when facing a non-victim).
    fn respond(
        &mut self,
        probe: &Probe,
        collusion: &mut Collusion,
        view: &CoordView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<Lie>;

    /// The arms-race feedback channel: called when the fate of one of this
    /// strategy's responses at the deployed defense becomes observable to
    /// the attacker — `flagged` is whether the defense rejected (or
    /// strictly dampened) the sample `victim` received from `attacker`.
    ///
    /// The observation is realistic, not an oracle leak: a malicious node
    /// can tell whether its report took hold (the victim's next reported
    /// coordinate moved toward the lie, the NPS victim dropped it from its
    /// reference set and a replacement was drawn, probes stop arriving).
    /// Non-adaptive strategies ignore it; [`crate::ThresholdProbe`] is the
    /// canonical consumer, binary-searching the rejection boundary from
    /// exactly this bit. Never invoked when no defense is deployed — the
    /// undefended code path is byte-identical with or without this hook.
    fn feedback(
        &mut self,
        _attacker: usize,
        _victim: usize,
        _flagged: bool,
        _collusion: &mut Collusion,
    ) {
    }

    /// A short label for logs and CSV headers.
    fn label(&self) -> &'static str {
        "adversary"
    }
}

/// The null strategy: every malicious node behaves honestly. Useful for
/// validating that injection plumbing alone does not perturb a system.
#[derive(Debug, Default, Clone, Copy)]
pub struct Honest;

impl AttackStrategy for Honest {
    fn respond(
        &mut self,
        _probe: &Probe,
        _collusion: &mut Collusion,
        _view: &CoordView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<Lie> {
        None
    }

    fn label(&self) -> &'static str {
        "honest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn honest_strategy_never_lies() {
        let space = Space::Euclidean(2);
        let coords = vec![Coord::origin(2); 2];
        let malicious = vec![true, false];
        let view = CoordView {
            space: &space,
            coords: &coords,
            errors: &[],
            layer: &[],
            malicious: &malicious,
            is_ref: &[],
            round: 0,
            now_ms: 0,
            params: Protocol::default(),
        };
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut coll = Collusion::new();
        let probe = Probe {
            attacker: 0,
            victim: 1,
            rtt: 10.0,
        };
        assert!(Honest.respond(&probe, &mut coll, &view, &mut rng).is_none());
        assert_eq!(Honest.label(), "honest");
    }

    #[test]
    fn view_accessors_default_missing_slices() {
        let space = Space::Euclidean(2);
        let coords = vec![Coord::origin(2); 3];
        let malicious = vec![false, true, false];
        let view = CoordView {
            space: &space,
            coords: &coords,
            errors: &[],
            layer: &[],
            malicious: &malicious,
            is_ref: &[],
            round: 7,
            now_ms: 0,
            params: Protocol::default(),
        };
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.error_of(1), 1.0);
        assert_eq!(view.layer_of(2), u8::MAX);
        assert_eq!(view.honest_nodes(), vec![0, 2]);
        assert!(view.params.probe_threshold_ms.is_infinite());
    }
}
