//! # vcoord-attackkit
//!
//! A pluggable attack-scenario engine for Internet coordinate systems: the
//! single seam through which both systems under test (Vivaldi and NPS)
//! consume adversarial behaviour.
//!
//! The CoNEXT'06 paper's threat model gives a malicious node three levers —
//! the coordinates it reports, the error estimate it reports, and a
//! non-negative probe delay. Everything system-specific (who probes whom,
//! when lies are applied) stays in the simulators; everything
//! attack-specific lives here:
//!
//! * [`AttackStrategy`] — the strategy trait, with per-round mutable state
//!   ([`AttackStrategy::on_round`]) and the [`CoordView`] knowledge oracle;
//! * [`Collusion`] — shared state for colluding groups (axes, offsets,
//!   anchors), required by attacks where several malicious nodes must act
//!   coherently;
//! * [`Scenario`] — the engine object a simulator holds: strategy +
//!   collusion + round bookkeeping;
//! * [`strategies`] — the concrete generic strategies: gradual
//!   ([`FrogBoiling`], [`Oscillation`]), coordinated
//!   ([`NetworkPartition`]), and the classic single-shape lies
//!   ([`Inflation`], [`Deflation`], [`RandomLie`]);
//! * [`adaptive`] — the arms-race layer: the [`DefenseModel`] oracle (the
//!   attacker's belief about the deployed defense) and the defense-aware
//!   strategies [`EvadingFrogBoil`], [`ThresholdProbe`] (driven by the
//!   [`AttackStrategy::feedback`] verdict-observation channel) and
//!   [`SleeperCollusion`].
//!
//! The paper-specific strategies (disorder, repulsion, colluding isolation,
//! NPS anti-detection) implement the same trait from the `vcoord` facade
//! crate — the simulators cannot tell them apart.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha12Rng;
//! use vcoord_attackkit::{CoordView, FrogBoiling, Probe, Protocol, Scenario};
//! use vcoord_space::{Coord, Space};
//!
//! let space = Space::Euclidean(2);
//! let coords = vec![Coord::origin(2), Coord::from_vec(vec![100.0, 0.0])];
//! let malicious = vec![true, false];
//! let view = CoordView {
//!     space: &space,
//!     coords: &coords,
//!     errors: &[],
//!     layer: &[],
//!     malicious: &malicious,
//!     is_ref: &[],
//!     round: 0,
//!     now_ms: 0,
//!     params: Protocol::default(),
//! };
//!
//! let mut rng = ChaCha12Rng::seed_from_u64(7);
//! let mut scenario = Scenario::new(Box::new(FrogBoiling::new(2.0)));
//! scenario.inject(&[0], &view, &mut rng);
//! let lie = scenario
//!     .respond(Probe { attacker: 0, victim: 1, rtt: 100.0 }, &view, &mut rng)
//!     .expect("frog-boiling always lies");
//! assert!(lie.delay_ms >= 0.0, "delay-only threat model");
//! ```

pub mod adaptive;
pub mod collusion;
pub mod scenario;
pub mod strategies;
pub mod strategy;

pub use adaptive::{
    CapLearner, DefenseModel, EvadingFrogBoil, SleeperCollusion, SleeperPhase, ThresholdProbe,
};
pub use collusion::{Collusion, Group};
pub use scenario::Scenario;
pub use strategies::{Deflation, FrogBoiling, Inflation, NetworkPartition, Oscillation, RandomLie};
pub use strategy::{AttackStrategy, CoordView, Honest, Lie, Probe, Protocol};
