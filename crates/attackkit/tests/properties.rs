//! Property-based tests over the attackkit invariants the ISSUE pins down:
//! frog-boiling's per-round reported displacement stays below the
//! configured step bound, the partition attack splits colluders into
//! exactly two coherent drift groups, and the arms-race layer's contracts
//! hold — the evading frog's estimated per-remote mean pull stays strictly
//! under the modeled cap, and the threshold probe's binary search
//! converges to within 10 % of an arbitrary rejection boundary.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use vcoord_attackkit::{
    AttackStrategy, Collusion, CoordView, DefenseModel, EvadingFrogBoil, FrogBoiling,
    NetworkPartition, Probe, Protocol, ThresholdProbe,
};
use vcoord_space::{Coord, Space};

/// A population of `n` nodes on a ring, first `k` malicious.
fn population(space: &Space, n: usize, k: usize) -> (Vec<Coord>, Vec<bool>) {
    let coords: Vec<Coord> = (0..n)
        .map(|i| {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            let mut vec = vec![100.0 * a.cos(), 100.0 * a.sin()];
            vec.resize(space.dim(), 7.0);
            Coord::from_vec(vec)
        })
        .collect();
    let malicious: Vec<bool> = (0..n).map(|i| i < k).collect();
    (coords, malicious)
}

fn view_at<'a>(
    space: &'a Space,
    coords: &'a [Coord],
    malicious: &'a [bool],
    round: u64,
) -> CoordView<'a> {
    CoordView {
        space,
        coords,
        errors: &[],
        layer: &[],
        malicious,
        is_ref: &[],
        round,
        now_ms: round * 1000,
        params: Protocol::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- Frog-boiling: per-round displacement bound --------------------

    #[test]
    fn frog_boiling_per_round_displacement_stays_below_step(
        step in 0.1f64..50.0,
        dim in 2usize..6,
        seed in 0u64..500,
        rounds in 1usize..30,
    ) {
        let space = Space::Euclidean(dim);
        let (coords, malicious) = population(&space, 12, 4);
        let attackers: Vec<usize> = (0..4).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut coll = Collusion::new();
        let mut adv = FrogBoiling::new(step);
        adv.inject(&attackers, &mut coll, &view_at(&space, &coords, &malicious, 0), &mut rng);

        let probe = Probe { attacker: 1, victim: 8, rtt: 60.0 };
        let mut prev = adv
            .respond(&probe, &mut coll, &view_at(&space, &coords, &malicious, 0), &mut rng)
            .expect("frog-boiling always lies")
            .coord;
        for r in 1..=rounds as u64 {
            adv.on_round(&mut coll, &view_at(&space, &coords, &malicious, r), &mut rng);
            let lie = adv
                .respond(&probe, &mut coll, &view_at(&space, &coords, &malicious, r), &mut rng)
                .expect("frog-boiling always lies")
                .coord;
            let moved = space.distance(&lie, &prev);
            prop_assert!(
                moved <= step + 1e-9,
                "round {r}: reported coordinate moved {moved} > step {step}"
            );
            prev = lie;
        }
        // And the total drift integrated exactly rounds·step.
        let total = space.distance(&prev, &coords[1]);
        prop_assert!((total - rounds as f64 * step).abs() < 1e-6);
    }

    // ---- Partition: exactly two coherent drift groups ------------------

    #[test]
    fn partition_splits_colluders_into_two_coherent_groups(
        n_attackers in 2usize..10,
        step in 1.0f64..40.0,
        seed in 0u64..500,
        rounds in 1usize..20,
    ) {
        let space = Space::Euclidean(3);
        let (coords, malicious) = population(&space, 16, n_attackers);
        let attackers: Vec<usize> = (0..n_attackers).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut coll = Collusion::new();
        let mut adv = NetworkPartition::new(step);
        adv.inject(&attackers, &mut coll, &view_at(&space, &coords, &malicious, 0), &mut rng);

        // Exactly two groups, disjoint, covering every colluder.
        prop_assert_eq!(coll.groups().len(), 2);
        let mut seen = std::collections::HashSet::new();
        for g in coll.groups() {
            for &m in &g.members {
                prop_assert!(seen.insert(m), "node {} in two groups", m);
            }
        }
        prop_assert_eq!(seen.len(), n_attackers);
        for &a in &attackers {
            prop_assert!(coll.group_of(a).is_some());
        }

        // Antiparallel unit axes.
        let a0 = &coll.groups()[0].axis;
        let a1 = &coll.groups()[1].axis;
        let dot: f64 = a0.vec.iter().zip(&a1.vec).map(|(x, y)| x * y).sum();
        prop_assert!((dot + 1.0).abs() < 1e-9, "axes not antiparallel: dot {}", dot);

        // Coherent drift: after `rounds`, every colluder's lie sits exactly
        // rounds·step from its truth, along its own group's axis.
        for r in 1..=rounds as u64 {
            adv.on_round(&mut coll, &view_at(&space, &coords, &malicious, r), &mut rng);
        }
        let expected = rounds as f64 * step;
        for &a in &attackers {
            let lie = adv
                .respond(
                    &Probe { attacker: a, victim: 12, rtt: 60.0 },
                    &mut coll,
                    &view_at(&space, &coords, &malicious, rounds as u64),
                    &mut rng,
                )
                .expect("active partition always lies")
                .coord;
            let moved = space.distance(&lie, &coords[a]);
            prop_assert!(
                (moved - expected).abs() < 1e-6,
                "colluder {} drifted {} instead of {}",
                a,
                moved,
                expected
            );
            // The drift is along the group axis: projecting onto it
            // recovers the full magnitude (sign tells the two groups apart).
            let g = &coll.groups()[coll.group_of(a).unwrap()];
            let proj: f64 = lie
                .vec
                .iter()
                .zip(&coords[a].vec)
                .zip(&g.axis.vec)
                .map(|((x, t), ax)| (x - t) * ax)
                .sum();
            prop_assert!((proj - expected).abs() < 1e-6, "drift off-axis: {}", proj);
        }
    }

    // ---- Evading frog: estimated mean pull strictly under the cap ------

    #[test]
    fn evading_frog_estimated_pull_stays_strictly_under_the_modeled_cap(
        step in 1.0f64..20.0,
        cap in 20.0f64..120.0,
        dim in 2usize..5,
        seed in 0u64..500,
        rounds in 5usize..40,
    ) {
        let space = Space::Euclidean(dim);
        let (coords, malicious) = population(&space, 16, 5);
        let attackers: Vec<usize> = (0..5).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut coll = Collusion::new();
        let mut adv = EvadingFrogBoil::new(step, DefenseModel::drift_cap(cap));
        adv.inject(&attackers, &mut coll, &view_at(&space, &coords, &malicious, 0), &mut rng);
        // Static victims are the worst case for the throttle: nobody ever
        // catches up, so the offset saturates right at the budget. The
        // invariant must hold at every round along the way.
        for r in 1..=rounds as u64 {
            adv.on_round(&mut coll, &view_at(&space, &coords, &malicious, r), &mut rng);
            let worst = adv.worst_estimated_pull(&coll, &view_at(&space, &coords, &malicious, r));
            prop_assert!(
                worst < cap,
                "round {r}: estimated pull {worst:.2} reached the modeled cap {cap} \
                 (step {step:.1}, dim {dim}, seed {seed})"
            );
        }
    }

    // ---- Threshold probe: estimate within 10% of the true boundary -----

    #[test]
    fn threshold_probe_estimate_converges_to_the_true_boundary(
        boundary in 0.15f64..3.5,
        rtt in 20.0f64..300.0,
        seed in 0u64..500,
    ) {
        let space = Space::Euclidean(2);
        let (coords, malicious) = population(&space, 12, 2);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut coll = Collusion::new();
        let mut adv = ThresholdProbe::new(0.0, 4.0);
        let probe = Probe { attacker: 0, victim: 7, rtt };
        // Synthetic defense oracle: flag any relative residual above the
        // boundary. 30 informative rounds shrink the bracket to 4/2^30.
        for round in 0..30u64 {
            let lie = adv
                .respond(&probe, &mut coll, &view_at(&space, &coords, &malicious, round), &mut rng)
                .expect("the probe always lies");
            let predicted = space.distance(&coords[7], &lie.coord);
            let rel = (predicted - rtt).abs() / rtt;
            adv.feedback(0, 7, rel > boundary, &mut coll);
            adv.on_round(&mut coll, &view_at(&space, &coords, &malicious, round + 1), &mut rng);
        }
        let est = adv.estimate();
        prop_assert!(
            (est - boundary).abs() / boundary < 0.10,
            "estimate {est:.3} outside 10% of boundary {boundary:.3} (rtt {rtt:.0})"
        );
    }
}
