//! Accounting of NPS security-filter decisions.
//!
//! Figures 20 and 22 of the paper plot the *ratio of malicious nodes
//! filtered to the overall number of filtered nodes*: when the ratio drops,
//! the security mechanism is wasting its one-elimination-per-positioning
//! budget on honest (but mis-positioned) reference points, effectively
//! shielding the attackers.

use serde::{Deserialize, Serialize};

/// Tally of filter events, split by whether the filtered reference point was
/// actually malicious.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterLedger {
    /// Filter events that removed a malicious reference point (true
    /// positives).
    pub filtered_malicious: u64,
    /// Filter events that removed an honest reference point (false
    /// positives).
    pub filtered_honest: u64,
}

impl FilterLedger {
    /// An empty ledger.
    pub fn new() -> FilterLedger {
        FilterLedger::default()
    }

    /// Record one filter event.
    pub fn record(&mut self, was_malicious: bool) {
        if was_malicious {
            self.filtered_malicious += 1;
        } else {
            self.filtered_honest += 1;
        }
    }

    /// Total filter events.
    pub fn total(&self) -> u64 {
        self.filtered_malicious + self.filtered_honest
    }

    /// Fraction of filter events that hit a malicious node
    /// (`None` when nothing was filtered).
    pub fn malicious_ratio(&self) -> Option<f64> {
        let t = self.total();
        if t == 0 {
            None
        } else {
            Some(self.filtered_malicious as f64 / t as f64)
        }
    }

    /// Fraction of filter events that hit an honest node — the false-positive
    /// share (`None` when nothing was filtered).
    pub fn false_positive_ratio(&self) -> Option<f64> {
        self.malicious_ratio().map(|r| 1.0 - r)
    }

    /// Merge another ledger into this one (for aggregating repetitions).
    pub fn merge(&mut self, other: &FilterLedger) {
        self.filtered_malicious += other.filtered_malicious;
        self.filtered_honest += other.filtered_honest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_has_no_ratio() {
        assert_eq!(FilterLedger::new().malicious_ratio(), None);
    }

    #[test]
    fn ratios_add_up() {
        let mut l = FilterLedger::new();
        l.record(true);
        l.record(true);
        l.record(false);
        assert_eq!(l.total(), 3);
        assert!((l.malicious_ratio().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((l.false_positive_ratio().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FilterLedger::new();
        a.record(true);
        let mut b = FilterLedger::new();
        b.record(false);
        b.record(false);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.filtered_honest, 2);
    }
}
