//! Workspace-wide worker-pool sizing.
//!
//! Every parallel seam in the workspace — the figure harness's repetition
//! pool, [`EvalPlan`]'s chunked error evaluation, and the `figures` binary's
//! `--jobs` sweep — sizes itself through [`worker_threads`] so one
//! environment variable, `VCOORD_THREADS`, pins the parallelism for
//! reproducible CI and benchmarking on any core count.
//!
//! [`EvalPlan`]: crate::EvalPlan

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable overriding the worker-pool width.
pub const THREADS_ENV: &str = "VCOORD_THREADS";

/// Process-wide budget installed by [`set_worker_budget`]; `0` = unset.
static BUDGET: AtomicUsize = AtomicUsize::new(0);

/// Cap every worker pool in this process at `n` threads (clamped to ≥ 1),
/// overriding both `VCOORD_THREADS` and the hardware default.
///
/// Used by coordinators that split one machine budget among concurrent
/// jobs: the figures binary divides [`worker_threads`] by `--jobs` and
/// installs the quotient here, so `jobs × per-job pools` stays at the
/// pinned total instead of compounding multiplicatively.
pub fn set_worker_budget(n: usize) {
    BUDGET.store(n.max(1), Ordering::Relaxed);
}

/// Parse a `VCOORD_THREADS`-style override. Zero, empty, or unparsable
/// values are rejected (`None`) so a broken override degrades to the
/// hardware default instead of a zero-width pool.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The `VCOORD_THREADS` override, if set to a positive integer.
///
/// Read once per process: worker pools must not change width mid-run.
pub fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| parse_threads(std::env::var(THREADS_ENV).ok().as_deref()))
}

/// Worker-pool width: a [`set_worker_budget`] cap when installed, else the
/// `VCOORD_THREADS` override when set, else the machine's available
/// parallelism (minimum 1).
pub fn worker_threads() -> usize {
    let budget = BUDGET.load(Ordering::Relaxed);
    if budget > 0 {
        return budget;
    }
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_positive_integers() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 12 ")), Some(12));
        assert_eq!(parse_threads(Some("1")), Some(1));
    }

    #[test]
    fn parse_rejects_garbage_and_zero() {
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn budget_caps_worker_threads() {
        // Runs in its own test process (unit tests of this crate share it,
        // but every consumer is bit-identical for any width, so a leaked
        // budget only affects scheduling).
        set_worker_budget(3);
        assert_eq!(worker_threads(), 3);
        set_worker_budget(0); // clamped to 1, never a zero-width pool
        assert_eq!(worker_threads(), 1);
    }
}
