//! Detection-quality accounting: the confusion matrix of a defense run.
//!
//! Where [`FilterLedger`](crate::FilterLedger) tallies individual filter
//! *events* (the paper's figures 20/22 plot event ratios), [`Confusion`]
//! classifies *nodes*: given a ground-truth malicious set, how many nodes a
//! detector flagged were actually malicious (true positives), how many
//! honest nodes it defamed (false positives), and what it missed. Defense
//! sweeps reduce every (attack × defense) cell to the derived
//! [`Confusion::tpr`] / [`Confusion::fpr`] pair — the coordinates of a ROC
//! point.

use serde::{Deserialize, Serialize};

/// Node-level confusion matrix of one detection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Malicious nodes the detector flagged.
    pub true_positives: u64,
    /// Honest nodes the detector flagged.
    pub false_positives: u64,
    /// Honest nodes left alone.
    pub true_negatives: u64,
    /// Malicious nodes that went undetected.
    pub false_negatives: u64,
}

impl Confusion {
    /// An empty matrix.
    pub fn new() -> Confusion {
        Confusion::default()
    }

    /// Record one classified node.
    pub fn record(&mut self, malicious: bool, flagged: bool) {
        match (malicious, flagged) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (true, false) => self.false_negatives += 1,
        }
    }

    /// Total nodes classified.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// True-positive rate (recall): flagged malicious / all malicious.
    /// `None` when the run had no malicious nodes.
    pub fn tpr(&self) -> Option<f64> {
        let p = self.true_positives + self.false_negatives;
        (p > 0).then(|| self.true_positives as f64 / p as f64)
    }

    /// False-positive rate: flagged honest / all honest. `None` when the
    /// run had no honest nodes.
    pub fn fpr(&self) -> Option<f64> {
        let n = self.false_positives + self.true_negatives;
        (n > 0).then(|| self.false_positives as f64 / n as f64)
    }

    /// Precision: flagged malicious / all flagged. `None` when nothing was
    /// flagged.
    pub fn precision(&self) -> Option<f64> {
        let f = self.true_positives + self.false_positives;
        (f > 0).then(|| self.true_positives as f64 / f as f64)
    }

    /// Youden's J statistic `TPR − FPR`: the single-number summary of a
    /// ROC point (1 = perfect separation, 0 = chance, negative = worse
    /// than chance). The arms-race sweeps reduce each attack×defense cell
    /// to it — an evading attacker's goal is exactly to drive a detector's
    /// J toward zero at matched attack budget. `None` when either rate is
    /// undefined (no malicious or no honest nodes classified).
    pub fn youden_j(&self) -> Option<f64> {
        Some(self.tpr()? - self.fpr()?)
    }

    /// Merge another matrix into this one (for aggregating repetitions).
    pub fn merge(&mut self, other: &Confusion) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_no_rates() {
        let c = Confusion::new();
        assert_eq!(c.tpr(), None);
        assert_eq!(c.fpr(), None);
        assert_eq!(c.precision(), None);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn rates_follow_definitions() {
        let mut c = Confusion::new();
        // 3 malicious: 2 caught, 1 missed. 5 honest: 1 defamed, 4 spared.
        c.record(true, true);
        c.record(true, true);
        c.record(true, false);
        for _ in 0..4 {
            c.record(false, false);
        }
        c.record(false, true);
        assert_eq!(c.total(), 8);
        assert!((c.tpr().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.fpr().unwrap() - 1.0 / 5.0).abs() < 1e-12);
        assert!((c.precision().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.youden_j().unwrap() - (2.0 / 3.0 - 1.0 / 5.0)).abs() < 1e-12);
        assert_eq!(Confusion::new().youden_j(), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Confusion::new();
        a.record(true, true);
        let mut b = Confusion::new();
        b.record(false, true);
        b.record(false, false);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.false_positives, 1);
        assert_eq!(a.true_negatives, 1);
    }
}
