//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a set of sample values.
///
/// ```
/// use vcoord_metrics::Cdf;
///
/// let cdf = Cdf::from_samples(&[0.1, 0.4, 0.2, 0.8]);
/// assert_eq!(cdf.fraction_below(0.3), 0.5);
/// assert_eq!(cdf.quantile(1.0), 0.8);
/// ```
///
/// Non-finite samples are dropped at construction (and counted), matching
/// the defensive posture of the rest of the metrics pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
    /// Number of non-finite samples dropped at construction.
    pub dropped: usize,
}

impl Cdf {
    /// Build from raw samples.
    pub fn from_samples(samples: &[f64]) -> Cdf {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        let dropped = samples.len() - sorted.len();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite"));
        Cdf { sorted, dropped }
    }

    /// Number of (finite) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when no finite samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at quantile `q ∈ [0, 1]` (nearest rank).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = ((self.sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.sorted[idx]
    }

    /// Median sample.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// `(value, cumulative_fraction)` points, downsampled to at most
    /// `max_points` for plotting / CSV emission. Always includes the first
    /// and last sample.
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        if n == 0 || max_points == 0 {
            return Vec::new();
        }
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut out = Vec::with_capacity(max_points.min(n) + 1);
        let mut k = 0.0;
        while (k as usize) < n {
            let i = k as usize;
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            k += step;
        }
        let last = (self.sorted[n - 1], 1.0);
        if out.last() != Some(&last) {
            out.push(last);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_below_is_monotone() {
        let c = Cdf::from_samples(&[3.0, 1.0, 2.0, 2.0, 10.0]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(1.0), 0.2);
        assert_eq!(c.fraction_below(2.0), 0.6);
        assert_eq!(c.fraction_below(100.0), 1.0);
        let mut prev = 0.0;
        for x in [0.0, 1.0, 1.5, 2.0, 3.0, 10.0, 11.0] {
            let f = c.fraction_below(x);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn quantiles() {
        let c = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.median(), 3.0);
        assert_eq!(c.quantile(1.0), 5.0);
    }

    #[test]
    fn drops_non_finite() {
        let c = Cdf::from_samples(&[1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.dropped, 2);
    }

    #[test]
    fn points_downsample_and_terminate_at_one() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let pts = Cdf::from_samples(&samples).points(50);
        assert!(pts.len() <= 52);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // x and y both non-decreasing
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn empty_cdf_is_sane() {
        let c = Cdf::from_samples(&[]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_below(1.0), 0.0);
        assert_eq!(c.quantile(0.5), 0.0);
        assert!(c.points(10).is_empty());
    }
}
