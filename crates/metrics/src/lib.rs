//! # vcoord-metrics
//!
//! The evaluation pipeline of the CoNEXT'06 study (§5.1):
//!
//! * [`relative_error`] — the paper's error definition,
//!   `|actual − predicted| / min(actual, predicted)`.
//! * [`EvalPlan`] — per-node relative errors over all pairs or a fixed random
//!   peer sample, evaluated against a latency matrix.
//! * [`Cdf`] — cumulative distributions for the many CDF figures.
//! * [`TimeSeries`] — tick-indexed series with tail-window summaries, for the
//!   error-vs-time figures.
//! * [`FilterLedger`] — accounting of NPS security-filter events (malicious
//!   vs honest references filtered), for figures 20 and 22.
//! * [`Confusion`] — node-level detection quality (TP/FP/TN/FN with
//!   TPR/FPR), for the defense sweeps and ROC figures.
//! * [`random_baseline`] — the worst-case *random coordinate system* where
//!   every component is drawn from `[-50000, 50000]`.
//! * [`stats`] — small summary-statistics helpers.
//! * [`worker_threads`] — `VCOORD_THREADS`-aware worker-pool sizing, shared
//!   by every parallel seam in the workspace (repetition pool, [`EvalPlan`]
//!   chunked evaluation, figure `--jobs` sweep).

pub mod cdf;
pub mod detection;
pub mod error;
pub mod ledger;
pub mod parallel;
pub mod series;
pub mod stats;

pub use cdf::Cdf;
pub use detection::Confusion;
pub use error::{random_baseline, random_baseline_with, relative_error, CoordSnapshot, EvalPlan};
pub use ledger::FilterLedger;
pub use parallel::worker_threads;
pub use series::TimeSeries;
