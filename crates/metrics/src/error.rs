//! Relative-error evaluation against a latency matrix.

use rand::seq::SliceRandom;
use rand::Rng;
use vcoord_space::{Coord, Space};
use vcoord_topo::RttMatrix;

/// The paper's relative-error definition (§3.1):
/// `|actual − predicted| / min(actual, predicted)`.
///
/// Degenerate inputs are handled defensively: a non-positive or non-finite
/// denominator yields `f64::INFINITY` when the numerator is meaningful and
/// `0.0` when both distances are (numerically) zero, so adversarial
/// coordinates cannot inject NaNs into aggregates.
#[inline]
pub fn relative_error(actual: f64, predicted: f64) -> f64 {
    if !actual.is_finite() || !predicted.is_finite() {
        return f64::INFINITY;
    }
    let denom = actual.min(predicted);
    let num = (actual - predicted).abs();
    if denom <= 0.0 {
        if num <= f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

/// A fixed evaluation plan: which peers each node's error is measured
/// against.
///
/// For systems up to `all_pairs_threshold` nodes every ordered pair inside
/// the evaluation set is used; above it, each node gets a fixed random
/// sample of `sample_peers` peers, drawn once at construction so time series
/// are not perturbed by resampling noise (see DESIGN.md "Error sampling").
#[derive(Debug, Clone)]
pub struct EvalPlan {
    /// Node ids being evaluated (typically the honest nodes).
    nodes: Vec<usize>,
    /// For each entry of `nodes`, the peers to measure against.
    peers: Vec<Vec<usize>>,
}

impl EvalPlan {
    /// Default cut-over from all-pairs to sampled evaluation.
    pub const ALL_PAIRS_THRESHOLD: usize = 512;

    /// Default number of sampled peers per node above the threshold.
    pub const SAMPLE_PEERS: usize = 256;

    /// Build a plan over `nodes` (peers are drawn from the same set).
    pub fn new<R: Rng + ?Sized>(nodes: &[usize], rng: &mut R) -> EvalPlan {
        Self::with_params(nodes, Self::ALL_PAIRS_THRESHOLD, Self::SAMPLE_PEERS, rng)
    }

    /// Build a plan with explicit threshold and sample size.
    pub fn with_params<R: Rng + ?Sized>(
        nodes: &[usize],
        all_pairs_threshold: usize,
        sample_peers: usize,
        rng: &mut R,
    ) -> EvalPlan {
        let nodes: Vec<usize> = nodes.to_vec();
        let peers = if nodes.len() <= all_pairs_threshold {
            nodes
                .iter()
                .map(|&i| nodes.iter().copied().filter(|&j| j != i).collect())
                .collect()
        } else {
            nodes
                .iter()
                .map(|&i| {
                    let mut pool: Vec<usize> = nodes.iter().copied().filter(|&j| j != i).collect();
                    pool.shuffle(rng);
                    pool.truncate(sample_peers);
                    pool
                })
                .collect()
        };
        EvalPlan { nodes, peers }
    }

    /// The evaluated node ids.
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Relative error of the `k`-th planned node given current coordinates.
    ///
    /// Infinite per-pair errors (degenerate predictions) are clamped to
    /// `clamp` to keep averages finite; the paper's plots are bounded the
    /// same way by construction.
    pub fn node_error(&self, k: usize, coords: &[Coord], space: &Space, matrix: &RttMatrix) -> f64 {
        const CLAMP: f64 = 1.0e6;
        let i = self.nodes[k];
        let peers = &self.peers[k];
        if peers.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for &j in peers {
            let actual = matrix.rtt(i, j);
            let predicted = space.distance(&coords[i], &coords[j]);
            sum += relative_error(actual, predicted).min(CLAMP);
        }
        sum / peers.len() as f64
    }

    /// Median relative error of the `k`-th planned node — the robust
    /// per-node statistic used for convergence detection (a node's *mean*
    /// error is dominated by its smallest-RTT peers, whose relative errors
    /// swing wildly on tiny coordinate movements).
    pub fn node_error_median(
        &self,
        k: usize,
        coords: &[Coord],
        space: &Space,
        matrix: &RttMatrix,
    ) -> f64 {
        const CLAMP: f64 = 1.0e6;
        let i = self.nodes[k];
        let peers = &self.peers[k];
        if peers.is_empty() {
            return 0.0;
        }
        let mut errs: Vec<f64> = peers
            .iter()
            .map(|&j| {
                relative_error(matrix.rtt(i, j), space.distance(&coords[i], &coords[j])).min(CLAMP)
            })
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).expect("clamped finite"));
        errs[(errs.len() - 1) / 2]
    }

    /// Per-node median relative errors, in `nodes()` order.
    pub fn per_node_median_errors(
        &self,
        coords: &[Coord],
        space: &Space,
        matrix: &RttMatrix,
    ) -> Vec<f64> {
        (0..self.nodes.len())
            .map(|k| self.node_error_median(k, coords, space, matrix))
            .collect()
    }

    /// Per-node relative errors, in `nodes()` order.
    pub fn per_node_errors(&self, coords: &[Coord], space: &Space, matrix: &RttMatrix) -> Vec<f64> {
        (0..self.nodes.len())
            .map(|k| self.node_error(k, coords, space, matrix))
            .collect()
    }

    /// System-wide average relative error (the paper's headline accuracy
    /// indicator).
    pub fn avg_error(&self, coords: &[Coord], space: &Space, matrix: &RttMatrix) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..self.nodes.len())
            .map(|k| self.node_error(k, coords, space, matrix))
            .sum();
        total / self.nodes.len() as f64
    }
}

/// Average relative error of the paper's worst-case *random coordinate
/// system*: every node draws each coordinate component uniformly from
/// `[-range, range]` (§5.1 uses `range = 50 000`).
pub fn random_baseline<R: Rng + ?Sized>(
    plan: &EvalPlan,
    space: &Space,
    matrix: &RttMatrix,
    range: f64,
    rng: &mut R,
) -> f64 {
    let coords: Vec<Coord> = (0..matrix.len())
        .map(|_| space.random_coord(range, rng))
        .collect();
    plan.avg_error(&coords, space, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn relative_error_definition() {
        assert_eq!(relative_error(100.0, 100.0), 0.0);
        assert_eq!(relative_error(100.0, 50.0), 1.0); // |100-50|/50
        assert_eq!(relative_error(50.0, 100.0), 1.0);
        assert_eq!(relative_error(100.0, 300.0), 2.0);
    }

    #[test]
    fn relative_error_degenerate_inputs() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 10.0), f64::INFINITY);
        assert_eq!(relative_error(f64::NAN, 10.0), f64::INFINITY);
        assert_eq!(relative_error(10.0, f64::INFINITY), f64::INFINITY);
    }

    fn line_matrix() -> RttMatrix {
        // Nodes on a line at 0, 10, 25 → perfectly 1-D embeddable.
        let mut m = RttMatrix::zeros(3);
        m.set(0, 1, 10.0);
        m.set(0, 2, 25.0);
        m.set(1, 2, 15.0);
        m
    }

    fn line_coords() -> Vec<Coord> {
        vec![
            Coord::from_vec(vec![0.0]),
            Coord::from_vec(vec![10.0]),
            Coord::from_vec(vec![25.0]),
        ]
    }

    #[test]
    fn perfect_embedding_has_zero_error() {
        let m = line_matrix();
        let space = Space::Euclidean(1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::new(&[0, 1, 2], &mut rng);
        let coords = line_coords();
        assert_eq!(plan.avg_error(&coords, &space, &m), 0.0);
        assert_eq!(plan.per_node_errors(&coords, &space, &m), vec![0.0; 3]);
    }

    #[test]
    fn displaced_node_raises_its_error() {
        let m = line_matrix();
        let space = Space::Euclidean(1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::new(&[0, 1, 2], &mut rng);
        let mut coords = line_coords();
        coords[2] = Coord::from_vec(vec![50.0]); // should be at 25
        let errs = plan.per_node_errors(&coords, &space, &m);
        assert!(errs[2] > 0.5);
        assert!(errs[0] > 0.0); // pairwise, so peers see it too
    }

    #[test]
    fn plan_excludes_nodes_outside_eval_set() {
        let m = line_matrix();
        let space = Space::Euclidean(1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        // Node 2 (e.g. malicious) excluded: its lie must not affect the metric.
        let plan = EvalPlan::new(&[0, 1], &mut rng);
        let mut coords = line_coords();
        coords[2] = Coord::from_vec(vec![1.0e9]);
        assert_eq!(plan.avg_error(&coords, &space, &m), 0.0);
    }

    #[test]
    fn median_errors_are_robust_to_one_bad_peer() {
        let m = line_matrix();
        let space = Space::Euclidean(1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::new(&[0, 1, 2], &mut rng);
        let mut coords = line_coords();
        coords[2] = Coord::from_vec(vec![1.0e6]); // one blown-up node
        let means = plan.per_node_errors(&coords, &space, &m);
        let medians = plan.per_node_median_errors(&coords, &space, &m);
        // Node 0 has peers {1 (fine), 2 (blown up)}: its mean explodes but
        // its median stays moderate.
        assert!(means[0] > 1_000.0);
        assert!(medians[0] < means[0]);
    }

    #[test]
    fn sampled_plan_bounds_peer_count() {
        let n = 40;
        let mut m = RttMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, (i + j) as f64 + 1.0);
            }
        }
        let nodes: Vec<usize> = (0..n).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::with_params(&nodes, 10, 5, &mut rng);
        for (k, node) in nodes.iter().enumerate() {
            assert_eq!(plan.peers[k].len(), 5);
            assert!(!plan.peers[k].contains(node));
        }
    }

    #[test]
    fn random_baseline_is_terrible() {
        let m = line_matrix();
        let space = Space::Euclidean(2);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::new(&[0, 1, 2], &mut rng);
        let base = random_baseline(&plan, &space, &m, 50_000.0, &mut rng);
        assert!(base > 100.0, "baseline {base} suspiciously good");
    }

    #[test]
    fn errors_are_always_finite() {
        let m = line_matrix();
        let space = Space::Euclidean(1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::new(&[0, 1, 2], &mut rng);
        let mut coords = line_coords();
        coords[1] = Coord::from_vec(vec![f64::NAN]);
        let errs = plan.per_node_errors(&coords, &space, &m);
        assert!(errs.iter().all(|e| e.is_finite()), "{errs:?}");
    }
}
