//! Relative-error evaluation against a latency matrix.

use rand::seq::SliceRandom;
use rand::Rng;
use vcoord_space::{Coord, Space};
use vcoord_topo::RttMatrix;

/// The paper's relative-error definition (§3.1):
/// `|actual − predicted| / min(actual, predicted)`.
///
/// Degenerate inputs are handled defensively: a non-positive or non-finite
/// denominator yields `f64::INFINITY` when the numerator is meaningful and
/// `0.0` when both distances are (numerically) zero, so adversarial
/// coordinates cannot inject NaNs into aggregates.
#[inline]
pub fn relative_error(actual: f64, predicted: f64) -> f64 {
    if !actual.is_finite() || !predicted.is_finite() {
        return f64::INFINITY;
    }
    let denom = actual.min(predicted);
    let num = (actual - predicted).abs();
    if denom <= 0.0 {
        if num <= f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

/// Per-pair error clamp: infinite per-pair errors (degenerate predictions)
/// are bounded so averages stay finite; the paper's plots are bounded the
/// same way by construction.
const CLAMP: f64 = 1.0e6;

/// A flat structure-of-arrays snapshot of a coordinate set.
///
/// Taken once per sample tick by [`EvalPlan`]'s evaluation methods: the
/// Euclidean components live in one contiguous `dim`-strided buffer and the
/// heights in another, so the O(n²) error sweep walks cache-friendly rows
/// instead of chasing one heap `Vec` per [`Coord`]. Distances computed from
/// a snapshot are bit-identical to [`Space::distance`] on the original
/// coordinates (see [`Space::distance_flat`]).
#[derive(Debug, Clone)]
pub struct CoordSnapshot {
    dim: usize,
    flat: Vec<f64>,
    heights: Vec<f64>,
}

impl CoordSnapshot {
    /// Flatten `coords` for evaluation in `space`.
    ///
    /// Returns `None` when any coordinate's dimension disagrees with the
    /// space (callers fall back to the naive per-`Coord` path, which is the
    /// behaviour such degenerate inputs always had).
    pub fn capture(coords: &[Coord], space: &Space) -> Option<CoordSnapshot> {
        let dim = space.dim();
        if coords.iter().any(|c| c.vec.len() != dim) {
            return None;
        }
        let mut flat = Vec::with_capacity(coords.len() * dim);
        let mut heights = Vec::with_capacity(coords.len());
        for c in coords {
            flat.extend_from_slice(&c.vec);
            heights.push(c.height);
        }
        Some(CoordSnapshot { dim, flat, heights })
    }

    /// Euclidean components of node `i`.
    #[inline]
    fn point(&self, i: usize) -> &[f64] {
        &self.flat[i * self.dim..(i + 1) * self.dim]
    }

    /// Predicted distance between nodes `i` and `j` — bit-identical to
    /// `space.distance(&coords[i], &coords[j])`.
    #[inline]
    pub fn distance(&self, space: &Space, i: usize, j: usize) -> f64 {
        space.distance_flat(
            self.point(i),
            self.heights[i],
            self.point(j),
            self.heights[j],
        )
    }

    /// Copy the rows and heights of `idxs` into contiguous buffers — the
    /// gather step feeding [`Space::distance_flat_batch`].
    fn gather(&self, idxs: &[usize], rows: &mut Vec<f64>, heights: &mut Vec<f64>) {
        rows.clear();
        heights.clear();
        for &j in idxs {
            rows.extend_from_slice(self.point(j));
            heights.push(self.heights[j]);
        }
    }
}

/// Per-worker reusable buffers for the batched distance sweep: gathered
/// peer rows/heights plus the distance lane output.
#[derive(Debug, Default)]
struct DistScratch {
    rows: Vec<f64>,
    heights: Vec<f64>,
    dists: Vec<f64>,
}

/// A fixed evaluation plan: which peers each node's error is measured
/// against.
///
/// For systems up to `all_pairs_threshold` nodes every ordered pair inside
/// the evaluation set is used; above it, each node gets a fixed random
/// sample of `sample_peers` peers, drawn once at construction so time series
/// are not perturbed by resampling noise (see DESIGN.md "Error sampling").
#[derive(Debug, Clone)]
pub struct EvalPlan {
    /// Node ids being evaluated (typically the honest nodes).
    nodes: Vec<usize>,
    /// For each entry of `nodes`, the peers to measure against.
    peers: Vec<Vec<usize>>,
}

impl EvalPlan {
    /// Default cut-over from all-pairs to sampled evaluation.
    pub const ALL_PAIRS_THRESHOLD: usize = 512;

    /// Default number of sampled peers per node above the threshold.
    pub const SAMPLE_PEERS: usize = 256;

    /// Build a plan over `nodes` (peers are drawn from the same set).
    pub fn new<R: Rng + ?Sized>(nodes: &[usize], rng: &mut R) -> EvalPlan {
        Self::with_params(nodes, Self::ALL_PAIRS_THRESHOLD, Self::SAMPLE_PEERS, rng)
    }

    /// Build a plan with explicit threshold and sample size.
    pub fn with_params<R: Rng + ?Sized>(
        nodes: &[usize],
        all_pairs_threshold: usize,
        sample_peers: usize,
        rng: &mut R,
    ) -> EvalPlan {
        let nodes: Vec<usize> = nodes.to_vec();
        let peers = if nodes.len() <= all_pairs_threshold {
            nodes
                .iter()
                .map(|&i| nodes.iter().copied().filter(|&j| j != i).collect())
                .collect()
        } else {
            nodes
                .iter()
                .map(|&i| {
                    let mut pool: Vec<usize> = nodes.iter().copied().filter(|&j| j != i).collect();
                    pool.shuffle(rng);
                    pool.truncate(sample_peers);
                    pool
                })
                .collect()
        };
        EvalPlan { nodes, peers }
    }

    /// The evaluated node ids.
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Cut-over above which [`EvalPlan::per_node_errors`] fans node
    /// evaluation out over a worker pool (when more than one worker is
    /// available). Below it, thread-spawn overhead beats the win.
    pub const PARALLEL_THRESHOLD: usize = 192;

    /// Relative error of the `k`-th planned node given current coordinates.
    ///
    /// Infinite per-pair errors (degenerate predictions) are clamped to
    /// keep averages finite; the paper's plots are bounded the same way by
    /// construction.
    pub fn node_error(&self, k: usize, coords: &[Coord], space: &Space, matrix: &RttMatrix) -> f64 {
        let i = self.nodes[k];
        let peers = &self.peers[k];
        if peers.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for &j in peers {
            let actual = matrix.rtt(i, j);
            let predicted = space.distance(&coords[i], &coords[j]);
            sum += relative_error(actual, predicted).min(CLAMP);
        }
        sum / peers.len() as f64
    }

    /// [`EvalPlan::node_error`] evaluated against a flat snapshot: the
    /// node's peers are gathered into the scratch's contiguous buffers and
    /// all predicted distances come from one
    /// [`Space::distance_flat_batch`] call. Each distance and the
    /// peer-order error reduction are bit-identical to the per-pair path.
    fn node_error_snap(
        &self,
        k: usize,
        snap: &CoordSnapshot,
        space: &Space,
        matrix: &RttMatrix,
        scratch: &mut DistScratch,
    ) -> f64 {
        let i = self.nodes[k];
        let peers = &self.peers[k];
        if peers.is_empty() {
            return 0.0;
        }
        snap.gather(peers, &mut scratch.rows, &mut scratch.heights);
        scratch.dists.clear();
        scratch.dists.resize(peers.len(), 0.0);
        space.distance_flat_batch(
            snap.point(i),
            snap.heights[i],
            &scratch.rows,
            &scratch.heights,
            &mut scratch.dists,
        );
        let mut sum = 0.0;
        for (&j, &predicted) in peers.iter().zip(scratch.dists.iter()) {
            let actual = matrix.rtt(i, j);
            sum += relative_error(actual, predicted).min(CLAMP);
        }
        sum / peers.len() as f64
    }

    /// Median relative error of the `k`-th planned node — the robust
    /// per-node statistic used for convergence detection (a node's *mean*
    /// error is dominated by its smallest-RTT peers, whose relative errors
    /// swing wildly on tiny coordinate movements).
    pub fn node_error_median(
        &self,
        k: usize,
        coords: &[Coord],
        space: &Space,
        matrix: &RttMatrix,
    ) -> f64 {
        let i = self.nodes[k];
        let peers = &self.peers[k];
        if peers.is_empty() {
            return 0.0;
        }
        let mut errs: Vec<f64> = peers
            .iter()
            .map(|&j| {
                relative_error(matrix.rtt(i, j), space.distance(&coords[i], &coords[j])).min(CLAMP)
            })
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).expect("clamped finite"));
        errs[(errs.len() - 1) / 2]
    }

    /// Per-node median relative errors, in `nodes()` order.
    pub fn per_node_median_errors(
        &self,
        coords: &[Coord],
        space: &Space,
        matrix: &RttMatrix,
    ) -> Vec<f64> {
        (0..self.nodes.len())
            .map(|k| self.node_error_median(k, coords, space, matrix))
            .collect()
    }

    /// Per-node relative errors, in `nodes()` order.
    ///
    /// Restructured around a [`CoordSnapshot`] taken once per call; above
    /// [`EvalPlan::PARALLEL_THRESHOLD`] nodes the sweep fans out over
    /// [`worker_threads`] workers. Each worker owns a contiguous chunk of
    /// the output and every per-node value is a complete, independently
    /// computed mean, so results are bit-identical to the serial naive path
    /// regardless of worker count.
    ///
    /// [`worker_threads`]: crate::parallel::worker_threads
    pub fn per_node_errors(&self, coords: &[Coord], space: &Space, matrix: &RttMatrix) -> Vec<f64> {
        self.per_node_errors_with(coords, space, matrix, crate::parallel::worker_threads())
    }

    /// [`EvalPlan::per_node_errors`] with an explicit worker count
    /// (reproducibility harnesses and tests pin this; `1` forces the serial
    /// path).
    pub fn per_node_errors_with(
        &self,
        coords: &[Coord],
        space: &Space,
        matrix: &RttMatrix,
        threads: usize,
    ) -> Vec<f64> {
        let n = self.nodes.len();
        let Some(snap) = CoordSnapshot::capture(coords, space) else {
            // Dimension-degenerate input: the naive path is the behaviour
            // such coordinates always had.
            return (0..n)
                .map(|k| self.node_error(k, coords, space, matrix))
                .collect();
        };
        let mut out = vec![0.0; n];
        let workers = threads.max(1).min(n.max(1));
        if workers == 1 || n < Self::PARALLEL_THRESHOLD {
            let mut scratch = DistScratch::default();
            for (k, e) in out.iter_mut().enumerate() {
                *e = self.node_error_snap(k, &snap, space, matrix, &mut scratch);
            }
            return out;
        }
        let chunk = n.div_ceil(workers);
        // Worker timings flow back through the join handles and are
        // recorded by this coordinating thread in spawn order — workers
        // never touch the thread-local recorder, so traces stay
        // deterministic for any worker count (the crate's sequential-merge
        // discipline).
        let timed = vcoord_obs::enabled();
        std::thread::scope(|scope| {
            let handles: Vec<_> = out
                .chunks_mut(chunk)
                .enumerate()
                .map(|(c, slot)| {
                    let snap = &snap;
                    scope.spawn(move || {
                        let start = timed.then(std::time::Instant::now);
                        let mut scratch = DistScratch::default();
                        for (off, e) in slot.iter_mut().enumerate() {
                            *e = self.node_error_snap(
                                c * chunk + off,
                                snap,
                                space,
                                matrix,
                                &mut scratch,
                            );
                        }
                        start.map(|t| t.elapsed().as_nanos() as f64)
                    })
                })
                .collect();
            for handle in handles {
                if let Some(ns) = handle.join().expect("eval worker panicked") {
                    vcoord_obs::observe(vcoord_obs::metric_id!("evalplan.worker_ns"), ns);
                }
            }
        });
        vcoord_obs::counter_add(vcoord_obs::metric_id!("evalplan.parallel_sweeps"), 1);
        out
    }

    /// System-wide average relative error (the paper's headline accuracy
    /// indicator).
    ///
    /// Computed over [`EvalPlan::per_node_errors`] (snapshot path, possibly
    /// parallel) and reduced in deterministic `nodes()` order, so the result
    /// is bit-identical to the naive serial sweep.
    pub fn avg_error(&self, coords: &[Coord], space: &Space, matrix: &RttMatrix) -> f64 {
        self.avg_error_with(coords, space, matrix, crate::parallel::worker_threads())
    }

    /// [`EvalPlan::avg_error`] with an explicit worker count — callers that
    /// already run inside a worker pool (e.g. the figure harness's
    /// repetition workers) pass their leftover thread budget here instead
    /// of multiplying pools.
    pub fn avg_error_with(
        &self,
        coords: &[Coord],
        space: &Space,
        matrix: &RttMatrix,
        threads: usize,
    ) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .per_node_errors_with(coords, space, matrix, threads)
            .iter()
            .sum();
        total / self.nodes.len() as f64
    }
}

/// Average relative error of the paper's worst-case *random coordinate
/// system*: every node draws each coordinate component uniformly from
/// `[-range, range]` (§5.1 uses `range = 50 000`).
pub fn random_baseline<R: Rng + ?Sized>(
    plan: &EvalPlan,
    space: &Space,
    matrix: &RttMatrix,
    range: f64,
    rng: &mut R,
) -> f64 {
    random_baseline_with(
        plan,
        space,
        matrix,
        range,
        rng,
        crate::parallel::worker_threads(),
    )
}

/// [`random_baseline`] with an explicit worker count — see
/// [`EvalPlan::avg_error_with`] for when callers pass their own budget.
pub fn random_baseline_with<R: Rng + ?Sized>(
    plan: &EvalPlan,
    space: &Space,
    matrix: &RttMatrix,
    range: f64,
    rng: &mut R,
    threads: usize,
) -> f64 {
    let coords: Vec<Coord> = (0..matrix.len())
        .map(|_| space.random_coord(range, rng))
        .collect();
    plan.avg_error_with(&coords, space, matrix, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn relative_error_definition() {
        assert_eq!(relative_error(100.0, 100.0), 0.0);
        assert_eq!(relative_error(100.0, 50.0), 1.0); // |100-50|/50
        assert_eq!(relative_error(50.0, 100.0), 1.0);
        assert_eq!(relative_error(100.0, 300.0), 2.0);
    }

    #[test]
    fn relative_error_degenerate_inputs() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 10.0), f64::INFINITY);
        assert_eq!(relative_error(f64::NAN, 10.0), f64::INFINITY);
        assert_eq!(relative_error(10.0, f64::INFINITY), f64::INFINITY);
    }

    fn line_matrix() -> RttMatrix {
        // Nodes on a line at 0, 10, 25 → perfectly 1-D embeddable.
        let mut m = RttMatrix::zeros(3);
        m.set(0, 1, 10.0);
        m.set(0, 2, 25.0);
        m.set(1, 2, 15.0);
        m
    }

    fn line_coords() -> Vec<Coord> {
        vec![
            Coord::from_vec(vec![0.0]),
            Coord::from_vec(vec![10.0]),
            Coord::from_vec(vec![25.0]),
        ]
    }

    #[test]
    fn perfect_embedding_has_zero_error() {
        let m = line_matrix();
        let space = Space::Euclidean(1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::new(&[0, 1, 2], &mut rng);
        let coords = line_coords();
        assert_eq!(plan.avg_error(&coords, &space, &m), 0.0);
        assert_eq!(plan.per_node_errors(&coords, &space, &m), vec![0.0; 3]);
    }

    #[test]
    fn displaced_node_raises_its_error() {
        let m = line_matrix();
        let space = Space::Euclidean(1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::new(&[0, 1, 2], &mut rng);
        let mut coords = line_coords();
        coords[2] = Coord::from_vec(vec![50.0]); // should be at 25
        let errs = plan.per_node_errors(&coords, &space, &m);
        assert!(errs[2] > 0.5);
        assert!(errs[0] > 0.0); // pairwise, so peers see it too
    }

    #[test]
    fn plan_excludes_nodes_outside_eval_set() {
        let m = line_matrix();
        let space = Space::Euclidean(1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        // Node 2 (e.g. malicious) excluded: its lie must not affect the metric.
        let plan = EvalPlan::new(&[0, 1], &mut rng);
        let mut coords = line_coords();
        coords[2] = Coord::from_vec(vec![1.0e9]);
        assert_eq!(plan.avg_error(&coords, &space, &m), 0.0);
    }

    #[test]
    fn median_errors_are_robust_to_one_bad_peer() {
        let m = line_matrix();
        let space = Space::Euclidean(1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::new(&[0, 1, 2], &mut rng);
        let mut coords = line_coords();
        coords[2] = Coord::from_vec(vec![1.0e6]); // one blown-up node
        let means = plan.per_node_errors(&coords, &space, &m);
        let medians = plan.per_node_median_errors(&coords, &space, &m);
        // Node 0 has peers {1 (fine), 2 (blown up)}: its mean explodes but
        // its median stays moderate.
        assert!(means[0] > 1_000.0);
        assert!(medians[0] < means[0]);
    }

    #[test]
    fn sampled_plan_bounds_peer_count() {
        let n = 40;
        let mut m = RttMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, (i + j) as f64 + 1.0);
            }
        }
        let nodes: Vec<usize> = (0..n).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::with_params(&nodes, 10, 5, &mut rng);
        for (k, node) in nodes.iter().enumerate() {
            assert_eq!(plan.peers[k].len(), 5);
            assert!(!plan.peers[k].contains(node));
        }
    }

    #[test]
    fn random_baseline_is_terrible() {
        let m = line_matrix();
        let space = Space::Euclidean(2);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::new(&[0, 1, 2], &mut rng);
        let base = random_baseline(&plan, &space, &m, 50_000.0, &mut rng);
        assert!(base > 100.0, "baseline {base} suspiciously good");
    }

    /// The pre-snapshot evaluation path, retained as the oracle for the
    /// snapshot/parallel rewrite.
    fn per_node_errors_naive(
        plan: &EvalPlan,
        coords: &[Coord],
        space: &Space,
        m: &RttMatrix,
    ) -> Vec<f64> {
        (0..plan.nodes.len())
            .map(|k| plan.node_error(k, coords, space, m))
            .collect()
    }

    /// Random-ish but deterministic test world big enough to cross
    /// [`EvalPlan::PARALLEL_THRESHOLD`].
    fn random_world(n: usize, space: &Space, seed: u64) -> (RttMatrix, Vec<Coord>, EvalPlan) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut m = RttMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, rng.gen_range(1.0..400.0));
            }
        }
        let coords: Vec<Coord> = (0..n)
            .map(|_| space.random_coord(200.0, &mut rng))
            .collect();
        let nodes: Vec<usize> = (0..n).collect();
        let plan = EvalPlan::with_params(&nodes, n / 2, 24, &mut rng);
        (m, coords, plan)
    }

    #[test]
    fn snapshot_path_matches_naive_bitwise() {
        for space in [Space::Euclidean(3), Space::EuclideanHeight(2)] {
            let (m, coords, plan) = random_world(EvalPlan::PARALLEL_THRESHOLD + 28, &space, 9);
            let naive = per_node_errors_naive(&plan, &coords, &space, &m);
            for threads in [1, 2, 5] {
                let fast = plan.per_node_errors_with(&coords, &space, &m, threads);
                let naive_bits: Vec<u64> = naive.iter().map(|v| v.to_bits()).collect();
                let fast_bits: Vec<u64> = fast.iter().map(|v| v.to_bits()).collect();
                assert_eq!(naive_bits, fast_bits, "threads={threads} {space:?}");
            }
            // And the headline aggregate reduces identically.
            let avg_naive = naive.iter().sum::<f64>() / naive.len() as f64;
            let avg = plan.avg_error(&coords, &space, &m);
            assert_eq!(avg_naive.to_bits(), avg.to_bits());
        }
    }

    #[test]
    fn snapshot_rejects_mismatched_dimensions() {
        let space = Space::Euclidean(2);
        let ragged = vec![Coord::from_vec(vec![0.0, 1.0]), Coord::from_vec(vec![2.0])];
        assert!(CoordSnapshot::capture(&ragged, &space).is_none());
        // Coordinates of a dimension the space doesn't expect (but mutually
        // consistent): the evaluation path must fall back to the naive loop
        // and agree with it, not panic.
        let coords = vec![
            Coord::from_vec(vec![0.0, 1.0, 2.0]),
            Coord::from_vec(vec![3.0, 4.0, 5.0]),
        ];
        assert!(CoordSnapshot::capture(&coords, &space).is_none());
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut m = RttMatrix::zeros(2);
        m.set(0, 1, 5.0);
        let plan = EvalPlan::new(&[0, 1], &mut rng);
        let errs = plan.per_node_errors(&coords, &space, &m);
        assert_eq!(errs, per_node_errors_naive(&plan, &coords, &space, &m));
    }

    #[test]
    fn snapshot_distance_matches_space_distance() {
        let space = Space::EuclideanHeight(3);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let coords: Vec<Coord> = (0..8).map(|_| space.random_coord(50.0, &mut rng)).collect();
        let snap = CoordSnapshot::capture(&coords, &space).unwrap();
        for i in 0..coords.len() {
            for j in 0..coords.len() {
                assert_eq!(
                    snap.distance(&space, i, j).to_bits(),
                    space.distance(&coords[i], &coords[j]).to_bits()
                );
            }
        }
    }

    #[test]
    fn errors_are_always_finite() {
        let m = line_matrix();
        let space = Space::Euclidean(1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let plan = EvalPlan::new(&[0, 1, 2], &mut rng);
        let mut coords = line_coords();
        coords[1] = Coord::from_vec(vec![f64::NAN]);
        let errs = plan.per_node_errors(&coords, &space, &m);
        assert!(errs.iter().all(|e| e.is_finite()), "{errs:?}");
    }
}
