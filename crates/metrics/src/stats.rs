//! Summary-statistics helpers shared across the workspace.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `0.0` for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (of a copy; the input is not reordered); `0.0` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// Percentile `p ∈ [0, 1]` by nearest-rank on a sorted copy.
///
/// `0.0` for an empty slice. NaNs are filtered out defensively (adversarial
/// coordinate arithmetic can produce them upstream).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite"));
    let idx = ((v.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(mean(&xs), 22.0);
        assert_eq!(median(&xs), 3.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn percentile_extremes() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
    }

    #[test]
    fn percentile_ignores_nan() {
        let xs = [f64::NAN, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 2.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert_eq!(stddev(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn stddev_known_value() {
        // Population stddev of {2,4,4,4,5,5,7,9} is 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }
}
