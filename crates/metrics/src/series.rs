//! Tick-indexed time series.

use serde::{Deserialize, Serialize};

/// A time series sampled on simulation-tick boundaries.
///
/// Used for the error-vs-time figures; the x unit is the paper's simulation
/// tick (~17 s for Vivaldi, one repositioning period for NPS).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Append a sample. Ticks must be pushed in non-decreasing order.
    ///
    /// # Panics
    /// Panics in debug builds if `tick` precedes the last sample.
    pub fn push(&mut self, tick: u64, value: f64) {
        debug_assert!(
            self.points.last().map_or(true, |&(t, _)| tick >= t),
            "ticks must be non-decreasing"
        );
        self.points.push((tick, value));
    }

    /// All `(tick, value)` samples.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of the final `window` samples (all of them if fewer) — the
    /// "value after (re)convergence" statistic used by the sweep figures.
    pub fn tail_mean(&self, window: usize) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let skip = self.points.len().saturating_sub(window);
        let tail = &self.points[skip..];
        tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64
    }

    /// Divide every value by `denom`, producing the paper's *error ratio*
    /// series (degradation relative to the clean system). A non-positive
    /// denominator yields an empty series rather than infinities.
    pub fn ratio_to(&self, denom: f64) -> TimeSeries {
        if denom <= 0.0 || !denom.is_finite() {
            return TimeSeries::new();
        }
        TimeSeries {
            points: self.points.iter().map(|&(t, v)| (t, v / denom)).collect(),
        }
    }

    /// First tick at which the series stays within ±`tol` of its final value
    /// for `hold` consecutive samples — a simple convergence-time estimate.
    pub fn settle_tick(&self, tol: f64, hold: usize) -> Option<u64> {
        if self.points.len() < hold || hold == 0 {
            return None;
        }
        for start in 0..=(self.points.len() - hold) {
            let (t0, v0) = self.points[start];
            if self.points[start..start + hold]
                .iter()
                .all(|&(_, v)| (v - v0).abs() <= tol)
            {
                return Some(t0);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for (i, &v) in vals.iter().enumerate() {
            s.push(i as u64, v);
        }
        s
    }

    #[test]
    fn push_and_read_back() {
        let s = series(&[1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some(3.0));
        assert_eq!(s.points()[1], (1, 2.0));
    }

    #[test]
    fn tail_mean_windows() {
        let s = series(&[10.0, 10.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.tail_mean(3), 2.0);
        assert_eq!(s.tail_mean(100), 5.2);
        assert_eq!(TimeSeries::new().tail_mean(5), 0.0);
    }

    #[test]
    fn ratio_to_scales() {
        let s = series(&[2.0, 4.0]).ratio_to(2.0);
        assert_eq!(s.points(), &[(0, 1.0), (1, 2.0)]);
        assert!(series(&[1.0]).ratio_to(0.0).is_empty());
    }

    #[test]
    fn settle_tick_finds_plateau() {
        let s = series(&[5.0, 3.0, 1.0, 1.005, 0.995, 1.0, 1.0]);
        assert_eq!(s.settle_tick(0.02, 4), Some(2));
        assert_eq!(s.settle_tick(0.0001, 4), None); // no 4-wide window that tight
    }

    #[test]
    fn settle_tick_none_when_noisy() {
        let s = series(&[1.0, 2.0, 1.0, 2.0, 1.0]);
        assert_eq!(s.settle_tick(0.1, 3), None);
    }
}
