//! Property tests pinning `EvalPlan`'s snapshot (and parallel) evaluation
//! path to the naive per-`Coord` path: identical per-node errors and
//! identical averages, bit for bit, for any worker count.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use vcoord_metrics::EvalPlan;
use vcoord_space::{Coord, Space};
use vcoord_topo::RttMatrix;

/// The naive evaluation loop, written out independently of the snapshot
/// machinery: a plain map over the public single-node method.
fn naive_errors(plan: &EvalPlan, coords: &[Coord], space: &Space, m: &RttMatrix) -> Vec<f64> {
    (0..plan.nodes().len())
        .map(|k| plan.node_error(k, coords, space, m))
        .collect()
}

fn random_world(
    n: usize,
    space: &Space,
    seed: u64,
    sample_peers: usize,
) -> (RttMatrix, Vec<Coord>, EvalPlan) {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut m = RttMatrix::zeros(n);
    for i in 0..n {
        for j in (i + 1)..n {
            m.set(i, j, rng.gen_range(1.0..500.0));
        }
    }
    let coords: Vec<Coord> = (0..n)
        .map(|_| space.random_coord(250.0, &mut rng))
        .collect();
    let nodes: Vec<usize> = (0..n).collect();
    // A sub-`n` all-pairs threshold forces the sampled-peers shape too.
    let plan = EvalPlan::with_params(&nodes, n / 2, sample_peers, &mut rng);
    (m, coords, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Above the parallel threshold, every worker count must reproduce the
    /// naive path exactly — per node and in the aggregate.
    #[test]
    fn snapshot_parallel_path_matches_naive(
        seed in 0u64..10_000,
        extra in 0usize..40,
        threads in 2usize..6,
        heights in 0u8..2,
    ) {
        let space = if heights == 1 {
            Space::EuclideanHeight(3)
        } else {
            Space::Euclidean(2)
        };
        let n = EvalPlan::PARALLEL_THRESHOLD + extra;
        let (m, coords, plan) = random_world(n, &space, seed, 16);
        let naive = naive_errors(&plan, &coords, &space, &m);
        let serial = plan.per_node_errors_with(&coords, &space, &m, 1);
        let parallel = plan.per_node_errors_with(&coords, &space, &m, threads);
        let to_bits = |v: &[f64]| v.iter().map(|e| e.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(to_bits(&naive), to_bits(&serial), "serial snapshot diverges");
        prop_assert_eq!(to_bits(&naive), to_bits(&parallel), "parallel snapshot diverges");

        let avg = plan.avg_error(&coords, &space, &m);
        let avg_naive = naive.iter().sum::<f64>() / naive.len() as f64;
        prop_assert_eq!(avg.to_bits(), avg_naive.to_bits(), "average diverges");
    }

    /// Below the threshold (the smoke-scale shape) the snapshot fast path
    /// still runs serially — and must still match.
    #[test]
    fn snapshot_serial_path_matches_naive(
        seed in 0u64..10_000,
        n in 8usize..72,
        dim in 1usize..5,
    ) {
        let space = Space::Euclidean(dim);
        let (m, coords, plan) = random_world(n, &space, seed, 8);
        let naive = naive_errors(&plan, &coords, &space, &m);
        let fast = plan.per_node_errors(&coords, &space, &m);
        let to_bits = |v: &[f64]| v.iter().map(|e| e.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(to_bits(&naive), to_bits(&fast));
    }
}
