//! The `NoDefense` fast-path contract, enforced with the workspace's
//! counting allocator (`vcoord_obs::testing`): once deployed, the defended
//! update loop must add **zero heap allocation** per inspected sample —
//! the engine short-circuits before any history bookkeeping, and real
//! strategies reuse the `DefenseScratch` buffers after warm-up.
//!
//! This file holds exactly one `#[test]`: the libtest harness runs tests on
//! worker threads, and a sibling test allocating concurrently would
//! corrupt the global counter.

use vcoord_defense::testing::ring_fill_samples;
use vcoord_defense::{Defense, DriftCap, Provenance, Update};
use vcoord_obs::testing::{min_allocations_over, CountingAllocator};
use vcoord_space::{Coord, Space};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Distinct remote ids the sample stream cycles over.
const REMOTES: usize = 16;

#[test]
fn inspection_loops_are_allocation_free() {
    let space = Space::Euclidean(2);
    let me = Coord::origin(2);
    let them = Coord::from_vec(vec![120.0, 50.0]);
    let sample = |remote: usize, round: u64| Update {
        observer: 0,
        remote,
        reported_coord: &them,
        reported_error: 0.3,
        rtt: 100.0,
        round,
        now_ms: round * 1000,
        provenance: Provenance::Normal,
    };

    // --- NoDefense: zero allocation from the very first call. ---
    let mut none = Defense::none();
    none.inspect(&space, &me, sample(1, 0)); // pay one-time lazy init, if any
    let mut round = 1u64;
    let allocs = min_allocations_over(3, || {
        for _ in 0..10_000u64 {
            none.inspect(
                &space,
                &me,
                sample((round % REMOTES as u64) as usize, round),
            );
            round += 1;
        }
    });
    assert_eq!(
        allocs, 0,
        "NoDefense fast path allocated {allocs} times over 10k samples"
    );

    // --- A real strategy: allocation-free once warm-up has FILLED every
    // history ring (a growing ring still allocates). ---
    let warmup = ring_fill_samples(REMOTES);
    let mut armed = Defense::new(Box::new(DriftCap::new(1e12)));
    for round in 0..warmup {
        armed.inspect(
            &space,
            &me,
            sample((round % REMOTES as u64) as usize, round),
        );
    }
    let mut round = warmup;
    let allocs = min_allocations_over(3, || {
        for _ in 0..10_000u64 {
            armed.inspect(
                &space,
                &me,
                sample((round % REMOTES as u64) as usize, round),
            );
            round += 1;
        }
    });
    assert_eq!(
        allocs, 0,
        "warmed-up DriftCap inspection allocated {allocs} times over 10k samples"
    );
    assert_eq!(armed.stats().rejected, 0, "cap high enough to never ban");
}
