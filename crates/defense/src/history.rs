//! The neighbor-history store the defense engine maintains on behalf of
//! every strategy.
//!
//! Two indexes over the same sample stream:
//!
//! * [`RemoteHistory`] — per *reported-on* node, aggregated across all
//!   observers. Malicious nodes are probed by many victims every round, so
//!   this series fills fast even when any single observer samples a given
//!   neighbor rarely (Vivaldi probes one random spring-set member per
//!   tick). Aggregating verdict evidence across observers models the
//!   cooperative-detection deployments the paper's "verified set"
//!   discussion points at; a strictly node-local detector is the
//!   `observer`-ring view below.
//! * [`ObserverSample`] rings — per observer, its most recent samples
//!   across *all* neighbors: the local residual population (for outlier
//!   thresholds) and the recent coordinate/RTT pairs (for triangle checks).
//!
//! All rings recycle their slots — coordinate payloads are copied into
//! existing `Vec` capacity — so after warm-up the store records without
//! heap allocation.

use std::collections::HashMap;
use vcoord_space::{Coord, Space};

/// Residual-window length of [`RemoteHistory`].
pub const RESIDUAL_WINDOW: usize = 16;
/// Reported-coordinate trail length of [`RemoteHistory`].
pub const REPORTED_WINDOW: usize = 8;
/// Per-observer recent-sample ring length.
pub const OBSERVER_WINDOW: usize = 24;

/// Copy `src` into `dst` reusing `dst`'s buffer capacity.
fn copy_coord(dst: &mut Coord, src: &Coord) {
    dst.vec.clear();
    dst.vec.extend_from_slice(&src.vec);
    dst.height = src.height;
}

/// Accumulated history of one node's reports, across all observers.
#[derive(Debug, Clone, Default)]
pub struct RemoteHistory {
    /// Ring of signed residuals `rtt − predicted` (ms), unordered.
    residuals: Vec<f64>,
    /// Ring of relative residuals `|predicted − rtt| / rtt`, parallel to
    /// `residuals`.
    rel_residuals: Vec<f64>,
    /// Ring of *pull vectors*, parallel to `residuals`: the per-sample
    /// displacement this node's report exerts on its observer,
    /// `(rtt − predicted) · u(observer − reported)`, stored as Euclidean
    /// components plus a trailing height component. See
    /// [`RemoteHistory::mean_pull_norm`].
    pulls: Vec<Vec<f64>>,
    cursor: usize,
    /// Ring of `(round, reported coordinate)` — the report trail.
    reported: Vec<(u64, Coord)>,
    rep_cursor: usize,
    samples: u64,
    last_round: u64,
}

/// Write the pull vector of one sample into `slot` without allocating
/// (beyond the slot's own one-time growth): the unit direction of
/// `observer − reported` under the height-model norm, scaled by the signed
/// residual. A zero displacement leaves a zero pull.
fn write_pull(slot: &mut Vec<f64>, observer: &Coord, reported: &Coord, residual: f64) {
    slot.clear();
    let mut sq = 0.0;
    for (a, b) in observer.vec.iter().zip(&reported.vec) {
        let c = a - b;
        sq += c * c;
        slot.push(c);
    }
    // Height-model semantics: heights add under subtraction (the path
    // descends one access link and climbs the other).
    let height = observer.height + reported.height;
    slot.push(height);
    let norm = sq.sqrt() + height;
    if norm > f64::EPSILON {
        let s = residual / norm;
        for c in slot.iter_mut() {
            *c *= s;
        }
    } else {
        for c in slot.iter_mut() {
            *c = 0.0;
        }
    }
}

impl RemoteHistory {
    /// An empty history.
    pub fn new() -> RemoteHistory {
        RemoteHistory::default()
    }

    /// Total samples ever recorded for this node.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Round of the most recent sample.
    pub fn last_round(&self) -> u64 {
        self.last_round
    }

    /// The retained window of signed residuals (ms), unordered.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// The retained window of relative residuals, unordered.
    pub fn rel_residuals(&self) -> &[f64] {
        &self.rel_residuals
    }

    /// Mean *signed* residual over the window (`None` when empty). Note
    /// the caveat that motivates [`RemoteHistory::mean_pull_norm`]: an
    /// honest node whose topology cannot be embedded (the classic
    /// access-link/height effect) holds a *scalar* residual bias to every
    /// neighbor, so this mean alone misfires on real topologies.
    pub fn mean_residual(&self) -> Option<f64> {
        if self.residuals.is_empty() {
            return None;
        }
        Some(self.residuals.iter().sum::<f64>() / self.residuals.len() as f64)
    }

    /// Norm of the **vector** mean pull this node's reports exert on their
    /// observers, ms per sample (`None` when the window is empty).
    ///
    /// This is the quantity that separates a colluder from an
    /// unembeddable-but-honest node: the hub node with `rtt > predicted`
    /// to *everyone* pulls its observers radially outward — directions
    /// cancel and the vector mean vanishes (that cancellation is exactly
    /// why it sits at spring equilibrium) — while a frog-boiling colluder
    /// pulls every observer along the shared collusion axis, so the
    /// vector mean keeps the full gap magnitude.
    pub fn mean_pull_norm(&self) -> Option<f64> {
        let first = self.pulls.first()?;
        let dims = first.len();
        let mut acc = [0.0f64; 16];
        if dims > acc.len() {
            // Beyond any space the workspace sweeps (≤ 12-D + height);
            // fall back to the scalar mean rather than allocating.
            return self.mean_residual().map(f64::abs);
        }
        for pull in &self.pulls {
            for (a, c) in acc.iter_mut().zip(pull) {
                *a += *c;
            }
        }
        let n = self.pulls.len() as f64;
        let sq: f64 = acc[..dims].iter().map(|a| (a / n) * (a / n)).sum();
        Some(sq.sqrt())
    }

    /// Net displacement per round of the *reported* coordinate across the
    /// retained trail: `dist(newest, oldest) / (round_newest − round_oldest)`.
    /// `None` until the trail spans at least one round.
    pub fn reported_velocity(&self, space: &Space) -> Option<f64> {
        if self.reported.len() < 2 {
            return None;
        }
        let (oldest_idx, newest_idx) = if self.reported.len() < REPORTED_WINDOW {
            (0, self.reported.len() - 1)
        } else {
            // Full ring: the slot about to be overwritten is the oldest.
            (
                self.rep_cursor,
                (self.rep_cursor + REPORTED_WINDOW - 1) % REPORTED_WINDOW,
            )
        };
        let (r0, ref c0) = self.reported[oldest_idx];
        let (r1, ref c1) = self.reported[newest_idx];
        let span = r1.saturating_sub(r0);
        if span == 0 {
            return None;
        }
        Some(space.distance(c1, c0) / span as f64)
    }

    fn record(
        &mut self,
        round: u64,
        observer: &Coord,
        reported: &Coord,
        residual: f64,
        rel_residual: f64,
    ) {
        if self.residuals.len() < RESIDUAL_WINDOW {
            self.residuals.push(residual);
            self.rel_residuals.push(rel_residual);
            let mut slot = Vec::new();
            write_pull(&mut slot, observer, reported, residual);
            self.pulls.push(slot);
        } else {
            self.residuals[self.cursor] = residual;
            self.rel_residuals[self.cursor] = rel_residual;
            write_pull(&mut self.pulls[self.cursor], observer, reported, residual);
            self.cursor = (self.cursor + 1) % RESIDUAL_WINDOW;
        }
        if self.reported.len() < REPORTED_WINDOW {
            self.reported.push((round, reported.clone()));
        } else {
            let slot = &mut self.reported[self.rep_cursor];
            slot.0 = round;
            copy_coord(&mut slot.1, reported);
            self.rep_cursor = (self.rep_cursor + 1) % REPORTED_WINDOW;
        }
        self.samples += 1;
        self.last_round = round;
    }
}

/// One retained sample in an observer's recent ring.
#[derive(Debug, Clone)]
pub struct ObserverSample {
    /// The neighbor that reported.
    pub remote: usize,
    /// The coordinate it reported.
    pub coord: Coord,
    /// The measured RTT, ms.
    pub rtt: f64,
    /// Signed residual `rtt − predicted` at inspection time.
    pub residual: f64,
    /// Relative residual at inspection time.
    pub rel_residual: f64,
    /// Round the sample arrived in.
    pub round: u64,
}

#[derive(Debug, Clone, Default)]
struct ObserverHistory {
    ring: Vec<ObserverSample>,
    cursor: usize,
}

impl ObserverHistory {
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        remote: usize,
        coord: &Coord,
        rtt: f64,
        residual: f64,
        rel_residual: f64,
        round: u64,
    ) {
        if self.ring.len() < OBSERVER_WINDOW {
            self.ring.push(ObserverSample {
                remote,
                coord: coord.clone(),
                rtt,
                residual,
                rel_residual,
                round,
            });
        } else {
            let slot = &mut self.ring[self.cursor];
            slot.remote = remote;
            copy_coord(&mut slot.coord, coord);
            slot.rtt = rtt;
            slot.residual = residual;
            slot.rel_residual = rel_residual;
            slot.round = round;
            self.cursor = (self.cursor + 1) % OBSERVER_WINDOW;
        }
    }
}

/// The full history store: per-remote report series plus per-observer
/// recent rings.
#[derive(Debug, Clone, Default)]
pub struct NeighborHistory {
    remotes: HashMap<usize, RemoteHistory>,
    observers: HashMap<usize, ObserverHistory>,
}

impl NeighborHistory {
    /// An empty store.
    pub fn new() -> NeighborHistory {
        NeighborHistory::default()
    }

    /// History of `remote`'s reports, if any sample was recorded.
    pub fn remote(&self, remote: usize) -> Option<&RemoteHistory> {
        self.remotes.get(&remote)
    }

    /// `observer`'s recent samples across all neighbors, unordered.
    pub fn recent(&self, observer: usize) -> &[ObserverSample] {
        self.observers
            .get(&observer)
            .map(|h| h.ring.as_slice())
            .unwrap_or(&[])
    }

    /// Ensure both indexes have entries (allocating only on first contact),
    /// so the engine can hand out borrows before recording.
    pub(crate) fn ensure(&mut self, observer: usize, remote: usize) {
        self.remotes.entry(remote).or_default();
        self.observers.entry(observer).or_default();
    }

    /// Record one inspected sample into the remote's report trail (every
    /// inspected sample belongs here — detectors keep observing flagged
    /// nodes).
    pub(crate) fn record_remote(
        &mut self,
        observer_coord: &Coord,
        remote: usize,
        round: u64,
        reported: &Coord,
        residual: f64,
        rel_residual: f64,
    ) {
        self.remotes.entry(remote).or_default().record(
            round,
            observer_coord,
            reported,
            residual,
            rel_residual,
        );
    }

    /// Record one sample into the observer's recent ring — the population
    /// thresholds calibrate against, so the engine only routes
    /// non-rejected samples here.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_observer(
        &mut self,
        observer: usize,
        remote: usize,
        round: u64,
        reported: &Coord,
        rtt: f64,
        residual: f64,
        rel_residual: f64,
    ) {
        self.observers.entry(observer).or_default().record(
            remote,
            reported,
            rtt,
            residual,
            rel_residual,
            round,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoord_space::Space;

    #[test]
    fn remote_window_wraps_and_means() {
        let mut h = RemoteHistory::new();
        let reported = Coord::origin(2);
        let observer = Coord::from_vec(vec![100.0, 0.0]);
        for k in 0..(RESIDUAL_WINDOW + 4) {
            h.record(k as u64, &observer, &reported, 10.0, 0.1);
        }
        assert_eq!(h.samples(), (RESIDUAL_WINDOW + 4) as u64);
        assert_eq!(h.residuals().len(), RESIDUAL_WINDOW);
        assert_eq!(h.mean_residual(), Some(10.0));
        // One observer, fixed direction: the vector mean keeps the full
        // magnitude.
        assert!((h.mean_pull_norm().unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(h.last_round(), (RESIDUAL_WINDOW + 3) as u64);
    }

    #[test]
    fn hub_bias_cancels_vectorially_but_coherent_drag_does_not() {
        // The discriminator behind DriftCap: an honest unembeddable hub
        // (positive residual to observers all around it) has a large
        // scalar mean but a vanishing vector mean; a colluder pulling
        // every observer the same way keeps both.
        let reported = Coord::origin(2);
        let mut hub = RemoteHistory::new();
        for k in 0..8u64 {
            let a = k as f64 / 8.0 * std::f64::consts::TAU;
            let observer = Coord::from_vec(vec![100.0 * a.cos(), 100.0 * a.sin()]);
            hub.record(k, &observer, &reported, 50.0, 0.5);
        }
        assert_eq!(hub.mean_residual(), Some(50.0), "scalar bias persists");
        assert!(
            hub.mean_pull_norm().unwrap() < 1e-9,
            "radial pulls must cancel: {}",
            hub.mean_pull_norm().unwrap()
        );

        let mut colluder = RemoteHistory::new();
        for k in 0..8u64 {
            // Observers scattered, but the reported coordinate sits far
            // out along the collusion axis: every pull is ~axis-aligned.
            let observer = Coord::from_vec(vec![10.0 * k as f64, 5.0]);
            let far = Coord::from_vec(vec![10_000.0, 0.0]);
            colluder.record(k, &observer, &far, -120.0, 1.2);
        }
        assert!(
            colluder.mean_pull_norm().unwrap() > 110.0,
            "coherent drag must survive the vector mean: {}",
            colluder.mean_pull_norm().unwrap()
        );
    }

    #[test]
    fn reported_velocity_tracks_a_moving_trail() {
        let space = Space::Euclidean(2);
        let mut h = RemoteHistory::new();
        let observer = Coord::origin(2);
        // Reported coordinate advances 5 ms per round along x.
        for r in 0..20u64 {
            let c = Coord::from_vec(vec![5.0 * r as f64, 0.0]);
            h.record(r, &observer, &c, 0.0, 0.0);
        }
        let v = h.reported_velocity(&space).unwrap();
        assert!((v - 5.0).abs() < 1e-9, "velocity {v}");
    }

    #[test]
    fn reported_velocity_none_without_span() {
        let space = Space::Euclidean(2);
        let mut h = RemoteHistory::new();
        assert!(h.reported_velocity(&space).is_none());
        let c = Coord::origin(2);
        h.record(3, &c, &c, 0.0, 0.0);
        h.record(3, &c, &c, 0.0, 0.0); // same round: zero span
        assert!(h.reported_velocity(&space).is_none());
    }

    #[test]
    fn observer_ring_wraps_and_reuses_slots() {
        let mut store = NeighborHistory::new();
        let c = Coord::from_vec(vec![1.0, 2.0]);
        let me = Coord::origin(2);
        for k in 0..(OBSERVER_WINDOW + 7) {
            store.record_remote(&me, k % 5, k as u64, &c, -1.0, 0.02);
            store.record_observer(0, k % 5, k as u64, &c, 50.0, -1.0, 0.02);
        }
        let recent = store.recent(0);
        assert_eq!(recent.len(), OBSERVER_WINDOW);
        assert!(recent.iter().all(|s| s.coord == c && s.rtt == 50.0));
        assert!(store.recent(99).is_empty(), "unknown observer: empty slice");
        assert!(store.remote(0).is_some());
        assert_eq!(
            store.remote(0).unwrap().samples() as usize
                + store.remote(1).unwrap().samples() as usize
                + store.remote(2).unwrap().samples() as usize
                + store.remote(3).unwrap().samples() as usize
                + store.remote(4).unwrap().samples() as usize,
            OBSERVER_WINDOW + 7
        );
    }
}
