//! # vcoord-defense
//!
//! A pluggable defense/detection engine for Internet coordinate systems:
//! the single seam through which both systems under test (Vivaldi and NPS)
//! screen incoming coordinate/RTT samples — the mirror image of
//! `vcoord-attackkit` on the victim side of the protocol.
//!
//! The CoNEXT'06 paper demonstrates the attacks and stops short of
//! systematic countermeasures; this crate supplies the countermeasure side
//! of the sweep surface. Everything system-specific (when samples arrive,
//! what a rejection means to the update rule) stays in the simulators;
//! everything detection-specific lives here:
//!
//! * [`DefenseStrategy`] — the strategy trait, with per-round state
//!   ([`DefenseStrategy::on_round`]) and the read-only [`UpdateView`] of
//!   each sample (reported coordinate, measured RTT, predicted distance,
//!   neighbor history);
//! * [`Verdict`] — what to do with a sample: `Accept`, `Reject`, or
//!   `Dampen(f)` (graduated trust; `Dampen(1.0)` is bit-identical to
//!   `Accept` in both simulators);
//! * [`Defense`] — the engine object a simulator holds next to its
//!   attackkit `Scenario` slot: strategy + shared [`NeighborHistory`] +
//!   reusable [`DefenseScratch`] + [`DefenseStats`] verdict accounting
//!   (graded into a [`vcoord_metrics::Confusion`] by the harness);
//! * [`strategies`] — the concrete detectors: residual-based
//!   ([`ResidualOutlier`], [`EwmaChangePoint`]) with their documented
//!   consistent-liar blind spot, structural ([`DriftCap`] — the one that
//!   catches frog-boiling — and [`TriangleCheck`]), the paper-style
//!   verified set ([`TrustedBaseline`]), and the zero-cost [`NoDefense`]
//!   null.
//!
//! ## Example
//!
//! ```
//! use vcoord_defense::{Defense, DriftCap, Provenance, Update, Verdict};
//! use vcoord_space::{Coord, Space};
//!
//! let space = Space::Euclidean(2);
//! let me = Coord::origin(2);
//! // A neighbor that persistently claims to sit farther away than the
//! // honestly-measured RTT supports: the frog-boiling signature.
//! let reported = Coord::from_vec(vec![250.0, 0.0]);
//!
//! let mut defense = Defense::new(Box::new(DriftCap::new(40.0)));
//! let mut last = Verdict::Accept;
//! // The cap arms once the neighbor's full 16-sample window has filled.
//! for round in 0..24 {
//!     last = defense.inspect(
//!         &space,
//!         &me,
//!         Update {
//!             observer: 0,
//!             remote: 7,
//!             reported_coord: &reported,
//!             reported_error: 0.01,
//!             rtt: 100.0,
//!             round,
//!             now_ms: round * 1000,
//!             provenance: Provenance::Normal,
//!         },
//!     );
//! }
//! assert_eq!(last, Verdict::Reject, "persistent drag gets banned");
//! assert!(defense.stats().rejected > 0);
//! ```

pub mod engine;
pub mod history;
pub mod strategies;
pub mod strategy;
pub mod testing;

pub use engine::{Defense, DefenseStats, Update};
pub use history::{NeighborHistory, ObserverSample, RemoteHistory};
pub use strategies::{
    Dampener, DriftCap, DriftDecay, EwmaChangePoint, NoDefense, ResidualOutlier, TriangleCheck,
    TrustedBaseline,
};
pub use strategy::{DefenseScratch, DefenseStrategy, Provenance, UpdateView, Verdict};
