//! Test support for the crate's zero-allocation contracts.
//!
//! The counting global allocator itself lives in
//! [`vcoord_obs::testing`] — shared by every no-alloc suite in the
//! workspace (defense, obs, vivaldi, nps) and the kernels bench, so the
//! assertion sites cannot drift apart on what "allocation" means. This
//! module re-exports it for existing importers and keeps the
//! defense-specific warm-up bound, which derives from this crate's history
//! window constants.
//!
//! Each consuming *binary* still declares its own
//! `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
//! (the attribute is per-binary by construction).

pub use vcoord_obs::testing::{allocations, CountingAllocator};

/// Warm-up samples that provably fill every history ring for a workload
/// cycling over `remotes` distinct neighbors: a *growing* ring still
/// allocates, so zero-allocation assertions must start after the deepest
/// window has wrapped for every remote (×2 for slack).
pub fn ring_fill_samples(remotes: usize) -> u64 {
    let deepest = crate::history::RESIDUAL_WINDOW
        .max(crate::history::REPORTED_WINDOW)
        .max(crate::history::OBSERVER_WINDOW);
    (remotes * deepest * 2) as u64
}
