//! Test support for the crate's zero-allocation contracts: a counting
//! global allocator shared by `crates/defense/tests/no_alloc.rs` and the
//! `defense_inspect` group of the workspace kernels bench, so the two
//! assertion sites cannot drift apart on what "allocation" means.
//!
//! Each consuming *binary* still declares its own
//! `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
//! (the attribute is per-binary by construction); the struct, the counter,
//! and the ring-fill warm-up bound live here once.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of allocation/reallocation calls observed so far in this
/// process.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Warm-up samples that provably fill every history ring for a workload
/// cycling over `remotes` distinct neighbors: a *growing* ring still
/// allocates, so zero-allocation assertions must start after the deepest
/// window has wrapped for every remote (×2 for slack).
pub fn ring_fill_samples(remotes: usize) -> u64 {
    let deepest = crate::history::RESIDUAL_WINDOW
        .max(crate::history::REPORTED_WINDOW)
        .max(crate::history::OBSERVER_WINDOW);
    (remotes * deepest * 2) as u64
}

/// A [`System`]-delegating allocator that counts `alloc`/`realloc` calls.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
