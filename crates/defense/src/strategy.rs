//! The generic defense seam: [`DefenseStrategy`], its [`Verdict`], the
//! read-only [`UpdateView`], and the reusable [`DefenseScratch`].
//!
//! The contract mirrors `vcoord-attackkit`'s adversary seam from the other
//! side of the protocol: where an attack strategy decides what a malicious
//! node *reports*, a defense strategy decides what an honest node *does*
//! with a report. A strategy sees exactly what a deployed victim could see —
//! the reported coordinate, the measured RTT, its own current coordinate and
//! the distance that coordinate pair implies — plus the accumulated
//! neighbor history the engine maintains. It never sees ground truth: the
//! simulators' `malicious` flags exist only in the harness, which uses them
//! *after the fact* to grade verdicts into a
//! [`Confusion`](vcoord_metrics::Confusion) matrix.

use vcoord_space::{Coord, Space};

use crate::history::{ObserverSample, RemoteHistory};

/// Where a sample came from, as far as the defense is concerned.
///
/// Almost every sample is [`Normal`]: a probe of a reference the observer
/// freely chose (or was handed by membership). [`Lease`] marks evidence
/// from a *readmission lease* — a banned reference the NPS starvation
/// relief valve readmitted into the probe rotation without un-banning it.
/// Leased evidence is **quarantined** in the engine: it never enters the
/// remote-history windows that feed reputation decay's healed-window
/// condition, so a reformed attacker cannot launder its way back to
/// `Reinstate` through a channel the ban was supposed to close (the
/// probation-leak defect measured by `chaos-probation-leak`).
///
/// [`Normal`]: Provenance::Normal
/// [`Lease`]: Provenance::Lease
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Provenance {
    /// An ordinary probe of a freely chosen reference.
    #[default]
    Normal,
    /// A probe of a lease-readmitted, still-banned reference.
    Lease,
}

impl Provenance {
    /// Whether the engine quarantines this sample's evidence (keeps it out
    /// of the history windows that feed healed-window reinstatement).
    pub fn is_quarantined(&self) -> bool {
        matches!(self, Provenance::Lease)
    }
}

/// A strategy's decision about one incoming coordinate/RTT sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Apply the update unchanged.
    Accept,
    /// Drop the sample entirely (it never reaches the update rule).
    Reject,
    /// Apply the update at reduced strength: the factor scales Vivaldi's
    /// timestep `δ` (coordinate movement only; the error estimate update is
    /// untouched) and weights the sample's term in the NPS fit objective.
    ///
    /// `Dampen(1.0)` is **bit-identical** to [`Verdict::Accept`] — both
    /// simulators implement dampening as a trailing `× factor` on existing
    /// expressions, and `x × 1.0` preserves every bit of `x` — so a strategy
    /// may emit continuous confidence without a discontinuity at full trust.
    Dampen(f64),
}

impl Verdict {
    /// The update-strength factor this verdict applies: `Accept` = 1,
    /// `Reject` = 0, `Dampen(f)` = `f` clamped to `[0, 1]`. A
    /// non-finite `Dampen` payload (a strategy's 0/0 confidence ratio)
    /// clamps to 0 — `f64::clamp` would propagate the NaN straight into
    /// the victim's coordinates, silently and unflagged.
    pub fn factor(&self) -> f64 {
        match self {
            Verdict::Accept => 1.0,
            Verdict::Reject => 0.0,
            Verdict::Dampen(f) if f.is_nan() => 0.0,
            Verdict::Dampen(f) => f.clamp(0.0, 1.0),
        }
    }

    /// Whether this verdict counts as *flagging* the remote node for
    /// detection accounting: rejections and strict dampenings (factor
    /// below 1, including a NaN payload) do; `Accept` and the
    /// `Dampen(1.0)` identity do not.
    pub fn is_flag(&self) -> bool {
        match self {
            Verdict::Accept => false,
            Verdict::Reject => true,
            Verdict::Dampen(_) => self.factor() < 1.0,
        }
    }
}

/// Read-only view of one coordinate/RTT sample, as the observing node sees
/// it before applying its update rule.
///
/// `predicted` is the distance the observer's *current* coordinate implies
/// to the *reported* coordinate — the quantity every residual-based filter
/// compares against the measured RTT. The history references cover events
/// strictly before this sample (the engine records it only after the
/// verdict), so a strategy never judges a sample against itself.
pub struct UpdateView<'a> {
    /// The embedding space.
    pub space: &'a Space,
    /// The honest node applying the update.
    pub observer: usize,
    /// The node whose report is being judged.
    pub remote: usize,
    /// The observer's current coordinate.
    pub observer_coord: &'a Coord,
    /// The coordinate the remote reported (possibly a lie).
    pub reported_coord: &'a Coord,
    /// The error estimate the remote reported; `1.0` for systems that carry
    /// none (NPS).
    pub reported_error: f64,
    /// The measured RTT, ms (possibly adversarially delayed, never
    /// shortened).
    pub rtt: f64,
    /// Distance from `observer_coord` to `reported_coord`.
    pub predicted: f64,
    /// The system's round index (Vivaldi probe tick / NPS repositioning
    /// period).
    pub round: u64,
    /// Current simulated time, ms.
    pub now_ms: u64,
    /// Where the sample came from ([`Provenance::Lease`] evidence is
    /// quarantined by the engine and judged — but never *credited* — by
    /// reputation-decay strategies).
    pub provenance: Provenance,
    /// Accumulated history of the remote node's reports (all observers).
    pub remote_history: &'a RemoteHistory,
    /// The observer's recent samples across all its neighbors, unordered.
    pub recent: &'a [ObserverSample],
}

impl UpdateView<'_> {
    /// Signed residual `rtt − predicted`, in ms. Its time-average is the
    /// directed pull this neighbor exerts on the observer: a Vivaldi sample
    /// moves the observer by `Cc · w · (rtt − predicted)` along the
    /// connecting direction.
    pub fn residual(&self) -> f64 {
        self.rtt - self.predicted
    }

    /// Relative residual `|predicted − rtt| / rtt` — the paper's fitting
    /// error `E_Ri`, the scale-free quantity outlier filters threshold.
    /// Infinite for non-positive RTTs (the simulators reject those before
    /// the defense ever sees them).
    pub fn rel_residual(&self) -> f64 {
        if self.rtt > 0.0 {
            (self.predicted - self.rtt).abs() / self.rtt
        } else {
            f64::INFINITY
        }
    }
}

/// Reusable working buffers threaded through every
/// [`DefenseStrategy::inspect_update`] call, like `PositionScratch` on the
/// NPS positioning path: strategies that need a sorted copy of a residual
/// window (median/MAD/percentile computations) sort into these instead of
/// allocating, so the steady-state inspection loop is allocation-free.
#[derive(Debug, Default, Clone)]
pub struct DefenseScratch {
    /// Primary sort buffer (values under test).
    pub sort: Vec<f64>,
    /// Secondary buffer (e.g. absolute deviations for MAD).
    pub aux: Vec<f64>,
}

impl DefenseScratch {
    /// A new, empty scratch; buffers grow on first use.
    pub fn new() -> DefenseScratch {
        DefenseScratch::default()
    }
}

/// Median of `values` after sorting them in place. `None` when empty.
pub(crate) fn median_in_place(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(values[values.len() / 2])
}

/// A strategy deciding what an observing node does with each incoming
/// coordinate/RTT sample, with per-round mutable state.
///
/// Strategies are system-agnostic: the same object screens Vivaldi spring
/// samples and NPS reference probes through [`crate::Defense`], which owns
/// the shared [`NeighborHistory`](crate::NeighborHistory) and invokes
/// [`DefenseStrategy::on_round`] once per elapsed round before the round's
/// first inspection.
pub trait DefenseStrategy {
    /// Called exactly once per elapsed round (Vivaldi tick / NPS
    /// repositioning period), before the first
    /// [`DefenseStrategy::inspect_update`] of that round. Decay-based
    /// detectors advance their windows here.
    fn on_round(&mut self, _round: u64) {}

    /// Judge one sample.
    fn inspect_update(&mut self, view: &UpdateView<'_>, scratch: &mut DefenseScratch) -> Verdict;

    /// Drain the reputation events this strategy emitted since the last
    /// call, *appending* node ids to `banned` / `reinstated`.
    ///
    /// This is the `Verdict`-adjacent side channel of banning strategies:
    /// a [`Verdict::Reject`] says what to do with *one sample*, while a
    /// ban/reinstate event says what happened to the *node* — the
    /// simulators route bans into their structural machinery (NPS's
    /// ban/replacement channel, Vivaldi's quarantine bookkeeping) and a
    /// `Reinstate` event undoes it (NPS scrubs the node from every rolling
    /// ban list so the membership server can hand it out again; Vivaldi
    /// clears the quarantine flag and the neighbor relationship resumes).
    /// The default implementation emits nothing, so non-banning strategies
    /// and the pre-decay deployments are untouched.
    fn drain_reputation(&mut self, _banned: &mut Vec<usize>, _reinstated: &mut Vec<usize>) {}

    /// `true` for the null strategy only: the engine short-circuits
    /// inspection entirely (no history, no predicted-distance computation,
    /// no allocation) when this returns `true`.
    fn is_passthrough(&self) -> bool {
        false
    }

    /// A short label for logs and CSV headers.
    fn label(&self) -> &'static str {
        "defense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_factors_and_flags() {
        assert_eq!(Verdict::Accept.factor(), 1.0);
        assert_eq!(Verdict::Reject.factor(), 0.0);
        assert_eq!(Verdict::Dampen(0.25).factor(), 0.25);
        assert_eq!(Verdict::Dampen(7.0).factor(), 1.0, "factor clamps to [0,1]");
        assert_eq!(
            Verdict::Dampen(f64::NAN).factor(),
            0.0,
            "a NaN confidence must not poison coordinates"
        );
        assert!(Verdict::Dampen(f64::NAN).is_flag());
        assert!(!Verdict::Accept.is_flag());
        assert!(Verdict::Reject.is_flag());
        assert!(Verdict::Dampen(0.5).is_flag());
        assert!(
            !Verdict::Dampen(1.0).is_flag(),
            "the identity dampening is not a flag"
        );
    }

    #[test]
    fn view_residuals() {
        let space = Space::Euclidean(2);
        let observer_coord = Coord::from_vec(vec![0.0, 0.0]);
        let reported = Coord::from_vec(vec![30.0, 40.0]);
        let remote_history = RemoteHistory::new();
        let view = UpdateView {
            space: &space,
            observer: 0,
            remote: 1,
            observer_coord: &observer_coord,
            reported_coord: &reported,
            reported_error: 1.0,
            rtt: 100.0,
            predicted: 50.0,
            round: 3,
            now_ms: 3000,
            provenance: Provenance::Normal,
            remote_history: &remote_history,
            recent: &[],
        };
        assert_eq!(view.residual(), 50.0);
        assert_eq!(view.rel_residual(), 0.5);
    }

    #[test]
    fn provenance_quarantine_flag() {
        assert!(!Provenance::Normal.is_quarantined());
        assert!(Provenance::Lease.is_quarantined());
        assert_eq!(Provenance::default(), Provenance::Normal);
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median_in_place(&mut []), None);
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), Some(2.0));
        // Even length: upper median (index len/2) by convention.
        assert_eq!(median_in_place(&mut [4.0, 1.0, 3.0, 2.0]), Some(3.0));
    }
}
