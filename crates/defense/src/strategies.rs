//! Concrete defense strategies.
//!
//! Residual-based filters and their blind spot:
//!
//! * [`ResidualOutlier`] — MAD outlier rejection on the relative
//!   RTT-vs-predicted residual, thresholded against the observer's own
//!   recent residual population. Catches loud lies (disorder, inflation)
//!   instantly; *misses consistent liars* — a frog-boiling colluder keeps
//!   each individual residual inside the honest noise band.
//! * [`EwmaChangePoint`] — EWMA change-point detection on each neighbor's
//!   residual series. Catches *behavioral shifts* (a node that starts
//!   lying, oscillation's swings); converges onto a *steady* lie and
//!   learns it as the baseline — the same blind spot, reached differently.
//!
//! Structural checks that do not depend on residual magnitude:
//!
//! * [`DriftCap`] — caps the mean *signed* residual a neighbor may sustain:
//!   honest neighbors are zero-mean (embedding noise cancels), while any
//!   consistent directional liar — however small each lie — must keep a
//!   persistent signed gap open, because that gap *is* the pull that drags
//!   victims (a Vivaldi sample moves its victim by `Cc · w · (rtt −
//!   predicted)`). This is the detector that finally catches frog-boiling.
//! * [`TriangleCheck`] — geometric consistency of a reported coordinate
//!   against the observer's other recent neighbors: claimed pairwise
//!   separations must fit inside measured RTT sums (and outside RTT
//!   differences), or the claimed geometry is physically impossible.
//! * [`TrustedBaseline`] — the paper-style verified set: a small set of
//!   trusted nodes (landmarks, surveyors) calibrates the honest residual
//!   distribution, and everyone else is held to it.
//!
//! Plus the null strategy [`NoDefense`] (the engine's zero-cost fast path)
//! and the diagnostic [`Dampener`] (a uniform [`Verdict::Dampen`], used by
//! the `Dampen(1.0) ≡ Accept` bit-identity tests).

use std::collections::{HashMap, HashSet};

use crate::strategy::{median_in_place, DefenseScratch, DefenseStrategy, UpdateView, Verdict};

/// Reputation-decay configuration for [`DriftCap`]: a half-life on flag
/// weights and the forgiveness threshold under which a banned node is
/// reinstated.
///
/// Each cap trip adds `1.0` to the offender's flag weight; the weight then
/// halves every [`DriftDecay::half_life_rounds`]. A banned node is
/// reinstated — its samples judged normally again, a `Reinstate` event
/// emitted through [`DefenseStrategy::drain_reputation`] — once **both**
/// hold:
///
/// * its decayed flag weight fell below [`DriftDecay::reinstate_below`]
///   (first offense: exactly one half-life after the ban), and
/// * its current evidence window has *healed*: the vector mean pull over
///   the full window is back under the cap. A node that kept attacking
///   while banned keeps its window hot (the engine records every inspected
///   sample, rejected or not) and is never reinstated, no matter how far
///   its weight decayed — forgiveness requires demonstrated honesty, not
///   just elapsed time.
///
/// Repeat offenders escalate: a re-ban adds another `1.0` on top of the
/// not-yet-decayed remainder, so the weight takes proportionally longer to
/// fall below the threshold each time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftDecay {
    /// Rounds for a flag weight to halve.
    pub half_life_rounds: f64,
    /// Reinstate once the decayed weight falls below this (and the window
    /// healed). `0.5` means one half-life per unit of flag weight.
    pub reinstate_below: f64,
}

impl DriftDecay {
    /// Halve flag weights every `half_life_rounds`, reinstating below 0.5.
    pub fn new(half_life_rounds: f64) -> DriftDecay {
        DriftDecay {
            half_life_rounds: half_life_rounds.max(1e-9),
            reinstate_below: 0.5,
        }
    }
}

/// The null strategy: every sample accepted through the engine's fast
/// path. Deploying it is byte-identical to deploying nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoDefense;

impl DefenseStrategy for NoDefense {
    fn inspect_update(&mut self, _view: &UpdateView<'_>, _s: &mut DefenseScratch) -> Verdict {
        Verdict::Accept
    }

    fn is_passthrough(&self) -> bool {
        true
    }

    fn label(&self) -> &'static str {
        "none"
    }
}

/// Uniformly dampen every sample by a fixed factor — a diagnostic strategy
/// for the `Dampen(1.0) ≡ Accept` identity and for studying graduated
/// trust, not a detector.
#[derive(Debug, Clone, Copy)]
pub struct Dampener {
    /// The factor handed to [`Verdict::Dampen`] for every sample.
    pub factor: f64,
}

impl Dampener {
    /// Dampen every update by `factor`.
    pub fn new(factor: f64) -> Dampener {
        Dampener { factor }
    }
}

impl DefenseStrategy for Dampener {
    fn inspect_update(&mut self, _view: &UpdateView<'_>, _s: &mut DefenseScratch) -> Verdict {
        Verdict::Dampen(self.factor)
    }

    fn label(&self) -> &'static str {
        "dampener"
    }
}

/// MAD outlier rejection on the relative residual, against the observer's
/// recent residual population (all neighbors).
///
/// A sample is rejected when its relative residual exceeds
/// `median + k · 1.4826 · MAD` of the observer's recent window *and* an
/// absolute floor (so a tightly-converged observer does not start flagging
/// normal noise). Scale-free and self-calibrating — and structurally blind
/// to consistent liars, whose residuals sit inside the honest band.
#[derive(Debug, Clone)]
pub struct ResidualOutlier {
    /// Minimum recent samples before the adaptive threshold arms.
    pub min_samples: usize,
    /// MAD multiplier `k`.
    pub k: f64,
    /// Absolute floor on the rejection threshold (relative-residual units).
    pub floor: f64,
    /// Unconditional sanity bound, active from the first sample: a
    /// relative residual above this is rejected even before the window
    /// arms. Without it, a dozen pre-arming inflation lies (each pulling
    /// its victim hundreds of ms) wreck the embedding before the adaptive
    /// threshold exists.
    pub hard_reject: f64,
}

impl ResidualOutlier {
    /// Arm after `min_samples` observations, reject above `k` scaled MADs.
    pub fn new(min_samples: usize, k: f64) -> ResidualOutlier {
        ResidualOutlier {
            min_samples,
            k,
            floor: 0.5,
            hard_reject: 5.0,
        }
    }
}

impl Default for ResidualOutlier {
    fn default() -> Self {
        ResidualOutlier::new(12, 3.0)
    }
}

impl DefenseStrategy for ResidualOutlier {
    fn inspect_update(&mut self, view: &UpdateView<'_>, scratch: &mut DefenseScratch) -> Verdict {
        if view.rel_residual() > self.hard_reject {
            return Verdict::Reject;
        }
        if view.recent.len() < self.min_samples {
            return Verdict::Accept;
        }
        scratch.sort.clear();
        scratch
            .sort
            .extend(view.recent.iter().map(|s| s.rel_residual));
        let Some(median) = median_in_place(&mut scratch.sort) else {
            return Verdict::Accept;
        };
        scratch.aux.clear();
        scratch
            .aux
            .extend(scratch.sort.iter().map(|r| (r - median).abs()));
        let mad = median_in_place(&mut scratch.aux).unwrap_or(0.0);
        // 1.4826 · MAD estimates σ for Gaussian noise; the tiny floor keeps
        // a degenerate (all-identical) window from arming a zero threshold.
        let threshold = (median + self.k * (1.4826 * mad).max(0.02)).max(self.floor);
        if view.rel_residual() > threshold {
            Verdict::Reject
        } else {
            Verdict::Accept
        }
    }

    fn label(&self) -> &'static str {
        "mad-outlier"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    mean: f64,
    var: f64,
    n: u64,
}

/// EWMA change-point detection on each neighbor's relative-residual
/// series (aggregated across observers).
///
/// Each neighbor gets an exponentially-weighted mean/variance of its
/// residuals; a sample deviating more than `k·σ` from the learned mean is
/// rejected and *not* absorbed into the baseline. Flags behavioral
/// change — but a steady lie present from the detector's first sight is
/// learned as normal, which is exactly why residual-based filters miss
/// consistent liars.
#[derive(Debug, Clone)]
pub struct EwmaChangePoint {
    /// EWMA smoothing factor (weight of the newest sample).
    pub alpha: f64,
    /// Rejection threshold in learned standard deviations.
    pub k: f64,
    /// Minimum samples per neighbor before the detector arms.
    pub min_samples: u64,
    /// Floor on the learned σ (relative-residual units), so a frozen
    /// series cannot arm a zero-width band.
    pub sigma_floor: f64,
    state: HashMap<usize, Ewma>,
}

impl EwmaChangePoint {
    /// Smooth with `alpha`, reject beyond `k` learned standard deviations.
    pub fn new(alpha: f64, k: f64) -> EwmaChangePoint {
        EwmaChangePoint {
            alpha,
            k,
            min_samples: 8,
            sigma_floor: 0.1,
            state: HashMap::new(),
        }
    }
}

impl Default for EwmaChangePoint {
    fn default() -> Self {
        EwmaChangePoint::new(0.2, 4.0)
    }
}

impl DefenseStrategy for EwmaChangePoint {
    fn inspect_update(&mut self, view: &UpdateView<'_>, _s: &mut DefenseScratch) -> Verdict {
        let rel = view.rel_residual();
        let e = self.state.entry(view.remote).or_default();
        if e.n >= self.min_samples
            && (rel - e.mean).abs() > self.k * e.var.sqrt().max(self.sigma_floor)
        {
            // Anomalies are rejected and excluded from the baseline, so a
            // detected shift keeps being detected instead of being learned.
            return Verdict::Reject;
        }
        let d = rel - e.mean;
        e.mean += self.alpha * d;
        e.var = (1.0 - self.alpha) * (e.var + self.alpha * d * d);
        e.n += 1;
        Verdict::Accept
    }

    fn label(&self) -> &'static str {
        "ewma-cpd"
    }
}

/// Cap on the drift velocity a neighbor may impose: the norm of the
/// **vector** mean pull it sustains over its recent window.
///
/// `Cc · w · (rtt − predicted) · u(observer − reported)` is the
/// displacement one Vivaldi sample inflicts, so a neighbor's mean pull
/// vector, held open round after round, is precisely the drift velocity
/// it feeds its victims (NPS: the persistent directional bias on the
/// Simplex fit). The mean is taken *vectorially*
/// ([`RemoteHistory::mean_pull_norm`](crate::RemoteHistory::mean_pull_norm)):
/// an honest-but-unembeddable hub (positive scalar residual to everyone —
/// the access-link/height effect) pulls its observers radially, the
/// directions cancel, and the cap stays silent; frog-boiling must pull
/// every victim along the shared collusion axis, so its mean survives at
/// full gap magnitude, *no matter how small its per-round step* — the
/// integrated lag, not the step size, is what trips this cap. Tripped
/// neighbors are banned outright.
#[derive(Debug, Clone)]
pub struct DriftCap {
    /// Largest sustained mean-pull norm tolerated, ms per sample.
    pub max_drag_ms: f64,
    /// Minimum samples in a neighbor's window before the cap arms.
    pub min_samples: u64,
    /// Reputation decay / un-banning. `None` (the default) keeps today's
    /// permanent bans: the no-decay path is bitwise-identical to the
    /// pre-decay `DriftCap` (proven by the golden-figure suite and the
    /// infinite-half-life equivalence property test).
    pub decay: Option<DriftDecay>,
    banned: HashSet<usize>,
    /// Per-node decayed flag weight and the round it was last decayed to.
    /// Only consulted when `decay` is configured.
    weights: HashMap<usize, (f64, u64)>,
    ban_events: Vec<usize>,
    reinstate_events: Vec<usize>,
}

impl DriftCap {
    /// Ban neighbors sustaining more than `max_drag_ms` mean pull.
    ///
    /// The cap arms only once a neighbor's full residual window
    /// ([`RESIDUAL_WINDOW`](crate::history::RESIDUAL_WINDOW) samples) has
    /// accumulated: a node that is momentarily mispositioned (just
    /// rebooted, unlucky neighbor draw) exerts a large but *transient*
    /// drag that its own honest updates erase within a few rounds — only
    /// a liar sustains the pull across a whole window.
    pub fn new(max_drag_ms: f64) -> DriftCap {
        DriftCap {
            max_drag_ms,
            min_samples: crate::history::RESIDUAL_WINDOW as u64,
            decay: None,
            banned: HashSet::new(),
            weights: HashMap::new(),
            ban_events: Vec::new(),
            reinstate_events: Vec::new(),
        }
    }

    /// [`DriftCap::new`] with reputation decay: bans are forgiven once the
    /// flag weight decays under the threshold *and* the node's evidence
    /// window has healed (see [`DriftDecay`]).
    pub fn with_decay(max_drag_ms: f64, decay: DriftDecay) -> DriftCap {
        DriftCap {
            decay: Some(decay),
            ..DriftCap::new(max_drag_ms)
        }
    }

    /// Nodes banned right now (reinstated nodes leave this set).
    pub fn banned(&self) -> &HashSet<usize> {
        &self.banned
    }

    /// Decayed flag weight of `node` as of the last round it was touched.
    pub fn flag_weight(&self, node: usize) -> f64 {
        self.weights.get(&node).map(|&(w, _)| w).unwrap_or(0.0)
    }

    /// Decay `node`'s flag weight to `round` and return it.
    fn decayed_weight(&mut self, node: usize, round: u64) -> f64 {
        let Some(decay) = self.decay else {
            return self.flag_weight(node);
        };
        let entry = self.weights.entry(node).or_insert((0.0, round));
        let elapsed = round.saturating_sub(entry.1) as f64;
        if elapsed > 0.0 {
            // Incremental exponential decay composes exactly:
            // 0.5^(a+b) = 0.5^a · 0.5^b.
            entry.0 *= 0.5f64.powf(elapsed / decay.half_life_rounds);
            entry.1 = round;
        }
        entry.0
    }
}

impl Default for DriftCap {
    fn default() -> Self {
        // Converged honest residuals are ±tens of ms zero-mean, so their
        // window means settle near zero; an attacker must hold a gap of
        // ~step / (share · Cc · w) ≈ hundreds of ms to drag the population.
        // 80 ms is the ROC corner of the `def-roc` sweep: full detection of
        // the default frog-boiling attack with near-zero false positives
        // (honest laggards being dragged by the attack sit below it).
        DriftCap::new(80.0)
    }
}

impl DefenseStrategy for DriftCap {
    fn inspect_update(&mut self, view: &UpdateView<'_>, _s: &mut DefenseScratch) -> Verdict {
        let h = view.remote_history;
        if self.banned.contains(&view.remote) {
            let Some(decay) = self.decay else {
                return Verdict::Reject; // permanent bans (the legacy path)
            };
            if view.provenance.is_quarantined() {
                // Readmission-lease evidence: the node is on loan, not
                // forgiven. The engine already keeps leased samples out of
                // the history windows; refusing to even *evaluate* the
                // healed/weight condition here means a lease can never be
                // the inspection that springs a reinstatement.
                return Verdict::Reject;
            }
            let weight = self.decayed_weight(view.remote, view.round);
            // The engine keeps recording every inspected sample, so the
            // window under the ban reflects the node's *current* conduct:
            // healed means a full window of honest-looking reports.
            let healed = h.samples() >= self.min_samples
                && h.mean_pull_norm()
                    .is_some_and(|drag| drag <= self.max_drag_ms);
            if weight < decay.reinstate_below && healed {
                self.banned.remove(&view.remote);
                self.reinstate_events.push(view.remote);
                // Fall through to normal judging: the healed window
                // accepts, and any relapse re-bans with escalated weight.
            } else {
                return Verdict::Reject;
            }
        }
        if h.samples() >= self.min_samples {
            if let Some(drag) = h.mean_pull_norm() {
                if drag > self.max_drag_ms {
                    self.banned.insert(view.remote);
                    self.ban_events.push(view.remote);
                    if self.decay.is_some() {
                        let w = self.decayed_weight(view.remote, view.round);
                        self.weights.insert(view.remote, (w + 1.0, view.round));
                    }
                    return Verdict::Reject;
                }
            }
        }
        Verdict::Accept
    }

    fn drain_reputation(&mut self, banned: &mut Vec<usize>, reinstated: &mut Vec<usize>) {
        banned.append(&mut self.ban_events);
        reinstated.append(&mut self.reinstate_events);
    }

    fn label(&self) -> &'static str {
        "drift-cap"
    }
}

/// Triangle-inequality consistency of a reported coordinate against the
/// observer's other recent neighbors.
///
/// For each recent neighbor `k` with reported coordinate `x_k` and measured
/// RTT `r_k`, the current report `x_j` (measured RTT `r_j`) must satisfy
/// both physical bounds up to `slack` and `margin_ms`:
///
/// * `d(x_j, x_k) ≤ slack · (r_j + r_k) + margin` — the claimed separation
///   cannot exceed any real path through the observer;
/// * `d(x_j, x_k) ≥ (|r_j − r_k| − margin) / slack` — nor undercut the RTT
///   difference a real triangle forces.
///
/// Inflation blows the upper bound; deflation (claiming a central position
/// while honest RTTs stay long) trips the lower one. A sample is rejected
/// when a majority of comparisons are violations.
#[derive(Debug, Clone)]
pub struct TriangleCheck {
    /// Multiplicative tolerance on both bounds.
    pub slack: f64,
    /// Additive tolerance, ms (absorbs jitter and embedding noise).
    pub margin_ms: f64,
    /// Minimum comparisons before a verdict is reached.
    pub min_checks: usize,
    /// Violation share above which the sample is rejected.
    pub max_violation_share: f64,
}

impl TriangleCheck {
    /// Check against recent neighbors with the given tolerances.
    pub fn new(slack: f64, margin_ms: f64) -> TriangleCheck {
        TriangleCheck {
            slack,
            margin_ms,
            min_checks: 4,
            max_violation_share: 0.5,
        }
    }
}

impl Default for TriangleCheck {
    fn default() -> Self {
        TriangleCheck::new(1.3, 30.0)
    }
}

impl DefenseStrategy for TriangleCheck {
    fn inspect_update(&mut self, view: &UpdateView<'_>, _s: &mut DefenseScratch) -> Verdict {
        let mut checks = 0usize;
        let mut violations = 0usize;
        for s in view.recent {
            if s.remote == view.remote {
                continue;
            }
            let d = view.space.distance(view.reported_coord, &s.coord);
            let upper = self.slack * (view.rtt + s.rtt) + self.margin_ms;
            let lower = ((view.rtt - s.rtt).abs() - self.margin_ms).max(0.0) / self.slack;
            if d > upper || d < lower {
                violations += 1;
            }
            checks += 1;
        }
        if checks >= self.min_checks && violations as f64 > self.max_violation_share * checks as f64
        {
            Verdict::Reject
        } else {
            Verdict::Accept
        }
    }

    fn label(&self) -> &'static str {
        "triangle"
    }
}

/// The paper-style verified set: residuals observed from a configured
/// trusted population calibrate what "honest" looks like, and untrusted
/// reports are rejected when they exceed a multiple of that baseline's
/// upper quantile.
///
/// Trusted nodes (landmarks, surveyor infrastructure) are always accepted
/// — trust is an *assumption* here, exactly as in the paper's NPS threat
/// model ("landmarks are highly secure machines that never cheat"); a
/// compromised trusted node poisons the baseline, which the harness can
/// measure by including trusted ids in the attacker draw.
#[derive(Debug, Clone)]
pub struct TrustedBaseline {
    /// Rejection threshold as a multiple of the trusted upper quantile.
    pub slack: f64,
    /// Upper quantile of the trusted residual window used as the baseline.
    pub quantile: f64,
    /// Minimum trusted observations before the filter arms.
    pub min_trusted: usize,
    trusted: HashSet<usize>,
    window: Vec<f64>,
    cursor: usize,
    /// Quantile of the current window, recomputed only when a trusted
    /// sample mutates it — the untrusted majority of inspections would
    /// otherwise re-sort an unchanged window every time.
    cached_baseline: Option<f64>,
}

/// Trusted residual-window length.
const TRUSTED_WINDOW: usize = 64;

impl TrustedBaseline {
    /// Trust `ids`; hold everyone else to their observed residuals.
    pub fn new<I: IntoIterator<Item = usize>>(ids: I) -> TrustedBaseline {
        TrustedBaseline {
            slack: 3.0,
            quantile: 0.9,
            min_trusted: 8,
            trusted: ids.into_iter().collect(),
            window: Vec::new(),
            cursor: 0,
            cached_baseline: None,
        }
    }

    /// The configured trusted set.
    pub fn trusted(&self) -> &HashSet<usize> {
        &self.trusted
    }
}

impl DefenseStrategy for TrustedBaseline {
    fn inspect_update(&mut self, view: &UpdateView<'_>, scratch: &mut DefenseScratch) -> Verdict {
        let rel = view.rel_residual();
        if self.trusted.contains(&view.remote) {
            if self.window.len() < TRUSTED_WINDOW {
                self.window.push(rel);
            } else {
                self.window[self.cursor] = rel;
                self.cursor = (self.cursor + 1) % TRUSTED_WINDOW;
            }
            self.cached_baseline = None; // window changed: recompute lazily
            return Verdict::Accept;
        }
        if self.window.len() < self.min_trusted {
            return Verdict::Accept;
        }
        let baseline = match self.cached_baseline {
            Some(b) => b,
            None => {
                scratch.sort.clear();
                scratch.sort.extend_from_slice(&self.window);
                scratch
                    .sort
                    .sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let idx = ((scratch.sort.len() - 1) as f64 * self.quantile).round() as usize;
                let b = scratch.sort[idx].max(0.05);
                self.cached_baseline = Some(b);
                b
            }
        };
        if rel > self.slack * baseline {
            Verdict::Reject
        } else {
            Verdict::Accept
        }
    }

    fn label(&self) -> &'static str {
        "trusted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Defense, Update};
    use crate::strategy::Provenance;
    use vcoord_space::{Coord, Space};

    /// Drive `defense` with `n` samples from `remote` whose residual is
    /// fixed: the observer sits at the origin, the remote reports a
    /// coordinate at distance `predicted` and the probe measures `rtt`.
    fn feed(
        defense: &mut Defense,
        space: &Space,
        observer: usize,
        remote: usize,
        predicted: f64,
        rtt: f64,
        rounds: std::ops::Range<u64>,
    ) -> Vec<Verdict> {
        let me = Coord::origin(2);
        let them = Coord::from_vec(vec![predicted, 0.0]);
        rounds
            .map(|r| {
                defense.inspect(
                    space,
                    &me,
                    Update {
                        observer,
                        remote,
                        reported_coord: &them,
                        reported_error: 1.0,
                        rtt,
                        round: r,
                        now_ms: r * 1000,
                        provenance: Provenance::Normal,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn mad_outlier_rejects_loud_lie_and_spares_noise() {
        let space = Space::Euclidean(2);
        let mut d = Defense::new(Box::new(ResidualOutlier::default()));
        // Build an honest residual population: predicted 100 vs rtt ~100±10
        // from several neighbors.
        for (k, rtt) in [95.0, 105.0, 98.0, 102.0, 110.0, 92.0].iter().enumerate() {
            feed(&mut d, &space, 0, k + 1, 100.0, *rtt, 0..3);
        }
        assert_eq!(d.stats().rejected, 0, "honest noise must pass");
        // A disorder-style lie: claims 5000 away, measured 100.
        let v = feed(&mut d, &space, 0, 9, 5000.0, 100.0, 18..19);
        assert_eq!(v, vec![Verdict::Reject]);
        // A consistent-ish small lie stays under the band — the blind spot.
        let v = feed(&mut d, &space, 0, 10, 120.0, 100.0, 19..20);
        assert_eq!(v, vec![Verdict::Accept]);
    }

    #[test]
    fn ewma_flags_change_point_but_learns_steady_lie() {
        let space = Space::Euclidean(2);
        let mut d = Defense::new(Box::new(EwmaChangePoint::default()));
        // A neighbor with a stable small residual…
        let v = feed(&mut d, &space, 0, 1, 100.0, 95.0, 0..12);
        assert!(v.iter().all(|v| *v == Verdict::Accept));
        // …suddenly shifts behaviour: flagged.
        let v = feed(&mut d, &space, 0, 1, 400.0, 95.0, 12..13);
        assert_eq!(v, vec![Verdict::Reject], "change point missed");
        // A liar that was *always* lying steadily is learned as baseline.
        let v = feed(&mut d, &space, 0, 2, 300.0, 100.0, 13..30);
        assert!(
            v.iter().all(|v| *v == Verdict::Accept),
            "steady lies are the residual family's blind spot: {v:?}"
        );
    }

    #[test]
    fn drift_cap_bans_persistent_drag_and_spares_zero_mean_noise() {
        let space = Space::Euclidean(2);
        let mut d = Defense::new(Box::new(DriftCap::new(40.0)));
        // Honest neighbor: alternating ±25 ms residuals (zero mean).
        let me = Coord::origin(2);
        for r in 0..20u64 {
            let rtt = if r % 2 == 0 { 125.0 } else { 75.0 };
            let them = Coord::from_vec(vec![100.0, 0.0]);
            let v = d.inspect(
                &space,
                &me,
                Update {
                    observer: 0,
                    remote: 1,
                    reported_coord: &them,
                    reported_error: 1.0,
                    rtt,
                    round: r,
                    now_ms: r * 1000,
                    provenance: Provenance::Normal,
                },
            );
            assert_eq!(v, Verdict::Accept, "zero-mean noise tripped the cap");
        }
        // Frog-style colluder: persistent −100 ms gap (predicted 200 vs
        // measured 100) — small relative residual, but directional.
        let v = feed(&mut d, &space, 0, 2, 200.0, 100.0, 20..40);
        assert!(
            v.contains(&Verdict::Reject),
            "persistent drag must trip the cap"
        );
        // Once banned, always rejected.
        assert_eq!(*v.last().unwrap(), Verdict::Reject);
        let trailing = feed(&mut d, &space, 3, 2, 100.0, 100.0, 40..41);
        assert_eq!(trailing, vec![Verdict::Reject], "bans persist");
    }

    #[test]
    fn drift_cap_decay_readmits_reformed_node_within_half_life() {
        let space = Space::Euclidean(2);
        let half_life = 30.0;
        let mut d = Defense::new(Box::new(DriftCap::with_decay(
            40.0,
            DriftDecay::new(half_life),
        )));
        // Persistent −100 ms drag: banned once the 16-sample window fills.
        let verdicts = feed(&mut d, &space, 0, 2, 200.0, 100.0, 0..20);
        let ban_round = verdicts
            .iter()
            .position(|v| *v == Verdict::Reject)
            .expect("the drag must trip the cap") as u64;
        // Reform: honest residuals from the ban onward. The window heals
        // within RESIDUAL_WINDOW samples; the flag weight needs one
        // half-life; the first Accept marks the reinstatement.
        let verdicts = feed(&mut d, &space, 0, 2, 100.0, 100.0, 20..90);
        let first_accept = verdicts
            .iter()
            .position(|v| *v == Verdict::Accept)
            .expect("a reformed node must be reinstated") as u64
            + 20;
        assert!(
            first_accept <= ban_round + half_life as u64 + 2,
            "reinstatement at round {first_accept}, ban at {ban_round}: \
             must land within the configured half-life (+1 round of slack)"
        );
        // The reinstate event flowed through the reputation channel.
        let (mut bans, mut reinstated) = (Vec::new(), Vec::new());
        d.drain_reputation(&mut bans, &mut reinstated);
        assert_eq!(bans, vec![2]);
        assert_eq!(reinstated, vec![2]);
        assert_eq!(d.stats().bans, 1);
        assert_eq!(d.stats().reinstated, 1);
    }

    #[test]
    fn drift_cap_decay_never_readmits_a_still_attacking_node() {
        let space = Space::Euclidean(2);
        let mut d = Defense::new(Box::new(DriftCap::with_decay(40.0, DriftDecay::new(10.0))));
        // The attacker never reforms: the drag persists for many times the
        // half-life. Its window stays hot (every inspected sample is
        // recorded, rejected or not), so decayed weight alone never buys
        // it back in.
        let verdicts = feed(&mut d, &space, 0, 2, 200.0, 100.0, 0..200);
        let after_ban: Vec<_> = verdicts
            .iter()
            .skip_while(|v| **v == Verdict::Accept)
            .collect();
        assert!(!after_ban.is_empty(), "the cap must trip");
        assert!(
            after_ban.iter().all(|v| **v == Verdict::Reject),
            "a still-attacking node must stay banned through any number of \
             half-lives"
        );
        let (mut bans, mut reinstated) = (Vec::new(), Vec::new());
        d.drain_reputation(&mut bans, &mut reinstated);
        assert_eq!(bans, vec![2]);
        assert!(reinstated.is_empty());
    }

    /// [`feed`] with [`Provenance::Lease`] on every sample — the
    /// readmission-lease evidence channel.
    fn feed_leased(
        defense: &mut Defense,
        space: &Space,
        observer: usize,
        remote: usize,
        predicted: f64,
        rtt: f64,
        rounds: std::ops::Range<u64>,
    ) -> Vec<Verdict> {
        let me = Coord::origin(2);
        let them = Coord::from_vec(vec![predicted, 0.0]);
        rounds
            .map(|r| {
                defense.inspect(
                    space,
                    &me,
                    Update {
                        observer,
                        remote,
                        reported_coord: &them,
                        reported_error: 1.0,
                        rtt,
                        round: r,
                        now_ms: r * 1000,
                        provenance: Provenance::Lease,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn leased_evidence_never_heals_a_ban() {
        let space = Space::Euclidean(2);
        let half_life = 10.0;
        let mut d = Defense::new(Box::new(DriftCap::with_decay(
            40.0,
            DriftDecay::new(half_life),
        )));
        // Ban the node on persistent drag, as usual.
        let v = feed(&mut d, &space, 0, 2, 200.0, 100.0, 0..20);
        assert!(v.contains(&Verdict::Reject), "the cap must trip");
        // Reform — but every post-ban sample arrives on a lease. Honest
        // residuals, many half-lives of elapsed weight decay: without
        // quarantine this is exactly the stream that healed the window and
        // sprang the reinstatement (the probation leak). With it, the ban
        // holds forever.
        let v = feed_leased(&mut d, &space, 0, 2, 100.0, 100.0, 20..220);
        assert!(
            v.iter().all(|v| *v == Verdict::Reject),
            "leased evidence must never be the path back in"
        );
        let (mut bans, mut reinstated) = (Vec::new(), Vec::new());
        d.drain_reputation(&mut bans, &mut reinstated);
        assert_eq!(bans, vec![2]);
        assert!(
            reinstated.is_empty(),
            "quarantined evidence produced a reinstatement"
        );
        assert_eq!(d.stats().quarantined, 200);
        // The same reformed stream on normal provenance *does* reinstate —
        // the quarantine, not some other regression, is what held the ban.
        let v = feed(&mut d, &space, 0, 2, 100.0, 100.0, 220..300);
        assert!(
            v.contains(&Verdict::Accept),
            "normal-provenance reform must still be forgivable"
        );
    }

    #[test]
    fn drift_cap_decay_escalates_repeat_offenders() {
        let space = Space::Euclidean(2);
        let half_life = 20.0;
        let mut d = Defense::new(Box::new(DriftCap::with_decay(
            40.0,
            DriftDecay::new(half_life),
        )));
        // First offense → ban; reform → reinstate; relapse → re-ban. The
        // re-ban stacks +1.0 onto the not-yet-decayed remainder, so the
        // second ban-to-forgiveness span strictly exceeds the first.
        let _ = half_life;
        let v1 = feed(&mut d, &space, 0, 2, 200.0, 100.0, 0..20);
        let ban_1 = v1.iter().position(|v| *v == Verdict::Reject).unwrap() as u64;
        let v2 = feed(&mut d, &space, 0, 2, 100.0, 100.0, 20..70);
        let reinstate_1 = v2
            .iter()
            .position(|v| *v == Verdict::Accept)
            .expect("first reform must be forgiven") as u64
            + 20;
        let v3 = feed(&mut d, &space, 0, 2, 200.0, 100.0, 70..100);
        let ban_2 = v3.iter().position(|v| *v == Verdict::Reject).unwrap() as u64 + 70;
        let v4 = feed(&mut d, &space, 0, 2, 100.0, 100.0, 100..250);
        let reinstate_2 = v4
            .iter()
            .position(|v| *v == Verdict::Accept)
            .expect("second reform is eventually forgiven") as u64
            + 100;
        assert!(
            reinstate_2 - ban_2 > reinstate_1 - ban_1,
            "escalation: second forgiveness span ({} rounds) must exceed \
             the first ({} rounds)",
            reinstate_2 - ban_2,
            reinstate_1 - ban_1,
        );
        let (mut bans, mut reinstated) = (Vec::new(), Vec::new());
        d.drain_reputation(&mut bans, &mut reinstated);
        assert_eq!(bans, vec![2, 2], "two ban events");
        assert_eq!(reinstated, vec![2, 2], "two reinstatements");
    }

    #[test]
    fn drift_cap_without_decay_emits_ban_events_but_never_reinstates() {
        let space = Space::Euclidean(2);
        let mut d = Defense::new(Box::new(DriftCap::new(40.0)));
        feed(&mut d, &space, 0, 2, 200.0, 100.0, 0..20);
        let verdicts = feed(&mut d, &space, 0, 2, 100.0, 100.0, 20..200);
        assert!(
            verdicts.iter().all(|v| *v == Verdict::Reject),
            "permanent bans never forgive, however reformed the node"
        );
        let (mut bans, mut reinstated) = (Vec::new(), Vec::new());
        d.drain_reputation(&mut bans, &mut reinstated);
        assert_eq!(bans, vec![2]);
        assert!(reinstated.is_empty());
    }

    #[test]
    fn triangle_check_catches_inflation_and_deflation() {
        let space = Space::Euclidean(2);
        let mut d = Defense::new(Box::new(TriangleCheck::default()));
        // Populate the observer's recent ring with consistent neighbors
        // ~100 ms away in different directions.
        let me = Coord::origin(2);
        for (k, (x, y)) in [(100.0, 0.0), (0.0, 100.0), (-100.0, 0.0), (0.0, -100.0)]
            .iter()
            .enumerate()
        {
            for r in 0..2u64 {
                let them = Coord::from_vec(vec![*x, *y]);
                d.inspect(
                    &space,
                    &me,
                    Update {
                        observer: 0,
                        remote: k + 1,
                        reported_coord: &them,
                        reported_error: 1.0,
                        rtt: 100.0,
                        round: r,
                        now_ms: r,
                        provenance: Provenance::Normal,
                    },
                );
            }
        }
        // Inflation: claims a position 50 000 ms out while measuring 100.
        let inflated = Coord::from_vec(vec![50_000.0, 0.0]);
        let v = d.inspect(
            &space,
            &me,
            Update {
                observer: 0,
                remote: 9,
                reported_coord: &inflated,
                reported_error: 1.0,
                rtt: 100.0,
                round: 3,
                now_ms: 3,
                provenance: Provenance::Normal,
            },
        );
        assert_eq!(v, Verdict::Reject, "inflation must violate the upper bound");
        // Deflation: claims the observer's own position while the probe
        // measured 700 ms — the RTT difference to the 100 ms neighbors
        // forces a separation the claim undercuts.
        let deflated = Coord::from_vec(vec![0.1, 0.0]);
        let v = d.inspect(
            &space,
            &me,
            Update {
                observer: 0,
                remote: 10,
                reported_coord: &deflated,
                reported_error: 1.0,
                rtt: 700.0,
                round: 3,
                now_ms: 3,
                provenance: Provenance::Normal,
            },
        );
        assert_eq!(v, Verdict::Reject, "deflation must violate the lower bound");
        // An honest new neighbor passes.
        let honest = Coord::from_vec(vec![70.0, 70.0]);
        let v = d.inspect(
            &space,
            &me,
            Update {
                observer: 0,
                remote: 11,
                reported_coord: &honest,
                reported_error: 1.0,
                rtt: 99.0,
                round: 3,
                now_ms: 3,
                provenance: Provenance::Normal,
            },
        );
        assert_eq!(v, Verdict::Accept);
    }

    #[test]
    fn trusted_baseline_calibrates_from_trusted_and_rejects_outliers() {
        let space = Space::Euclidean(2);
        let mut d = Defense::new(Box::new(TrustedBaseline::new([1, 2])));
        // Trusted nodes establish residuals ~5%.
        feed(&mut d, &space, 0, 1, 100.0, 97.0, 0..6);
        feed(&mut d, &space, 0, 2, 100.0, 104.0, 6..12);
        // Untrusted node within the band: accepted.
        let v = feed(&mut d, &space, 0, 7, 100.0, 95.0, 12..13);
        assert_eq!(v, vec![Verdict::Accept]);
        // Untrusted node far outside the trusted band: rejected.
        let v = feed(&mut d, &space, 0, 8, 300.0, 100.0, 13..14);
        assert_eq!(v, vec![Verdict::Reject]);
        // Trusted nodes are never rejected, whatever they report.
        let v = feed(&mut d, &space, 0, 1, 9000.0, 100.0, 14..15);
        assert_eq!(v, vec![Verdict::Accept], "trust is an assumption");
    }

    #[test]
    fn dampener_is_uniform() {
        let space = Space::Euclidean(2);
        let mut d = Defense::new(Box::new(Dampener::new(0.5)));
        let v = feed(&mut d, &space, 0, 1, 100.0, 100.0, 0..3);
        assert!(v.iter().all(|v| *v == Verdict::Dampen(0.5)));
        assert_eq!(d.stats().dampened, 3);
        assert_eq!(d.label(), "dampener");
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            NoDefense.label(),
            Dampener::new(1.0).label(),
            ResidualOutlier::default().label(),
            EwmaChangePoint::default().label(),
            DriftCap::default().label(),
            TriangleCheck::default().label(),
            TrustedBaseline::new([]).label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len(), "duplicate labels: {labels:?}");
    }
}
