//! The [`Defense`] engine: one strategy plus the shared history store,
//! scratch buffers, verdict accounting, and round bookkeeping.
//!
//! Simulators hold a `Defense` next to their attackkit `Scenario` slot and
//! route every incoming coordinate/RTT sample through [`Defense::inspect`]
//! before applying their update rule. The engine owns everything a
//! strategy needs but should not allocate per call: the
//! [`NeighborHistory`], a [`DefenseScratch`], and the running
//! [`DefenseStats`].
//!
//! The [`NoDefense`](crate::NoDefense) fast path is engine-level: a
//! passthrough strategy short-circuits `inspect` before any distance
//! computation or history bookkeeping, so an undefended (or
//! `NoDefense`-defended) simulation pays one branch and one counter
//! increment per sample — zero allocation, zero trajectory change.

use std::collections::HashMap;
use vcoord_metrics::Confusion;
use vcoord_space::{Coord, Space};

use crate::history::NeighborHistory;
use crate::strategy::{DefenseScratch, DefenseStrategy, Provenance, UpdateView, Verdict};

/// One incoming sample, as the simulator hands it to [`Defense::inspect`].
#[derive(Debug, Clone, Copy)]
pub struct Update<'a> {
    /// The honest node about to apply the update.
    pub observer: usize,
    /// The node whose report is being judged.
    pub remote: usize,
    /// The coordinate the remote reported.
    pub reported_coord: &'a Coord,
    /// The error estimate the remote reported (`1.0` where the protocol
    /// carries none).
    pub reported_error: f64,
    /// The measured RTT, ms.
    pub rtt: f64,
    /// The system's round index.
    pub round: u64,
    /// Current simulated time, ms.
    pub now_ms: u64,
    /// Where the sample came from. [`Provenance::Lease`] evidence is
    /// quarantined: judged, tallied, but never recorded into the history
    /// windows that feed healed-window reinstatement or threshold
    /// calibration.
    pub provenance: Provenance,
}

/// Verdict tallies, overall and per remote node.
#[derive(Debug, Clone, Default)]
pub struct DefenseStats {
    /// Samples accepted unchanged (including `Dampen(1.0)` identities).
    pub accepted: u64,
    /// Samples rejected.
    pub rejected: u64,
    /// Samples dampened below full strength.
    pub dampened: u64,
    /// Node-level ban events drained through the reputation channel.
    pub bans: u64,
    /// Node-level reinstatements drained through the reputation channel.
    pub reinstated: u64,
    /// Lease-provenance samples whose evidence was quarantined (judged and
    /// tallied above, but kept out of every history window).
    pub quarantined: u64,
    /// Flag events (rejections + strict dampenings) per remote node.
    flags: HashMap<usize, u64>,
    /// Inspections per remote node.
    inspected: HashMap<usize, u64>,
}

impl DefenseStats {
    /// Total samples inspected.
    pub fn total(&self) -> u64 {
        self.accepted + self.rejected + self.dampened
    }

    /// Flag events recorded against `node`.
    pub fn flags_of(&self, node: usize) -> u64 {
        self.flags.get(&node).copied().unwrap_or(0)
    }

    /// Inspections of samples reported by `node`.
    pub fn inspected_of(&self, node: usize) -> u64 {
        self.inspected.get(&node).copied().unwrap_or(0)
    }

    /// Grade the per-node flags against a ground-truth malicious set: a
    /// node counts as *detected* when it accumulated at least `min_flags`
    /// flag events. Only nodes whose reports were inspected at least once
    /// are classified (a node the defense never saw cannot be judged).
    ///
    /// This is harness-side accounting — strategies never see `malicious`.
    pub fn confusion(&self, malicious: &[bool], min_flags: u64) -> Confusion {
        self.confusion_rated(malicious, min_flags, 0.0)
    }

    /// [`DefenseStats::confusion`] with an additional *rate* requirement:
    /// a node is detected only when it also had at least `min_rate` of its
    /// inspected samples flagged. Sample-level filters (MAD, EWMA) throw
    /// occasional tail rejections at honest nodes — a handful over
    /// hundreds of inspections — so an absolute count alone stops
    /// separating as runs get longer; the rate does not.
    pub fn confusion_rated(&self, malicious: &[bool], min_flags: u64, min_rate: f64) -> Confusion {
        let mut c = Confusion::new();
        for (&node, &seen) in &self.inspected {
            if seen == 0 {
                continue;
            }
            let flags = self.flags_of(node);
            let flagged = flags >= min_flags.max(1) && flags as f64 >= min_rate * seen as f64;
            c.record(malicious.get(node).copied().unwrap_or(false), flagged);
        }
        c
    }

    fn record(&mut self, remote: usize, verdict: &Verdict) {
        *self.inspected.entry(remote).or_insert(0) += 1;
        match verdict {
            Verdict::Accept => self.accepted += 1,
            Verdict::Reject => self.rejected += 1,
            // Classify by the *effective* factor (NaN payloads suppress the
            // sample entirely), keeping these tallies consistent with
            // `Verdict::factor`/`Verdict::is_flag`.
            Verdict::Dampen(_) if verdict.factor() < 1.0 => self.dampened += 1,
            Verdict::Dampen(_) => self.accepted += 1,
        }
        if verdict.is_flag() {
            *self.flags.entry(remote).or_insert(0) += 1;
        }
    }
}

/// A deployed defense: strategy + history + scratch + verdict accounting.
pub struct Defense {
    strategy: Box<dyn DefenseStrategy>,
    history: NeighborHistory,
    scratch: DefenseScratch,
    stats: DefenseStats,
    last_round: Option<u64>,
    passthrough: bool,
}

impl Defense {
    /// Deploy `strategy` with fresh history and accounting.
    pub fn new(strategy: Box<dyn DefenseStrategy>) -> Defense {
        let passthrough = strategy.is_passthrough();
        Defense {
            strategy,
            history: NeighborHistory::new(),
            scratch: DefenseScratch::new(),
            stats: DefenseStats::default(),
            last_round: None,
            passthrough,
        }
    }

    /// The no-op defense (every sample accepted via the fast path).
    pub fn none() -> Defense {
        Defense::new(Box::new(crate::strategies::NoDefense))
    }

    /// The strategy's label (for logs and CSV headers).
    pub fn label(&self) -> &'static str {
        self.strategy.label()
    }

    /// Whether the fast path is active (the deployed strategy is
    /// [`NoDefense`](crate::NoDefense)).
    pub fn is_passthrough(&self) -> bool {
        self.passthrough
    }

    /// Verdict accounting so far.
    pub fn stats(&self) -> &DefenseStats {
        &self.stats
    }

    /// The accumulated neighbor history (for diagnostics and tests).
    pub fn history(&self) -> &NeighborHistory {
        &self.history
    }

    /// Drain the strategy's reputation events (bans and reinstatements)
    /// since the last drain, appending node ids to the given buffers and
    /// folding the counts into [`DefenseStats`]. The simulators poll this
    /// after inspections and route the events into their structural ban
    /// machinery; strategies that emit nothing (everything except a
    /// decay-configured [`DriftCap`](crate::DriftCap) today) make this a
    /// no-op, so legacy deployments are untouched.
    pub fn drain_reputation(&mut self, banned: &mut Vec<usize>, reinstated: &mut Vec<usize>) {
        if self.passthrough {
            return;
        }
        let (b0, r0) = (banned.len(), reinstated.len());
        self.strategy.drain_reputation(banned, reinstated);
        self.stats.bans += (banned.len() - b0) as u64;
        self.stats.reinstated += (reinstated.len() - r0) as u64;
        if vcoord_obs::enabled() {
            let round = self.last_round.unwrap_or(0);
            for &node in &banned[b0..] {
                vcoord_obs::event(
                    vcoord_obs::metric_id!("defense.ban"),
                    round,
                    node as u32,
                    1.0,
                );
            }
            for &node in &reinstated[r0..] {
                vcoord_obs::event(
                    vcoord_obs::metric_id!("defense.reinstate"),
                    round,
                    node as u32,
                    1.0,
                );
            }
        }
    }

    /// Judge one sample, advancing per-round strategy state first.
    ///
    /// `on_round` fires once per round elapsed since the last inspection
    /// (or since deployment), lazily at the round's first sample — the same
    /// cadence contract as attackkit's `Scenario::respond`.
    ///
    /// Samples the update rules would reject anyway (non-finite or
    /// non-positive RTT, non-finite coordinates) are accepted untouched:
    /// the simulators' own validity guards handle them, and counting them
    /// as defense flags would double-book.
    pub fn inspect(&mut self, space: &Space, observer_coord: &Coord, u: Update<'_>) -> Verdict {
        if self.passthrough {
            // NoDefense fast path: one branch + one counter (plus one
            // relaxed load for the disabled obs plane). No history, no
            // distance computation, no allocation — the defended update
            // loop is byte-identical (and near-cost-identical) to the
            // undefended one.
            self.stats.accepted += 1;
            vcoord_obs::counter_add(vcoord_obs::metric_id!("defense.accept"), 1);
            return Verdict::Accept;
        }
        if !(u.rtt.is_finite() && u.rtt > 0.0 && u.reported_coord.is_finite()) {
            return Verdict::Accept;
        }
        // Wall-clock attribution for the profiling plane. Per-sample, but
        // only past the passthrough/validity fast paths, so NoDefense stays
        // span-free and the timed region is the real detector work.
        let _span = vcoord_obs::span(vcoord_obs::metric_id!("defense.inspect_ns"));

        let from = self.last_round.unwrap_or(u.round);
        for r in from..u.round {
            self.strategy.on_round(r + 1);
        }
        self.last_round = Some(u.round.max(from));

        let predicted = space.distance(observer_coord, u.reported_coord);
        self.history.ensure(u.observer, u.remote);
        let view = UpdateView {
            space,
            observer: u.observer,
            remote: u.remote,
            observer_coord,
            reported_coord: u.reported_coord,
            reported_error: u.reported_error,
            rtt: u.rtt,
            predicted,
            round: u.round,
            now_ms: u.now_ms,
            provenance: u.provenance,
            remote_history: self.history.remote(u.remote).expect("ensured just above"),
            recent: self.history.recent(u.observer),
        };
        let residual = view.residual();
        let rel_residual = view.rel_residual();
        let verdict = self.strategy.inspect_update(&view, &mut self.scratch);

        // Record after judging — never judge a sample against itself. The
        // *remote* trail records every inspected sample, rejected or not:
        // detectors must keep observing flagged nodes. The *observer* ring
        // records only non-rejected samples: it is the reference
        // population thresholds calibrate against (MAD median, triangle
        // comparisons), and letting a persistent just-under-the-bound liar
        // fill it with its own rejected residuals would drag the threshold
        // up until the same lie passes — the filter defeated by the
        // samples it rejected.
        //
        // Leased samples are the exception: readmission-lease evidence is
        // judged (a relapser can still be flagged) but *quarantined* — it
        // enters neither the remote trail (whose healed window is the
        // reinstatement condition reputation decay checks) nor the observer
        // ring (the calibration population). A still-banned reference must
        // not be able to heal its own window through the relief channel.
        if u.provenance.is_quarantined() {
            self.stats.quarantined += 1;
            vcoord_obs::counter_add(vcoord_obs::metric_id!("defense.quarantined_evidence"), 1);
        } else {
            self.history.record_remote(
                observer_coord,
                u.remote,
                u.round,
                u.reported_coord,
                residual,
                rel_residual,
            );
            if verdict != Verdict::Reject {
                self.history.record_observer(
                    u.observer,
                    u.remote,
                    u.round,
                    u.reported_coord,
                    u.rtt,
                    residual,
                    rel_residual,
                );
            }
        }
        self.stats.record(u.remote, &verdict);
        if vcoord_obs::enabled() {
            let which = match verdict {
                Verdict::Accept => vcoord_obs::metric_id!("defense.accept"),
                Verdict::Reject => vcoord_obs::metric_id!("defense.reject"),
                Verdict::Dampen(_) => vcoord_obs::metric_id!("defense.dampen"),
            };
            vcoord_obs::counter_add(which, 1);
            if verdict.is_flag() {
                vcoord_obs::event(
                    vcoord_obs::metric_id!("defense.flag"),
                    u.round,
                    u.remote as u32,
                    1.0,
                );
            }
        }
        if verdict.is_flag() {
            log::trace!(
                "defense[{}]: flagged node {} (observer {}, round {})",
                self.strategy.label(),
                u.remote,
                u.observer,
                u.round
            );
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::cell::RefCell;
    use std::rc::Rc;

    /// Rejects everything after `reject_after` inspections; counts rounds
    /// into a shared cell so tests can observe the cadence from outside.
    struct Trip {
        inspections: u64,
        rounds: Rc<RefCell<Vec<u64>>>,
        reject_after: u64,
    }

    impl DefenseStrategy for Trip {
        fn on_round(&mut self, round: u64) {
            self.rounds.borrow_mut().push(round);
        }

        fn inspect_update(&mut self, _v: &UpdateView<'_>, _s: &mut DefenseScratch) -> Verdict {
            self.inspections += 1;
            if self.inspections > self.reject_after {
                Verdict::Reject
            } else {
                Verdict::Accept
            }
        }

        fn label(&self) -> &'static str {
            "trip"
        }
    }

    fn update<'a>(remote: usize, coord: &'a Coord, rtt: f64, round: u64) -> Update<'a> {
        Update {
            observer: 0,
            remote,
            reported_coord: coord,
            reported_error: 1.0,
            rtt,
            round,
            now_ms: round * 1000,
            provenance: Provenance::Normal,
        }
    }

    #[test]
    fn passthrough_accepts_without_bookkeeping() {
        let space = Space::Euclidean(2);
        let me = Coord::origin(2);
        let them = Coord::from_vec(vec![30.0, 40.0]);
        let mut d = Defense::none();
        assert!(d.is_passthrough());
        assert_eq!(d.label(), "none");
        for r in 0..5 {
            assert_eq!(
                d.inspect(&space, &me, update(1, &them, 50.0, r)),
                Verdict::Accept
            );
        }
        assert_eq!(d.stats().accepted, 5);
        assert!(
            d.history().remote(1).is_none(),
            "fast path keeps no history"
        );
        assert_eq!(d.stats().inspected_of(1), 0);
    }

    #[test]
    fn on_round_fires_once_per_elapsed_round() {
        let space = Space::Euclidean(2);
        let me = Coord::origin(2);
        let them = Coord::from_vec(vec![30.0, 40.0]);
        let rounds = Rc::new(RefCell::new(Vec::new()));
        let mut d = Defense::new(Box::new(Trip {
            inspections: 0,
            rounds: Rc::clone(&rounds),
            reject_after: u64::MAX,
        }));
        d.inspect(&space, &me, update(1, &them, 50.0, 5));
        d.inspect(&space, &me, update(1, &them, 50.0, 5));
        d.inspect(&space, &me, update(1, &them, 50.0, 8));
        d.inspect(&space, &me, update(1, &them, 50.0, 8));
        let history = d.history().remote(1).unwrap();
        assert_eq!(history.samples(), 4);
        // Deployment round 5 fires nothing; rounds 6,7,8 fire once each.
        assert_eq!(*rounds.borrow(), vec![6, 7, 8]);
    }

    #[test]
    fn stats_track_flags_and_confusion() {
        let space = Space::Euclidean(2);
        let me = Coord::origin(2);
        let them = Coord::from_vec(vec![30.0, 40.0]);
        let mut d = Defense::new(Box::new(Trip {
            inspections: 0,
            rounds: Rc::new(RefCell::new(Vec::new())),
            reject_after: 2,
        }));
        // Node 1: 2 accepts then 2 rejects. Node 2: rejects only.
        for r in 0..4 {
            d.inspect(&space, &me, update(1, &them, 50.0, r));
        }
        d.inspect(&space, &me, update(2, &them, 50.0, 4));
        assert_eq!(d.stats().accepted, 2);
        assert_eq!(d.stats().rejected, 3);
        assert_eq!(d.stats().flags_of(1), 2);
        assert_eq!(d.stats().flags_of(2), 1);
        assert_eq!(d.stats().inspected_of(1), 4);

        // Ground truth: node 1 malicious, node 2 honest.
        let malicious = vec![false, true, false];
        let c = d.stats().confusion(&malicious, 1);
        assert_eq!(c.true_positives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.total(), 2);
        // At min_flags 2 node 2's single flag no longer counts.
        let c2 = d.stats().confusion(&malicious, 2);
        assert_eq!(c2.true_positives, 1);
        assert_eq!(c2.false_positives, 0);
        assert_eq!(c2.true_negatives, 1);
    }

    #[test]
    fn leased_evidence_is_judged_but_never_recorded() {
        let space = Space::Euclidean(2);
        let me = Coord::origin(2);
        let them = Coord::from_vec(vec![30.0, 40.0]);
        let mut d = Defense::new(Box::new(Trip {
            inspections: 0,
            rounds: Rc::new(RefCell::new(Vec::new())),
            reject_after: u64::MAX,
        }));
        for r in 0..4 {
            let mut u = update(1, &them, 50.0, r);
            u.provenance = Provenance::Lease;
            assert_eq!(d.inspect(&space, &me, u), Verdict::Accept);
        }
        assert_eq!(d.stats().accepted, 4, "leased samples are still tallied");
        assert_eq!(d.stats().quarantined, 4);
        assert_eq!(
            d.history().remote(1).map(|h| h.samples()),
            Some(0),
            "quarantined evidence must not build a remote trail"
        );
        assert!(
            d.history().recent(0).is_empty(),
            "quarantined evidence must not enter the calibration ring"
        );

        // A normal sample from the same remote still records.
        d.inspect(&space, &me, update(1, &them, 50.0, 4));
        assert_eq!(d.history().remote(1).unwrap().samples(), 1);
        assert_eq!(d.stats().quarantined, 4);
    }

    #[test]
    fn invalid_samples_bypass_the_strategy() {
        let space = Space::Euclidean(2);
        let me = Coord::origin(2);
        let them = Coord::from_vec(vec![30.0, 40.0]);
        let bad = Coord::from_vec(vec![f64::NAN, 0.0]);
        let mut d = Defense::new(Box::new(Trip {
            inspections: 0,
            rounds: Rc::new(RefCell::new(Vec::new())),
            reject_after: 0, // would reject everything it sees
        }));
        assert_eq!(
            d.inspect(&space, &me, update(1, &them, f64::NAN, 0)),
            Verdict::Accept
        );
        assert_eq!(
            d.inspect(&space, &me, update(1, &them, 0.0, 0)),
            Verdict::Accept
        );
        assert_eq!(
            d.inspect(&space, &me, update(1, &bad, 50.0, 0)),
            Verdict::Accept
        );
        assert_eq!(d.stats().total(), 0, "invalid samples are not accounted");
    }
}
