//! Allocation accounting for the chaos seam in the NPS probe loop with no
//! faults scheduled: the per-probe chaos check is one `Option`
//! discriminant test (plus an empty-timeline `advance` that touches only
//! a recycled buffer), so a sim carrying an **empty** [`ChaosPlan`] must
//! spend exactly as many heap allocations per repositioning window as a
//! sim with no chaos installed at all — and produce bitwise-identical
//! coordinates while doing it.
//!
//! This file holds exactly one `#[test]`: the libtest harness runs tests
//! on worker threads, and a sibling test allocating concurrently would
//! corrupt the global counter.

use vcoord_chaos::ChaosPlan;
use vcoord_defense::{DriftCap, DriftDecay};
use vcoord_netsim::SeedStream;
use vcoord_nps::{NpsConfig, NpsSim};
use vcoord_obs::testing::{allocations, CountingAllocator};
use vcoord_topo::{KingLike, KingLikeConfig};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn warm_sim(install_empty_plan: bool) -> NpsSim {
    let seeds = SeedStream::new(43);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(40)).generate(&mut seeds.rng("topo"));
    // Probation + a decaying cap arm the lease-adjacent code paths (the
    // leased-list scan in `probe_ref`, the probation skip-leased
    // round-robin): with no faults those paths must stay inside the same
    // allocation budget as the pre-lease loop — the leased lists are empty
    // and scanning an empty Vec allocates nothing.
    let config = NpsConfig {
        probation_every: 2,
        ..NpsConfig::default()
    };
    let mut sim = NpsSim::new(matrix, config, &seeds);
    sim.run_ms(900_000); // joins done, gathering buffers sized
    sim.deploy_defense(Box::new(DriftCap::with_decay(40.0, DriftDecay::new(5.0))));
    sim.run_ms(300_000); // defense histories sized
    if install_empty_plan {
        sim.install_chaos(ChaosPlan::none());
    }
    sim
}

fn window_allocations(sim: &mut NpsSim) -> u64 {
    let before = allocations();
    sim.run_ms(600_000);
    allocations() - before
}

#[test]
fn disabled_chaos_check_adds_no_allocations_to_the_round_loop() {
    assert_eq!(vcoord_obs::mode(), vcoord_obs::ObsMode::Off);

    let mut plain = warm_sim(false);
    let mut chaotic = warm_sim(true);
    // The counter is process-global, so a harness-side allocation landing
    // inside one measured window under parallel-suite load breaks equality
    // spuriously. A real budget difference recurs every window; ambient
    // noise doesn't — retry the pair (both sims always advance in
    // lockstep, preserving the bitwise comparison below).
    let mut plain_allocs = 0;
    let mut chaotic_allocs = 0;
    for _ in 0..3 {
        plain_allocs = window_allocations(&mut plain);
        chaotic_allocs = window_allocations(&mut chaotic);
        if plain_allocs == chaotic_allocs {
            break;
        }
    }
    assert_eq!(
        plain_allocs, chaotic_allocs,
        "an empty chaos plan changed the round loop's allocation budget"
    );

    let plain_bits: Vec<u64> = plain
        .coords()
        .iter()
        .flat_map(|c| c.vec.iter().map(|v| v.to_bits()))
        .collect();
    let chaotic_bits: Vec<u64> = chaotic
        .coords()
        .iter()
        .flat_map(|c| c.vec.iter().map(|v| v.to_bits()))
        .collect();
    assert_eq!(plain_bits, chaotic_bits, "empty plan perturbed coordinates");

    // Allocator sanity: the counter does observe real allocations.
    let before = allocations();
    drop(std::hint::black_box(vec![1u8; 64]));
    assert!(allocations() > before, "counting allocator is live");
}
