//! Allocation accounting for the instrumented NPS fit path with the obs
//! plane off: the per-round evals histogram (`evals::record_round`, on the
//! always-on aggregate plane) must be allocation-free, and the Simplex
//! kernels must stay at exactly one allocation per call (the returned
//! point) — i.e. the `simplex.evals` / warm-vs-cold counters added to them
//! must cost nothing when disabled, and `SimplexSeed::store` must reuse
//! its capacity across rounds.
//!
//! This file holds exactly one `#[test]`: the libtest harness runs tests on
//! worker threads, and a sibling test allocating concurrently would
//! corrupt the global counter.

use vcoord_nps::evals;
use vcoord_obs::testing::{allocations, min_allocations_over, CountingAllocator};
use vcoord_space::{
    simplex_downhill_resume, simplex_downhill_scratch, ResumePolicy, SimplexOptions,
    SimplexScratch, SimplexSeed,
};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn fit_hot_path_allocation_budget_holds_with_obs_off() {
    assert_eq!(vcoord_obs::mode(), vcoord_obs::ObsMode::Off);

    // --- Aggregate plane: recording a round is pure atomics. ---
    evals::record_round(17); // pay the lazy histogram registration
    let allocs = min_allocations_over(3, || {
        for n in 0..100_000usize {
            evals::record_round(n % 300);
        }
    });
    assert_eq!(
        allocs, 0,
        "evals::record_round allocated with the obs plane off"
    );

    // --- Cold kernel: exactly one allocation per call (the returned
    // point), so the disabled `simplex.evals` counter adds nothing. ---
    let objective = |x: &[f64]| -> f64 { x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum::<f64>() };
    let opts = SimplexOptions::default();
    let start = vec![1.0; 4];
    let mut scratch = SimplexScratch::new();
    let _ = simplex_downhill_scratch(objective, &start, &opts, &mut scratch); // size the scratch
    const CALLS: u64 = 1_000;
    let allocs = min_allocations_over(3, || {
        for _ in 0..CALLS {
            std::hint::black_box(simplex_downhill_scratch(
                objective,
                &start,
                &opts,
                &mut scratch,
            ));
        }
    });
    assert_eq!(
        allocs, CALLS,
        "cold simplex kernel must allocate exactly the returned point per call"
    );

    // --- Warm-resume kernel: same budget once the seed has been stored
    // once (its vertex buffers are reused, and the warm/cold counter block
    // is behind the disabled gate). ---
    let policy = ResumePolicy::default_warm();
    let mut seed = SimplexSeed::new();
    let _ = simplex_downhill_resume(objective, &start, &opts, &policy, &mut seed, &mut scratch);
    let allocs = min_allocations_over(3, || {
        for _ in 0..CALLS {
            std::hint::black_box(simplex_downhill_resume(
                objective,
                &start,
                &opts,
                &policy,
                &mut seed,
                &mut scratch,
            ));
        }
    });
    assert_eq!(
        allocs, CALLS,
        "warm-resume simplex kernel must allocate exactly the returned point per call"
    );

    // Allocator sanity: the counter does observe real allocations.
    let before = allocations();
    drop(std::hint::black_box(vec![1u8; 64]));
    assert!(allocations() > before, "counting allocator is live");
}
