//! Node positioning and the reference-point security filter, as pure
//! functions (directly testable against §3.1 of the paper).

use serde::{Deserialize, Serialize};
use vcoord_defense::Provenance;
use vcoord_space::{
    simplex_downhill_resume, simplex_downhill_scratch, Coord, ResumePolicy, SimplexOptions,
    SimplexScratch, SimplexSeed, Space,
};

/// The latency-fit objective minimized by Simplex Downhill.
///
/// GNP's *paper* normalizes by the measured distance; the reference
/// implementation lineage (and the attack dynamics the CoNEXT'06 paper
/// observes — delay inflation destroying accuracy, fig. 14) corresponds to
/// the **absolute** squared error: a relative objective down-weights an
/// inflated measurement by `1/D²`, making delay attacks nearly harmless,
/// which contradicts every NPS figure in the paper. Both are provided; the
/// ablation bench and `tests/` compare them, and `SquaredAbsolute` is the
/// default used by the experiments. The security filter's fitting error is
/// *always* the paper's relative form, independent of this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitObjective {
    /// `Σ (dist(x, P_Ri) − D_Ri)²` — delay-sensitive (default).
    SquaredAbsolute,
    /// `Σ ((dist(x, P_Ri) − D_Ri) / D_Ri)²` — GNP-paper form.
    SquaredRelative,
}

/// One reference-point measurement: the coordinates the reference
/// *reported* and the RTT the node *measured* (both possibly adversarial).
#[derive(Debug, Clone)]
pub struct RefSample {
    /// Reference point's node id.
    pub id: usize,
    /// Reported reference coordinates `P_Ri`.
    pub coord: Coord,
    /// Measured distance `D_Ri` (ms).
    pub rtt: f64,
    /// Defense dampening weight on this sample's term in the fit
    /// objective: `1.0` (the default, bit-identical to an unweighted fit)
    /// for accepted samples, `< 1.0` for `Verdict::Dampen`ed ones. The
    /// security filter's fitting errors `E_Ri` are *not* weighted — a
    /// dampened reference is still judged (and eliminable) at full
    /// strength.
    pub weight: f64,
    /// How the sample entered the probe rotation: `Normal` for freely
    /// chosen references, `Lease` for a starvation-relief readmission of a
    /// still-banned reference (the defense engine quarantines the
    /// latter's evidence). The fit itself ignores this tag.
    pub provenance: Provenance,
}

impl RefSample {
    /// A full-strength sample (weight 1.0, normal provenance).
    pub fn new(id: usize, coord: Coord, rtt: f64) -> RefSample {
        RefSample {
            id,
            coord,
            rtt,
            weight: 1.0,
            provenance: Provenance::Normal,
        }
    }
}

/// The NPS malicious-reference detection policy (§3.1).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SecurityPolicy {
    /// Master switch.
    pub enabled: bool,
    /// Sensitivity constant `C`.
    pub c: f64,
    /// Absolute floor: condition (1) `max E_Ri > min_error`.
    pub min_error: f64,
}

impl SecurityPolicy {
    /// The paper's configuration: `C = 4`, floor `0.01`, enabled.
    pub fn paper() -> SecurityPolicy {
        SecurityPolicy {
            enabled: true,
            c: 4.0,
            min_error: 0.01,
        }
    }

    /// Detection disabled.
    pub fn off() -> SecurityPolicy {
        SecurityPolicy {
            enabled: false,
            c: 4.0,
            min_error: 0.01,
        }
    }
}

/// Result of one positioning round.
#[derive(Debug, Clone)]
pub struct PositionOutcome {
    /// The minimizing coordinates found.
    pub coord: Coord,
    /// Final objective value (sum of squared relative fitting errors).
    pub objective: f64,
    /// Per-reference fitting errors `E_Ri`, parallel to the input samples.
    pub fit_errors: Vec<f64>,
    /// Reference point the security filter eliminated, if any (at most one
    /// per positioning — load-bearing for the paper's attack analysis).
    pub filtered: Option<usize>,
    /// Simplex objective evaluations this positioning actually performed
    /// (both fits combined; a skipped duplicate fit contributes zero).
    pub evals: usize,
}

/// Reusable buffers for one Simplex fit: the kernel's working state, the
/// objective's evaluation coordinate, the gathered SoA reference rows
/// feeding [`Space::distance_flat_batch`], and the initial-vertex term
/// cache shared between a positioning's two cold fits.
#[derive(Debug, Clone)]
struct FitScratch {
    simplex: SimplexScratch,
    probe: Coord,
    /// Reference coordinates of the fitted samples, `dim`-strided, in
    /// `idxs` order.
    rows: Vec<f64>,
    /// Reference heights, parallel to `rows`' logical rows.
    heights: Vec<f64>,
    /// Distance lane output, one slot per fitted sample.
    dists: Vec<f64>,
    /// Cached `term * weight` contributions of the initial simplex
    /// vertices: entry `v * cache_stride + k` is sample `k`'s term at
    /// initial vertex `v`. Filled by a positioning's provisional fit and
    /// reused by its final fit (see [`position_node_scratch`]).
    cache: Vec<f64>,
    /// Samples-per-vertex stride of `cache` (the full sample count of the
    /// positioning that filled it).
    cache_stride: usize,
}

impl Default for FitScratch {
    fn default() -> FitScratch {
        FitScratch {
            simplex: SimplexScratch::new(),
            probe: Coord::origin(0),
            rows: Vec::new(),
            heights: Vec::new(),
            dists: Vec::new(),
            cache: Vec::new(),
            cache_stride: 0,
        }
    }
}

/// How one fit interacts with the initial-vertex term cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheMode {
    /// No caching (warm-started fits; standalone fits).
    Off,
    /// Record each sample's `term * weight` for the first `n + 1`
    /// (initial-vertex) objective evaluations.
    Fill,
    /// Serve the first `n + 1` evaluations by re-summing the recorded
    /// per-sample terms over this fit's index set — bit-identical to
    /// recomputing them, because the initial vertices of two cold fits
    /// from the same start are the same points and each term only depends
    /// on its own sample.
    Use,
}

/// Reusable buffers for [`position_node_scratch`]: the Simplex working
/// state, the objective's evaluation coordinate, the SoA gather/lane
/// buffers, and the usable/surviving sample index sets.
///
/// One long-lived scratch per simulation world makes every positioning
/// round after the first run without heap allocation on the Simplex hot
/// path (only the returned [`PositionOutcome`] is allocated).
#[derive(Debug, Clone, Default)]
pub struct PositionScratch {
    fit: FitScratch,
    usable: Vec<usize>,
    surviving: Vec<usize>,
}

impl PositionScratch {
    /// A new, empty scratch; buffers grow on first use.
    pub fn new() -> PositionScratch {
        PositionScratch::default()
    }
}

/// Fitting error of one reference after positioning:
/// `E_Ri = |dist(P_H, P_Ri) − D_Ri| / D_Ri`.
fn fit_error(space: &Space, at: &Coord, s: &RefSample) -> f64 {
    if s.rtt <= 0.0 {
        return f64::INFINITY;
    }
    (space.distance(at, &s.coord) - s.rtt).abs() / s.rtt
}

/// Position a node against `samples` using Simplex Downhill, then apply the
/// security filter.
///
/// Returns `None` when fewer than `dim + 1` usable samples are available
/// (the embedding would be under-constrained); the caller should skip the
/// round and retry after refreshing its reference set.
///
/// The objective is GNP's: `f(x) = Σ ((dist(x, P_Ri) − D_Ri) / D_Ri)²`.
pub fn position_node(
    space: &Space,
    samples: &[RefSample],
    start: &Coord,
    security: SecurityPolicy,
    opts: &SimplexOptions,
) -> Option<PositionOutcome> {
    position_node_with(
        space,
        samples,
        start,
        None,
        security,
        opts,
        FitObjective::SquaredAbsolute,
    )
}

/// Run one Simplex fit over `samples[idxs]`, minimizing `objective_kind`.
///
/// Allocation-free apart from the returned coordinate: the Simplex state
/// lives in the scratch and the objective evaluates through the reusable
/// `probe` coordinate. All reference distances for one evaluation come from
/// a single [`Space::distance_flat_batch`] call over rows gathered once per
/// fit — bit-identical to the per-sample `space.distance` loop it replaces.
/// `seed` warm-starts the kernel via [`simplex_downhill_resume`];
/// `cache_mode` shares initial-vertex terms between a positioning's two
/// cold fits (see [`CacheMode`]). Returns the fitted coordinate, the final
/// objective value, and the number of objective evaluations performed.
#[allow(clippy::too_many_arguments)]
fn fit_samples(
    space: &Space,
    samples: &[RefSample],
    idxs: &[usize],
    start: &Coord,
    opts: &SimplexOptions,
    objective_kind: FitObjective,
    fit: &mut FitScratch,
    cache_mode: CacheMode,
    seed: Option<(&ResumePolicy, &mut SimplexSeed)>,
) -> (Coord, f64, usize) {
    let FitScratch {
        simplex,
        probe,
        rows,
        heights,
        dists,
        cache,
        cache_stride,
    } = fit;
    let dim = start.vec.len();
    probe.vec.clear();
    probe.vec.resize(dim, 0.0);
    probe.height = 0.0;
    // Gather the fitted references once, SoA, in `idxs` order.
    rows.clear();
    heights.clear();
    for &k in idxs {
        rows.extend_from_slice(&samples[k].coord.vec);
        heights.push(samples[k].coord.height);
    }
    dists.clear();
    dists.resize(idxs.len(), 0.0);
    if cache_mode == CacheMode::Fill {
        cache.clear();
        cache.resize((dim + 1) * samples.len(), 0.0);
        *cache_stride = samples.len();
    }
    let n_init = dim + 1;
    let mut eval_idx = 0usize;
    let objective = |x: &[f64]| -> f64 {
        let e = eval_idx;
        eval_idx += 1;
        if cache_mode == CacheMode::Use && e < n_init {
            // The first `n + 1` evaluations are the initial vertices, which
            // are the same points the fill fit evaluated; re-summing its
            // per-sample terms in `idxs` order is bit-identical to
            // recomputing them.
            return idxs.iter().map(|&k| cache[e * *cache_stride + k]).sum();
        }
        probe.vec.copy_from_slice(x);
        space.distance_flat_batch(&probe.vec, probe.height, rows, heights, dists);
        idxs.iter()
            .zip(dists.iter())
            .map(|(&k, &d)| {
                let s = &samples[k];
                let diff = d - s.rtt;
                let term = match objective_kind {
                    FitObjective::SquaredAbsolute => diff * diff,
                    FitObjective::SquaredRelative => (diff / s.rtt) * (diff / s.rtt),
                };
                // Defense dampening: a trailing ×1.0 for full-strength
                // samples, so the unweighted fit is preserved bit for bit.
                let weighted = term * s.weight;
                if cache_mode == CacheMode::Fill && e < n_init {
                    cache[e * *cache_stride + k] = weighted;
                }
                weighted
            })
            .sum()
    };
    let fit_span = vcoord_obs::span(vcoord_obs::metric_id!("simplex.fit_ns"));
    let result = match seed {
        Some((policy, seed)) => {
            simplex_downhill_resume(objective, &start.vec, opts, policy, seed, simplex)
        }
        None => simplex_downhill_scratch(objective, &start.vec, opts, simplex),
    };
    drop(fit_span);
    let mut coord = Coord::from_vec(result.point);
    coord.sanitize();
    (coord, result.value, result.evals)
}

/// [`position_node`] with an explicit fit objective and an optional
/// *incumbent* position.
///
/// The incumbent — the node's position from its previous round, when it has
/// one — is the reference frame for the security filter: fitting errors are
/// evaluated against the stable incumbent, the worst outlier (if any) is
/// rejected, and only then is the new position fitted from the surviving
/// samples. Judging errors against the freshly-dragged fit instead would
/// systematically blame *nearby honest* references (their small measured
/// RTT is the denominator of `E_Ri`) whenever an attacker drags the fit —
/// inverting the filter into a weapon. The reject-then-fit order is the
/// reading under which the paper's observed filter efficacy (figure 14,
/// effective up to ~30 % simple-disorder attackers) is reproducible, and it
/// leaves the anti-detection attacks exactly their published loophole:
/// a *consistent* lie has near-zero error against the incumbent. First
/// positionings (no incumbent) fall back to post-fit evaluation.
pub fn position_node_with(
    space: &Space,
    samples: &[RefSample],
    start: &Coord,
    incumbent: Option<&Coord>,
    security: SecurityPolicy,
    opts: &SimplexOptions,
    objective_kind: FitObjective,
) -> Option<PositionOutcome> {
    let mut scratch = PositionScratch::new();
    position_node_scratch(
        space,
        samples,
        start,
        incumbent,
        security,
        opts,
        objective_kind,
        &mut scratch,
    )
}

/// [`position_node_with`] reusing caller-held buffers — the allocation-free
/// hot path driven once per repositioning round by the NPS simulator.
///
/// Numerically identical to [`position_node_with`] (which delegates here
/// with a throwaway scratch): the same samples are visited in the same
/// order, so every floating-point operation matches bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn position_node_scratch(
    space: &Space,
    samples: &[RefSample],
    start: &Coord,
    incumbent: Option<&Coord>,
    security: SecurityPolicy,
    opts: &SimplexOptions,
    objective_kind: FitObjective,
    scratch: &mut PositionScratch,
) -> Option<PositionOutcome> {
    position_node_impl(
        space,
        samples,
        start,
        incumbent,
        security,
        opts,
        objective_kind,
        None,
        scratch,
    )
}

/// [`position_node_scratch`] with a per-node warm-start seed.
///
/// With a cold-only `policy` ([`ResumePolicy::always_cold`]) this is
/// bitwise-identical to [`position_node_scratch`]. With a warm policy the
/// *final* fit resumes from `seed` — the converged simplex of this node's
/// previous positioning — typically collapsing the per-round evaluation
/// count; the strict-mode optimizations (duplicate-fit skip and
/// initial-vertex term cache) are disabled because warm initial vertices
/// differ between fits.
#[allow(clippy::too_many_arguments)]
pub fn position_node_seeded(
    space: &Space,
    samples: &[RefSample],
    start: &Coord,
    incumbent: Option<&Coord>,
    security: SecurityPolicy,
    opts: &SimplexOptions,
    objective_kind: FitObjective,
    policy: &ResumePolicy,
    seed: &mut SimplexSeed,
    scratch: &mut PositionScratch,
) -> Option<PositionOutcome> {
    position_node_impl(
        space,
        samples,
        start,
        incumbent,
        security,
        opts,
        objective_kind,
        Some((policy, seed)),
        scratch,
    )
}

#[allow(clippy::too_many_arguments)]
fn position_node_impl(
    space: &Space,
    samples: &[RefSample],
    start: &Coord,
    incumbent: Option<&Coord>,
    security: SecurityPolicy,
    opts: &SimplexOptions,
    objective_kind: FitObjective,
    seed: Option<(&ResumePolicy, &mut SimplexSeed)>,
    scratch: &mut PositionScratch,
) -> Option<PositionOutcome> {
    let PositionScratch {
        fit,
        usable,
        surviving,
    } = scratch;
    usable.clear();
    usable.extend(samples.iter().enumerate().filter_map(|(k, s)| {
        (s.rtt > 0.0 && s.rtt.is_finite() && s.coord.is_finite()).then_some(k)
    }));
    if usable.len() < space.dim() + 1 {
        log::debug!(
            "nps: under-constrained positioning ({} refs for {}-D)",
            usable.len(),
            space.dim()
        );
        return None;
    }
    let warm = seed
        .as_ref()
        .is_some_and(|(policy, _)| !policy.is_cold_only());
    let mut evals = 0usize;

    // Reference frame for outlier rejection: the incumbent when available,
    // otherwise a provisional fit over all samples. A cold provisional fit
    // fills the initial-vertex term cache and is remembered so the final
    // fit can be skipped outright when it would be an exact repeat.
    let mut provisional: Option<(Coord, f64)> = None;
    let frame: Coord = match incumbent {
        Some(c) => c.clone(),
        None => {
            let mode = if warm {
                CacheMode::Off
            } else {
                CacheMode::Fill
            };
            let (c, v, e) = fit_samples(
                space,
                samples,
                usable,
                start,
                opts,
                objective_kind,
                fit,
                mode,
                None,
            );
            evals += e;
            if !warm {
                provisional = Some((c.clone(), v));
            }
            c
        }
    };
    let filter_span = vcoord_obs::span(vcoord_obs::metric_id!("nps.filter_ns"));
    let fit_errors: Vec<f64> = samples
        .iter()
        .map(|s| fit_error(space, &frame, s))
        .collect();
    let filtered = if security.enabled {
        apply_filter(&fit_errors, security).map(|idx| samples[idx].id)
    } else {
        None
    };
    drop(filter_span);

    // Final fit over the surviving samples (at most one eliminated).
    surviving.clear();
    surviving.extend(
        usable
            .iter()
            .copied()
            .filter(|&k| Some(samples[k].id) != filtered),
    );
    let fit_over = if surviving.len() > space.dim() {
        &*surviving
    } else {
        &*usable
    };
    // `surviving` preserves `usable`'s order, so equal length means the
    // final fit would repeat the provisional fit bit for bit (same samples,
    // start, options, cold kernel): reuse its result instead.
    let dup_skip = provisional.is_some() && fit_over.len() == usable.len();
    let (coord, objective_value) = if dup_skip {
        provisional.expect("dup_skip implies a provisional fit")
    } else {
        let mode = if provisional.is_some() {
            CacheMode::Use
        } else {
            CacheMode::Off
        };
        let (c, v, e) = fit_samples(
            space,
            samples,
            fit_over,
            start,
            opts,
            objective_kind,
            fit,
            mode,
            seed,
        );
        evals += e;
        (c, v)
    };

    Some(PositionOutcome {
        coord,
        objective: objective_value,
        fit_errors,
        filtered,
        evals,
    })
}

/// The filter decision alone: index of the sample to eliminate, if both
/// conditions hold. Exposed for direct unit testing.
pub fn apply_filter(fit_errors: &[f64], policy: SecurityPolicy) -> Option<usize> {
    if !policy.enabled || fit_errors.is_empty() {
        return None;
    }
    let (max_idx, max_err) = fit_errors
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
    let median = {
        let mut v: Vec<f64> = fit_errors
            .iter()
            .copied()
            .filter(|e| e.is_finite())
            .collect();
        if v.is_empty() {
            return Some(max_idx); // everything infinite: drop the max
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    if *max_err > policy.min_error && *max_err > policy.c * median {
        Some(max_idx)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Space {
        Space::Euclidean(2)
    }

    /// References on a square, target at the center.
    fn square_samples(rtts: &[f64]) -> Vec<RefSample> {
        let pts = [
            [0.0, 0.0],
            [100.0, 0.0],
            [100.0, 100.0],
            [0.0, 100.0],
            [50.0, 0.0],
        ];
        pts.iter()
            .zip(rtts)
            .enumerate()
            .map(|(i, (p, &rtt))| RefSample::new(i + 100, Coord::from_vec(p.to_vec()), rtt))
            .collect()
    }

    #[test]
    fn positions_at_geometric_solution() {
        // Distances consistent with the point (50, 50).
        let d = 50.0 * std::f64::consts::SQRT_2;
        let samples = square_samples(&[d, d, d, d, 50.0]);
        let out = position_node(
            &space(),
            &samples,
            &Coord::from_vec(vec![10.0, 10.0]),
            SecurityPolicy::paper(),
            &SimplexOptions::default(),
        )
        .unwrap();
        assert!((out.coord.vec[0] - 50.0).abs() < 1.0, "{:?}", out.coord);
        assert!((out.coord.vec[1] - 50.0).abs() < 1.0);
        assert!(out.filtered.is_none(), "clean refs must not be filtered");
        assert!(out.objective < 1e-4);
    }

    #[test]
    fn filters_the_single_liar_with_robust_fit() {
        // Under the relative (GNP-paper) objective the fit stays pinned by
        // the honest majority, so the inflating liar is the clear outlier
        // and the filter names it.
        let d = 50.0 * std::f64::consts::SQRT_2;
        let samples = square_samples(&[d, d, d, d, 5000.0]);
        let out = position_node_with(
            &space(),
            &samples,
            &Coord::from_vec(vec![10.0, 10.0]),
            None,
            SecurityPolicy::paper(),
            &SimplexOptions::default(),
            FitObjective::SquaredRelative,
        )
        .unwrap();
        assert_eq!(out.filtered, Some(104), "the inflated ref must be caught");
    }

    #[test]
    fn absolute_objective_can_shift_blame() {
        // Under the absolute objective a massive liar drags the fit far
        // enough that honest references also look wrong — the median rises
        // and the C·median condition shields the liar. This is the
        // mechanism behind the paper's false-positive observations
        // (figures 20/22).
        let d = 50.0 * std::f64::consts::SQRT_2;
        let samples = square_samples(&[d, d, d, d, 5000.0]);
        let out = position_node_with(
            &space(),
            &samples,
            &Coord::from_vec(vec![10.0, 10.0]),
            None,
            SecurityPolicy::paper(),
            &SimplexOptions::default(),
            FitObjective::SquaredAbsolute,
        )
        .unwrap();
        // The dragged fit inflates every fitting error, not just the liar's.
        let honest_max = out.fit_errors[..4].iter().copied().fold(0.0f64, f64::max);
        assert!(honest_max > 0.5, "honest refs get blamed too: {honest_max}");
    }

    #[test]
    fn security_off_never_filters() {
        let d = 50.0 * std::f64::consts::SQRT_2;
        let samples = square_samples(&[d, d, d, d, 5000.0]);
        let out = position_node(
            &space(),
            &samples,
            &Coord::from_vec(vec![10.0, 10.0]),
            SecurityPolicy::off(),
            &SimplexOptions::default(),
        )
        .unwrap();
        assert!(out.filtered.is_none());
    }

    #[test]
    fn under_constrained_returns_none() {
        let samples = square_samples(&[70.0, 70.0, 70.0, 70.0, 50.0]);
        assert!(position_node(
            &space(),
            &samples[..2],
            &Coord::origin(2),
            SecurityPolicy::paper(),
            &SimplexOptions::default(),
        )
        .is_none());
    }

    #[test]
    fn threshold_condition_one_blocks_tiny_errors() {
        // Max error below the 0.01 floor: no filtering even if it dominates
        // the median.
        let errs = [0.0001, 0.0001, 0.0001, 0.009];
        assert_eq!(apply_filter(&errs, SecurityPolicy::paper()), None);
    }

    #[test]
    fn median_condition_two_blocks_uniform_badness() {
        // Everyone is bad: max not > 4×median → nothing filtered. This is
        // exactly how a large colluding population survives the filter.
        let errs = [0.5, 0.6, 0.55, 0.62, 0.58];
        assert_eq!(apply_filter(&errs, SecurityPolicy::paper()), None);
    }

    #[test]
    fn filter_picks_the_max() {
        let errs = [0.001, 0.002, 0.9, 0.003];
        assert_eq!(apply_filter(&errs, SecurityPolicy::paper()), Some(2));
    }

    #[test]
    fn at_most_one_filtered_per_positioning() {
        // Two equally terrible refs: the filter still names only one index.
        let errs = [0.9, 0.9, 0.001, 0.002, 0.001];
        let idx = apply_filter(&errs, SecurityPolicy::paper());
        assert!(idx == Some(0) || idx == Some(1));
    }

    #[test]
    fn incumbent_frame_catches_delayer_despite_dragged_fit() {
        // With an incumbent position (the converged estimate), the filter
        // judges errors in a stable frame: the delaying liar is the outlier
        // and gets rejected BEFORE the fit, so the final position is
        // computed from honest samples only — even under the drag-prone
        // absolute objective.
        let d = 50.0 * std::f64::consts::SQRT_2;
        let samples = square_samples(&[d, d, d, d, 800.0]); // true rtt 50, delayed
        let incumbent = Coord::from_vec(vec![50.0, 50.0]);
        let out = position_node_with(
            &space(),
            &samples,
            &incumbent,
            Some(&incumbent),
            SecurityPolicy::paper(),
            &SimplexOptions::default(),
            FitObjective::SquaredAbsolute,
        )
        .unwrap();
        assert_eq!(out.filtered, Some(104), "the delayer must be rejected");
        // Final position fitted without the liar: stays at the truth.
        assert!((out.coord.vec[0] - 50.0).abs() < 1.0, "{:?}", out.coord);
        assert!((out.coord.vec[1] - 50.0).abs() < 1.0);
    }

    #[test]
    fn consistent_lie_evades_incumbent_filter() {
        // The anti-detection loophole: a lie whose reported coordinate and
        // measured RTT agree (as seen from the victim's incumbent) has a
        // near-zero fitting error and is never filtered — but it still
        // drags the fit.
        let d = 50.0 * std::f64::consts::SQRT_2;
        let mut samples = square_samples(&[d, d, d, d, 50.0]);
        // Attacker (id 104, truly at (50,0), 50 ms away) pretends to be at
        // (50, -10000) and under-claims the RTT by 0.9 % — a fitting error
        // of 0.009 < 0.01 at the victim's incumbent (50,50), yet a steady
        // ~90 ms pull toward the fake coordinate.
        samples[4].coord = Coord::from_vec(vec![50.0, -10_000.0]);
        samples[4].rtt = 10_050.0 * 0.991;
        let incumbent = Coord::from_vec(vec![50.0, 50.0]);
        let out = position_node_with(
            &space(),
            &samples,
            &incumbent,
            Some(&incumbent),
            SecurityPolicy::paper(),
            &SimplexOptions::default(),
            FitObjective::SquaredAbsolute,
        )
        .unwrap();
        assert_eq!(out.filtered, None, "consistent lies evade the filter");
        // And the fit is dragged away from the truth.
        let displacement =
            ((out.coord.vec[0] - 50.0).powi(2) + (out.coord.vec[1] - 50.0).powi(2)).sqrt();
        assert!(displacement > 10.0, "lie must drag the fit: {displacement}");
    }

    #[test]
    fn unit_weights_are_bit_identical_to_unweighted_fit() {
        // The NPS side of the Dampen(1.0) ≡ Accept identity: explicit 1.0
        // weights must not flip a single bit of the fitted position.
        let d = 50.0 * std::f64::consts::SQRT_2;
        let samples = square_samples(&[d, d, d, d, 50.0]);
        let a = position_node(
            &space(),
            &samples,
            &Coord::from_vec(vec![10.0, 10.0]),
            SecurityPolicy::paper(),
            &SimplexOptions::default(),
        )
        .unwrap();
        // Same samples, weights written explicitly.
        let reweighted: Vec<RefSample> = samples
            .iter()
            .map(|s| RefSample {
                weight: 1.0,
                ..s.clone()
            })
            .collect();
        let b = position_node(
            &space(),
            &reweighted,
            &Coord::from_vec(vec![10.0, 10.0]),
            SecurityPolicy::paper(),
            &SimplexOptions::default(),
        )
        .unwrap();
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.coord.height.to_bits(), b.coord.height.to_bits());
        for (x, y) in a.coord.vec.iter().zip(&b.coord.vec) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn dampened_sample_loses_influence_on_the_fit() {
        // Four consistent refs put the node at (50,50); a fifth lies hard.
        // Dampening the liar's weight toward zero must pull the fit back
        // toward the honest solution.
        let d = 50.0 * std::f64::consts::SQRT_2;
        let mut samples = square_samples(&[d, d, d, d, 5000.0]);
        let fit = |samples: &[RefSample]| {
            position_node_with(
                &space(),
                samples,
                &Coord::from_vec(vec![10.0, 10.0]),
                None,
                SecurityPolicy::off(),
                &SimplexOptions::default(),
                FitObjective::SquaredAbsolute,
            )
            .unwrap()
            .coord
        };
        let dragged = fit(&samples);
        samples[4].weight = 0.01;
        let recovered = fit(&samples);
        let err = |c: &Coord| ((c.vec[0] - 50.0).powi(2) + (c.vec[1] - 50.0).powi(2)).sqrt();
        assert!(
            err(&recovered) < err(&dragged) * 0.2,
            "dampening must defang the liar: dragged {:.1}, recovered {:.1}",
            err(&dragged),
            err(&recovered)
        );
    }

    #[test]
    fn rejects_invalid_samples_before_positioning() {
        let d = 50.0 * std::f64::consts::SQRT_2;
        let mut samples = square_samples(&[d, d, d, d, 50.0]);
        samples[0].rtt = f64::NAN;
        samples[1].rtt = -5.0;
        samples[2].coord = Coord::from_vec(vec![f64::INFINITY, 0.0]);
        // Only 2 usable refs left < dim+1 = 3.
        assert!(position_node(
            &space(),
            &samples,
            &Coord::origin(2),
            SecurityPolicy::paper(),
            &SimplexOptions::default(),
        )
        .is_none());
    }
}
