//! The NPS adversary interface.
//!
//! Mirrors the Vivaldi seam (`vcoord_vivaldi::adversary`) with NPS-specific
//! context: attackers act when they serve as *reference points* in a
//! victim's positioning round. An NPS response carries reported coordinates
//! and an added probe delay (there is no error-estimate field in NPS).

use rand_chacha::ChaCha12Rng;
use vcoord_space::{Coord, Space};

/// What a probed malicious reference point sends back.
#[derive(Debug, Clone)]
pub struct RefLie {
    /// Reported reference coordinates `P_Ri` (possibly false).
    pub coord: Coord,
    /// Extra probe delay in ms; clamped to `>= 0` by the simulator (the
    /// threat model forbids shortening RTTs).
    pub delay_ms: f64,
}

/// Read-only oracle view handed to NPS adversaries.
pub struct NpsView<'a> {
    /// The embedding space.
    pub space: &'a Space,
    /// True current coordinates of every node.
    pub coords: &'a [Coord],
    /// Layer of every node (0 = landmark).
    pub layer: &'a [u8],
    /// Malicious flags.
    pub malicious: &'a [bool],
    /// Whether each node currently serves in a reference-eligible layer.
    pub is_ref: &'a [bool],
    /// The victim-side probe threshold (protocol constant, public).
    pub probe_threshold_ms: f64,
    /// Current simulated time (ms).
    pub now_ms: u64,
}

/// A strategy deciding how malicious NPS reference points answer
/// positioning probes.
pub trait NpsAdversary {
    /// Called once at injection with the converged system as oracle.
    fn inject(&mut self, _attackers: &[usize], _view: &NpsView<'_>, _rng: &mut ChaCha12Rng) {}

    /// Reference point `attacker` was probed by `victim` (true RTT `rtt`).
    /// Return the lie, or `None` to behave honestly for this probe.
    fn respond(
        &mut self,
        attacker: usize,
        victim: usize,
        rtt: f64,
        view: &NpsView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<RefLie>;

    /// Short label for logs and CSV headers.
    fn label(&self) -> &'static str {
        "adversary"
    }
}

/// Null adversary: malicious nodes that never actually misbehave.
#[derive(Debug, Default, Clone, Copy)]
pub struct HonestNpsAdversary;

impl NpsAdversary for HonestNpsAdversary {
    fn respond(
        &mut self,
        _attacker: usize,
        _victim: usize,
        _rtt: f64,
        _view: &NpsView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<RefLie> {
        None
    }

    fn label(&self) -> &'static str {
        "honest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_adversary_never_lies() {
        let space = Space::Euclidean(2);
        let coords = vec![Coord::origin(2); 2];
        let layer = vec![1u8, 2u8];
        let malicious = vec![true, false];
        let is_ref = vec![true, false];
        let view = NpsView {
            space: &space,
            coords: &coords,
            layer: &layer,
            malicious: &malicious,
            is_ref: &is_ref,
            probe_threshold_ms: 5000.0,
            now_ms: 0,
        };
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        assert!(HonestNpsAdversary
            .respond(0, 1, 10.0, &view, &mut rng)
            .is_none());
    }
}
