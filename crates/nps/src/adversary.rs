//! The NPS adversary seam.
//!
//! Mirrors the Vivaldi seam (`vcoord_vivaldi::adversary`): attack behaviour
//! is injected through the generic scenario engine of [`vcoord_attackkit`],
//! and attackers act when they serve as *reference points* in a victim's
//! positioning round. NPS-specific reading of the generic contract:
//!
//! * an NPS response carries reported coordinates and an added probe delay;
//!   there is no error-estimate field in the protocol, so [`Lie::error`] is
//!   ignored by the simulator;
//! * the [`CoordView`] oracle exposes the hierarchy: `layer` (0 =
//!   landmark), `is_ref` (reference-eligible nodes), and an empty `errors`
//!   slice (NPS victims keep no error estimate); `round` is the
//!   repositioning period index;
//! * [`Protocol::probe_threshold_ms`](vcoord_attackkit::Protocol) is the
//!   victim-side probe threshold (a public protocol constant): measured
//!   RTTs above it are discarded *and the reference banned*, which is what
//!   threshold-aware strategies must stay under.

pub use vcoord_attackkit::{
    AttackStrategy, Collusion, CoordView, Honest, Lie, Probe, Protocol, Scenario,
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vcoord_space::{Coord, Space};

    #[test]
    fn honest_scenario_never_lies_through_the_seam() {
        let space = Space::Euclidean(2);
        let coords = vec![Coord::origin(2); 2];
        let layer = vec![1u8, 2u8];
        let malicious = vec![true, false];
        let is_ref = vec![true, false];
        let view = CoordView {
            space: &space,
            coords: &coords,
            errors: &[],
            layer: &layer,
            malicious: &malicious,
            is_ref: &is_ref,
            round: 0,
            now_ms: 0,
            params: Protocol {
                cc: 0.25,
                probe_threshold_ms: 5000.0,
            },
        };
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(0);
        let mut scenario = Scenario::new(Box::new(Honest));
        scenario.inject(&[0], &view, &mut rng);
        assert!(scenario
            .respond(
                Probe {
                    attacker: 0,
                    victim: 1,
                    rtt: 10.0
                },
                &view,
                &mut rng
            )
            .is_none());
    }
}
