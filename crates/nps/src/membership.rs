//! The NPS membership server.
//!
//! The membership server knows which nodes live in which layer and hands
//! each joining node a random set of reference points from the layer above
//! it. When a node's security filter eliminates a reference point, the
//! server provides a random replacement the node has not banned yet.

use rand::seq::SliceRandom;
use rand::Rng;

/// Membership server state: the layer directory.
#[derive(Debug, Clone)]
pub struct Membership {
    members: Vec<Vec<usize>>,
}

impl Membership {
    /// Build from a per-node layer vector (`layer[i]` = layer of node `i`).
    pub fn new(layer: &[u8], layers: usize) -> Membership {
        Membership {
            members: crate::layers::layer_members(layer, layers),
        }
    }

    /// Nodes of layer `l`.
    pub fn layer(&self, l: usize) -> &[usize] {
        &self.members[l]
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.members.len()
    }

    /// Assign `k` random reference points for `node` (member of `layer`),
    /// drawn from layer `layer - 1`, excluding `banned` ids.
    ///
    /// Returns fewer than `k` when the pool is small; empty for layer 0
    /// (landmarks position among themselves).
    pub fn assign_refs<R: Rng + ?Sized>(
        &self,
        node: usize,
        layer: u8,
        k: usize,
        banned: &[usize],
        rng: &mut R,
    ) -> Vec<usize> {
        if layer == 0 {
            return Vec::new();
        }
        let pool: Vec<usize> = self.members[(layer - 1) as usize]
            .iter()
            .copied()
            .filter(|&r| r != node && !banned.contains(&r))
            .collect();
        let mut pool = pool;
        pool.shuffle(rng);
        pool.truncate(k);
        pool
    }

    /// One replacement reference for `node`, excluding current refs and
    /// banned ids. `None` when the pool is exhausted — the node then keeps
    /// running with fewer references (the paper's attackers rely on
    /// exactly this kind of slack).
    pub fn replacement<R: Rng + ?Sized>(
        &self,
        node: usize,
        layer: u8,
        current: &[usize],
        banned: &[usize],
        rng: &mut R,
    ) -> Option<usize> {
        if layer == 0 {
            return None;
        }
        let pool: Vec<usize> = self.members[(layer - 1) as usize]
            .iter()
            .copied()
            .filter(|&r| r != node && !current.contains(&r) && !banned.contains(&r))
            .collect();
        pool.choose(rng).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn membership() -> Membership {
        // 4 landmarks (0-3), 4 middle (4-7), 4 top (8-11).
        let mut layer = vec![0u8; 12];
        layer[4..8].fill(1);
        layer[8..12].fill(2);
        Membership::new(&layer, 3)
    }

    #[test]
    fn directory_is_correct() {
        let m = membership();
        assert_eq!(m.layer(0), &[0, 1, 2, 3]);
        assert_eq!(m.layer(1), &[4, 5, 6, 7]);
        assert_eq!(m.layers(), 3);
    }

    #[test]
    fn refs_come_from_layer_above() {
        let m = membership();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let refs = m.assign_refs(9, 2, 3, &[], &mut rng);
        assert_eq!(refs.len(), 3);
        assert!(refs.iter().all(|r| m.layer(1).contains(r)));
    }

    #[test]
    fn banned_refs_are_excluded() {
        let m = membership();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let refs = m.assign_refs(9, 2, 4, &[4, 5], &mut rng);
        assert_eq!(refs.len(), 2);
        assert!(!refs.contains(&4) && !refs.contains(&5));
    }

    #[test]
    fn replacement_avoids_current_and_banned() {
        let m = membership();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let r = m.replacement(9, 2, &[4, 5], &[6], &mut rng);
        assert_eq!(r, Some(7));
        assert_eq!(m.replacement(9, 2, &[4, 5, 7], &[6], &mut rng), None);
    }

    #[test]
    fn landmarks_get_no_refs() {
        let m = membership();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        assert!(m.assign_refs(0, 0, 5, &[], &mut rng).is_empty());
        assert_eq!(m.replacement(0, 0, &[], &[], &mut rng), None);
    }

    #[test]
    fn never_assigns_self() {
        // Node 4 is in layer 1; when (hypothetically) asking for layer-1
        // refs for a layer-2 node id equal to a pool member, self is
        // excluded.
        let m = membership();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for _ in 0..20 {
            let refs = m.assign_refs(4, 2, 4, &[], &mut rng);
            assert!(!refs.contains(&4));
        }
    }
}
