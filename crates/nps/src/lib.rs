//! # vcoord-nps
//!
//! The Network Positioning System (NPS) [Ng & Zhang, USENIX'04] — the
//! landmark/hierarchy representative attacked by the CoNEXT'06 paper —
//! implemented from the protocol description as a [`vcoord_netsim`] world
//! (the original reference implementation was never released; the paper's
//! authors likewise re-implemented it for their simulator).
//!
//! NPS structure, as simulated here (paper §3.1 / §5.2):
//!
//! * **Layer 0**: 20 well-separated permanent landmarks define the basis of
//!   an 8-D Euclidean space. They are assumed secure and never cheat.
//! * **Middle layers**: 20 % of ordinary nodes per layer are chosen by the
//!   *membership server* as eligible reference points for the layer below.
//! * Every node positions by measuring RTTs to ~20 reference points in the
//!   layer above and minimizing the sum of squared relative fitting errors
//!   with the **Simplex Downhill** method, repeating periodically.
//! * **Security mechanism**: after each positioning, the reference point
//!   with the largest fitting error `E_Ri` is eliminated iff
//!   `max E > 0.01` **and** `max E > C · median(E)` (C = 4) — at most one
//!   per positioning. A 5-second **probe threshold** additionally discards
//!   implausibly slow probes.
//!
//! Malicious reference-point behaviour is injected through the generic
//! [`vcoord_attackkit::AttackStrategy`] seam (see [`adversary`]); the
//! simulator enforces the delay-only threat model and accounts every filter
//! decision in a [`vcoord_metrics::FilterLedger`] (true vs false positives
//! — figures 20 and 22).
//!
//! Defense behaviour beyond NPS's built-in mechanisms is deployed through
//! the mirror-image [`vcoord_defense::DefenseStrategy`] seam (see
//! [`defense`]): every reference probe of an ordinary node's positioning
//! round passes the deployed [`defense::Defense`] before the Simplex fit.

pub mod adversary;
pub mod config;
pub mod defense;
pub mod evals;
pub mod layers;
pub mod membership;
pub mod position;
pub mod sim;

pub use adversary::{AttackStrategy, Collusion, CoordView, Honest, Lie, Probe, Protocol, Scenario};
pub use config::{NpsConfig, PositioningMode};
pub use defense::{Defense, DefenseStrategy, Verdict};
pub use evals::EvalSnapshot;
pub use position::{
    position_node, position_node_scratch, position_node_seeded, position_node_with, FitObjective,
    PositionOutcome, PositionScratch, RefSample, SecurityPolicy,
};
pub use sim::NpsSim;
