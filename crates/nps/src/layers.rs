//! Landmark selection and layer assignment.

use rand::seq::SliceRandom;
use rand::Rng;
use vcoord_topo::RttMatrix;

/// Pick `k` well-separated landmarks by greedy max–min (k-center) selection:
/// start from one end of the network's diameter, then repeatedly add the
/// node whose minimum RTT to the chosen set is largest. This is the standard
/// reading of the paper's "20 well separated permanent Landmarks".
///
/// # Panics
/// Panics if `k` exceeds the node count or `k == 0`.
pub fn select_landmarks(matrix: &RttMatrix, k: usize) -> Vec<usize> {
    let n = matrix.len();
    assert!(k >= 1 && k <= n, "invalid landmark count {k} for {n} nodes");
    // Seed with one endpoint of the (approximate) diameter.
    let (mut a, mut best) = (0usize, -1.0f64);
    for (i, j, v) in matrix.pairs() {
        if v > best {
            best = v;
            a = i;
            let _ = j;
        }
    }
    let mut chosen = vec![a];
    let mut min_dist: Vec<f64> = (0..n).map(|i| matrix.rtt(a, i)).collect();
    while chosen.len() < k {
        let (next, _) = min_dist
            .iter()
            .enumerate()
            .filter(|(i, _)| !chosen.contains(i))
            .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite RTTs"))
            .expect("k <= n ensures a candidate");
        chosen.push(next);
        for (i, md) in min_dist.iter_mut().enumerate() {
            *md = md.min(matrix.rtt(next, i));
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Assign every node a layer: `0` for landmarks, `1..layers-1` for the
/// middle (reference-eligible) layers holding `ref_fraction` of the ordinary
/// nodes each, and `layers-1` for everyone else.
///
/// Returns the per-node layer vector.
///
/// # Panics
/// Panics if `layers < 2` or the parameters leave a middle layer empty.
pub fn assign_layers<R: Rng + ?Sized>(
    n: usize,
    landmarks: &[usize],
    layers: usize,
    ref_fraction: f64,
    rng: &mut R,
) -> Vec<u8> {
    assert!(layers >= 2, "need at least landmarks + one layer");
    assert!(layers <= u8::MAX as usize);
    let mut layer = vec![(layers - 1) as u8; n];
    for &l in landmarks {
        layer[l] = 0;
    }
    let mut ordinary: Vec<usize> = (0..n).filter(|i| !landmarks.contains(i)).collect();
    ordinary.shuffle(rng);
    let per_middle = ((ordinary.len() as f64) * ref_fraction).round() as usize;
    assert!(
        per_middle >= 1 || layers == 2,
        "ref_fraction leaves middle layers empty"
    );
    let mut cursor = 0usize;
    for middle in 1..(layers - 1) {
        for _ in 0..per_middle {
            if cursor >= ordinary.len() {
                break;
            }
            layer[ordinary[cursor]] = middle as u8;
            cursor += 1;
        }
    }
    layer
}

/// Group node ids by layer: `members[l]` lists the nodes of layer `l`.
pub fn layer_members(layer: &[u8], layers: usize) -> Vec<Vec<usize>> {
    let mut members = vec![Vec::new(); layers];
    for (i, &l) in layer.iter().enumerate() {
        members[l as usize].push(i);
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;
    use vcoord_topo::{KingLike, KingLikeConfig};

    fn topo(n: usize) -> RttMatrix {
        KingLike::new(KingLikeConfig::with_nodes(n)).generate(&mut ChaCha12Rng::seed_from_u64(1))
    }

    #[test]
    fn landmarks_are_well_separated() {
        let m = topo(120);
        let lm = select_landmarks(&m, 10);
        assert_eq!(lm.len(), 10);
        // Min pairwise landmark RTT must beat the matrix-wide 10th
        // percentile by a wide margin (that's the point of max-min).
        let mut all: Vec<f64> = m.pairs().map(|(_, _, v)| v).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p10 = all[all.len() / 10];
        let mut min_lm = f64::INFINITY;
        for (k, &a) in lm.iter().enumerate() {
            for &b in lm.iter().skip(k + 1) {
                min_lm = min_lm.min(m.rtt(a, b));
            }
        }
        assert!(min_lm > p10, "landmarks not separated: {min_lm} <= {p10}");
    }

    #[test]
    fn landmarks_deterministic() {
        let m = topo(80);
        assert_eq!(select_landmarks(&m, 7), select_landmarks(&m, 7));
    }

    #[test]
    fn three_layer_split() {
        let m = topo(120);
        let lm = select_landmarks(&m, 20);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let layer = assign_layers(120, &lm, 3, 0.2, &mut rng);
        let members = layer_members(&layer, 3);
        assert_eq!(members[0].len(), 20);
        assert_eq!(members[1].len(), 20); // 20% of 100
        assert_eq!(members[2].len(), 80);
    }

    #[test]
    fn four_layer_split() {
        let m = topo(120);
        let lm = select_landmarks(&m, 20);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let layer = assign_layers(120, &lm, 4, 0.2, &mut rng);
        let members = layer_members(&layer, 4);
        assert_eq!(members[0].len(), 20);
        assert_eq!(members[1].len(), 20);
        assert_eq!(members[2].len(), 20);
        assert_eq!(members[3].len(), 60);
    }

    #[test]
    fn layer_assignment_is_seed_dependent_but_landmark_stable() {
        let m = topo(60);
        let lm = select_landmarks(&m, 5);
        let a = assign_layers(60, &lm, 3, 0.2, &mut ChaCha12Rng::seed_from_u64(1));
        let b = assign_layers(60, &lm, 3, 0.2, &mut ChaCha12Rng::seed_from_u64(2));
        for &l in &lm {
            assert_eq!(a[l], 0);
            assert_eq!(b[l], 0);
        }
        assert_ne!(a, b, "different seeds must shuffle middle layers");
    }
}
