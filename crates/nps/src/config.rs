//! NPS simulation parameters.

use crate::position::FitObjective;
use serde::{Deserialize, Serialize};
use vcoord_netsim::LinkModel;
use vcoord_space::{ResumePolicy, SimplexOptions, Space};

/// How each node's per-round Simplex minimization starts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum PositioningMode {
    /// Cold-restart every fit — the historical behaviour and the default.
    /// Every golden figure runs in this mode; it is bit-identical to the
    /// pre-warm-start engine (property-pinned in the space and root test
    /// suites).
    #[default]
    Strict,
    /// Warm-start each node's final fit from that node's previous round's
    /// converged simplex under the given restart policy. Faster (fewer
    /// objective evaluations) but not bit-identical to [`Strict`]: the
    /// converged coordinates differ within the Simplex tolerance.
    ///
    /// [`Strict`]: PositioningMode::Strict
    Warm(ResumePolicy),
}

impl PositioningMode {
    /// The resume policy this mode implies ([`ResumePolicy::always_cold`]
    /// for [`Strict`](PositioningMode::Strict)).
    pub fn policy(&self) -> ResumePolicy {
        match self {
            PositioningMode::Strict => ResumePolicy::always_cold(),
            PositioningMode::Warm(p) => *p,
        }
    }
}

/// Parameters for an [`crate::NpsSim`].
///
/// Defaults are the paper's §5.2 settings: 8-D Euclidean embedding, 20
/// permanent layer-0 landmarks, 20 % reference points per middle layer, a
/// 3-layer hierarchy, security constant `C = 4`, 5 s probe threshold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NpsConfig {
    /// Embedding space (figure 16 sweeps the dimension; NPS itself is
    /// Euclidean-only).
    pub space: Space,
    /// Number of permanent layer-0 landmarks.
    pub landmarks: usize,
    /// Total number of layers including layer 0 (3 or 4 in the paper).
    pub layers: usize,
    /// Fraction of ordinary nodes placed in each middle (reference) layer.
    pub ref_fraction: f64,
    /// Reference points each node measures against per positioning.
    pub refs_per_node: usize,
    /// Whether the malicious-reference detection mechanism is on.
    pub security: bool,
    /// Sensitivity constant `C` of the filter.
    pub security_c: f64,
    /// Absolute fitting-error floor of the filter (condition 1).
    pub security_min_error: f64,
    /// Probes slower than this are discarded as suspicious (ms).
    /// `f64::INFINITY` disables the check.
    pub probe_threshold_ms: f64,
    /// Repositioning period per node (ms).
    pub reposition_ms: u64,
    /// Per-layer join stagger window (ms): layer `i` joins during
    /// `[(i-1)·stagger, i·stagger)`.
    pub join_stagger_ms: u64,
    /// Passes of iterative landmark embedding at start-up.
    pub landmark_rounds: usize,
    /// Simplex Downhill options for node positioning.
    pub simplex: SimplexOptions,
    /// Latency-fit objective (see [`FitObjective`] for the calibration
    /// rationale).
    pub objective: FitObjective,
    /// Per-round movement damping α ∈ (0, 1]: a repositioning moves a node
    /// `α · (fit − incumbent)`. First positionings are undamped. Damped
    /// incremental refinement is what keeps the security filter's reference
    /// frame stable under attack (see DESIGN.md calibration notes); `1.0`
    /// disables damping.
    pub update_damping: f64,
    /// Benign link fault model for positioning probes.
    pub link: LinkModel,
    /// Simplex start policy per positioning round (strict cold restarts by
    /// default; absent in serialized configs from before this field existed).
    #[serde(default)]
    pub positioning: PositioningMode,
    /// Probation channel period, in positioning rounds: every
    /// `probation_every`-th round a node re-measures one reference from its
    /// rolling ban list (round-robin). The probation sample is *evidence
    /// only* — it is screened through the deployed defense so a decaying
    /// ban (`DriftDecay`) can observe reform and emit a `Reinstate`, but it
    /// never enters the Simplex fit. `0` (the default, and the value
    /// absent in older serialized configs) disables the channel; without
    /// it, membership-mediated banning cuts the evidence stream and decay
    /// can never compose with banishment.
    #[serde(default)]
    pub probation_every: u64,
}

impl Default for NpsConfig {
    fn default() -> Self {
        NpsConfig {
            space: Space::Euclidean(8),
            landmarks: 20,
            layers: 3,
            ref_fraction: 0.20,
            refs_per_node: 20,
            security: true,
            security_c: 4.0,
            security_min_error: 0.01,
            probe_threshold_ms: 5_000.0,
            reposition_ms: 60_000,
            join_stagger_ms: 120_000,
            landmark_rounds: 30,
            simplex: SimplexOptions {
                initial_step: 20.0,
                tolerance: 1e-7,
                max_iterations: 150,
                ..SimplexOptions::default()
            },
            objective: FitObjective::SquaredAbsolute,
            update_damping: 0.20,
            link: LinkModel::ideal(),
            positioning: PositioningMode::Strict,
            probation_every: 0,
        }
    }
}

impl NpsConfig {
    /// Default parameters in the given space.
    pub fn in_space(space: Space) -> Self {
        NpsConfig {
            space,
            ..Default::default()
        }
    }

    /// Default parameters with the given number of layers.
    pub fn with_layers(layers: usize) -> Self {
        NpsConfig {
            layers,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = NpsConfig::default();
        assert_eq!(c.space, Space::Euclidean(8));
        assert_eq!(c.landmarks, 20);
        assert_eq!(c.layers, 3);
        assert_eq!(c.ref_fraction, 0.20);
        assert_eq!(c.security_c, 4.0);
        assert_eq!(c.security_min_error, 0.01);
        assert_eq!(c.probe_threshold_ms, 5_000.0);
        assert!(c.security);
        assert_eq!(c.positioning, PositioningMode::Strict);
        assert_eq!(c.probation_every, 0, "probation is opt-in");
    }

    #[test]
    fn strict_mode_policy_is_cold_only() {
        assert!(PositioningMode::Strict.policy().is_cold_only());
        assert!(!PositioningMode::Warm(ResumePolicy::default_warm())
            .policy()
            .is_cold_only());
    }
}
