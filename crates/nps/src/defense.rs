//! The NPS defense seam.
//!
//! Mirrors the Vivaldi seam (`vcoord_vivaldi::defense`): defense behaviour
//! is deployed through the generic engine of [`vcoord_defense`], and
//! screening happens where NPS consumes reports — the reference probes of
//! a positioning round. NPS-specific reading of the generic contract:
//!
//! * the inspected sample is a **reference probe**: the reference point's
//!   reported coordinates plus the measured RTT, judged against the
//!   repositioning node's current coordinate *before* the Simplex fit;
//!   `reported_error` is `1.0` — the NPS protocol carries no error field;
//! * [`Verdict::Reject`] drops the reference sample from the round (it
//!   neither enters the fit nor the security filter) **and** routes the
//!   reference through NPS's rolling ban/replacement channel, exactly like
//!   a probe-threshold hit: the membership server supplies a substitute,
//!   so a strategy that permanently bans a neighbor (the drift cap)
//!   shrinks the attacker's reach instead of starving the victim's
//!   reference set;
//!   [`Verdict::Dampen`] weights the sample's term in the fit objective
//!   (see [`RefSample::weight`](crate::position::RefSample)), while the
//!   security filter still judges the reference at full strength;
//! * `round` is the repositioning period index — the same clock the
//!   adversary seam uses;
//! * the defense inspects reference probes of *ordinary* repositioning
//!   nodes only: landmarks are pinned and never reposition, so there is
//!   nothing to screen for them.

pub use vcoord_defense::{
    Dampener, Defense, DefenseScratch, DefenseStats, DefenseStrategy, DriftCap, DriftDecay,
    EwmaChangePoint, NeighborHistory, NoDefense, Provenance, ResidualOutlier, TriangleCheck,
    TrustedBaseline, Update, UpdateView, Verdict,
};

#[cfg(test)]
mod tests {
    use super::*;
    use vcoord_space::{Coord, Space};

    #[test]
    fn no_defense_accepts_through_the_seam() {
        let space = Space::Euclidean(8);
        let me = Coord::origin(8);
        let them = Coord::from_vec(vec![10.0; 8]);
        let mut d = Defense::none();
        let v = d.inspect(
            &space,
            &me,
            Update {
                observer: 3,
                remote: 1,
                reported_coord: &them,
                reported_error: 1.0,
                rtt: 40.0,
                round: 2,
                now_ms: 120_000,
                provenance: Provenance::Normal,
            },
        );
        assert_eq!(v, Verdict::Accept);
        assert!(d.is_passthrough());
    }
}
