//! Process-global objective-evaluation accounting.
//!
//! Every successful NPS positioning round records how many Simplex objective
//! evaluations it performed (both fits combined) into a global histogram.
//! The bench harness snapshots the histogram around each figure run and
//! reports the delta as `evals_per_round` — the before/after evidence for
//! the warm-start evaluation-count collapse.
//!
//! Only ordinary repositioning rounds are recorded; the start-up landmark
//! embedding is construction-time work, identical in every mode, and would
//! dilute the per-round statistic.
//!
//! The storage is a `vcoord_obs` [`GlobalHist`] registered as
//! `nps.position.evals` — the aggregate (always-on) observability plane —
//! so eval accounting and the tracing metrics share one registry. This
//! module keeps the original API as a thin veneer: parallel figure workers
//! all land in the same histogram, and callers that need a per-run view
//! take a [`snapshot`] before and after and subtract. The buckets are the
//! shared HDR layout (`vcoord_obs::hdr`), so quantile resolution scales
//! with magnitude instead of saturating at a fixed bucket cap.

use std::sync::OnceLock;
use vcoord_obs::{global_hist, GlobalHist, HistSnapshot};

/// Metric name in the shared `vcoord_obs` registry.
pub const METRIC: &str = "nps.position.evals";

fn hist() -> &'static GlobalHist {
    static HIST: OnceLock<&'static GlobalHist> = OnceLock::new();
    HIST.get_or_init(|| global_hist(METRIC))
}

/// Record one positioning round that performed `evals` objective
/// evaluations.
pub fn record_round(evals: usize) {
    hist().record(evals);
}

/// A point-in-time copy of the global evaluation histogram.
///
/// Subtract two snapshots ([`EvalSnapshot::delta_since`]) to get the rounds
/// recorded in between, then read [`EvalSnapshot::mean`] /
/// [`EvalSnapshot::median`] / [`EvalSnapshot::quantile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalSnapshot(HistSnapshot);

/// Capture the current global histogram.
pub fn snapshot() -> EvalSnapshot {
    EvalSnapshot(hist().snapshot())
}

impl EvalSnapshot {
    /// The rounds recorded between `earlier` and `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is not actually earlier (the counters are
    /// monotone, so a negative delta means the snapshots were swapped).
    pub fn delta_since(&self, earlier: &EvalSnapshot) -> EvalSnapshot {
        EvalSnapshot(self.0.delta_since(&earlier.0))
    }

    /// Positioning rounds covered by this snapshot (or delta).
    pub fn rounds(&self) -> u64 {
        self.0.count()
    }

    /// Total objective evaluations covered.
    pub fn evals(&self) -> u64 {
        self.0.sum()
    }

    /// Exact mean objective evaluations per round (`NaN` with no rounds).
    pub fn mean(&self) -> f64 {
        self.0.mean()
    }

    /// Approximate median evaluations per round (`NaN` with no rounds).
    /// Resolution is one HDR bucket width at that magnitude.
    pub fn median(&self) -> f64 {
        self.0.median()
    }

    /// Nearest-rank quantile of evaluations per round (`NaN` with no
    /// rounds).
    pub fn quantile(&self, q: f64) -> f64 {
        self.0.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoord_obs::hdr;

    // The histogram is process-global and other tests in this binary drive
    // whole simulations through it, so every assertion here works on
    // snapshot *deltas* over locally recorded rounds.

    #[test]
    fn deltas_track_recorded_rounds() {
        let before = snapshot();
        record_round(10);
        record_round(30);
        record_round(200);
        let d = snapshot().delta_since(&before);
        assert_eq!(d.rounds(), 3);
        assert_eq!(d.evals(), 240);
        assert!((d.mean() - 80.0).abs() < 1e-12);
        // Median round is the 30-eval one, within one HDR bucket width.
        assert!((d.median() - 30.0).abs() <= hdr::width_of(30) as f64);
    }

    #[test]
    fn huge_rounds_keep_relative_resolution() {
        let before = snapshot();
        record_round(1_000_000);
        let d = snapshot().delta_since(&before);
        assert_eq!(d.rounds(), 1);
        assert_eq!(d.evals(), 1_000_000);
        // The old linear layout saturated at 1 575 evals; the HDR buckets
        // resolve a 1e6-eval round to within ~3 % instead.
        assert!((d.median() - 1_000_000.0).abs() <= hdr::width_of(1_000_000) as f64);
    }

    #[test]
    fn quantiles_split_mixed_rounds() {
        let before = snapshot();
        for _ in 0..9 {
            record_round(50);
        }
        record_round(5_000);
        let d = snapshot().delta_since(&before);
        assert!((d.quantile(0.5) - 50.0).abs() <= hdr::width_of(50) as f64);
        assert!((d.quantile(1.0) - 5_000.0).abs() <= hdr::width_of(5_000) as f64);
    }

    #[test]
    #[should_panic(expected = "snapshots out of order")]
    fn swapped_snapshots_panic() {
        let before = snapshot();
        record_round(1);
        let after = snapshot();
        let _ = before.delta_since(&after);
    }

    #[test]
    fn shares_the_obs_registry() {
        record_round(0); // ensure registration
        let id = vcoord_obs::metric(METRIC);
        assert!(vcoord_obs::global_hists().iter().any(|h| h.id() == id));
    }
}
