//! Process-global objective-evaluation accounting.
//!
//! Every successful NPS positioning round records how many Simplex objective
//! evaluations it performed (both fits combined) into a lock-free global
//! histogram. The bench harness snapshots the histogram around each figure
//! run and reports the delta as `evals_per_round` — the before/after
//! evidence for the warm-start evaluation-count collapse.
//!
//! Only ordinary repositioning rounds are recorded; the start-up landmark
//! embedding is construction-time work, identical in every mode, and would
//! dilute the per-round statistic.
//!
//! The counters are process-global `AtomicU64`s (relaxed ordering: each
//! counter is an independent monotone tally, no cross-counter invariant), so
//! parallel figure workers all land in the same histogram; callers that need
//! a per-run view take a [`snapshot`] before and after and subtract.

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket width (objective evaluations per round).
const BUCKET_WIDTH: usize = 25;
/// Bucket count; the last bucket is open-ended. With width 25 this covers
/// rounds up to 1 575 evals exactly — far beyond the ~2 × (cap = 150)
/// worst case of the default Simplex options.
const BUCKETS: usize = 64;

static TOTAL_EVALS: AtomicU64 = AtomicU64::new(0);
static TOTAL_ROUNDS: AtomicU64 = AtomicU64::new(0);
// A `const` item (not inline-const, which needs a newer MSRV) so the array
// repeat expression is allowed despite `AtomicU64` not being `Copy`.
#[allow(clippy::declare_interior_mutable_const)]
const HIST_ZERO: AtomicU64 = AtomicU64::new(0);
static HIST: [AtomicU64; BUCKETS] = [HIST_ZERO; BUCKETS];

/// Record one positioning round that performed `evals` objective
/// evaluations.
pub fn record_round(evals: usize) {
    TOTAL_EVALS.fetch_add(evals as u64, Ordering::Relaxed);
    TOTAL_ROUNDS.fetch_add(1, Ordering::Relaxed);
    let b = (evals / BUCKET_WIDTH).min(BUCKETS - 1);
    HIST[b].fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time copy of the global evaluation histogram.
///
/// Subtract two snapshots ([`EvalSnapshot::delta_since`]) to get the rounds
/// recorded in between, then read [`EvalSnapshot::mean`] /
/// [`EvalSnapshot::median`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalSnapshot {
    total_evals: u64,
    total_rounds: u64,
    hist: [u64; BUCKETS],
}

/// Capture the current global histogram.
pub fn snapshot() -> EvalSnapshot {
    let mut hist = [0u64; BUCKETS];
    for (h, a) in hist.iter_mut().zip(HIST.iter()) {
        *h = a.load(Ordering::Relaxed);
    }
    EvalSnapshot {
        total_evals: TOTAL_EVALS.load(Ordering::Relaxed),
        total_rounds: TOTAL_ROUNDS.load(Ordering::Relaxed),
        hist,
    }
}

impl EvalSnapshot {
    /// The rounds recorded between `earlier` and `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is not actually earlier (the counters are
    /// monotone, so a negative delta means the snapshots were swapped).
    pub fn delta_since(&self, earlier: &EvalSnapshot) -> EvalSnapshot {
        let mut hist = [0u64; BUCKETS];
        for (i, h) in hist.iter_mut().enumerate() {
            *h = self.hist[i]
                .checked_sub(earlier.hist[i])
                .expect("snapshots out of order");
        }
        EvalSnapshot {
            total_evals: self
                .total_evals
                .checked_sub(earlier.total_evals)
                .expect("snapshots out of order"),
            total_rounds: self
                .total_rounds
                .checked_sub(earlier.total_rounds)
                .expect("snapshots out of order"),
            hist,
        }
    }

    /// Positioning rounds covered by this snapshot (or delta).
    pub fn rounds(&self) -> u64 {
        self.total_rounds
    }

    /// Total objective evaluations covered.
    pub fn evals(&self) -> u64 {
        self.total_evals
    }

    /// Exact mean objective evaluations per round (`NaN` with no rounds).
    pub fn mean(&self) -> f64 {
        if self.total_rounds == 0 {
            return f64::NAN;
        }
        self.total_evals as f64 / self.total_rounds as f64
    }

    /// Approximate median evaluations per round: the midpoint of the
    /// histogram bucket containing the median round (`NaN` with no rounds).
    /// Resolution is the bucket width (25 evals).
    pub fn median(&self) -> f64 {
        if self.total_rounds == 0 {
            return f64::NAN;
        }
        let target = self.total_rounds.div_ceil(2);
        let mut seen = 0u64;
        for (i, &count) in self.hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return (i * BUCKET_WIDTH) as f64 + BUCKET_WIDTH as f64 / 2.0;
            }
        }
        unreachable!("histogram counts sum to total_rounds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histogram is process-global and other tests in this binary drive
    // whole simulations through it, so every assertion here works on
    // snapshot *deltas* over locally recorded rounds.

    #[test]
    fn deltas_track_recorded_rounds() {
        let before = snapshot();
        record_round(10);
        record_round(30);
        record_round(200);
        let d = snapshot().delta_since(&before);
        assert_eq!(d.rounds(), 3);
        assert_eq!(d.evals(), 240);
        assert!((d.mean() - 80.0).abs() < 1e-12);
        // Median round is the 30-eval one: bucket [25, 50), midpoint 37.5.
        assert_eq!(d.median(), 37.5);
    }

    #[test]
    fn overflow_bucket_catches_huge_rounds() {
        let before = snapshot();
        record_round(1_000_000);
        let d = snapshot().delta_since(&before);
        assert_eq!(d.rounds(), 1);
        assert_eq!(d.evals(), 1_000_000);
        // Median lands in the open-ended last bucket's nominal midpoint.
        assert_eq!(d.median(), (63 * 25) as f64 + 12.5);
    }

    #[test]
    fn empty_delta_is_nan() {
        let s = snapshot();
        let d = s.delta_since(&s);
        assert_eq!(d.rounds(), 0);
        assert!(d.mean().is_nan());
        assert!(d.median().is_nan());
    }
}
