//! Process-global objective-evaluation accounting.
//!
//! Every successful NPS positioning round records how many Simplex objective
//! evaluations it performed (both fits combined) into a global histogram.
//! The bench harness snapshots the histogram around each figure run and
//! reports the delta as `evals_per_round` — the before/after evidence for
//! the warm-start evaluation-count collapse.
//!
//! Only ordinary repositioning rounds are recorded; the start-up landmark
//! embedding is construction-time work, identical in every mode, and would
//! dilute the per-round statistic.
//!
//! The storage is a `vcoord_obs` [`GlobalHist`] registered as
//! `nps.position.evals` — the aggregate (always-on) observability plane —
//! so eval accounting and the tracing metrics share one registry. This
//! module keeps the original API as a thin veneer: parallel figure workers
//! all land in the same histogram, and callers that need a per-run view
//! take a [`snapshot`] before and after and subtract.

use std::sync::OnceLock;
use vcoord_obs::{global_hist, GlobalHist, HistSnapshot};

/// Histogram bucket width (objective evaluations per round).
const BUCKET_WIDTH: usize = 25;
/// Bucket count; the last bucket is open-ended. With width 25 this covers
/// rounds up to 1 575 evals exactly — far beyond the ~2 × (cap = 150)
/// worst case of the default Simplex options.
const BUCKETS: usize = 64;

/// Metric name in the shared `vcoord_obs` registry.
pub const METRIC: &str = "nps.position.evals";

fn hist() -> &'static GlobalHist {
    static HIST: OnceLock<&'static GlobalHist> = OnceLock::new();
    HIST.get_or_init(|| global_hist(METRIC, BUCKET_WIDTH, BUCKETS))
}

/// Record one positioning round that performed `evals` objective
/// evaluations.
pub fn record_round(evals: usize) {
    hist().record(evals);
}

/// A point-in-time copy of the global evaluation histogram.
///
/// Subtract two snapshots ([`EvalSnapshot::delta_since`]) to get the rounds
/// recorded in between, then read [`EvalSnapshot::mean`] /
/// [`EvalSnapshot::median`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalSnapshot(HistSnapshot);

/// Capture the current global histogram.
pub fn snapshot() -> EvalSnapshot {
    EvalSnapshot(hist().snapshot())
}

impl EvalSnapshot {
    /// The rounds recorded between `earlier` and `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is not actually earlier (the counters are
    /// monotone, so a negative delta means the snapshots were swapped).
    pub fn delta_since(&self, earlier: &EvalSnapshot) -> EvalSnapshot {
        EvalSnapshot(self.0.delta_since(&earlier.0))
    }

    /// Positioning rounds covered by this snapshot (or delta).
    pub fn rounds(&self) -> u64 {
        self.0.count()
    }

    /// Total objective evaluations covered.
    pub fn evals(&self) -> u64 {
        self.0.sum()
    }

    /// Exact mean objective evaluations per round (`NaN` with no rounds).
    pub fn mean(&self) -> f64 {
        self.0.mean()
    }

    /// Approximate median evaluations per round: the midpoint of the
    /// histogram bucket containing the median round (`NaN` with no rounds).
    /// Resolution is the bucket width (25 evals).
    pub fn median(&self) -> f64 {
        self.0.median()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histogram is process-global and other tests in this binary drive
    // whole simulations through it, so every assertion here works on
    // snapshot *deltas* over locally recorded rounds.

    #[test]
    fn deltas_track_recorded_rounds() {
        let before = snapshot();
        record_round(10);
        record_round(30);
        record_round(200);
        let d = snapshot().delta_since(&before);
        assert_eq!(d.rounds(), 3);
        assert_eq!(d.evals(), 240);
        assert!((d.mean() - 80.0).abs() < 1e-12);
        // Median round is the 30-eval one: bucket [25, 50), midpoint 37.5.
        assert_eq!(d.median(), 37.5);
    }

    #[test]
    fn overflow_bucket_catches_huge_rounds() {
        let before = snapshot();
        record_round(1_000_000);
        let d = snapshot().delta_since(&before);
        assert_eq!(d.rounds(), 1);
        assert_eq!(d.evals(), 1_000_000);
        // Far past the last bucket boundary: lands in the open-ended one.
        assert!((d.median() - ((63 * 25) as f64 + 12.5)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "snapshots out of order")]
    fn swapped_snapshots_panic() {
        let before = snapshot();
        record_round(1);
        let after = snapshot();
        let _ = before.delta_since(&after);
    }

    #[test]
    fn shares_the_obs_registry() {
        record_round(0); // ensure registration
        let id = vcoord_obs::metric(METRIC);
        assert!(vcoord_obs::global_hists()
            .iter()
            .any(|h| h.id() == id && h.bucket_width() == BUCKET_WIDTH));
    }
}
