//! The NPS simulation world.
//!
//! Nodes join staggered by layer (reference layers first), then reposition
//! periodically. A positioning round is executed *atomically* at its timer:
//! all reference probes, the Simplex minimization, and the security filter
//! happen at one simulated instant. This is faithful at NPS timescales —
//! repositioning periods (≥ 60 s) dwarf probe RTTs (≤ 5 s threshold) — and
//! the adversarial delay is what matters to the algorithm, which sees it in
//! the *measured RTT value*; the authors' own event-driven simulator makes
//! the same simplification.
//!
//! Landmarks embed themselves at construction time by iterative rounds of
//! mutual positioning (each landmark runs the Simplex minimization against
//! the others — NPS's decentralization of GNP), and are pinned thereafter:
//! the paper's threat model assumes "landmarks are highly secure machines
//! that never cheat".

use crate::adversary::{AttackStrategy, CoordView, Lie, Probe, Protocol, Scenario};
use crate::config::NpsConfig;
use crate::defense::{
    Defense, DefenseStats, DefenseStrategy, Provenance, Update as DefenseUpdate, Verdict,
};
use crate::evals;
use crate::layers::{assign_layers, select_landmarks};
use crate::membership::Membership;
use crate::position::{
    position_node_scratch, position_node_seeded, PositionScratch, RefSample, SecurityPolicy,
};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::VecDeque;
use vcoord_chaos::{ChaosCounters, ChaosPlan, ChaosState, ProbeFate};
use vcoord_metrics::FilterLedger;
use vcoord_netsim::{Engine, NodeId, Scheduler, SeedStream, World};
use vcoord_space::{Coord, SimplexSeed, Space};
use vcoord_topo::RttMatrix;

const TAG_REPOSITION: u64 = 1;

/// Positioning/probe counters, exposed for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NpsCounters {
    /// Successful positioning rounds.
    pub positionings: u64,
    /// Rounds skipped for lack of usable references.
    pub skipped_rounds: u64,
    /// Probes discarded by the probe threshold.
    pub probes_discarded: u64,
    /// Probes lost to the benign link model.
    pub probes_lost: u64,
    /// References eliminated by the security filter.
    pub refs_filtered: u64,
    /// Replacement references granted by the membership server.
    pub refs_replaced: u64,
    /// Lies served by the adversary.
    pub lies_served: u64,
    /// Negative adversarial delays clamped (threat-model violations).
    pub delay_clamped: u64,
    /// Simplex objective evaluations across all positioning rounds
    /// (landmark embedding excluded — it is identical in every mode).
    pub objective_evals: u64,
    /// Probation re-measurements of banned references (evidence-only
    /// probes; see `NpsConfig::probation_every`).
    pub probation_probes: u64,
}

struct NpsWorld {
    config: NpsConfig,
    matrix: RttMatrix,
    membership: Membership,
    layer: Vec<u8>,
    is_ref: Vec<bool>,
    coords: Vec<Coord>,
    positioned: Vec<bool>,
    refs: Vec<Vec<usize>>,
    /// Per-node rolling ban ledger, FIFO: `push_back` on ban, `pop_front`
    /// on window expiry and starvation-relief lease selection — a
    /// `VecDeque` so long ledgers under heavy churn stay O(1) per event
    /// instead of the old `Vec::remove(0)` front-pop going quadratic.
    banned: Vec<VecDeque<usize>>,
    /// Per-node readmission leases: references readmitted into the probe
    /// rotation by starvation relief while *still on the ban ledger*.
    /// Their samples carry `Provenance::Lease` and are quarantined by the
    /// defense engine. Always a subset of `refs[node]`; empty in every
    /// non-chaos run.
    leased: Vec<Vec<usize>>,
    malicious: Vec<bool>,
    scenario: Option<Scenario>,
    defense: Option<Defense>,
    ledger: FilterLedger,
    threshold_ledger: FilterLedger,
    counters: NpsCounters,
    probe_rng: ChaCha12Rng,
    adv_rng: ChaCha12Rng,
    /// Reusable Simplex/positioning buffers (allocation-free hot path).
    pos_scratch: PositionScratch,
    /// Per-node converged simplex carried between rounds. Only consulted
    /// under [`PositioningMode::Warm`]; under `Strict` the cold-only resume
    /// policy ignores it entirely, keeping strict runs bit-identical to the
    /// pre-warm-start engine.
    ///
    /// [`PositioningMode::Warm`]: crate::config::PositioningMode::Warm
    warm_seeds: Vec<SimplexSeed>,
    /// Recycled gathering buffer for one round's reference samples.
    samples_buf: Vec<RefSample>,
    /// Recycled copy of the repositioning node's reference set (decouples
    /// the probe loop from `self.refs` borrows without a per-round clone).
    refs_buf: Vec<usize>,
    /// Reusable reputation-event drain buffers (the defense's ban /
    /// reinstate side channel).
    rep_banned: Vec<usize>,
    rep_reinstated: Vec<usize>,
    /// Installed fault schedule, if any. `None` costs one discriminant
    /// check per reference probe; all chaos randomness lives on the plan's
    /// own stream, so a run with an empty plan is bitwise identical to a
    /// plain run.
    chaos: Option<ChaosState>,
    /// Per-node positioning-round count, driving the probation cadence.
    probation_clock: Vec<u64>,
    /// Per-node round-robin cursor over the rolling ban list.
    probation_cursor: Vec<usize>,
}

impl NpsWorld {
    fn security(&self) -> SecurityPolicy {
        SecurityPolicy {
            enabled: self.config.security,
            c: self.config.security_c,
            min_error: self.config.security_min_error,
        }
    }

    /// Gather one reference probe, applying adversary and threshold rules.
    /// Returns `None` if the probe was lost or discarded.
    fn probe_ref(&mut self, node: usize, r: usize, now_ms: u64) -> Option<RefSample> {
        let base_rtt = self.matrix.rtt(node, r);
        let true_rtt = match self.config.link.apply(base_rtt, &mut self.probe_rng) {
            Some(v) => v,
            None => {
                self.counters.probes_lost += 1;
                return None;
            }
        };
        let true_rtt = if self.chaos.is_some() {
            match self.chaos_probe(node, r, now_ms, true_rtt) {
                Some(v) => v,
                None => {
                    // The reference is unreachable after a full retry
                    // cycle: fail over through the existing membership /
                    // replacement channel, exactly like a distrusted one.
                    self.ban_ref(node, r, now_ms);
                    return None;
                }
            }
        } else {
            true_rtt
        };

        let lie = if let (true, Some(scenario)) = (self.malicious[r], self.scenario.as_mut()) {
            let view = CoordView {
                space: &self.config.space,
                coords: &self.coords,
                errors: &[],
                layer: &self.layer,
                malicious: &self.malicious,
                is_ref: &self.is_ref,
                round: now_ms / self.config.reposition_ms.max(1),
                now_ms,
                params: Protocol {
                    probe_threshold_ms: self.config.probe_threshold_ms,
                    ..Protocol::default()
                },
            };
            scenario.respond(
                Probe {
                    attacker: r,
                    victim: node,
                    rtt: true_rtt,
                },
                &view,
                &mut self.adv_rng,
            )
        } else {
            None
        };

        let (coord, rtt) = match lie {
            // NPS carries no error-estimate field: `Lie::error` is ignored.
            Some(Lie {
                coord, delay_ms, ..
            }) => {
                self.counters.lies_served += 1;
                let delay = if delay_ms < 0.0 {
                    self.counters.delay_clamped += 1;
                    log::debug!("nps: adversary tried to shorten a probe; clamped");
                    0.0
                } else {
                    delay_ms
                };
                (coord, true_rtt + delay)
            }
            None => (self.coords[r].clone(), true_rtt),
        };

        if rtt > self.config.probe_threshold_ms {
            // The paper: such probes are "considered suspicious" and
            // discarded. The requesting node additionally bans the offending
            // reference — no benign probe can exceed a 5 s threshold, so
            // this is a pure true-positive channel, and it is exactly what
            // the *sophisticated* anti-detection attack evades by only
            // striking nearby victims (§5.4.3).
            self.counters.probes_discarded += 1;
            self.threshold_ledger.record(self.malicious[r]);
            self.ban_ref(node, r, now_ms);
            return None;
        }

        // Was this reference handed out on a readmission lease? Leased
        // evidence is tagged so the defense engine quarantines it (the
        // `leased` lists are empty outside chaos runs, so this is one
        // scan of an empty Vec on the pre-chaos path).
        let provenance = if self.leased[node].contains(&r) {
            Provenance::Lease
        } else {
            Provenance::Normal
        };

        // Screen the surviving sample through the deployed defense (if
        // any) before it can enter the fit. No deployment and a
        // `NoDefense` deployment both leave `weight = 1.0`, bit-identical
        // to the unweighted objective.
        let mut weight = 1.0;
        if let Some(defense) = self.defense.as_mut() {
            let verdict = defense.inspect(
                &self.config.space,
                &self.coords[node],
                DefenseUpdate {
                    observer: node,
                    remote: r,
                    reported_coord: &coord,
                    reported_error: 1.0,
                    rtt,
                    round: now_ms / self.config.reposition_ms.max(1),
                    now_ms,
                    provenance,
                },
            );
            // Arms-race feedback: a malicious reference observes whether
            // its report survived (an NPS victim that distrusts a
            // reference visibly drops it and draws a replacement).
            if self.malicious[r] {
                if let Some(scenario) = self.scenario.as_mut() {
                    scenario.feedback(r, node, verdict.is_flag());
                }
            }
            if verdict == Verdict::Reject {
                // Dropped from the round — and, like a probe-threshold
                // hit, routed through the rolling ban/replacement channel:
                // a deployed node that distrusts a reference asks the
                // membership server for another. Without the replacement a
                // permanently-banning strategy (the drift cap) would
                // silently starve the node's reference set until it can no
                // longer position at all.
                self.ban_ref(node, r, now_ms);
                return None;
            }
            weight = verdict.factor();
        }
        Some(RefSample {
            id: r,
            coord,
            rtt,
            weight,
            provenance,
        })
    }

    /// NPS positioning is atomic per round, so retries cannot be deferred
    /// timers: a node retries an unresponsive reference in-round, up to
    /// the policy's budget (each attempt steps the burst chain once), and
    /// gives up with `None` when the cycle is exhausted.
    fn chaos_probe(&mut self, node: usize, r: usize, now_ms: u64, rtt: f64) -> Option<f64> {
        let chaos = self.chaos.as_mut().expect("chaos_probe without chaos");
        let mut fate = chaos.probe_fate(node, r, now_ms, rtt);
        let mut attempt = 0;
        while fate == ProbeFate::Timeout && attempt < chaos.max_retries() {
            chaos.note_retry();
            attempt += 1;
            fate = chaos.probe_fate(node, r, now_ms, rtt);
        }
        match fate {
            ProbeFate::Delivered(v) => Some(v),
            ProbeFate::Timeout => {
                chaos.note_failover(node, r, now_ms);
                None
            }
        }
    }

    /// Ban reference `bad` for `node` and request a replacement from the
    /// membership server.
    fn ban_ref(&mut self, node: usize, bad: usize, now_ms: u64) {
        if let Some(pos) = self.leased[node].iter().position(|&l| l == bad) {
            // A leased reference earned a fresh ban: the loan is called in.
            // Its old ledger entries dissolve (the new ban below re-files it
            // at the FIFO tail, so it goes to the back of the relief queue).
            self.leased[node].swap_remove(pos);
            self.banned[node].retain(|&b| b != bad);
            if let Some(chaos) = self.chaos.as_mut() {
                chaos.note_lease_return(node, bad, now_ms);
            }
        }
        self.banned[node].push_back(bad);
        // Rolling exclusion window, not a permanent blacklist: NPS replaces
        // a rejected reference "for future repositioning"; an unbounded
        // blacklist would exhaust the reference pool under false positives
        // (and the paper's attackers demonstrably keep getting reprieves).
        let window = (2 * self.config.refs_per_node).max(8);
        if self.banned[node].len() > window {
            if let Some(expired) = self.banned[node].pop_front() {
                // If the expiring entry was the *last* ledger record of a
                // leased reference, the lease dissolves with it: the window
                // has rolled past the ban, so the reference is an ordinary
                // member again, exactly as a non-leased ban would age out.
                if !self.banned[node].contains(&expired) {
                    self.leased[node].retain(|&l| l != expired);
                }
            }
        }
        let had = self.refs[node].len();
        self.refs[node].retain(|&r| r != bad);
        if self.refs[node].len() == had {
            // `bad` was not an active reference (a probation re-measure of
            // an already-banned node): the window refreshed, but no slot
            // opened, so no replacement is due.
            return;
        }
        self.banned[node].make_contiguous();
        if let Some(replacement) = self.membership.replacement(
            node,
            self.layer[node],
            &self.refs[node],
            self.banned[node].as_slices().0,
            &mut self.probe_rng,
        ) {
            self.refs[node].push(replacement);
            self.counters.refs_replaced += 1;
        }
    }

    /// Drain the deployed defense's reputation events. A `Reinstate` event
    /// is routed through the ban/replacement channel in reverse: the
    /// forgiven node is scrubbed from **every** observer's rolling ban
    /// list, so the membership server can hand it out as a replacement
    /// again (the structural undo of the bans its `Reject` verdicts
    /// caused). Ban events need no extra routing — each `Reject` already
    /// went through [`NpsWorld::ban_ref`] at inspection time.
    fn drain_reputation_events(&mut self) {
        let Some(defense) = self.defense.as_mut() else {
            return;
        };
        self.rep_banned.clear();
        self.rep_reinstated.clear();
        defense.drain_reputation(&mut self.rep_banned, &mut self.rep_reinstated);
        for &id in &self.rep_reinstated {
            for list in self.banned.iter_mut() {
                list.retain(|&x| x != id);
            }
            // A strategy-level reinstatement clears leases too: the node is
            // genuinely forgiven, so holding it on quarantined evidence
            // would re-open the very gap the lease closed.
            for list in self.leased.iter_mut() {
                list.retain(|&x| x != id);
            }
        }
    }

    fn reposition(&mut self, node: usize, now_ms: u64) {
        let _span = vcoord_obs::span(vcoord_obs::metric_id!("nps.position_ns"));
        // Starvation relief, chaos runs only. A ban whose replacement
        // request found the membership pool exhausted loses the reference
        // slot permanently, and under churn that can starve a node's
        // reference set below the dim+1 positioning constraint — a
        // restarted (origin-reset) node would then skip every round
        // forever. Refill: first re-ask the membership server for
        // never-banned candidates (bans are scrubbed on reinstatement, so
        // the pool recovers over time), then fall back to *leasing* the
        // oldest banned references back into the rotation — readmission is
        // a loan, not forgiveness: the reference stays on the ban ledger
        // and every sample it produces is tagged `Provenance::Lease`, so
        // the defense quarantines its evidence instead of letting it heal
        // the ban. Without a chaos plan installed a starved node keeps a
        // valid incumbent coordinate, so the pre-chaos behavior (and its
        // goldens) is untouched. Gated on the plan carrying actual faults
        // — an empty plan must stay bitwise inert
        // (tests/chaos_properties.rs), and starvation without faults
        // cannot strand a node at the origin.
        if self.chaos.as_ref().is_some_and(|c| !c.plan().is_empty()) {
            let need = self.config.space.dim() + 1;
            while self.refs[node].len() < need {
                self.banned[node].make_contiguous();
                if let Some(repl) = self.membership.replacement(
                    node,
                    self.layer[node],
                    &self.refs[node],
                    self.banned[node].as_slices().0,
                    &mut self.probe_rng,
                ) {
                    self.refs[node].push(repl);
                    self.counters.refs_replaced += 1;
                    continue;
                }
                // FIFO over the ban ledger: oldest entry whose reference is
                // not already in the rotation (skips live leases — `leased`
                // is a subset of `refs` — and duplicate ledger entries).
                let candidate = self.banned[node]
                    .iter()
                    .copied()
                    .find(|b| !self.refs[node].contains(b));
                let Some(back) = candidate else {
                    break;
                };
                self.refs[node].push(back);
                self.leased[node].push(back);
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.note_lease(node, back, now_ms);
                }
            }
        }
        // Recycle the refs/samples gathering buffers across rounds: after
        // warm-up the probe loop runs without fresh allocations (the lie
        // coordinates inside each `RefSample` are the only per-probe values
        // still materialized).
        let mut refs = std::mem::take(&mut self.refs_buf);
        refs.clear();
        refs.extend_from_slice(&self.refs[node]);
        let mut samples = std::mem::take(&mut self.samples_buf);
        samples.clear();
        samples.extend(refs.iter().filter_map(|&r| self.probe_ref(node, r, now_ms)));
        self.refs_buf = refs;
        self.drain_reputation_events();

        let mut scratch = std::mem::take(&mut self.pos_scratch);
        let mut seed = std::mem::take(&mut self.warm_seeds[node]);
        let policy = self.config.positioning.policy();
        let incumbent = if self.positioned[node] {
            Some(&self.coords[node])
        } else {
            None
        };
        let outcome = position_node_seeded(
            &self.config.space,
            &samples,
            &self.coords[node],
            incumbent,
            self.security(),
            &self.config.simplex,
            self.config.objective,
            &policy,
            &mut seed,
            &mut scratch,
        );
        self.pos_scratch = scratch;
        self.warm_seeds[node] = seed;
        self.samples_buf = samples;
        let Some(outcome) = outcome else {
            self.counters.skipped_rounds += 1;
            vcoord_obs::counter_add(vcoord_obs::metric_id!("nps.skipped_rounds"), 1);
            return;
        };
        self.counters.objective_evals += outcome.evals as u64;
        evals::record_round(outcome.evals);
        if vcoord_obs::enabled() {
            vcoord_obs::counter_add(vcoord_obs::metric_id!("nps.positionings"), 1);
            vcoord_obs::observe(
                vcoord_obs::metric_id!("nps.round_evals"),
                outcome.evals as f64,
            );
        }

        if self.positioned[node] {
            // Damped incremental refinement (see NpsConfig::update_damping).
            let alpha = self.config.update_damping.clamp(0.0, 1.0);
            let disp = outcome.coord.sub(&self.coords[node]);
            let space = self.config.space;
            space.apply(&mut self.coords[node], &disp, alpha);
        } else {
            self.coords[node] = outcome.coord;
        }
        self.positioned[node] = true;
        self.counters.positionings += 1;

        if let Some(bad) = outcome.filtered {
            self.counters.refs_filtered += 1;
            self.ledger.record(self.malicious[bad]);
            vcoord_obs::event(
                vcoord_obs::metric_id!("nps.filter"),
                now_ms / self.config.reposition_ms.max(1),
                bad as u32,
                if self.malicious[bad] { 1.0 } else { 0.0 },
            );
            self.ban_ref(node, bad, now_ms);
        }
    }

    /// The probation channel (`NpsConfig::probation_every`): every N-th
    /// positioning round a node re-measures one reference from its rolling
    /// ban list, round-robin. The probe runs the full adversary + defense
    /// path of [`NpsWorld::probe_ref`], so a decaying ban keeps receiving
    /// evidence about the banned node and can observe reform — but the
    /// returned sample is dropped here and never enters the fit. This is
    /// what lets reputation decay compose with membership-mediated
    /// banishment: without it, a ban cuts the evidence stream and
    /// forgiveness is structurally blind.
    fn maybe_probation(&mut self, node: usize, now_ms: u64) {
        let every = self.config.probation_every;
        if every == 0 || self.defense.is_none() {
            return;
        }
        self.probation_clock[node] += 1;
        if self.probation_clock[node] % every != 0 || self.banned[node].is_empty() {
            return;
        }
        let cursor = self.probation_cursor[node];
        // Skip ledger entries whose reference is out on a lease: a leased
        // reference already feeds (quarantined) evidence through the
        // regular probe rotation, and probing it here would double-count
        // the same round's sample — once as probation, once as lease.
        let len = self.banned[node].len();
        let mut candidate = None;
        for k in 0..len {
            let cand = self.banned[node][cursor.wrapping_add(k) % len];
            if !self.leased[node].contains(&cand) {
                candidate = Some(cand);
                self.probation_cursor[node] = cursor.wrapping_add(k + 1);
                break;
            }
        }
        let Some(candidate) = candidate else {
            // Every banned reference is currently leased: nothing to probe.
            self.probation_cursor[node] = cursor.wrapping_add(1);
            return;
        };
        self.counters.probation_probes += 1;
        vcoord_obs::counter_add(vcoord_obs::metric_id!("nps.probation_probes"), 1);
        vcoord_obs::event(
            vcoord_obs::metric_id!("nps.probation"),
            now_ms / self.config.reposition_ms.max(1),
            node as u32,
            candidate as f64,
        );
        // Evidence only: the sample is discarded, the verdict (and any
        // reputation event it causes) is what matters.
        let _ = self.probe_ref(node, candidate, now_ms);
        self.drain_reputation_events();
    }
}

impl World for NpsWorld {
    type Payload = ();

    fn on_timer(&mut self, sched: &mut Scheduler<()>, node: NodeId, tag: u64) {
        debug_assert_eq!(tag, TAG_REPOSITION);
        // Jittered periodic repositioning.
        let jitter = self.probe_rng.gen_range(0..=self.config.reposition_ms / 10);
        sched.timer_after(self.config.reposition_ms + jitter, node, TAG_REPOSITION);

        if let Some(chaos) = self.chaos.as_mut() {
            for &r in chaos.advance(sched.now()) {
                // Ordinary nodes rejoin from scratch (they re-run the full
                // join positioning); restarted landmarks keep their pinned
                // embedding — the paper's "highly secure machines" reboot
                // with their coordinates intact.
                if self.layer[r] != 0 && !self.malicious[r] {
                    self.positioned[r] = false;
                    self.coords[r] = self.config.space.origin();
                    self.warm_seeds[r] = SimplexSeed::default();
                }
            }
            if chaos.is_down(node) {
                return; // crashed nodes skip their rounds entirely
            }
        }
        if self.malicious[node] || self.layer[node] == 0 {
            return; // landmarks are pinned; infected nodes freeze
        }
        self.maybe_probation(node, sched.now());
        self.reposition(node, sched.now());
    }

    fn on_message(&mut self, _s: &mut Scheduler<()>, _f: NodeId, _t: NodeId, _p: ()) {
        unreachable!("NPS positioning is atomic; no messages are scheduled");
    }
}

/// A complete NPS system running on the discrete-event engine.
pub struct NpsSim {
    engine: Engine<()>,
    world: NpsWorld,
}

impl NpsSim {
    /// Build the hierarchy over `matrix`: select landmarks, embed them,
    /// assign layers and reference sets, and schedule staggered joins.
    ///
    /// # Panics
    /// Panics if the matrix is smaller than `landmarks + refs_per_node`.
    pub fn new(matrix: RttMatrix, config: NpsConfig, seeds: &SeedStream) -> NpsSim {
        // Construction embeds the landmark layer (Simplex fits per landmark
        // per round), which is real engine time that `nps.run_rounds_ns`
        // never sees; span it so profiles attribute it to the engine rather
        // than harness overhead.
        let _span = vcoord_obs::span(vcoord_obs::metric_id!("nps.embed_ns"));
        let n = matrix.len();
        assert!(
            n >= config.landmarks + 2,
            "matrix too small for {} landmarks",
            config.landmarks
        );

        let landmark_ids = select_landmarks(&matrix, config.landmarks);
        let layer = assign_layers(
            n,
            &landmark_ids,
            config.layers,
            config.ref_fraction,
            &mut seeds.rng("nps/layers"),
        );
        let membership = Membership::new(&layer, config.layers);
        let is_ref: Vec<bool> = layer
            .iter()
            .map(|&l| (l as usize) < config.layers - 1)
            .collect();

        // Landmark embedding: iterative decentralized GNP.
        let mut coords = vec![config.space.origin(); n];
        let mut lm_rng = seeds.rng("nps/landmarks");
        let scale = 150.0;
        for &l in &landmark_ids {
            coords[l] = config.space.random_coord(scale, &mut lm_rng);
        }
        let mut lm_scratch = PositionScratch::new();
        let mut lm_samples: Vec<RefSample> = Vec::with_capacity(landmark_ids.len());
        for _round in 0..config.landmark_rounds {
            for &l in &landmark_ids {
                lm_samples.clear();
                lm_samples.extend(
                    landmark_ids
                        .iter()
                        .filter(|&&o| o != l)
                        .map(|&o| RefSample::new(o, coords[o].clone(), matrix.rtt(l, o))),
                );
                if let Some(out) = position_node_scratch(
                    &config.space,
                    &lm_samples,
                    &coords[l],
                    None,
                    SecurityPolicy::off(),
                    &config.simplex,
                    config.objective,
                    &mut lm_scratch,
                ) {
                    coords[l] = out.coord;
                }
            }
        }

        // Reference assignment (static membership; bans accrue at runtime).
        let mut member_rng = seeds.rng("nps/membership");
        let refs: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                membership.assign_refs(i, layer[i], config.refs_per_node, &[], &mut member_rng)
            })
            .collect();

        let mut positioned = vec![false; n];
        for &l in &landmark_ids {
            positioned[l] = true;
        }

        let mut engine = Engine::new();
        let mut join_rng = seeds.rng("nps/join");
        let stagger = config.join_stagger_ms.max(1);
        for (i, &l) in layer.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let window_start = (l as u64 - 1) * stagger;
            let at = window_start + join_rng.gen_range(0..stagger);
            engine.scheduler().timer_at(at, i, TAG_REPOSITION);
        }

        let world = NpsWorld {
            is_ref,
            membership,
            layer,
            coords,
            positioned,
            refs,
            banned: vec![VecDeque::new(); n],
            leased: vec![Vec::new(); n],
            malicious: vec![false; n],
            scenario: None,
            defense: None,
            ledger: FilterLedger::new(),
            threshold_ledger: FilterLedger::new(),
            counters: NpsCounters::default(),
            probe_rng: seeds.rng("nps/probe"),
            adv_rng: seeds.rng("nps/adversary"),
            pos_scratch: lm_scratch,
            warm_seeds: vec![SimplexSeed::default(); n],
            samples_buf: lm_samples,
            refs_buf: Vec::new(),
            rep_banned: Vec::new(),
            rep_reinstated: Vec::new(),
            chaos: None,
            probation_clock: vec![0; n],
            probation_cursor: vec![0; n],
            matrix,
            config,
        };
        NpsSim { engine, world }
    }

    /// Advance the simulation by `ms` simulated milliseconds.
    pub fn run_ms(&mut self, ms: u64) {
        let _span = vcoord_obs::span(vcoord_obs::metric_id!("nps.run_rounds_ns"));
        let target = self.engine.now() + ms;
        self.engine.run_until(&mut self.world, target);
    }

    /// Advance by `n` repositioning rounds (the NPS "tick").
    pub fn run_rounds(&mut self, n: u64) {
        self.run_ms(n * self.world.config.reposition_ms);
    }

    /// Current simulated time (ms).
    pub fn now_ms(&self) -> u64 {
        self.engine.now()
    }

    /// Current round count (floor of now / reposition period).
    pub fn now_rounds(&self) -> u64 {
        self.engine.now() / self.world.config.reposition_ms
    }

    /// The embedding space.
    pub fn space(&self) -> &Space {
        &self.world.config.space
    }

    /// The simulation parameters.
    pub fn config(&self) -> &NpsConfig {
        &self.world.config
    }

    /// The latency substrate.
    pub fn matrix(&self) -> &RttMatrix {
        &self.world.matrix
    }

    /// True current coordinates of every node.
    pub fn coords(&self) -> &[Coord] {
        &self.world.coords
    }

    /// Per-node layer (0 = landmark).
    pub fn layers_of(&self) -> &[u8] {
        &self.world.layer
    }

    /// Malicious flags.
    pub fn malicious(&self) -> &[bool] {
        &self.world.malicious
    }

    /// Whether each node has completed at least one positioning.
    pub fn positioned(&self) -> &[bool] {
        &self.world.positioned
    }

    /// Security-filter accounting (figures 20/22).
    pub fn ledger(&self) -> FilterLedger {
        self.world.ledger
    }

    /// Probe-threshold eliminations (all true positives by construction:
    /// no benign probe exceeds the threshold).
    pub fn threshold_ledger(&self) -> FilterLedger {
        self.world.threshold_ledger
    }

    /// Event counters.
    pub fn counters(&self) -> NpsCounters {
        self.world.counters
    }

    /// Nodes currently excluded through the ban/replacement channel: ids
    /// present in at least one observer's rolling ban list (probe-threshold
    /// hits, security-filter eliminations, and defense `Reject` verdicts
    /// all land here; a defense `Reinstate` event scrubs them out again).
    /// Sorted and deduplicated.
    pub fn currently_banned(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .world
            .banned
            .iter()
            .flat_map(|l| l.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Honest, positioned, non-landmark nodes — the evaluation population.
    pub fn eval_nodes(&self) -> Vec<usize> {
        (0..self.world.matrix.len())
            .filter(|&i| {
                self.world.layer[i] != 0 && !self.world.malicious[i] && self.world.positioned[i]
            })
            .collect()
    }

    /// Honest positioned nodes of one layer (figure 25 measures per-layer
    /// error propagation).
    pub fn eval_nodes_in_layer(&self, l: u8) -> Vec<usize> {
        self.eval_nodes()
            .into_iter()
            .filter(|&i| self.world.layer[i] == l)
            .collect()
    }

    /// Pick `fraction` of the *ordinary* (non-landmark) population as
    /// attackers; landmarks are assumed secure and never selected.
    pub fn pick_attackers(&mut self, fraction: f64) -> Vec<usize> {
        let mut pool: Vec<usize> = (0..self.world.matrix.len())
            .filter(|&i| self.world.layer[i] != 0)
            .collect();
        pool.shuffle(&mut self.world.adv_rng);
        let k = ((pool.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        pool.truncate(k);
        pool.sort_unstable();
        pool
    }

    /// Turn `attackers` malicious under `strategy` (the injection
    /// scenario); all subsequent reference probes of malicious nodes route
    /// through the resulting [`Scenario`].
    pub fn inject_adversary(&mut self, attackers: &[usize], strategy: Box<dyn AttackStrategy>) {
        for &a in attackers {
            assert_ne!(self.world.layer[a], 0, "landmarks never cheat (paper §5.4)");
            self.world.malicious[a] = true;
        }
        let view = CoordView {
            space: &self.world.config.space,
            coords: &self.world.coords,
            errors: &[],
            layer: &self.world.layer,
            malicious: &self.world.malicious,
            is_ref: &self.world.is_ref,
            round: self.engine.now() / self.world.config.reposition_ms.max(1),
            now_ms: self.engine.now(),
            params: Protocol {
                probe_threshold_ms: self.world.config.probe_threshold_ms,
                ..Protocol::default()
            },
        };
        vcoord_obs::event(
            vcoord_obs::metric_id!("nps.inject"),
            view.round,
            vcoord_obs::NO_NODE,
            attackers.len() as f64,
        );
        let mut scenario = Scenario::new(strategy);
        scenario.inject(attackers, &view, &mut self.world.adv_rng);
        self.world.scenario = Some(scenario);
        log::trace!(
            "nps: injected {} attackers at t={}ms",
            attackers.len(),
            self.engine.now()
        );
    }

    /// The running attack scenario, if one was injected (its [`Collusion`]
    /// state is observable for diagnostics and tests).
    ///
    /// [`Collusion`]: vcoord_attackkit::Collusion
    pub fn scenario(&self) -> Option<&Scenario> {
        self.world.scenario.as_ref()
    }

    /// Deploy `strategy` as the system's defense: every reference probe of
    /// an ordinary node's positioning round is screened through the
    /// resulting [`Defense`] before the Simplex fit. Deployable at any
    /// time; replaces any previous deployment, history and accounting
    /// included.
    pub fn deploy_defense(&mut self, strategy: Box<dyn DefenseStrategy>) {
        let defense = Defense::new(strategy);
        log::trace!(
            "nps: deployed defense '{}' at t={}ms",
            defense.label(),
            self.engine.now()
        );
        self.world.defense = Some(defense);
    }

    /// The deployed defense, if any.
    pub fn defense(&self) -> Option<&Defense> {
        self.world.defense.as_ref()
    }

    /// Verdict accounting of the deployed defense, if any.
    pub fn defense_stats(&self) -> Option<&DefenseStats> {
        self.world.defense.as_ref().map(|d| d.stats())
    }

    /// Install `plan` as the run's fault schedule, times relative to now
    /// (the harness installs at attack injection). Replaces any previous
    /// plan. An empty plan is inert: it draws nothing from any stream and
    /// the run stays bitwise identical to one without chaos (pinned by the
    /// `chaos_properties` proptests).
    pub fn install_chaos(&mut self, plan: ChaosPlan) {
        let n = self.world.matrix.len();
        log::trace!(
            "nps: installed chaos plan ({} churn events, {} partitions, bursts: {}) at t={}ms",
            plan.churn.len(),
            plan.partitions.len(),
            plan.bursts.is_some(),
            self.engine.now()
        );
        self.world.chaos = Some(ChaosState::new(plan, n, self.engine.now()));
    }

    /// The installed fault schedule's runtime state, if any.
    pub fn chaos(&self) -> Option<&ChaosState> {
        self.world.chaos.as_ref()
    }

    /// Fault totals of the installed chaos plan, if any.
    pub fn chaos_counters(&self) -> Option<&ChaosCounters> {
        self.world.chaos.as_ref().map(|c| c.counters())
    }

    /// Ids of the layer-0 landmarks (the degree-targeted takedown set).
    pub fn landmark_ids(&self) -> Vec<usize> {
        (0..self.world.matrix.len())
            .filter(|&i| self.world.layer[i] == 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Honest;
    use vcoord_metrics::EvalPlan;
    use vcoord_topo::{KingLike, KingLikeConfig};

    fn small_sim(n: usize, seed: u64) -> NpsSim {
        let seeds = SeedStream::new(seed);
        let matrix = KingLike::new(KingLikeConfig::with_nodes(n)).generate(&mut seeds.rng("topo"));
        let config = NpsConfig {
            landmarks: 12,
            refs_per_node: 12,
            space: Space::Euclidean(4),
            ..NpsConfig::default()
        };
        NpsSim::new(matrix, config, &seeds)
    }

    #[test]
    fn landmarks_embed_accurately() {
        let sim = small_sim(80, 1);
        // Landmark pairwise predicted vs actual must be decent.
        let lm: Vec<usize> = (0..80).filter(|&i| sim.layers_of()[i] == 0).collect();
        let mut errs = Vec::new();
        for (a, &i) in lm.iter().enumerate() {
            for &j in lm.iter().skip(a + 1) {
                let actual = sim.matrix().rtt(i, j);
                let predicted = sim.space().distance(&sim.coords()[i], &sim.coords()[j]);
                errs.push(vcoord_metrics::relative_error(actual, predicted));
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 0.35, "landmark embedding error {mean}");
    }

    #[test]
    fn system_converges_after_joins() {
        let mut sim = small_sim(80, 2);
        sim.run_ms(600_000); // 10 repositioning periods
        let eval = sim.eval_nodes();
        assert!(eval.len() > 50, "most nodes should have positioned");
        let plan = EvalPlan::new(&eval, &mut SeedStream::new(7).rng("plan"));
        let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        assert!(err < 0.8, "converged NPS error too high: {err}");
        assert!(sim.counters().positionings > 100);
    }

    #[test]
    fn warm_mode_halves_objective_evals_and_still_converges() {
        let run = |mode: crate::config::PositioningMode| {
            let seeds = SeedStream::new(9);
            let matrix =
                KingLike::new(KingLikeConfig::with_nodes(80)).generate(&mut seeds.rng("topo"));
            let config = NpsConfig {
                landmarks: 12,
                refs_per_node: 12,
                space: Space::Euclidean(4),
                positioning: mode,
                ..NpsConfig::default()
            };
            let mut sim = NpsSim::new(matrix, config, &seeds);
            // Let the join transient pass: during it every node's early
            // fits are dominated by large coordinate moves, which no warm
            // start can skip. The collapse claim is about the steady
            // repositioning regime.
            sim.run_ms(1_200_000);
            let warmed = sim.counters();
            sim.run_ms(1_200_000);
            let c = sim.counters();
            let plan = EvalPlan::new(&sim.eval_nodes(), &mut SeedStream::new(7).rng("plan"));
            let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
            (
                c.objective_evals - warmed.objective_evals,
                c.positionings - warmed.positionings,
                err,
            )
        };
        let (strict_evals, strict_rounds, strict_err) = run(crate::config::PositioningMode::Strict);
        let (warm_evals, warm_rounds, warm_err) = run(crate::config::PositioningMode::Warm(
            vcoord_space::ResumePolicy::default_warm(),
        ));
        // Identical round structure (same seeds, same probe stream)...
        assert_eq!(warm_rounds, strict_rounds);
        // ...at less than half the objective evaluations (the tentpole's
        // ≥ 2× collapse, measured end to end over whole steady-state
        // rounds, forced cold restarts included)...
        assert!(
            warm_evals * 2 <= strict_evals,
            "warm {warm_evals} vs strict {strict_evals} evals over {strict_rounds} rounds"
        );
        // ...without giving up embedding quality.
        assert!(
            warm_err < strict_err + 0.05,
            "warm error {warm_err} vs strict {strict_err}"
        );
    }

    #[test]
    fn strict_counters_record_objective_evals() {
        let mut sim = small_sim(60, 11);
        sim.run_ms(300_000);
        let c = sim.counters();
        assert!(c.objective_evals > 0);
        // Every positioning performs at least dim + 2 evaluations (the
        // initial simplex plus one trial) even with the duplicate-fit skip.
        assert!(c.objective_evals >= c.positionings * 6);
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut sim = small_sim(60, seed);
            sim.run_ms(300_000);
            sim.coords().to_vec()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn clean_system_filters_nothing_catastrophic() {
        let mut sim = small_sim(80, 3);
        sim.run_ms(600_000);
        // Without attackers the ledger may see a few false positives from
        // embedding error, but not a flood.
        let total = sim.ledger().total();
        let positionings = sim.counters().positionings;
        assert!(
            (total as f64) < 0.2 * positionings as f64,
            "excessive filtering in clean system: {total}/{positionings}"
        );
    }

    #[test]
    fn honest_injection_is_harmless() {
        let mut sim = small_sim(80, 4);
        sim.run_ms(400_000);
        let plan = EvalPlan::new(&sim.eval_nodes(), &mut SeedStream::new(7).rng("plan"));
        let before = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        let attackers = sim.pick_attackers(0.3);
        sim.inject_adversary(&attackers, Box::new(Honest));
        sim.run_ms(400_000);
        let plan2 = EvalPlan::new(&sim.eval_nodes(), &mut SeedStream::new(7).rng("plan"));
        let after = plan2.avg_error(sim.coords(), sim.space(), sim.matrix());
        assert!(
            after < before * 2.0 + 0.3,
            "honest adversary degraded NPS: {before} -> {after}"
        );
    }

    #[test]
    fn no_defense_deployment_is_bit_identical_to_none() {
        let run = |deploy: bool| {
            let mut sim = small_sim(60, 21);
            sim.run_ms(300_000);
            if deploy {
                sim.deploy_defense(Box::new(crate::defense::NoDefense));
            }
            sim.run_ms(300_000);
            sim.coords().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn dampen_identity_deployment_is_bit_identical_to_none() {
        // Dampen(1.0) rides the weighted-objective path, which must be
        // bit-identical to the unweighted fit.
        let run = |deploy: bool| {
            let mut sim = small_sim(60, 22);
            sim.run_ms(300_000);
            if deploy {
                sim.deploy_defense(Box::new(crate::defense::Dampener::new(1.0)));
            }
            sim.run_ms(300_000);
            sim.coords().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn rejecting_defense_starves_positioning() {
        // Rejecting every reference sample leaves rounds under-constrained:
        // ordinary nodes stop repositioning entirely.
        struct RejectAll;
        impl crate::defense::DefenseStrategy for RejectAll {
            fn inspect_update(
                &mut self,
                _v: &crate::defense::UpdateView<'_>,
                _s: &mut crate::defense::DefenseScratch,
            ) -> Verdict {
                Verdict::Reject
            }
            fn label(&self) -> &'static str {
                "reject-all"
            }
        }
        // Fewer refs than the eligible pool, so the membership server has
        // genuine replacements to hand out (at `refs == pool` the channel
        // is structurally exhausted and nodes just run short-handed).
        let seeds = SeedStream::new(23);
        let matrix = KingLike::new(KingLikeConfig::with_nodes(60)).generate(&mut seeds.rng("topo"));
        let config = NpsConfig {
            landmarks: 12,
            refs_per_node: 6,
            space: Space::Euclidean(4),
            ..NpsConfig::default()
        };
        let mut sim = NpsSim::new(matrix, config, &seeds);
        sim.run_ms(300_000);
        let before = sim.counters().positionings;
        let replaced_before = sim.counters().refs_replaced;
        sim.deploy_defense(Box::new(RejectAll));
        sim.run_ms(200_000);
        assert_eq!(
            sim.counters().positionings,
            before,
            "no round can position without accepted references"
        );
        assert!(sim.counters().skipped_rounds > 0);
        assert!(sim.defense_stats().unwrap().rejected > 0);
        // Each rejection routes through the ban/replacement channel, so
        // the membership server keeps supplying (equally doomed, here)
        // substitutes instead of the reference set silently emptying.
        assert!(sim.counters().refs_replaced > replaced_before);
    }

    #[test]
    fn reinstate_events_scrub_the_rolling_ban_lists() {
        // Drive the reputation channel end to end without waiting for a
        // real decay cycle: a strategy that bans a node once and
        // immediately reinstates it on the next inspection must leave no
        // trace of the ban in any observer's rolling ban list.
        struct BanOnce {
            target: usize,
            state: u8, // 0 = not yet banned, 1 = banned, 2 = done
            bans: Vec<usize>,
            reinstates: Vec<usize>,
        }
        impl crate::defense::DefenseStrategy for BanOnce {
            fn inspect_update(
                &mut self,
                v: &crate::defense::UpdateView<'_>,
                _s: &mut crate::defense::DefenseScratch,
            ) -> Verdict {
                if v.remote != self.target {
                    return Verdict::Accept;
                }
                match self.state {
                    0 => {
                        self.state = 1;
                        self.bans.push(v.remote);
                        Verdict::Reject
                    }
                    1 => {
                        self.state = 2;
                        self.reinstates.push(v.remote);
                        Verdict::Accept
                    }
                    _ => Verdict::Accept,
                }
            }
            fn drain_reputation(&mut self, banned: &mut Vec<usize>, reinstated: &mut Vec<usize>) {
                banned.append(&mut self.bans);
                reinstated.append(&mut self.reinstates);
            }
            fn label(&self) -> &'static str {
                "ban-once"
            }
        }

        let mut sim = small_sim(60, 24);
        sim.run_ms(300_000);
        // Pick a reference node some ordinary node actually uses.
        let target = (0..60)
            .find(|&i| sim.world.layer[i] == 1 && sim.world.refs.iter().any(|r| r.contains(&i)))
            .expect("layer-1 reference in use");
        sim.deploy_defense(Box::new(BanOnce {
            target,
            state: 0,
            bans: Vec::new(),
            reinstates: Vec::new(),
        }));
        sim.run_ms(600_000);
        let stats = sim.defense_stats().unwrap();
        assert_eq!(stats.bans, 1);
        assert_eq!(stats.reinstated, 1);
        // The Reject routed the target through ban/replacement; the
        // reinstate event scrubbed it from every rolling ban list again.
        assert!(
            sim.world.banned.iter().all(|l| !l.contains(&target)),
            "reinstatement must scrub the rolling ban lists"
        );
    }

    #[test]
    fn attackers_exclude_landmarks() {
        let mut sim = small_sim(80, 5);
        let attackers = sim.pick_attackers(0.5);
        assert!(attackers.iter().all(|&a| sim.layers_of()[a] != 0));
    }

    #[test]
    fn eval_per_layer_partitions() {
        let mut sim = small_sim(80, 6);
        sim.run_ms(600_000);
        let l1 = sim.eval_nodes_in_layer(1);
        let l2 = sim.eval_nodes_in_layer(2);
        let all = sim.eval_nodes();
        assert_eq!(l1.len() + l2.len(), all.len());
        assert!(!l1.is_empty() && !l2.is_empty());
    }

    #[test]
    fn empty_chaos_plan_is_bit_identical_to_no_chaos() {
        let run = |install: bool| {
            let mut sim = small_sim(60, 31);
            sim.run_ms(300_000);
            if install {
                sim.install_chaos(ChaosPlan::none());
            }
            sim.run_ms(300_000);
            sim.coords().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn landmark_takedown_fails_over_through_membership() {
        let mut sim = small_sim(80, 32);
        sim.run_ms(600_000);
        let landmarks = sim.landmark_ids();
        assert_eq!(landmarks.len(), 12);
        let replaced_before = sim.counters().refs_replaced;
        // Take down half the landmark backbone, permanently.
        sim.install_chaos(ChaosPlan::none().takedown(&landmarks[..6], 0, None));
        sim.run_ms(600_000);
        let c = sim.chaos_counters().unwrap();
        assert_eq!(c.crashes, 6);
        assert!(c.timeouts > 0 && c.retries > 0, "{c:?}");
        assert!(c.failovers > 0, "dead landmarks must be failed over: {c:?}");
        assert!(
            sim.counters().refs_replaced > replaced_before,
            "fail-over must route through membership replacement"
        );
        // Landmarks stay pinned even across a crash (no coordinate reset).
        assert!(sim.positioned()[landmarks[0]]);
    }

    #[test]
    fn restarted_ordinary_nodes_rejoin_from_scratch() {
        let mut sim = small_sim(60, 33);
        sim.run_ms(600_000);
        // Find a positioned ordinary node and bounce it for two rounds.
        let victim = (0..60)
            .find(|&i| sim.layers_of()[i] != 0 && sim.positioned()[i])
            .unwrap();
        let coord_before = sim.coords()[victim].clone();
        sim.install_chaos(ChaosPlan::none().takedown(&[victim], 0, Some(120_000)));
        sim.run_ms(600_000);
        assert!(
            sim.positioned()[victim],
            "restarted node must reposition again"
        );
        assert_eq!(sim.chaos_counters().unwrap().restarts, 1);
        // The rejoin started from scratch (origin + cold seed), so the
        // re-fit lands somewhere new rather than resuming the old state.
        assert_ne!(sim.coords()[victim], coord_before);
    }

    #[test]
    fn probation_lets_decay_compose_with_banishment() {
        use crate::adversary::{AttackStrategy, CoordView, Lie, Probe};
        use crate::defense::{DriftCap, DriftDecay};
        use vcoord_attackkit::Collusion;

        // Attack hard for a fixed number of rounds after injection, then
        // reform — the Vivaldi decay test's story, on the NPS seam.
        struct BurstThenReform {
            attack_rounds: u64,
            injected_at: Option<u64>,
        }
        impl AttackStrategy for BurstThenReform {
            fn inject(
                &mut self,
                _attackers: &[usize],
                _collusion: &mut Collusion,
                view: &CoordView<'_>,
                _rng: &mut ChaCha12Rng,
            ) {
                self.injected_at = Some(view.round);
            }
            fn respond(
                &mut self,
                probe: &Probe,
                _collusion: &mut Collusion,
                view: &CoordView<'_>,
                _rng: &mut ChaCha12Rng,
            ) -> Option<Lie> {
                let start = self.injected_at.unwrap_or(0);
                if view.round.saturating_sub(start) >= self.attack_rounds {
                    return None; // reformed
                }
                let mut coord = view.coords[probe.attacker].clone();
                coord.vec[0] += 250.0;
                Some(Lie {
                    coord,
                    error: 0.01,
                    delay_ms: 0.0,
                })
            }
            fn label(&self) -> &'static str {
                "burst-then-reform"
            }
        }

        let run = |probation_every: u64| {
            let seeds = SeedStream::new(34);
            let matrix =
                KingLike::new(KingLikeConfig::with_nodes(60)).generate(&mut seeds.rng("topo"));
            let config = NpsConfig {
                landmarks: 12,
                refs_per_node: 12,
                space: Space::Euclidean(4),
                probation_every,
                ..NpsConfig::default()
            };
            let mut sim = NpsSim::new(matrix, config, &seeds);
            sim.run_ms(600_000);
            let attackers = sim.pick_attackers(0.25);
            sim.inject_adversary(
                &attackers,
                Box::new(BurstThenReform {
                    attack_rounds: 10,
                    injected_at: None,
                }),
            );
            sim.deploy_defense(Box::new(DriftCap::with_decay(40.0, DriftDecay::new(5.0))));
            sim.run_ms(3_000_000);
            let stats = sim.defense_stats().unwrap();
            (
                stats.bans,
                stats.reinstated,
                sim.counters().probation_probes,
            )
        };

        // Without the probation channel, membership-mediated banning cuts
        // the evidence stream: the decay never observes reform.
        let (bans_off, reinstated_off, probes_off) = run(0);
        assert!(bans_off > 0, "the burst must get banned");
        assert_eq!(probes_off, 0);
        // With probation, banned references keep being re-measured and the
        // reformed attackers earn reinstatement.
        let (bans_on, reinstated_on, probes_on) = run(2);
        assert!(bans_on > 0);
        assert!(probes_on > 0, "probation probes must flow");
        assert!(
            reinstated_on > reinstated_off,
            "probation must let decay forgive reformed references \
             (off: {reinstated_off}, on: {reinstated_on})"
        );
    }

    #[test]
    fn probation_never_double_samples_a_leased_reference() {
        use crate::defense::DriftCap;

        // The silent double-count seam: a reference that is banned AND out
        // on a readmission lease already feeds (quarantined) evidence
        // through the regular probe rotation every round. The probation
        // round-robin must skip it — one sample per round per reference,
        // tagged once — and move on to the next non-leased ledger entry.
        let mut sim = small_sim(60, 24);
        sim.run_ms(300_000);
        // An astronomically high cap never bans, so the ledgers below stay
        // exactly as staged.
        sim.deploy_defense(Box::new(DriftCap::new(1e12)));
        sim.world.config.probation_every = 1;

        let node = (0..60)
            .find(|&i| sim.world.layer[i] != 0 && sim.world.positioned[i])
            .expect("a positioned ordinary node");
        let (a, b) = {
            let mut others = (0..60).filter(|&i| i != node && sim.world.layer[i] != 0);
            (others.next().unwrap(), others.next().unwrap())
        };
        // Stage: both a and b on the ban ledger (a oldest), a out on lease
        // (leases live inside the rotation, so it is also an active ref).
        sim.world.banned[node] = VecDeque::from(vec![a, b]);
        sim.world.refs[node].retain(|&r| r != a && r != b);
        sim.world.refs[node].push(a);
        sim.world.leased[node] = vec![a];
        sim.world.probation_clock[node] = 0;
        sim.world.probation_cursor[node] = 0;

        sim.world.maybe_probation(node, 600_000);
        assert_eq!(sim.world.counters.probation_probes, 1);
        // The cursor started on the leased entry; the probe must have
        // fallen through to `b`, whose evidence then lands in the defense
        // history — while the leased `a` got no probation sample at all.
        let history = sim.world.defense.as_ref().unwrap().history();
        assert_eq!(
            history.remote(b).map(|h| h.samples()),
            Some(1),
            "the non-leased ledger entry must take the probation probe"
        );
        assert_eq!(
            history.remote(a).map_or(0, |h| h.samples()),
            0,
            "a leased reference must never receive a probation probe"
        );
        assert_eq!(
            sim.world.probation_cursor[node], 2,
            "cursor skips past the lease"
        );

        // With every ledger entry leased, probation has nothing to probe.
        sim.world.refs[node].push(b);
        sim.world.leased[node] = vec![a, b];
        sim.world.maybe_probation(node, 660_000);
        assert_eq!(
            sim.world.counters.probation_probes, 1,
            "an all-leased ledger must emit no probation probe"
        );
    }
}
