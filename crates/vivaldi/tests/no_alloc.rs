//! Allocation accounting for the Vivaldi update rule with the obs plane
//! off: the kernel allocates exactly once per applied sample (the
//! direction displacement from `Space::direction`), so the
//! `vivaldi.samples_applied` instrumentation added to the hot path must
//! cost one relaxed load and a branch — never a heap allocation.
//!
//! This file holds exactly one `#[test]`: the libtest harness runs tests on
//! worker threads, and a sibling test allocating concurrently would
//! corrupt the global counter.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use vcoord_obs::testing::{allocations, min_allocations_over, CountingAllocator};
use vcoord_space::Space;
use vcoord_vivaldi::node::vivaldi_update_scaled;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn vivaldi_update_allocation_budget_holds_with_obs_off() {
    assert_eq!(vcoord_obs::mode(), vcoord_obs::ObsMode::Off);
    let space = Space::EuclideanHeight(2);
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let mut coord = space.random_coord(100.0, &mut rng);
    let mut error = 0.5;
    let remote = space.random_coord(100.0, &mut rng);

    // Pay any one-time lazy init (metric interning happens at first call).
    vivaldi_update_scaled(
        &space,
        0.25,
        (1e-6, 1e3),
        &mut coord,
        &mut error,
        &remote,
        0.3,
        85.0,
        1.0,
        &mut rng,
    );

    const CALLS: u64 = 100_000;
    let allocs = min_allocations_over(3, || {
        for _ in 0..CALLS {
            vivaldi_update_scaled(
                &space,
                0.25,
                (1e-6, 1e3),
                &mut coord,
                &mut error,
                &remote,
                0.3,
                85.0,
                1.0,
                &mut rng,
            );
        }
    });
    assert_eq!(
        allocs, CALLS,
        "vivaldi_update_scaled must allocate exactly the direction \
         displacement per applied sample with the obs plane off"
    );

    // Allocator sanity: the counter does observe real allocations.
    let before = allocations();
    let v = std::hint::black_box(vec![1u8; 64]);
    drop(v);
    assert!(allocations() > before, "counting allocator is live");
}
