//! Allocation accounting for the chaos seam in the Vivaldi probe loop
//! with no faults scheduled: the per-probe chaos check is one `Option`
//! discriminant test, so a sim carrying an **empty** [`ChaosPlan`] must
//! spend exactly as many heap allocations per simulated window as a sim
//! with no chaos installed at all — and produce bitwise-identical
//! coordinates while doing it.
//!
//! This file holds exactly one `#[test]`: the libtest harness runs tests
//! on worker threads, and a sibling test allocating concurrently would
//! corrupt the global counter.

use vcoord_chaos::ChaosPlan;
use vcoord_netsim::SeedStream;
use vcoord_obs::testing::{allocations, CountingAllocator};
use vcoord_topo::{KingLike, KingLikeConfig};
use vcoord_vivaldi::{VivaldiConfig, VivaldiSim};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn warm_sim(install_empty_plan: bool) -> VivaldiSim {
    let seeds = SeedStream::new(41);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(48)).generate(&mut seeds.rng("topo"));
    let mut sim = VivaldiSim::new(matrix, VivaldiConfig::default(), &seeds);
    sim.run_ticks(60); // reach steady state: all lazy buffers sized
    if install_empty_plan {
        sim.install_chaos(ChaosPlan::none());
    }
    sim
}

fn window_allocations(sim: &mut VivaldiSim) -> u64 {
    let before = allocations();
    sim.run_ticks(40);
    allocations() - before
}

#[test]
fn disabled_chaos_check_adds_no_allocations_to_the_tick_loop() {
    assert_eq!(vcoord_obs::mode(), vcoord_obs::ObsMode::Off);

    let mut plain = warm_sim(false);
    let mut chaotic = warm_sim(true);
    // The counter is process-global, so a harness-side allocation landing
    // inside one measured window under parallel-suite load breaks equality
    // spuriously. A real budget difference recurs every window; ambient
    // noise doesn't — retry the pair (both sims always advance in
    // lockstep, preserving the bitwise comparison below).
    let mut plain_allocs = 0;
    let mut chaotic_allocs = 0;
    for _ in 0..3 {
        plain_allocs = window_allocations(&mut plain);
        chaotic_allocs = window_allocations(&mut chaotic);
        if plain_allocs == chaotic_allocs {
            break;
        }
    }
    assert_eq!(
        plain_allocs, chaotic_allocs,
        "an empty chaos plan changed the tick loop's allocation budget"
    );

    let plain_bits: Vec<u64> = plain
        .coords()
        .iter()
        .flat_map(|c| c.vec.iter().map(|v| v.to_bits()))
        .collect();
    let chaotic_bits: Vec<u64> = chaotic
        .coords()
        .iter()
        .flat_map(|c| c.vec.iter().map(|v| v.to_bits()))
        .collect();
    assert_eq!(plain_bits, chaotic_bits, "empty plan perturbed coordinates");

    // Allocator sanity: the counter does observe real allocations.
    let before = allocations();
    drop(std::hint::black_box(vec![1u8; 64]));
    assert!(allocations() > before, "counting allocator is live");
}
