//! Property tests over the detection-quality invariants the ISSUE pins
//! down, on whole Vivaldi simulations:
//!
//! * the drift-cap strategy flags frog-boiling colluders within a bounded
//!   number of rounds after its evidence window fills — **and**, at the
//!   same seed, keeps a false-positive rate of exactly zero on an
//!   all-honest run (honest converged residuals are zero-mean; only a
//!   sustained directed drag trips the cap);
//! * `Verdict::Dampen(1.0)` is bitwise-identical to `Verdict::Accept`
//!   through a full simulation (the dampened update path is a trailing
//!   `× 1.0` on the accept path).

use proptest::prelude::*;
use vcoord_attackkit::FrogBoiling;
use vcoord_netsim::SeedStream;
use vcoord_topo::{KingLike, KingLikeConfig};
use vcoord_vivaldi::defense::{Dampener, DriftCap, NoDefense};
use vcoord_vivaldi::{VivaldiConfig, VivaldiSim};

/// Ticks a converged system runs before the attack/defense window (the
/// sim's own convergence test uses 200 at this scale — the honest
/// zero-false-positive claim is about *converged* systems, where residual
/// means have settled to zero).
const WARMUP_TICKS: u64 = 200;
/// Ticks of the defended window. The colluders' sustained gap has to
/// *grow* past the cap first (the offset integrates at `step` ms/round
/// while victims trail), then the per-remote evidence window (16 signed
/// residuals at ~1 probe/tick per attacker) has to fill above it; 150
/// ticks is several times that bound at the swept step sizes.
const DEFENDED_TICKS: u64 = 150;

fn converged_sim(n: usize, seed: u64) -> VivaldiSim {
    let seeds = SeedStream::new(seed);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(n)).generate(&mut seeds.rng("topo"));
    let mut sim = VivaldiSim::new(matrix, VivaldiConfig::default(), &seeds);
    sim.run_ticks(WARMUP_TICKS);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // ---- Drift cap: catches frog-boiling, never defames honest runs ----

    #[test]
    fn drift_cap_flags_frog_colluders_and_stays_silent_on_honest_runs(
        seed in 0u64..1000,
        step in 3.0f64..8.0,
    ) {
        let n = 60;

        // Attacked run: frog-boiling colluders at 30 %, drift cap armed.
        let mut attacked = converged_sim(n, seed);
        let attackers = attacked.pick_attackers(0.3);
        attacked.inject_adversary(&attackers, Box::new(FrogBoiling::new(step)));
        attacked.deploy_defense(Box::new(DriftCap::default()));
        attacked.run_ticks(DEFENDED_TICKS);
        let stats = attacked.defense_stats().expect("defense deployed");
        let confusion = stats.confusion(attacked.malicious(), 1);
        let tpr = confusion.tpr().expect("attackers present");
        prop_assert!(
            tpr >= 0.5,
            "drift cap must flag most colluders within {DEFENDED_TICKS} ticks: \
             tpr {tpr:.2} (step {step:.1}, seed {seed})"
        );

        // All-honest control at the SAME seed: identical topology and
        // convergence, defense armed at the same instant, nobody lying.
        let mut honest = converged_sim(n, seed);
        honest.deploy_defense(Box::new(DriftCap::default()));
        honest.run_ticks(DEFENDED_TICKS);
        let stats = honest.defense_stats().expect("defense deployed");
        prop_assert_eq!(
            stats.rejected, 0,
            "drift cap rejected {} honest samples on the all-honest run (seed {})",
            stats.rejected, seed
        );
        let confusion = stats.confusion(honest.malicious(), 1);
        prop_assert_eq!(confusion.fpr(), Some(0.0));
    }

    // ---- Dampen(1.0) ≡ Accept, bitwise, through a full simulation ------

    #[test]
    fn dampen_identity_runs_are_bitwise_equal(seed in 0u64..1000) {
        let n = 40;
        let run = |strategy: Option<Box<dyn vcoord_vivaldi::DefenseStrategy>>| {
            let mut sim = converged_sim(n, seed);
            if let Some(s) = strategy {
                sim.deploy_defense(s);
            }
            sim.run_ticks(40);
            (sim.coords().to_vec(), sim.errors().to_vec())
        };
        let (c_none, e_none) = run(None);
        let (c_pass, e_pass) = run(Some(Box::new(NoDefense)));
        let (c_damp, e_damp) = run(Some(Box::new(Dampener::new(1.0))));
        // Coordinates at the bit level (f64 PartialEq would let a
        // 0.0/-0.0 flip slide), each run against the undefended baseline.
        for (ca, cb) in c_none.iter().zip(c_pass.iter()).chain(c_none.iter().zip(&c_damp)) {
            prop_assert_eq!(ca.height.to_bits(), cb.height.to_bits());
            for (x, y) in ca.vec.iter().zip(&cb.vec) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Error estimates likewise — both runs, not a truncated chain.
        for other in [&e_pass, &e_damp] {
            prop_assert_eq!(e_none.len(), other.len());
            for (a, b) in e_none.iter().zip(other.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
