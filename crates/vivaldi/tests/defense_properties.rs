//! Property tests over the detection-quality invariants the ISSUE pins
//! down, on whole Vivaldi simulations:
//!
//! * the drift-cap strategy flags frog-boiling colluders within a bounded
//!   number of rounds after its evidence window fills — **and**, at the
//!   same seed, keeps a false-positive rate of exactly zero on an
//!   all-honest run (honest converged residuals are zero-mean; only a
//!   sustained directed drag trips the cap);
//! * `Verdict::Dampen(1.0)` is bitwise-identical to `Verdict::Accept`
//!   through a full simulation (the dampened update path is a trailing
//!   `× 1.0` on the accept path).

use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use vcoord_attackkit::{DefenseModel, EvadingFrogBoil, FrogBoiling};
use vcoord_netsim::SeedStream;
use vcoord_space::{Coord, Space};
use vcoord_topo::{KingLike, KingLikeConfig};
use vcoord_vivaldi::defense::{
    Dampener, Defense, DriftCap, DriftDecay, NoDefense, Provenance, Update, Verdict,
};
use vcoord_vivaldi::{VivaldiConfig, VivaldiSim};

/// Ticks a converged system runs before the attack/defense window (the
/// sim's own convergence test uses 200 at this scale — the honest
/// zero-false-positive claim is about *converged* systems, where residual
/// means have settled to zero).
const WARMUP_TICKS: u64 = 200;
/// Ticks of the defended window. The colluders' sustained gap has to
/// *grow* past the cap first (the offset integrates at `step` ms/round
/// while victims trail), then the per-remote evidence window (16 signed
/// residuals at ~1 probe/tick per attacker) has to fill above it; 150
/// ticks is several times that bound at the swept step sizes.
const DEFENDED_TICKS: u64 = 150;

fn converged_sim(n: usize, seed: u64) -> VivaldiSim {
    let seeds = SeedStream::new(seed);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(n)).generate(&mut seeds.rng("topo"));
    let mut sim = VivaldiSim::new(matrix, VivaldiConfig::default(), &seeds);
    sim.run_ticks(WARMUP_TICKS);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // ---- Drift cap: catches frog-boiling, never defames honest runs ----

    #[test]
    fn drift_cap_flags_frog_colluders_and_stays_silent_on_honest_runs(
        seed in 0u64..1000,
        step in 3.0f64..8.0,
    ) {
        let n = 60;

        // Attacked run: frog-boiling colluders at 30 %, drift cap armed.
        let mut attacked = converged_sim(n, seed);
        let attackers = attacked.pick_attackers(0.3);
        attacked.inject_adversary(&attackers, Box::new(FrogBoiling::new(step)));
        attacked.deploy_defense(Box::new(DriftCap::default()));
        attacked.run_ticks(DEFENDED_TICKS);
        let stats = attacked.defense_stats().expect("defense deployed");
        let confusion = stats.confusion(attacked.malicious(), 1);
        let tpr = confusion.tpr().expect("attackers present");
        prop_assert!(
            tpr >= 0.5,
            "drift cap must flag most colluders within {DEFENDED_TICKS} ticks: \
             tpr {tpr:.2} (step {step:.1}, seed {seed})"
        );

        // All-honest control at the SAME seed: identical topology and
        // convergence, defense armed at the same instant, nobody lying.
        let mut honest = converged_sim(n, seed);
        honest.deploy_defense(Box::new(DriftCap::default()));
        honest.run_ticks(DEFENDED_TICKS);
        let stats = honest.defense_stats().expect("defense deployed");
        prop_assert_eq!(
            stats.rejected, 0,
            "drift cap rejected {} honest samples on the all-honest run (seed {})",
            stats.rejected, seed
        );
        let confusion = stats.confusion(honest.malicious(), 1);
        prop_assert_eq!(confusion.fpr(), Some(0.0));
    }

    // ---- Decay: forgiveness requires reform, at the same seed ----------

    #[test]
    fn decay_forgives_reform_but_never_a_persistent_attacker(
        half_life in 18.0f64..60.0,
        drag in 60.0f64..250.0,
        seed in 0u64..1000,
    ) {
        // Synthetic single-neighbor feeds with seeded RTT jitter: the same
        // seed drives a reforming and a persistent offender, so the pair
        // of outcomes is compared on identical noise.
        let space = Space::Euclidean(2);
        let feed = |d: &mut Defense, rng: &mut ChaCha12Rng, predicted: f64, rounds: std::ops::Range<u64>| -> Vec<(u64, Verdict)> {
            let me = Coord::origin(2);
            let them = Coord::from_vec(vec![predicted, 0.0]);
            rounds
                .map(|r| {
                    let rtt = 100.0 + rng.gen_range(-10.0..10.0);
                    let v = d.inspect(&space, &me, Update {
                        observer: 0,
                        remote: 2,
                        reported_coord: &them,
                        reported_error: 1.0,
                        rtt,
                        round: r,
                        now_ms: r * 1000,
                        provenance: Provenance::Normal,
                    });
                    (r, v)
                })
                .collect()
        };
        let cap = 40.0;
        let attack_predicted = 100.0 + drag; // sustained ≈ −drag ms residual
        let honest_predicted = 100.0;

        // Reforming offender: attack, get banned, then behave honestly.
        let mut d = Defense::new(Box::new(DriftCap::with_decay(cap, DriftDecay::new(half_life))));
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let v1 = feed(&mut d, &mut rng, attack_predicted, 0..30);
        let ban_round = v1.iter().find(|(_, v)| *v == Verdict::Reject)
            .map(|(r, _)| *r)
            .expect("a sustained over-cap drag must be banned");
        let horizon = 30 + (half_life as u64 + 40) * 2;
        let v2 = feed(&mut d, &mut rng, honest_predicted, 30..horizon);
        let reinstate = v2.iter().find(|(_, v)| *v == Verdict::Accept).map(|(r, _)| *r);
        // Forgiveness needs BOTH gates: the weight decays below 0.5 one
        // half-life after the ban, and the evidence window must refill
        // with honest samples after the reform (16 rounds at one
        // inspection per round) — whichever lands later, plus slack.
        let deadline = (ban_round + half_life as u64).max(30 + 16) + 3;
        prop_assert!(
            matches!(reinstate, Some(r) if r <= deadline),
            "reformed node not reinstated by round {deadline} (ban {ban_round}, \
             half-life {half_life:.0}, reinstate {reinstate:?})"
        );

        // Persistent offender at the SAME seed: never reinstated.
        let mut d = Defense::new(Box::new(DriftCap::with_decay(cap, DriftDecay::new(half_life))));
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let v1 = feed(&mut d, &mut rng, attack_predicted, 0..30);
        prop_assert!(v1.iter().any(|(_, v)| *v == Verdict::Reject));
        let v2 = feed(&mut d, &mut rng, attack_predicted, 30..horizon);
        prop_assert!(
            v2.iter().all(|(_, v)| *v == Verdict::Reject),
            "a still-attacking node must never be un-banned (half-life {half_life:.0})"
        );
    }

    // ---- Leases: quarantined evidence never heals a decaying ban -------

    #[test]
    fn leased_evidence_never_reaches_the_healed_window(
        half_life in 18.0f64..60.0,
        drag in 60.0f64..250.0,
        seed in 0u64..1000,
    ) {
        // The probation-leak fix, as an invariant: samples tagged
        // `Provenance::Lease` are judged (the banned branch still answers
        // Reject) but never recorded, so no volume of well-behaved leased
        // traffic can satisfy DriftDecay's healed-window condition — a
        // reformed attacker on a readmission lease stays banned no matter
        // how long the lease runs or where the decayed weight sits.
        let space = Space::Euclidean(2);
        let me = Coord::origin(2);
        let feed = |d: &mut Defense, rng: &mut ChaCha12Rng, predicted: f64,
                    provenance: Provenance, rounds: std::ops::Range<u64>| -> Vec<Verdict> {
            let them = Coord::from_vec(vec![predicted, 0.0]);
            rounds
                .map(|r| {
                    let rtt = 100.0 + rng.gen_range(-10.0..10.0);
                    d.inspect(&space, &me, Update {
                        observer: 0,
                        remote: 2,
                        reported_coord: &them,
                        reported_error: 1.0,
                        rtt,
                        round: r,
                        now_ms: r * 1000,
                        provenance,
                    })
                })
                .collect()
        };
        let cap = 40.0;
        let mut d = Defense::new(Box::new(DriftCap::with_decay(cap, DriftDecay::new(half_life))));
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let v1 = feed(&mut d, &mut rng, 100.0 + drag, Provenance::Normal, 0..30);
        prop_assert!(
            v1.contains(&Verdict::Reject),
            "a sustained over-cap drag must be banned (drag {drag:.0})"
        );
        // Honest-looking leased traffic far past every decay/half-life
        // horizon the reform test exercises: all of it must bounce.
        let horizon = 30 + (half_life as u64 + 40) * 4;
        let v2 = feed(&mut d, &mut rng, 100.0, Provenance::Lease, 30..horizon);
        prop_assert!(
            v2.iter().all(|v| *v == Verdict::Reject),
            "leased evidence must never be accepted (half-life {half_life:.0}, seed {seed})"
        );
        let (mut banned, mut reinstated) = (Vec::new(), Vec::new());
        d.drain_reputation(&mut banned, &mut reinstated);
        prop_assert!(
            reinstated.is_empty(),
            "leased evidence must never reinstate: {reinstated:?} (seed {seed})"
        );
        prop_assert_eq!(d.stats().quarantined, horizon - 30);
    }

    // ---- No-decay ≡ never-firing decay, bitwise, on whole sims ---------

    #[test]
    fn no_decay_equals_never_firing_decay_bitwise(seed in 0u64..1000) {
        // The permanent-ban regression guard: a decay that can never fire
        // within the horizon (astronomical half-life) must leave the
        // decaying implementation bitwise-identical to the legacy
        // permanent-ban path on a full attacked simulation — the no-decay
        // code path is the same numerics, not a parallel reimplementation.
        let n = 40;
        let run = |decay: Option<DriftDecay>| {
            let mut sim = converged_sim(n, seed);
            let attackers = sim.pick_attackers(0.3);
            sim.inject_adversary(&attackers, Box::new(FrogBoiling::new(6.0)));
            sim.deploy_defense(match decay {
                None => Box::new(DriftCap::new(60.0)),
                Some(d) => Box::new(DriftCap::with_decay(60.0, d)),
            });
            sim.run_ticks(100);
            (sim.coords().to_vec(), sim.errors().to_vec(),
             sim.defense_stats().map(|s| (s.accepted, s.rejected)).unwrap())
        };
        let (c_none, e_none, s_none) = run(None);
        let (c_inf, e_inf, s_inf) = run(Some(DriftDecay::new(1e18)));
        prop_assert_eq!(s_none, s_inf, "verdict streams must match");
        for (a, b) in c_none.iter().zip(&c_inf) {
            prop_assert_eq!(a.height.to_bits(), b.height.to_bits());
            for (x, y) in a.vec.iter().zip(&b.vec) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (a, b) in e_none.iter().zip(&e_inf) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    // ---- Evasion: the defense-aware frog beats the classic one ---------

    #[test]
    fn evading_frog_undercuts_classic_frog_detection_at_the_same_seed(
        seed in 0u64..1000,
    ) {
        // At the deployed = modeled cap, the defense-aware frog's
        // detection rate must fall strictly below the classic frog's at
        // the same seed and matched 5 ms/round budget (the arms-race
        // headline, as a per-seed invariant rather than one golden run).
        let n = 60;
        let cap = 80.0;
        let run = |evading: bool| {
            let mut sim = converged_sim(n, seed);
            let attackers = sim.pick_attackers(0.3);
            if evading {
                sim.inject_adversary(
                    &attackers,
                    Box::new(EvadingFrogBoil::new(5.0, DefenseModel::drift_cap(cap))),
                );
            } else {
                sim.inject_adversary(&attackers, Box::new(FrogBoiling::new(5.0)));
            }
            sim.deploy_defense(Box::new(DriftCap::new(cap)));
            sim.run_ticks(DEFENDED_TICKS);
            let stats = sim.defense_stats().expect("defense deployed");
            stats.confusion(sim.malicious(), 1).tpr().expect("attackers present")
        };
        let classic = run(false);
        let evading = run(true);
        prop_assert!(
            evading < classic,
            "evasion must undercut classic detection: evading tpr {evading:.2} \
             vs classic {classic:.2} (seed {seed})"
        );
        prop_assert!(
            evading < 0.3,
            "the evader must stay essentially undetected at the modeled cap: \
             tpr {evading:.2} (seed {seed})"
        );
    }

    // ---- Online cap learning: never worse than the fixed model ---------

    #[test]
    fn learned_model_evader_matches_or_beats_fixed_model_on_a_mismodeled_cap(
        seed in 0u64..1000,
    ) {
        // The deployed cap is HALF the modeled one: the fixed-model
        // evader throttles to a budget (0.8 × 80 = 64 ms) far above the
        // real cap (40 ms) and feeds its colluders straight into the
        // ban. The learning evader behaves identically until the first
        // flag, then collapses its bracket under the observed pull and
        // holds — saving whichever colluders' evidence windows had not
        // yet filled. Its detection rate must therefore never exceed the
        // fixed evader's at the same seed.
        let n = 60;
        let deployed = 40.0;
        let run = |learning: bool| {
            let mut sim = converged_sim(n, seed);
            let attackers = sim.pick_attackers(0.3);
            let model = DefenseModel::drift_cap(80.0);
            let adv = if learning {
                EvadingFrogBoil::learning(5.0, model)
            } else {
                EvadingFrogBoil::new(5.0, model)
            };
            sim.inject_adversary(&attackers, Box::new(adv));
            sim.deploy_defense(Box::new(DriftCap::new(deployed)));
            sim.run_ticks(DEFENDED_TICKS);
            let stats = sim.defense_stats().expect("defense deployed");
            stats.confusion(sim.malicious(), 1).tpr().expect("attackers present")
        };
        let fixed = run(false);
        let learned = run(true);
        prop_assert!(
            fixed > 0.0,
            "a budget 24 ms over the deployed cap must draw bans (seed {seed})"
        );
        prop_assert!(
            learned <= fixed,
            "online cap learning must match or beat the fixed model's TPR \
             collapse: learned {learned:.2} vs fixed {fixed:.2} (seed {seed})"
        );
    }

    // ---- Dampen(1.0) ≡ Accept, bitwise, through a full simulation ------

    #[test]
    fn dampen_identity_runs_are_bitwise_equal(seed in 0u64..1000) {
        let n = 40;
        let run = |strategy: Option<Box<dyn vcoord_vivaldi::DefenseStrategy>>| {
            let mut sim = converged_sim(n, seed);
            if let Some(s) = strategy {
                sim.deploy_defense(s);
            }
            sim.run_ticks(40);
            (sim.coords().to_vec(), sim.errors().to_vec())
        };
        let (c_none, e_none) = run(None);
        let (c_pass, e_pass) = run(Some(Box::new(NoDefense)));
        let (c_damp, e_damp) = run(Some(Box::new(Dampener::new(1.0))));
        // Coordinates at the bit level (f64 PartialEq would let a
        // 0.0/-0.0 flip slide), each run against the undefended baseline.
        for (ca, cb) in c_none.iter().zip(c_pass.iter()).chain(c_none.iter().zip(&c_damp)) {
            prop_assert_eq!(ca.height.to_bits(), cb.height.to_bits());
            for (x, y) in ca.vec.iter().zip(&cb.vec) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Error estimates likewise — both runs, not a truncated chain.
        for other in [&e_pass, &e_damp] {
            prop_assert_eq!(e_none.len(), other.len());
            for (a, b) in e_none.iter().zip(other.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
