//! The paper's convergence criterion.
//!
//! §5.2: *"The system is considered to have stabilized when all relative
//! errors converge to a value varying by at most 0.02 for 10 simulation
//! ticks."* The tracker keeps a short per-node history of sampled relative
//! errors and reports stability once every node's history band is within
//! the tolerance.

/// Sliding-window convergence detector over per-node relative errors.
#[derive(Debug, Clone)]
pub struct ConvergenceTracker {
    tolerance: f64,
    hold: usize,
    /// Ring buffers, one per node, most recent last.
    history: Vec<Vec<f64>>,
}

impl ConvergenceTracker {
    /// The paper's parameters: tolerance 0.02 over 10 ticks.
    pub fn paper(nodes: usize) -> ConvergenceTracker {
        ConvergenceTracker::new(nodes, 0.02, 10)
    }

    /// Custom tolerance/hold.
    pub fn new(nodes: usize, tolerance: f64, hold: usize) -> ConvergenceTracker {
        assert!(hold >= 2, "hold window must be at least 2 samples");
        ConvergenceTracker {
            tolerance,
            hold,
            history: vec![Vec::new(); nodes],
        }
    }

    /// Record one tick's per-node relative errors (same order every call).
    ///
    /// # Panics
    /// Panics if `errors` has a different length than the tracker.
    pub fn record(&mut self, errors: &[f64]) {
        assert_eq!(errors.len(), self.history.len(), "node count changed");
        for (h, &e) in self.history.iter_mut().zip(errors) {
            h.push(e);
            if h.len() > self.hold {
                h.remove(0);
            }
        }
    }

    /// `true` once every node's last `hold` samples vary by at most the
    /// tolerance.
    pub fn converged(&self) -> bool {
        self.history.iter().all(|h| {
            h.len() >= self.hold && {
                let lo = h.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = h.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                hi - lo <= self.tolerance
            }
        })
    }

    /// Drop all history (e.g. after injecting an attack, to measure
    /// re-convergence).
    pub fn reset(&mut self) {
        for h in &mut self.history {
            h.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_full_window() {
        let mut t = ConvergenceTracker::new(2, 0.02, 3);
        t.record(&[0.5, 0.5]);
        t.record(&[0.5, 0.5]);
        assert!(!t.converged(), "window not full yet");
        t.record(&[0.5, 0.5]);
        assert!(t.converged());
    }

    #[test]
    fn one_unstable_node_blocks() {
        let mut t = ConvergenceTracker::new(2, 0.02, 3);
        for i in 0..3 {
            t.record(&[0.5, 0.1 * i as f64]);
        }
        assert!(!t.converged());
    }

    #[test]
    fn tolerance_is_a_band_not_a_level() {
        // High but *stable* errors count as converged — the paper makes this
        // exact point about attacked systems "converging" into chaos.
        let mut t = ConvergenceTracker::new(1, 0.02, 3);
        for _ in 0..3 {
            t.record(&[42.0]);
        }
        assert!(t.converged());
    }

    #[test]
    fn reset_clears_history() {
        let mut t = ConvergenceTracker::new(1, 0.02, 2);
        t.record(&[0.1]);
        t.record(&[0.1]);
        assert!(t.converged());
        t.reset();
        assert!(!t.converged());
    }

    #[test]
    #[should_panic(expected = "node count changed")]
    fn wrong_width_panics() {
        let mut t = ConvergenceTracker::new(2, 0.02, 3);
        t.record(&[0.1]);
    }
}
