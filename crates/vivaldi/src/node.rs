//! The Vivaldi per-sample update rule, as a pure function.
//!
//! Keeping the rule free of simulator state makes it directly testable
//! against the equations in §3.2 of the paper:
//!
//! ```text
//! e_s = | ‖x_i − x_j‖ − rtt | / rtt
//! w   = e_i / (e_i + e_j)
//! δ   = Cc · w
//! x_i ← x_i + δ · (rtt − ‖x_i − x_j‖) · u(x_i − x_j)
//! e_i ← e_s · w + e_i · (1 − w)
//! ```

use rand::Rng;
use vcoord_space::{Coord, Space};

/// Outcome of a single update, for logging/diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateOutcome {
    /// Sample relative error `e_s`.
    pub sample_error: f64,
    /// Sample weight `w`.
    pub weight: f64,
    /// Distance moved in coordinate space.
    pub displacement: f64,
}

/// Apply one Vivaldi sample to `(coord, error)`.
///
/// `remote` is the coordinate/error the probed node *reported* (possibly a
/// lie) and `rtt` the measured round-trip time in ms (possibly delayed).
/// Samples with non-positive or non-finite RTT are rejected (`None`), as are
/// non-finite remote coordinates — the defensive guards that keep
/// adversarial input from corrupting local state with NaNs.
#[allow(clippy::too_many_arguments)] // mirrors the paper's update rule inputs
pub fn vivaldi_update<R: Rng + ?Sized>(
    space: &Space,
    cc: f64,
    error_clamp: (f64, f64),
    coord: &mut Coord,
    error: &mut f64,
    remote_coord: &Coord,
    remote_error: f64,
    rtt: f64,
    rng: &mut R,
) -> Option<UpdateOutcome> {
    vivaldi_update_scaled(
        space,
        cc,
        error_clamp,
        coord,
        error,
        remote_coord,
        remote_error,
        rtt,
        1.0,
        rng,
    )
}

/// [`vivaldi_update`] with a defense dampening factor on the timestep.
///
/// `scale` multiplies the adaptive timestep `δ = Cc · w` — the coordinate
/// movement only; the error-estimate update is untouched, so a dampened
/// node still learns how good its samples are. `scale = 1.0` is
/// **bit-identical** to [`vivaldi_update`] (the factor enters as a trailing
/// `× scale` on the existing expression, and `x × 1.0` preserves every bit
/// of a finite `x`), which is what lets `Verdict::Dampen(1.0)` stand in
/// for `Verdict::Accept` without perturbing golden figures.
#[allow(clippy::too_many_arguments)] // mirrors the paper's update rule inputs
pub fn vivaldi_update_scaled<R: Rng + ?Sized>(
    space: &Space,
    cc: f64,
    error_clamp: (f64, f64),
    coord: &mut Coord,
    error: &mut f64,
    remote_coord: &Coord,
    remote_error: f64,
    rtt: f64,
    scale: f64,
    rng: &mut R,
) -> Option<UpdateOutcome> {
    if !(rtt.is_finite() && rtt > 0.0 && remote_coord.is_finite()) {
        log::debug!("vivaldi: rejecting invalid sample (rtt={rtt})");
        return None;
    }
    let remote_error = remote_error.clamp(0.0, error_clamp.1);

    let dist = space.distance(coord, remote_coord);
    let sample_error = (dist - rtt).abs() / rtt;

    // Weight balancing local and remote confidence. Two perfectly confident
    // nodes split the difference.
    let denom = *error + remote_error;
    let weight = if denom <= f64::EPSILON {
        0.5
    } else {
        *error / denom
    };

    let delta = cc * weight * scale;
    let dir = space.direction(coord, remote_coord, rng);
    let step = delta * (rtt - dist);
    space.apply(coord, &dir, step);
    if !coord.is_finite() {
        log::debug!("vivaldi: coordinate went non-finite; sanitizing");
        coord.sanitize();
    }

    *error = (sample_error * weight + *error * (1.0 - weight)).clamp(error_clamp.0, error_clamp.1);

    Some(UpdateOutcome {
        sample_error,
        weight,
        displacement: step.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    const CLAMP: (f64, f64) = (1e-6, 1e3);

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(11)
    }

    #[test]
    fn moves_toward_underestimated_neighbor() {
        // Node believes the neighbour is 100 away but RTT says 10: it must
        // move closer.
        let space = Space::Euclidean(2);
        let mut c = Coord::from_vec(vec![100.0, 0.0]);
        let mut e = 0.5;
        let remote = Coord::from_vec(vec![0.0, 0.0]);
        let before = space.distance(&c, &remote);
        vivaldi_update(
            &space,
            0.25,
            CLAMP,
            &mut c,
            &mut e,
            &remote,
            0.5,
            10.0,
            &mut rng(),
        )
        .unwrap();
        assert!(space.distance(&c, &remote) < before);
    }

    #[test]
    fn moves_away_from_overestimated_neighbor() {
        let space = Space::Euclidean(2);
        let mut c = Coord::from_vec(vec![10.0, 0.0]);
        let mut e = 0.5;
        let remote = Coord::from_vec(vec![0.0, 0.0]);
        let before = space.distance(&c, &remote);
        vivaldi_update(
            &space,
            0.25,
            CLAMP,
            &mut c,
            &mut e,
            &remote,
            0.5,
            100.0,
            &mut rng(),
        )
        .unwrap();
        assert!(space.distance(&c, &remote) > before);
    }

    #[test]
    fn perfect_sample_drives_error_down() {
        let space = Space::Euclidean(2);
        let mut c = Coord::from_vec(vec![10.0, 0.0]);
        let mut e = 1.0;
        let remote = Coord::from_vec(vec![0.0, 0.0]);
        let out = vivaldi_update(
            &space,
            0.25,
            CLAMP,
            &mut c,
            &mut e,
            &remote,
            1.0,
            10.0,
            &mut rng(),
        )
        .unwrap();
        assert_eq!(out.sample_error, 0.0);
        assert!(e < 1.0);
    }

    #[test]
    fn low_remote_error_means_big_step() {
        // The disorder attack exploits exactly this: a lying node reporting
        // e_j = 0.01 maximizes the victim's weight and thus its timestep.
        let space = Space::Euclidean(2);
        let remote = Coord::from_vec(vec![0.0, 0.0]);

        let mut c1 = Coord::from_vec(vec![10.0, 0.0]);
        let mut e1 = 0.5;
        let o1 = vivaldi_update(
            &space,
            0.25,
            CLAMP,
            &mut c1,
            &mut e1,
            &remote,
            0.01,
            500.0,
            &mut rng(),
        )
        .unwrap();

        let mut c2 = Coord::from_vec(vec![10.0, 0.0]);
        let mut e2 = 0.5;
        let o2 = vivaldi_update(
            &space,
            0.25,
            CLAMP,
            &mut c2,
            &mut e2,
            &remote,
            5.0,
            500.0,
            &mut rng(),
        )
        .unwrap();

        assert!(o1.weight > o2.weight);
        assert!(o1.displacement > o2.displacement);
    }

    #[test]
    fn rejects_bad_samples() {
        let space = Space::Euclidean(2);
        let mut c = Coord::from_vec(vec![1.0, 1.0]);
        let mut e = 0.5;
        let remote = Coord::from_vec(vec![0.0, 0.0]);
        assert!(vivaldi_update(
            &space,
            0.25,
            CLAMP,
            &mut c,
            &mut e,
            &remote,
            0.5,
            0.0,
            &mut rng()
        )
        .is_none());
        assert!(vivaldi_update(
            &space,
            0.25,
            CLAMP,
            &mut c,
            &mut e,
            &remote,
            0.5,
            f64::NAN,
            &mut rng()
        )
        .is_none());
        let bad = Coord::from_vec(vec![f64::NAN, 0.0]);
        assert!(vivaldi_update(
            &space,
            0.25,
            CLAMP,
            &mut c,
            &mut e,
            &bad,
            0.5,
            10.0,
            &mut rng()
        )
        .is_none());
        // State untouched by rejected samples.
        assert_eq!(c.vec, vec![1.0, 1.0]);
        assert_eq!(e, 0.5);
    }

    #[test]
    fn coincident_nodes_separate() {
        let space = Space::Euclidean(2);
        let mut c = Coord::origin(2);
        let mut e = 1.0;
        let remote = Coord::origin(2);
        vivaldi_update(
            &space,
            0.25,
            CLAMP,
            &mut c,
            &mut e,
            &remote,
            1.0,
            50.0,
            &mut rng(),
        )
        .unwrap();
        assert!(
            space.distance(&c, &remote) > 0.0,
            "random kick must separate"
        );
    }

    #[test]
    fn error_stays_clamped() {
        let space = Space::Euclidean(2);
        let mut c = Coord::from_vec(vec![1.0, 0.0]);
        let mut e = 1.0;
        let remote = Coord::from_vec(vec![0.0, 0.0]);
        // Absurd sample error (dist 1 vs rtt 1e9): error must stay within clamp.
        vivaldi_update(
            &space,
            0.25,
            CLAMP,
            &mut c,
            &mut e,
            &remote,
            0.0001,
            1e9,
            &mut rng(),
        )
        .unwrap();
        assert!(e <= CLAMP.1);
        assert!(e >= CLAMP.0);
    }

    #[test]
    fn scale_one_is_bit_identical_to_unscaled() {
        // The Dampen(1.0) ≡ Accept identity at the update-rule level: every
        // output bit of coordinate and error must match.
        let space = Space::EuclideanHeight(3);
        let mut rng_a = rng();
        let mut rng_b = rng();
        let mut ca = Coord {
            vec: vec![10.0, -3.0, 7.5],
            height: 2.0,
        };
        let mut cb = ca.clone();
        let (mut ea, mut eb) = (0.37, 0.37);
        let remote = Coord {
            vec: vec![1.0, 2.0, 3.0],
            height: 0.5,
        };
        for k in 0..50 {
            let rtt = 10.0 + k as f64;
            let a = vivaldi_update(
                &space, 0.25, CLAMP, &mut ca, &mut ea, &remote, 0.4, rtt, &mut rng_a,
            )
            .unwrap();
            let b = vivaldi_update_scaled(
                &space, 0.25, CLAMP, &mut cb, &mut eb, &remote, 0.4, rtt, 1.0, &mut rng_b,
            )
            .unwrap();
            assert_eq!(a, b);
            assert_eq!(ea.to_bits(), eb.to_bits());
            assert_eq!(ca.height.to_bits(), cb.height.to_bits());
            for (x, y) in ca.vec.iter().zip(&cb.vec) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn scale_zero_freezes_movement_but_still_learns_error() {
        let space = Space::Euclidean(2);
        let mut c = Coord::from_vec(vec![100.0, 0.0]);
        let mut e = 1.0;
        let remote = Coord::from_vec(vec![0.0, 0.0]);
        let out = vivaldi_update_scaled(
            &space,
            0.25,
            CLAMP,
            &mut c,
            &mut e,
            &remote,
            0.5,
            10.0,
            0.0,
            &mut rng(),
        )
        .unwrap();
        assert_eq!(out.displacement, 0.0);
        assert_eq!(c.vec, vec![100.0, 0.0], "fully dampened: no movement");
        assert_ne!(e, 1.0, "error estimate still updates");
    }

    #[test]
    fn height_model_keeps_height_nonnegative() {
        let space = Space::EuclideanHeight(2);
        let mut c = Coord {
            vec: vec![1.0, 0.0],
            height: 0.5,
        };
        let mut e = 1.0;
        let remote = Coord {
            vec: vec![0.0, 0.0],
            height: 0.5,
        };
        for _ in 0..50 {
            vivaldi_update(
                &space,
                0.25,
                CLAMP,
                &mut c,
                &mut e,
                &remote,
                0.5,
                1.0,
                &mut rng(),
            )
            .unwrap();
            assert!(c.height >= 0.0);
        }
    }
}
