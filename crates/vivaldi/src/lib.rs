//! # vcoord-vivaldi
//!
//! The Vivaldi decentralized network coordinate system [Dabek et al.,
//! SIGCOMM'04], implemented as a [`vcoord_netsim`] world — the workspace's
//! equivalent of the p2psim Vivaldi the CoNEXT'06 paper attacks.
//!
//! Vivaldi places a spring between node pairs with rest length equal to the
//! measured RTT; every probe sample relaxes the observing node toward the
//! spring equilibrium by an adaptive timestep `δ = Cc · w`, where the weight
//! `w = e_i / (e_i + e_j)` balances local and remote error estimates. The
//! paper's simulation parameters are the defaults here: 64 neighbours per
//! node of which 32 are closer than 50 ms, `Cc = 0.25`, a 2-D coordinate
//! space, and one probe per node per ~17 s tick.
//!
//! Malicious behaviour is injected through the generic
//! [`vcoord_attackkit::AttackStrategy`] seam (see [`adversary`]): when an
//! honest node probes a malicious one, the running [`adversary::Scenario`]
//! supplies the reported coordinates, the reported error estimate, and an
//! extra probe delay. The simulator enforces the paper's threat model —
//! attackers can *delay* probes but never shorten them.
//!
//! Defense behaviour is deployed through the mirror-image
//! [`vcoord_defense::DefenseStrategy`] seam (see [`defense`]): every sample
//! an honest node is about to apply passes the deployed
//! [`defense::Defense`] first, whose verdict drops, dampens, or admits it.

pub mod adversary;
pub mod config;
pub mod convergence;
pub mod defense;
pub mod neighbors;
pub mod node;
pub mod sim;

pub use adversary::{AttackStrategy, Collusion, CoordView, Honest, Lie, Probe, Protocol, Scenario};
pub use config::VivaldiConfig;
pub use convergence::ConvergenceTracker;
pub use defense::{Defense, DefenseStrategy, Verdict};
pub use sim::VivaldiSim;
